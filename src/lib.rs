//! # treadmarks-gm — TreadMarks over GM on Myrinet, reproduced in Rust
//!
//! Facade crate re-exporting the whole reproduction of *"Implementing
//! TreadMarks over GM on Myrinet: Challenges, Design Experience, and
//! Performance Evaluation"* (Noronha & Panda, IPDPS 2003):
//!
//! * [`sim`] — virtual-time engine and the calibrated cost model
//! * [`myrinet`] — simulated Myrinet-2000 fabric + LANai NIC
//! * [`gm`] — the GM user-level message layer (ports, preposted
//!   buffers by size class, registered memory, send tokens)
//! * [`udp`] — the kernel sockets/UDP baseline (UDP/GM)
//! * [`fast`] — FAST/GM, the paper's substrate (+ the UDP binding and
//!   cluster runners)
//! * [`tmk`] — the TreadMarks lazy-release-consistency DSM runtime
//! * [`apps`] — SOR, Jacobi, TSP and 3D-FFT with sequential references
//!
//! ## Quick taste
//!
//! ```
//! use std::sync::Arc;
//! use treadmarks_gm::fast::{run_fast_dsm, FastConfig};
//! use treadmarks_gm::sim::SimParams;
//! use treadmarks_gm::tmk::TmkConfig;
//!
//! let params = Arc::new(SimParams::paper_testbed());
//! let cfg = FastConfig::paper(&params);
//! let out = run_fast_dsm(2, params, cfg, TmkConfig::default(), |tmk| {
//!     let r = tmk.malloc(4096);
//!     if tmk.proc_id() == 0 {
//!         tmk.set_u32(r, 0, 7);
//!     }
//!     tmk.barrier(1);
//!     tmk.get_u32(r, 0)
//! });
//! assert!(out.iter().all(|o| o.result == 7));
//! ```

pub use tm_apps as apps;
pub use tm_fast as fast;
pub use tm_gm as gm;
pub use tm_myrinet as myrinet;
pub use tm_sim as sim;
pub use tm_udp as udp;
pub use tmk;
