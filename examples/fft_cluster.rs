//! 3-D FFT with a distributed transpose — the bandwidth-hungry workload.
//!
//! Runs on 4 and 16 nodes over both transports, showing the scaling gap
//! the paper's Figure 4 reports (UDP/GM stops scaling first).
//!
//! ```sh
//! cargo run --release --example fft_cluster
//! ```

use std::sync::Arc;

use tm_apps::{fft_parallel, fft_seq, FftConfig};
use tm_fast::{run_fast_dsm, run_udp_dsm, FastConfig};
use tm_sim::runner::cluster_time;
use tm_sim::SimParams;
use tmk::TmkConfig;

fn main() {
    let cfg = FftConfig::new(32);
    let want = fft_seq(&cfg);

    println!("{:>6} {:>14} {:>14} {:>8}", "nodes", "UDP/GM", "FAST/GM", "factor");
    for n in [4usize, 16] {
        let params = Arc::new(SimParams::paper_testbed());
        let c = cfg.clone();
        let fast = run_fast_dsm(
            n,
            Arc::clone(&params),
            FastConfig::paper(&params),
            TmkConfig::default(),
            move |tmk| fft_parallel(tmk, &c),
        );
        let c = cfg.clone();
        let udp = run_udp_dsm(n, params, TmkConfig::default(), move |tmk| {
            fft_parallel(tmk, &c)
        });
        for o in fast.iter().chain(udp.iter()) {
            assert_eq!(o.result, want, "node {} diverged", o.id);
        }
        let tf = cluster_time(&fast);
        let tu = cluster_time(&udp);
        println!(
            "{n:>6} {:>14} {:>14} {:>7.2}x",
            format!("{tu}"),
            format!("{tf}"),
            tu.0 as f64 / tf.0 as f64
        );
    }
}
