//! Jacobi relaxation on both communication subsystems.
//!
//! Runs the paper's barrier-only workhorse on 8 nodes over UDP/GM and
//! FAST/GM, validates both against the sequential solver, and prints the
//! execution-time comparison — a single cell of the paper's Figure 4.
//!
//! ```sh
//! cargo run --release --example jacobi_cluster
//! ```

use std::sync::Arc;

use tm_apps::{jacobi_parallel, jacobi_seq, JacobiConfig};
use tm_fast::{run_fast_dsm, run_udp_dsm, FastConfig};
use tm_sim::runner::cluster_time;
use tm_sim::SimParams;
use tmk::TmkConfig;

fn main() {
    let cfg = JacobiConfig::new(512, 10);
    let want = jacobi_seq(&cfg);
    println!("sequential checksum: {want}");

    let params = Arc::new(SimParams::paper_testbed());

    let c = cfg.clone();
    let fast = run_fast_dsm(
        8,
        Arc::clone(&params),
        FastConfig::paper(&params),
        TmkConfig::default(),
        move |tmk| jacobi_parallel(tmk, &c),
    );
    let c = cfg.clone();
    let udp = run_udp_dsm(8, params, TmkConfig::default(), move |tmk| {
        jacobi_parallel(tmk, &c)
    });

    for o in fast.iter().chain(udp.iter()) {
        assert_eq!(o.result, want, "node {} diverged", o.id);
    }
    let tf = cluster_time(&fast);
    let tu = cluster_time(&udp);
    println!("FAST/GM x8: {tf}");
    println!("UDP/GM  x8: {tu}");
    println!("improvement: {:.2}x", tu.0 as f64 / tf.0 as f64);
    let agg = tm_sim::runner::cluster_stats(&fast);
    println!(
        "FAST cluster totals: {} msgs, {} diffs created, {} pages fetched",
        agg.msgs_sent, agg.diffs_created, agg.pages_fetched
    );
}
