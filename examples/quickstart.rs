//! Quickstart: a 4-node FAST/GM DSM cluster sharing a counter and a grid.
//!
//! Demonstrates the whole stack in ~60 lines: `malloc`/`distribute`,
//! lock-protected updates, barriers, and reading back a peer's writes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use tm_fast::{run_fast_dsm, FastConfig};
use tm_sim::runner::cluster_time;
use tm_sim::SimParams;
use tmk::TmkConfig;

fn main() {
    let params = Arc::new(SimParams::paper_testbed());
    let cfg = FastConfig::paper(&params);

    let outcomes = run_fast_dsm(4, params, cfg, TmkConfig::default(), |tmk| {
        let me = tmk.proc_id();
        let n = tmk.nprocs();

        // Collective allocation: a counter page and a small grid.
        let counter = tmk.malloc(4096);
        let grid = tmk.malloc(4096 * n);
        tmk.distribute(counter);
        tmk.distribute(grid);

        // Everyone increments the shared counter under a lock.
        for _ in 0..10 {
            tmk.acquire(0);
            let v = tmk.get_u32(counter, 0);
            tmk.set_u32(counter, 0, v + 1);
            tmk.release(0);
        }

        // Each node fills its own stripe of the grid.
        for i in 0..1024 {
            tmk.set_u32(grid, me * 1024 + i, (me * 100_000 + i) as u32);
        }
        tmk.barrier(1);

        // Read a neighbour's stripe — page fetches + diffs underneath.
        let neighbour = (me + 1) % n;
        let mut sum = 0u64;
        for i in 0..1024 {
            sum += tmk.get_u32(grid, neighbour * 1024 + i) as u64;
        }
        tmk.barrier(2);
        let count = tmk.get_u32(counter, 0);
        (count, sum)
    });

    for o in &outcomes {
        let (count, sum) = o.result;
        println!(
            "node {}: counter={count} neighbour-sum={sum} finished at {} \
             ({} msgs sent, {} page faults)",
            o.id, o.finish, o.stats.msgs_sent, o.stats.page_faults
        );
        assert_eq!(count, 40, "4 nodes x 10 increments");
    }
    println!("cluster time: {}", cluster_time(&outcomes));
}
