//! Branch-and-bound TSP over the shared work queue.
//!
//! The lock-heavy member of the suite: watch the remote-acquire counters
//! to see the migratory lock traffic the paper's Lock microbenchmark
//! prices. The optimal tour length is validated against the sequential
//! solver.
//!
//! ```sh
//! cargo run --release --example tsp_solver
//! ```

use std::sync::Arc;

use tm_apps::{tsp_parallel, tsp_seq, TspConfig};
use tm_fast::{run_fast_dsm, FastConfig};
use tm_sim::runner::{cluster_stats, cluster_time};
use tm_sim::SimParams;
use tmk::TmkConfig;

fn main() {
    let cfg = TspConfig::new(11);
    let want = tsp_seq(&cfg);
    println!("sequential optimum: {want}");

    let params = Arc::new(SimParams::paper_testbed());
    let c = cfg.clone();
    let out = run_fast_dsm(
        8,
        Arc::clone(&params),
        FastConfig::paper(&params),
        TmkConfig::default(),
        move |tmk| tsp_parallel(tmk, &c),
    );
    for o in &out {
        assert_eq!(o.result, want, "node {} found a different optimum", o.id);
    }
    println!("parallel optimum:  {} (all nodes agree)", out[0].result);
    println!("FAST/GM x8 time:   {}", cluster_time(&out));
    let agg = cluster_stats(&out);
    println!(
        "lock traffic: {} remote acquires, {} requests served, {} msgs",
        agg.remote_acquires, agg.requests_served, agg.msgs_sent
    );
}
