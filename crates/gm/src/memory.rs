//! Registered (DMA-pinned) memory.
//!
//! GM can only send from and receive into memory that has been registered —
//! pinned in physical memory so the LANai's DMA engines can reach it
//! (paper §2.1: *"Memory used for communication in GM has to be locked down
//! before the communication commences"*, and §2.2.3 on why the substrate
//! keeps a pool of registered send buffers rather than registering
//! TreadMarks' own structures).
//!
//! [`RegBook`] is a node's registration accounting: it charges pin time per
//! page and enforces the physical-memory budget. [`Region`] is a registered
//! span usable as a directed-send (RDMA) target. [`DmaPool`] is a bump pool
//! of registered send/receive buffers, handed out as [`PooledBuf`]s — the
//! proof-of-registration token the send path demands.

use tm_sim::{Ns, SharedClock, SimParams};

/// Identifier of a registered region, carried in directed-send packets.
pub type RegionId = u32;

/// A registered memory region owned by one node.
#[derive(Debug)]
pub struct Region {
    pub id: RegionId,
    pub data: Vec<u8>,
}

/// Registration accounting for one node.
pub struct RegBook {
    clock: SharedClock,
    pin_page: Ns,
    page_size: usize,
    limit_bytes: usize,
    pinned_bytes: usize,
    next_region: RegionId,
    regions: Vec<Region>,
}

/// Errors from registration.
#[derive(Debug, PartialEq, Eq)]
pub enum RegError {
    /// Physical memory budget exceeded — the failure mode §2.2.2's sizing
    /// arithmetic is designed to avoid.
    OutOfPinnedMemory { requested: usize, available: usize },
}

impl RegBook {
    /// `limit_bytes`: how much of physical memory may be pinned. The
    /// paper's nodes had 1 GB; OS + application need most of it.
    pub fn new(clock: SharedClock, params: &SimParams, limit_bytes: usize) -> Self {
        RegBook {
            clock,
            pin_page: params.host.pin_page,
            page_size: params.dsm.page_size,
            limit_bytes,
            pinned_bytes: 0,
            next_region: 1,
            regions: Vec::new(),
        }
    }

    pub fn pinned_bytes(&self) -> usize {
        self.pinned_bytes
    }

    /// Register `len` bytes; charges pin time per page and returns the
    /// region id.
    pub fn register(&mut self, len: usize) -> Result<RegionId, RegError> {
        let pages = len.div_ceil(self.page_size).max(1);
        let bytes = pages * self.page_size;
        if self.pinned_bytes + bytes > self.limit_bytes {
            return Err(RegError::OutOfPinnedMemory {
                requested: bytes,
                available: self.limit_bytes - self.pinned_bytes,
            });
        }
        self.pinned_bytes += bytes;
        self.clock
            .borrow_mut()
            .advance(Ns(self.pin_page.0 * pages as u64));
        let id = self.next_region;
        self.next_region += 1;
        self.regions.push(Region {
            id,
            data: vec![0; len],
        });
        Ok(id)
    }

    /// Deregister (unpin) a region.
    pub fn deregister(&mut self, id: RegionId) {
        if let Some(i) = self.regions.iter().position(|r| r.id == id) {
            let r = self.regions.remove(i);
            let pages = r.data.len().div_ceil(self.page_size).max(1);
            self.pinned_bytes -= pages * self.page_size;
        }
    }

    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.regions.iter().find(|r| r.id == id)
    }

    pub fn region_mut(&mut self, id: RegionId) -> Option<&mut Region> {
        self.regions.iter_mut().find(|r| r.id == id)
    }
}

/// A buffer allocated from a registered pool — the token that proves to
/// the send path that its bytes are DMA-reachable.
#[derive(Debug, Clone)]
pub struct PooledBuf {
    pub region: RegionId,
    pub data: Vec<u8>,
}

impl PooledBuf {
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A pool of registered send buffers (§2.2.3: the substrate copies outgoing
/// messages into registered buffers rather than registering TreadMarks'
/// data structures).
pub struct DmaPool {
    region: RegionId,
    capacity: usize,
    outstanding: usize,
    max_outstanding: usize,
    /// Retired buffer storage, reused by later takes — steady-state sends
    /// reuse registered memory instead of allocating per message.
    free: Vec<Vec<u8>>,
    /// Takes that could not reuse free-list storage (heap allocations).
    fresh: usize,
}

impl DmaPool {
    /// Carve a pool of `count` buffers of `buf_len` bytes out of newly
    /// registered memory.
    pub fn new(book: &mut RegBook, count: usize, buf_len: usize) -> Result<Self, RegError> {
        let region = book.register(count * buf_len)?;
        Ok(DmaPool {
            region,
            capacity: count,
            outstanding: 0,
            max_outstanding: 0,
            free: Vec::new(),
            fresh: 0,
        })
    }

    /// Take a buffer holding `data`'s bytes. Returns `None` when the pool
    /// is exhausted (caller must recycle completed sends first).
    pub fn take(&mut self, data: &[u8]) -> Option<PooledBuf> {
        self.take_parts(&[data])
    }

    /// Take a buffer gathering `parts` back to back — the scatter-gather
    /// copy into registered memory, one part per framing layer (e.g.
    /// `[kind], header, payload`) with no intermediate frame allocation.
    pub fn take_parts(&mut self, parts: &[&[u8]]) -> Option<PooledBuf> {
        if self.outstanding == self.capacity {
            return None;
        }
        self.outstanding += 1;
        self.max_outstanding = self.max_outstanding.max(self.outstanding);
        let mut data = match self.free.pop() {
            Some(d) => d,
            None => {
                self.fresh += 1;
                Vec::new()
            }
        };
        data.clear();
        for p in parts {
            data.extend_from_slice(p);
        }
        Some(PooledBuf {
            region: self.region,
            data,
        })
    }

    /// Return a buffer to the pool (send completion callback fired).
    pub fn recycle(&mut self) {
        debug_assert!(self.outstanding > 0, "recycle without take");
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// Like [`recycle`](DmaPool::recycle), but also reclaims the buffer's
    /// storage for reuse by a later take.
    pub fn recycle_buf(&mut self, buf: PooledBuf) {
        self.recycle();
        self.free.push(buf.data);
    }

    pub fn available(&self) -> usize {
        self.capacity - self.outstanding
    }

    /// High-water mark of concurrently outstanding buffers.
    pub fn high_water(&self) -> usize {
        self.max_outstanding
    }

    /// How many takes had to allocate fresh storage instead of reusing the
    /// free list — flat in steady state once the pool is warm.
    pub fn fresh_takes(&self) -> usize {
        self.fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_sim::clock::shared_clock;

    fn book(limit: usize) -> RegBook {
        let params = Arc::new(SimParams::paper_testbed());
        RegBook::new(shared_clock(), &params, limit)
    }

    #[test]
    fn register_rounds_to_pages_and_charges_time() {
        let mut b = book(1 << 20);
        let clock = b.clock.clone();
        let id = b.register(5000).unwrap(); // 2 pages
        assert_eq!(b.pinned_bytes(), 8192);
        assert_eq!(clock.borrow().now(), Ns(2_000)); // 2 pages * 1us pin
        assert_eq!(b.region(id).unwrap().data.len(), 5000);
    }

    #[test]
    fn budget_is_enforced() {
        let mut b = book(8192);
        b.register(4096).unwrap();
        b.register(4096).unwrap();
        let err = b.register(1).unwrap_err();
        assert_eq!(
            err,
            RegError::OutOfPinnedMemory {
                requested: 4096,
                available: 0
            }
        );
    }

    #[test]
    fn deregister_releases_budget() {
        let mut b = book(8192);
        let id = b.register(8192).unwrap();
        assert!(b.register(1).is_err());
        b.deregister(id);
        assert_eq!(b.pinned_bytes(), 0);
        assert!(b.register(4096).is_ok());
    }

    #[test]
    fn pool_take_recycle_cycle() {
        let mut b = book(1 << 20);
        let mut pool = DmaPool::new(&mut b, 2, 1024).unwrap();
        assert_eq!(pool.available(), 2);
        let buf = pool.take(b"abc").unwrap();
        assert_eq!(buf.data, b"abc");
        let _b2 = pool.take(b"d").unwrap();
        assert!(pool.take(b"overflow").is_none());
        pool.recycle();
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.high_water(), 2);
    }

    #[test]
    fn take_parts_gathers_and_reuses_storage() {
        let mut b = book(1 << 20);
        let mut pool = DmaPool::new(&mut b, 2, 1024).unwrap();
        let buf = pool.take_parts(&[&[0u8], b"head", b"payload"]).unwrap();
        assert_eq!(buf.data, b"\0headpayload");
        let cap = buf.data.capacity();
        pool.recycle_buf(buf);
        assert_eq!(pool.available(), 2);
        // Storage comes back out of the free list, capacity intact.
        let again = pool.take_parts(&[b"x"]).unwrap();
        assert_eq!(again.data, b"x");
        assert_eq!(again.data.capacity(), cap);
    }

    #[test]
    fn region_mut_is_writable() {
        let mut b = book(1 << 20);
        let id = b.register(16).unwrap();
        b.region_mut(id).unwrap().data[3] = 0xAB;
        assert_eq!(b.region(id).unwrap().data[3], 0xAB);
    }
}
