//! # tm-gm — the GM user-level message layer, modeled
//!
//! GM is Myricom's user-level protocol for Myrinet (the paper's §1.2). This
//! crate reproduces the GM API surface and — more importantly — every GM
//! semantic the paper's design discussion (§2.1) hinges on:
//!
//! * **No asynchronous notification**: receives are polled
//!   ([`GmNode::receive`]); the only escape is the paper's firmware
//!   modification, modeled as a per-port interrupt flag whose cost is
//!   charged by the async scheme at service time.
//! * **Pre-posted receive buffers by size class**
//!   ([`size::gm_size`], [`GmNode::provide_receive_buffer`]): a message of
//!   length `l` can only land in a buffer of size `⌈log2(l+1)⌉`. A message
//!   with no matching buffer waits; if the receiver lets it wait past the
//!   resend window the *send* fails via callback and the sending port is
//!   **disabled** — re-enabling costs a network probe
//!   ([`GmNode::reenable_port`]), the paper's dreaded failure mode.
//! * **Registered (pinned) memory** ([`memory`]): send and receive buffers
//!   must live in DMA-registered regions; pinning costs time and counts
//!   against physical memory.
//! * **≤ 8 ports, port 0 reserved for the mapper** ([`GmNode::open_port`]):
//!   the constraint that forces the paper's two-port connection
//!   multiplexing design.
//! * **Connectionless reliable delivery, send tokens, directed sends**
//!   (RDMA writes into a remote registered region).

pub mod memory;
pub mod node;
pub mod size;

pub use memory::{DmaPool, PooledBuf, RegBook, Region};
pub use node::{gm_cluster, FailureBoard, GmError, GmEvent, GmNode, MAPPER_PORT, NUM_PORTS};
pub use size::{gm_max_length, gm_size, MAX_SIZE_CLASS};
