//! The per-node GM endpoint: ports, tokens, preposted buffers, sends,
//! polled receives, directed sends, and the resend-timeout failure mode.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tm_myrinet::{Fabric, NicHandle, NodeId, RawPacket};
use tm_sim::{Ns, SharedClock, SimParams};

use crate::memory::{PooledBuf, RegBook, RegionId};
use crate::size::gm_size;

/// Max ports per NIC (GM exposes 8).
pub const NUM_PORTS: u8 = 8;
/// Port 0 belongs to the GM mapper daemon.
pub const MAPPER_PORT: u8 = 0;

/// Errors surfaced by the GM API model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GmError {
    /// Port number out of range.
    BadPort(u8),
    /// Port 0 is reserved for the mapper (§2.1: "one of them is reserved
    /// for the mapper. That gives us only seven ports").
    MapperReserved,
    /// Port already open.
    PortInUse(u8),
    /// Port not open.
    PortClosed(u8),
    /// All send tokens outstanding.
    NoSendTokens,
    /// The port was disabled by a send failure and must be re-enabled.
    PortDisabled(u8),
}

/// Events returned by [`GmNode::receive`].
#[derive(Debug)]
pub enum GmEvent {
    /// A message landed in a preposted buffer.
    Recv {
        src: NodeId,
        src_port: u8,
        size: u8,
        data: Bytes,
        /// Virtual time the message was fully in host memory.
        arrival: Ns,
    },
    /// One of our sends failed: the receiver never provided a buffer
    /// within the resend window. The sending port is now disabled.
    SendFailure { port: u8, dst: NodeId, dst_port: u8 },
}

/// Cross-thread blackboard on which receivers report rejected sends
/// (sender-side resend timer expiry). Indexed `[node][port]`.
pub struct FailureBoard {
    flags: Vec<[AtomicBool; NUM_PORTS as usize]>,
    /// (src, src_port, dst, dst_port) of each rejected send, for events.
    records: Mutex<Vec<(NodeId, u8, NodeId, u8)>>,
}

impl FailureBoard {
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(FailureBoard {
            flags: (0..n).map(|_| Default::default()).collect(),
            records: Mutex::new(Vec::new()),
        })
    }

    fn post(&self, src: NodeId, src_port: u8, dst: NodeId, dst_port: u8) {
        self.flags[src][src_port as usize].store(true, Ordering::Release);
        self.records.lock().push((src, src_port, dst, dst_port));
    }

    fn take(&self, node: NodeId, port: u8) -> Option<(NodeId, u8)> {
        if self.flags[node][port as usize].swap(false, Ordering::AcqRel) {
            let mut recs = self.records.lock();
            if let Some(i) = recs
                .iter()
                .position(|&(s, p, _, _)| s == node && p == port)
            {
                let (_, _, d, dp) = recs.remove(i);
                return Some((d, dp));
            }
            Some((usize::MAX, 0))
        } else {
            None
        }
    }
}

/// Per-port state.
struct PortState {
    /// The firmware modification of §2.2.4: raise a host interrupt when a
    /// message arrives on this port. Plain GM has no such thing.
    interrupt_on_recv: bool,
    send_tokens: usize,
    /// Virtual times at which in-flight sends hand their token back.
    token_returns: Vec<Ns>,
    /// Preposted receive-buffer counts, indexed by size class.
    recv_buffers: [u32; 32],
    /// Arrived packets with no matching preposted buffer (yet).
    unmatched: VecDeque<RawPacket>,
    /// Matched packets ready to be returned by `receive`.
    ready: VecDeque<RawPacket>,
    disabled: bool,
}

/// One node's GM endpoint. Owned by the node thread.
pub struct GmNode {
    nic: NicHandle,
    clock: SharedClock,
    params: Arc<SimParams>,
    board: Arc<FailureBoard>,
    ports: Vec<Option<PortState>>,
    /// Registered-memory book for this node.
    pub book: RegBook,
    /// Lockstep lookahead: the minimum modeled cost between the start of
    /// this node's preemptible window and its next packet reaching the
    /// wire. For GM that is the NIC DMA-descriptor pickup (`nic_tx`) plus
    /// the smaller of the `gm_send` host overhead and the handler floor —
    /// `send_overhead`, since every response handler charges at least
    /// `handler_dispatch` (> `send_overhead`) before its `send_at`, and
    /// responses are emitted immediately after the service window that
    /// prices them (no deferred batch of stale-priced responses).
    la: Ns,
}

/// Build the GM-level cluster state: the fabric, the shared failure board
/// and the per-node NIC handles. Each node thread then wraps its handle
/// with [`GmNode::new`].
pub fn gm_cluster(
    n: usize,
    params: Arc<SimParams>,
) -> (Arc<Fabric>, Arc<FailureBoard>, Vec<NicHandle>) {
    let (fabric, nics) = Fabric::new(n, params);
    let board = FailureBoard::new(n);
    (fabric, board, nics)
}

impl GmNode {
    /// `pin_limit`: bytes of physical memory this node may pin.
    pub fn new(
        nic: NicHandle,
        clock: SharedClock,
        params: Arc<SimParams>,
        board: Arc<FailureBoard>,
        pin_limit: usize,
    ) -> Self {
        let book = RegBook::new(clock.clone(), &params, pin_limit);
        let la = params.net.nic_tx + params.gm.send_overhead;
        nic.declare_lookahead(la);
        GmNode {
            nic,
            clock,
            params,
            board,
            ports: (0..NUM_PORTS).map(|_| None).collect(),
            book,
            la,
        }
    }

    /// Current lockstep floor: a sound lower bound on the injection time
    /// of any future packet from this node (see [`tm_sim::sched`]).
    fn sched_floor(&self) -> Ns {
        self.clock.borrow().preemptible_since() + self.la
    }

    /// The lookahead declared to the lockstep scheduler at construction.
    pub fn lookahead(&self) -> Ns {
        self.la
    }

    pub fn node(&self) -> NodeId {
        self.nic.node()
    }

    pub fn nprocs(&self) -> usize {
        self.nic.fabric().nprocs()
    }

    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    pub fn params(&self) -> &Arc<SimParams> {
        &self.params
    }

    /// Open a port. `interrupt_on_recv` models the modified firmware; stock
    /// GM passes `false`.
    pub fn open_port(&mut self, port: u8, interrupt_on_recv: bool) -> Result<(), GmError> {
        if port >= NUM_PORTS {
            return Err(GmError::BadPort(port));
        }
        if port == MAPPER_PORT {
            return Err(GmError::MapperReserved);
        }
        let slot = &mut self.ports[port as usize];
        if slot.is_some() {
            return Err(GmError::PortInUse(port));
        }
        *slot = Some(PortState {
            interrupt_on_recv,
            send_tokens: self.params.gm.send_tokens,
            token_returns: Vec::new(),
            recv_buffers: [0; 32],
            unmatched: VecDeque::new(),
            ready: VecDeque::new(),
            disabled: false,
        });
        Ok(())
    }

    pub fn port_interrupts(&self, port: u8) -> bool {
        self.ports[port as usize]
            .as_ref()
            .is_some_and(|p| p.interrupt_on_recv)
    }

    fn port_mut(&mut self, port: u8) -> Result<&mut PortState, GmError> {
        if port >= NUM_PORTS {
            return Err(GmError::BadPort(port));
        }
        self.ports[port as usize]
            .as_mut()
            .ok_or(GmError::PortClosed(port))
    }

    /// Prepost a receive buffer of the given size class. GM requires the
    /// buffer to be registered; the substrate registers its slabs through
    /// [`RegBook`] and this call only hands the NIC the token.
    pub fn provide_receive_buffer(&mut self, port: u8, size: u8) -> Result<(), GmError> {
        let p = self.port_mut(port)?;
        p.recv_buffers[size as usize] += 1;
        Ok(())
    }

    /// Total buffers currently preposted on a port for a size class.
    pub fn buffers_posted(&self, port: u8, size: u8) -> u32 {
        self.ports[port as usize]
            .as_ref()
            .map_or(0, |p| p.recv_buffers[size as usize])
    }

    /// Reap tokens whose sends completed by `now`.
    fn reap_tokens(p: &mut PortState, now: Ns) {
        p.token_returns.retain(|&t| {
            if t <= now {
                p.send_tokens += 1;
                false
            } else {
                true
            }
        });
    }

    /// `gm_send_with_callback`: send `len` bytes of `buf` to
    /// `(dst, dst_port)`. The buffer must come from registered memory
    /// ([`PooledBuf`] is the proof). Returns the injection time.
    pub fn send(
        &mut self,
        port: u8,
        dst: NodeId,
        dst_port: u8,
        buf: &PooledBuf,
        len: usize,
    ) -> Result<Ns, GmError> {
        assert!(len <= buf.data.len());
        // Check the failure board first: a rejected earlier send disables
        // the port before anything else can happen on it.
        self.absorb_failures(port);
        let now = self.clock.borrow().now();
        let gm = self.params.gm.clone();
        let net_tx = self.params.net.nic_tx;
        if self.params.faults.token_starved(now) {
            // Injected starvation window: behave exactly as if every
            // token were outstanding.
            return Err(GmError::NoSendTokens);
        }
        let p = self.port_mut(port)?;
        if p.disabled {
            return Err(GmError::PortDisabled(port));
        }
        Self::reap_tokens(p, now);
        if p.send_tokens == 0 {
            return Err(GmError::NoSendTokens);
        }
        p.send_tokens -= 1;
        // Host builds the descriptor and rings the doorbell…
        self.clock.borrow_mut().advance(gm.send_overhead);
        let inject = self.clock.borrow().now() + net_tx;
        // …then the NIC DMAs and drives the wire off-host.
        let payload = Bytes::copy_from_slice(&buf.data[..len]);
        let floor = self.sched_floor();
        self.nic
            .inject_floored(dst, port as u16, dst_port as u16, payload, inject, None, floor);
        let p = self.port_mut(port)?;
        p.token_returns.push(inject);
        {
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_sent += 1;
            c.stats.bytes_sent += len as u64;
        }
        Ok(inject)
    }

    /// Like [`send`](GmNode::send) but injects at virtual time `at` without
    /// charging the clock — for responses emitted from request handlers,
    /// whose host work was already accounted through the service window
    /// (possibly retroactively).
    pub fn send_at(
        &mut self,
        port: u8,
        dst: NodeId,
        dst_port: u8,
        buf: &PooledBuf,
        len: usize,
        at: Ns,
    ) -> Result<Ns, GmError> {
        assert!(len <= buf.data.len());
        self.absorb_failures(port);
        let net_tx = self.params.net.nic_tx;
        if self.params.faults.token_starved(at) {
            return Err(GmError::NoSendTokens);
        }
        let p = self.port_mut(port)?;
        if p.disabled {
            return Err(GmError::PortDisabled(port));
        }
        Self::reap_tokens(p, at);
        if p.send_tokens == 0 {
            return Err(GmError::NoSendTokens);
        }
        p.send_tokens -= 1;
        let inject = at + net_tx;
        let payload = Bytes::copy_from_slice(&buf.data[..len]);
        let floor = self.sched_floor();
        self.nic
            .inject_floored(dst, port as u16, dst_port as u16, payload, inject, None, floor);
        let p = self.port_mut(port)?;
        p.token_returns.push(inject);
        {
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_sent += 1;
            c.stats.bytes_sent += len as u64;
        }
        Ok(inject)
    }

    /// `gm_directed_send`: RDMA-write `buf[..len]` into `(region, offset)`
    /// on `dst`. Consumes no receive buffer and raises no receive event at
    /// the target.
    pub fn directed_send(
        &mut self,
        port: u8,
        dst: NodeId,
        region: RegionId,
        offset: u64,
        buf: &PooledBuf,
        len: usize,
    ) -> Result<Ns, GmError> {
        assert!(len <= buf.data.len());
        self.absorb_failures(port);
        let now = self.clock.borrow().now();
        let gm = self.params.gm.clone();
        let net_tx = self.params.net.nic_tx;
        if self.params.faults.token_starved(now) {
            return Err(GmError::NoSendTokens);
        }
        let p = self.port_mut(port)?;
        if p.disabled {
            return Err(GmError::PortDisabled(port));
        }
        Self::reap_tokens(p, now);
        if p.send_tokens == 0 {
            return Err(GmError::NoSendTokens);
        }
        p.send_tokens -= 1;
        self.clock.borrow_mut().advance(gm.send_overhead);
        let inject = self.clock.borrow().now() + net_tx;
        let payload = Bytes::copy_from_slice(&buf.data[..len]);
        let floor = self.sched_floor();
        self.nic.inject_floored(
            dst,
            port as u16,
            port as u16,
            payload,
            inject,
            Some((region, offset)),
            floor,
        );
        let p = self.port_mut(port)?;
        p.token_returns.push(inject);
        {
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_sent += 1;
            c.stats.bytes_sent += len as u64;
        }
        Ok(inject)
    }

    /// Move the failure-board flag (set by a remote receiver) into local
    /// port state.
    fn absorb_failures(&mut self, port: u8) {
        if let Some((_, _)) = self.board.take(self.node(), port) {
            if let Some(p) = self.ports[port as usize].as_mut() {
                p.disabled = true;
            }
        }
    }

    /// Was this port disabled by a send failure?
    pub fn port_disabled(&mut self, port: u8) -> bool {
        self.absorb_failures(port);
        self.ports[port as usize]
            .as_ref()
            .is_some_and(|p| p.disabled)
    }

    /// Re-enable a disabled port. Expensive: GM probes the network
    /// (§2.1: "an expensive operation requiring GM to probe the network").
    pub fn reenable_port(&mut self, port: u8) -> Result<(), GmError> {
        let cost = self.params.gm.port_reenable;
        let p = self.port_mut(port)?;
        p.disabled = false;
        self.clock.borrow_mut().advance(cost);
        Ok(())
    }

    /// Sort newly arrived packets into per-port state; apply directed
    /// sends to their target regions.
    fn sort_arrivals(&mut self) {
        // Drain every GM port's raw queue.
        for port in 1..NUM_PORTS {
            while let Some(pkt) = self.nic.poll_port(port as u16) {
                if let Some((region, offset)) = pkt.directed {
                    // RDMA write straight into the registered region.
                    if let Some(r) = self.book.region_mut(region) {
                        let off = offset as usize;
                        let end = off + pkt.payload.len();
                        assert!(
                            end <= r.data.len(),
                            "directed send overruns region {region}"
                        );
                        r.data[off..end].copy_from_slice(&pkt.payload);
                    }
                    continue;
                }
                if let Some(p) = self.ports[port as usize].as_mut() {
                    let size = gm_size(pkt.payload.len());
                    if p.recv_buffers[size as usize] > 0 {
                        p.recv_buffers[size as usize] -= 1;
                        p.ready.push_back(pkt);
                    } else {
                        p.unmatched.push_back(pkt);
                    }
                } // packets to closed ports vanish (GM drops them)
            }
        }
        // Retry unmatched packets against buffers provided since, and
        // reject those that have exceeded the sender's resend window.
        let now = self.clock.borrow().now();
        let timeout = self.params.gm.resend_timeout;
        for port in 1..NUM_PORTS as usize {
            let Some(p) = self.ports[port].as_mut() else {
                continue;
            };
            let mut still = VecDeque::new();
            while let Some(pkt) = p.unmatched.pop_front() {
                let size = gm_size(pkt.payload.len());
                if p.recv_buffers[size as usize] > 0 {
                    p.recv_buffers[size as usize] -= 1;
                    p.ready.push_back(pkt);
                } else if now.saturating_sub(pkt.arrival) > timeout {
                    // Sender's resend timer fired: the send fails and the
                    // sending port is disabled.
                    self.board
                        .post(pkt.src, pkt.src_port as u8, self.nic.node(), port as u8);
                } else {
                    still.push_back(pkt);
                }
            }
            p.unmatched = still;
        }
    }

    /// Poll one port (`gm_receive`): non-blocking; returns a message whose
    /// arrival is at or before the node's current virtual time.
    ///
    /// Under lockstep a miss is *settled* before it is reported: a packet
    /// whose virtual arrival is ≤ now may still be wall-clock in flight
    /// (its transmit granted but not yet pushed), and whether this poll
    /// sees it must not depend on thread timing. The NIC's
    /// [`poll_quiesce`](tm_myrinet::NicHandle::poll_quiesce) parks the
    /// poll as an ordered scheduler event at `now`; it either confirms
    /// nothing ≤ now is outstanding (miss, deterministically) or bounces
    /// because a delivery landed (re-examine the queues).
    pub fn receive(&mut self, port: u8) -> Result<Option<GmEvent>, GmError> {
        loop {
            // Delivery signature *before* the drain in sort_arrivals: a
            // packet granted after this sample bounces the quiesce even if
            // the drain already picked it up.
            let sig = self.nic.delivery_signature();
            self.absorb_failures(port);
            if let Some(ps) = self.ports[port as usize].as_mut() {
                if ps.disabled {
                    // Surface the failure exactly once as an event.
                    ps.disabled = true;
                }
            }
            self.sort_arrivals();
            let now = self.clock.borrow().now();
            let gm = self.params.gm.clone();
            let p = self.port_mut(port)?;
            if let Some(pkt) = p.ready.front() {
                if pkt.arrival <= now {
                    let pkt = p.ready.pop_front().expect("non-empty");
                    self.clock.borrow_mut().advance(gm.recv_poll_hit);
                    let mut c = self.clock.borrow_mut();
                    c.stats.msgs_recv += 1;
                    c.stats.bytes_recv += pkt.payload.len() as u64;
                    drop(c);
                    return Ok(Some(GmEvent::Recv {
                        src: pkt.src,
                        src_port: pkt.src_port as u8,
                        size: gm_size(pkt.payload.len()),
                        data: pkt.payload,
                        arrival: pkt.arrival,
                    }));
                }
            }
            let floor = self.sched_floor();
            if self.nic.poll_quiesce(now, sig, floor) {
                // Free-run, or lockstep with the miss settled.
                self.clock.borrow_mut().advance(gm.recv_poll_miss);
                return Ok(None);
            }
            // A delivery raced the quiesce: re-drain and look again.
        }
    }

    /// Block until a message is available on any of `ports`; advances the
    /// clock to the message's arrival (plus the poll-hit cost). Returns
    /// `(port, event)`.
    pub fn blocking_receive(&mut self, ports: &[u8]) -> (u8, GmEvent) {
        loop {
            self.absorb_failures_all(ports);
            self.sort_arrivals();
            // Earliest ready packet across the requested ports.
            let mut best: Option<(u8, Ns)> = None;
            for &port in ports {
                if let Some(p) = self.ports[port as usize].as_ref() {
                    if let Some(pkt) = p.ready.front() {
                        if best.is_none_or(|(_, a)| pkt.arrival < a) {
                            best = Some((port, pkt.arrival));
                        }
                    }
                }
            }
            if let Some((port, arrival)) = best {
                let gm_hit = self.params.gm.recv_poll_hit;
                let p = self.ports[port as usize].as_mut().expect("open");
                let pkt = p.ready.pop_front().expect("non-empty");
                {
                    let mut c = self.clock.borrow_mut();
                    c.wait_until(arrival);
                    c.advance(gm_hit);
                    c.stats.msgs_recv += 1;
                    c.stats.bytes_recv += pkt.payload.len() as u64;
                }
                return (
                    port,
                    GmEvent::Recv {
                        src: pkt.src,
                        src_port: pkt.src_port as u8,
                        size: gm_size(pkt.payload.len()),
                        data: pkt.payload,
                        arrival,
                    },
                );
            }
            // Nothing matched. If there are unmatched packets and nothing
            // else can arrive to change that, the sender's resend timer
            // is what fires next: jump the clock there so `sort_arrivals`
            // rejects them (and the failure becomes observable).
            let has_unmatched = ports.iter().any(|&port| {
                self.ports[port as usize]
                    .as_ref()
                    .is_some_and(|p| !p.unmatched.is_empty())
            });
            if has_unmatched {
                let timeout = self.params.gm.resend_timeout;
                let earliest = ports
                    .iter()
                    .filter_map(|&port| {
                        self.ports[port as usize]
                            .as_ref()
                            .and_then(|p| p.unmatched.front().map(|pkt| pkt.arrival))
                    })
                    .min()
                    .expect("has unmatched");
                self.clock.borrow_mut().wait_until(earliest + timeout + Ns(1));
                continue;
            }
            // Genuinely idle: park on the NIC channel (under lockstep,
            // on the scheduler, carrying our floor so peers' grants are
            // not blocked by a sleeping node).
            let floor = self.sched_floor();
            let pkt = self.nic.recv_any_floored(&Self::port_filter(ports), floor);
            // Push it back through the demux by re-stashing: simplest is to
            // handle it directly here.
            self.handle_parked(pkt);
        }
    }

    fn port_filter(ports: &[u8]) -> Vec<u16> {
        // We must wake for *any* GM port traffic (directed sends may target
        // other ports), so listen on all GM ports.
        let _ = ports;
        (1..NUM_PORTS as u16).collect()
    }

    fn handle_parked(&mut self, pkt: RawPacket) {
        let port = pkt.dst_port as usize;
        if let Some((region, offset)) = pkt.directed {
            if let Some(r) = self.book.region_mut(region) {
                let off = offset as usize;
                let end = off + pkt.payload.len();
                assert!(end <= r.data.len(), "directed send overruns region");
                r.data[off..end].copy_from_slice(&pkt.payload);
            }
            return;
        }
        if let Some(p) = self.ports[port].as_mut() {
            let size = gm_size(pkt.payload.len());
            if p.recv_buffers[size as usize] > 0 {
                p.recv_buffers[size as usize] -= 1;
                p.ready.push_back(pkt);
            } else {
                p.unmatched.push_back(pkt);
            }
        }
    }

    fn absorb_failures_all(&mut self, ports: &[u8]) {
        for &p in ports {
            self.absorb_failures(p);
        }
    }

    /// Read bytes out of a registered region (completion of a rendezvous
    /// directed transfer).
    pub fn region_bytes(&self, region: RegionId) -> Option<&[u8]> {
        self.book.region(region).map(|r| r.data.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_sim::clock::shared_clock;

    fn two_nodes() -> (GmNode, GmNode) {
        let params = Arc::new(SimParams::paper_testbed());
        let (_fabric, board, mut nics) = gm_cluster(2, Arc::clone(&params));
        let n1 = nics.pop().unwrap();
        let n0 = nics.pop().unwrap();
        let a = GmNode::new(n0, shared_clock(), Arc::clone(&params), Arc::clone(&board), 64 << 20);
        let b = GmNode::new(n1, shared_clock(), params, board, 64 << 20);
        (a, b)
    }

    fn pooled(node: &mut GmNode, data: &[u8]) -> PooledBuf {
        let mut pool = crate::memory::DmaPool::new(&mut node.book, 4, data.len().max(64)).unwrap();
        pool.take(data).unwrap()
    }

    #[test]
    fn port_rules() {
        let (mut a, _b) = two_nodes();
        assert_eq!(a.open_port(0, false), Err(GmError::MapperReserved));
        assert_eq!(a.open_port(9, false), Err(GmError::BadPort(9)));
        assert_eq!(a.open_port(2, false), Ok(()));
        assert_eq!(a.open_port(2, false), Err(GmError::PortInUse(2)));
    }

    #[test]
    fn send_and_blocking_receive() {
        let (mut a, mut b) = two_nodes();
        a.open_port(2, false).unwrap();
        b.open_port(3, false).unwrap();
        b.provide_receive_buffer(3, gm_size(5)).unwrap();
        let buf = pooled(&mut a, b"hello");
        a.send(2, 1, 3, &buf, 5).unwrap();
        let (port, ev) = b.blocking_receive(&[3]);
        assert_eq!(port, 3);
        match ev {
            GmEvent::Recv { src, data, .. } => {
                assert_eq!(src, 0);
                assert_eq!(&data[..], b"hello");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The receiver's clock advanced to at least the arrival.
        assert!(b.clock().borrow().now() > Ns::from_us(5));
    }

    #[test]
    fn receive_poll_respects_virtual_time() {
        let (mut a, mut b) = two_nodes();
        a.open_port(2, false).unwrap();
        b.open_port(3, false).unwrap();
        b.provide_receive_buffer(3, gm_size(5)).unwrap();
        let buf = pooled(&mut a, b"hello");
        a.send(2, 1, 3, &buf, 5).unwrap();
        // b's clock is still ~0: the packet hasn't "arrived" in virtual
        // time, so a poll misses…
        assert!(b.receive(3).unwrap().is_none());
        // …until b's clock catches up.
        b.clock().borrow_mut().advance(Ns::from_us(50));
        assert!(b.receive(3).unwrap().is_some());
    }

    #[test]
    fn message_without_buffer_eventually_fails_sender() {
        let (mut a, mut b) = two_nodes();
        a.open_port(2, false).unwrap();
        b.open_port(3, false).unwrap();
        // No buffer provided on b.
        let buf = pooled(&mut a, b"orphan");
        a.send(2, 1, 3, &buf, 6).unwrap();
        // b polls well past the resend window.
        b.clock()
            .borrow_mut()
            .advance(Ns::from_secs(4));
        assert!(b.receive(3).unwrap().is_none());
        // a's port is now disabled.
        assert!(a.port_disabled(2));
        let err = a.send(2, 1, 3, &buf, 6).unwrap_err();
        assert_eq!(err, GmError::PortDisabled(2));
        // Re-enabling costs dearly but restores service.
        let before = a.clock().borrow().now();
        a.reenable_port(2).unwrap();
        assert!(a.clock().borrow().now() - before >= Ns::from_ms(50));
        b.provide_receive_buffer(3, gm_size(6)).unwrap();
        assert!(a.send(2, 1, 3, &buf, 6).is_ok());
    }

    #[test]
    fn late_buffer_rescues_waiting_message() {
        let (mut a, mut b) = two_nodes();
        a.open_port(2, false).unwrap();
        b.open_port(3, false).unwrap();
        let buf = pooled(&mut a, b"wait");
        a.send(2, 1, 3, &buf, 4).unwrap();
        b.clock().borrow_mut().advance(Ns::from_us(100));
        assert!(b.receive(3).unwrap().is_none()); // unmatched, parked
        b.provide_receive_buffer(3, gm_size(4)).unwrap();
        let ev = b.receive(3).unwrap();
        assert!(matches!(ev, Some(GmEvent::Recv { .. })));
        assert!(!a.port_disabled(2));
    }

    #[test]
    fn send_tokens_run_out_and_come_back() {
        let (mut a, mut b) = two_nodes();
        a.open_port(2, false).unwrap();
        b.open_port(3, false).unwrap();
        let tokens = a.params().gm.send_tokens;
        for _ in 0..tokens + 4 {
            b.provide_receive_buffer(3, gm_size(1)).unwrap();
        }
        let buf = pooled(&mut a, b"x");
        // Tokens return at inject time, and each send advances the clock by
        // send_overhead, so rapid-fire sends eventually hit the ceiling
        // only if injection lags. Force lag by zeroing time movement:
        // issue sends without letting the clock pass inject times.
        let mut sent = 0;
        loop {
            match a.send(2, 1, 3, &buf, 1) {
                Ok(_) => sent += 1,
                Err(GmError::NoSendTokens) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
            if sent > tokens * 2 {
                // Tokens recycled fast enough that we never block: also a
                // valid outcome given send_overhead < nic_tx; stop.
                break;
            }
        }
        assert!(sent >= tokens.min(8));
    }

    #[test]
    fn directed_send_writes_remote_region() {
        let (mut a, mut b) = two_nodes();
        a.open_port(2, false).unwrap();
        b.open_port(2, false).unwrap();
        let region = b.book.register(4096).unwrap();
        let buf = pooled(&mut a, b"rdma-payload");
        a.directed_send(2, 1, region, 100, &buf, 12).unwrap();
        // The write is applied when b next touches its NIC.
        b.clock().borrow_mut().advance(Ns::from_us(100));
        let _ = b.receive(2).unwrap();
        assert_eq!(&b.region_bytes(region).unwrap()[100..112], b"rdma-payload");
    }

    #[test]
    fn interrupt_flag_is_per_port() {
        let (mut a, _) = two_nodes();
        a.open_port(1, true).unwrap();
        a.open_port(2, false).unwrap();
        assert!(a.port_interrupts(1));
        assert!(!a.port_interrupts(2));
    }

    #[test]
    fn closed_port_errors() {
        let (mut a, _) = two_nodes();
        let buf = pooled(&mut a, b"x");
        assert_eq!(a.send(5, 1, 3, &buf, 1), Err(GmError::PortClosed(5)));
        assert!(matches!(a.receive(5), Err(GmError::PortClosed(5))));
    }
}
