//! GM message size classes.
//!
//! The paper (§2.1): *"GM uses the concept of size to decide the buffer
//! into which a message of length l may be received where size is the
//! smallest integer [greater than] or equal to log2(l+1)."* A buffer of
//! size class `s` therefore holds messages up to `2^s − 1` bytes; size 4
//! covers the 8-byte asynchronous requests TreadMarks mostly sends, and
//! size 15 covers the 32 KB maximum TreadMarks message.

/// Largest size class TreadMarks provisioning ever needs (32 KB − 1).
pub const MAX_SIZE_CLASS: u8 = 15;

/// Smallest size class the paper's substrate preposts (8-byte requests).
pub const MIN_SIZE_CLASS: u8 = 4;

/// The size class for a message of `len` bytes: smallest `s` with
/// `len <= 2^s - 1`, i.e. `ceil(log2(len + 1))`.
pub fn gm_size(len: usize) -> u8 {
    // bits needed to represent `len` = 64 - leading_zeros; len=0 -> 0.
    (usize::BITS - len.leading_zeros()) as u8
}

/// Maximum message length receivable into a buffer of size class `s`.
pub fn gm_max_length(s: u8) -> usize {
    if s as u32 >= usize::BITS {
        usize::MAX
    } else {
        (1usize << s) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(gm_size(0), 0);
        assert_eq!(gm_size(1), 1);
        assert_eq!(gm_size(7), 3);
        assert_eq!(gm_size(8), 4); // 8-byte request -> size 4, as in §2.2.2
        assert_eq!(gm_size(15), 4);
        assert_eq!(gm_size(16), 5);
        assert_eq!(gm_size(4096), 13); // a page needs size 13
        assert_eq!(gm_size(32 * 1024 - 1), 15); // TreadMarks max message
        assert_eq!(gm_size(32 * 1024), 16);
    }

    #[test]
    fn max_lengths() {
        assert_eq!(gm_max_length(4), 15);
        assert_eq!(gm_max_length(13), 8191);
        assert_eq!(gm_max_length(15), 32 * 1024 - 1);
    }

    proptest! {
        /// gm_size(l) is the *smallest* class whose buffer fits l bytes.
        #[test]
        fn size_is_minimal_and_sufficient(len in 0usize..1_000_000) {
            let s = gm_size(len);
            prop_assert!(len <= gm_max_length(s));
            if s > 0 {
                prop_assert!(len > gm_max_length(s - 1));
            }
        }

        /// Size classes are monotone in message length.
        #[test]
        fn size_is_monotone(a in 0usize..500_000, b in 0usize..500_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(gm_size(lo) <= gm_size(hi));
        }
    }
}
