//! Per-node event counters, used by the experiment harness to report the
//! message/fault/diff breakdowns the paper discusses qualitatively.

use crate::time::Ns;

/// Counters accumulated by one simulated node over a run.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Messages injected into the fabric.
    pub msgs_sent: u64,
    /// Payload bytes injected.
    pub bytes_sent: u64,
    /// Messages consumed.
    pub msgs_recv: u64,
    /// Payload bytes consumed.
    pub bytes_recv: u64,
    /// Asynchronous requests this node serviced for peers.
    pub requests_served: u64,
    /// Virtual time spent inside request handlers.
    pub service_time: Ns,
    /// Virtual time spent in application computation.
    pub compute_time: Ns,
    /// Virtual time spent blocked (waiting on responses, locks, barriers).
    pub idle_time: Ns,
    /// DSM: page faults taken (read + write).
    pub page_faults: u64,
    /// DSM: full pages fetched from a remote node.
    pub pages_fetched: u64,
    /// DSM: diffs created.
    pub diffs_created: u64,
    /// DSM: diffs applied.
    pub diffs_applied: u64,
    /// DSM: twins created (first write to a page in an interval).
    pub twins_created: u64,
    /// Lock acquires that went remote.
    pub remote_acquires: u64,
    /// Barrier episodes participated in.
    pub barriers: u64,
    // --- fault & reliability counters ---------------------------------
    /// Datagrams lost in flight (injected drops + legacy drop_probability).
    pub dgrams_dropped: u64,
    /// Datagrams delivered twice by the fault plan.
    pub dgrams_duplicated: u64,
    /// Datagrams delayed past later traffic by the fault plan.
    pub dgrams_reordered: u64,
    /// Datagrams/frames whose payload was corrupted in flight.
    pub dgrams_corrupted: u64,
    /// DSM-level request retransmissions (timeout or observed loss).
    pub retransmits: u64,
    /// Duplicate requests absorbed by the responder's replay cache.
    pub dup_requests_suppressed: u64,
    /// Stale/duplicate responses discarded by the requester.
    pub stale_responses_dropped: u64,
    /// Frames rejected by the wire checksum (corruption detected).
    pub crc_rejected: u64,
    /// Frames/datagrams discarded as structurally malformed.
    pub malformed_dropped: u64,
    /// GM send attempts that hit `NoSendTokens` and had to back off.
    pub token_stalls: u64,
}

impl NodeStats {
    /// Fold another node's counters into this one (cluster aggregation).
    pub fn merge(&mut self, other: &NodeStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
        self.requests_served += other.requests_served;
        self.service_time += other.service_time;
        self.compute_time += other.compute_time;
        self.idle_time += other.idle_time;
        self.page_faults += other.page_faults;
        self.pages_fetched += other.pages_fetched;
        self.diffs_created += other.diffs_created;
        self.diffs_applied += other.diffs_applied;
        self.twins_created += other.twins_created;
        self.remote_acquires += other.remote_acquires;
        self.barriers += other.barriers;
        self.dgrams_dropped += other.dgrams_dropped;
        self.dgrams_duplicated += other.dgrams_duplicated;
        self.dgrams_reordered += other.dgrams_reordered;
        self.dgrams_corrupted += other.dgrams_corrupted;
        self.retransmits += other.retransmits;
        self.dup_requests_suppressed += other.dup_requests_suppressed;
        self.stale_responses_dropped += other.stale_responses_dropped;
        self.crc_rejected += other.crc_rejected;
        self.malformed_dropped += other.malformed_dropped;
        self.token_stalls += other.token_stalls;
    }

    /// Any fault/reliability event at all? Lets reports stay silent (and
    /// byte-identical to pre-fault output) on clean runs.
    pub fn any_faults(&self) -> bool {
        self.dgrams_dropped
            + self.dgrams_duplicated
            + self.dgrams_reordered
            + self.dgrams_corrupted
            + self.retransmits
            + self.dup_requests_suppressed
            + self.stale_responses_dropped
            + self.crc_rejected
            + self.malformed_dropped
            + self.token_stalls
            > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_all_fields() {
        let mut a = NodeStats {
            msgs_sent: 1,
            bytes_sent: 10,
            msgs_recv: 2,
            bytes_recv: 20,
            requests_served: 3,
            service_time: Ns(30),
            compute_time: Ns(40),
            idle_time: Ns(50),
            page_faults: 4,
            pages_fetched: 5,
            diffs_created: 6,
            diffs_applied: 7,
            twins_created: 8,
            remote_acquires: 9,
            barriers: 10,
            dgrams_dropped: 11,
            dgrams_duplicated: 12,
            dgrams_reordered: 13,
            dgrams_corrupted: 14,
            retransmits: 15,
            dup_requests_suppressed: 16,
            stale_responses_dropped: 17,
            crc_rejected: 18,
            malformed_dropped: 19,
            token_stalls: 20,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.msgs_sent, 2);
        assert_eq!(a.bytes_recv, 40);
        assert_eq!(a.service_time, Ns(60));
        assert_eq!(a.barriers, 20);
        assert_eq!(a.twins_created, 16);
        assert_eq!(a.dgrams_dropped, 22);
        assert_eq!(a.retransmits, 30);
        assert_eq!(a.dup_requests_suppressed, 32);
        assert_eq!(a.crc_rejected, 36);
        assert_eq!(a.token_stalls, 40);
    }

    #[test]
    fn any_faults_spots_each_counter() {
        assert!(!NodeStats::default().any_faults());
        let s = NodeStats {
            retransmits: 1,
            ..NodeStats::default()
        };
        assert!(s.any_faults());
        let s = NodeStats {
            token_stalls: 1,
            ..NodeStats::default()
        };
        assert!(s.any_faults());
    }

    #[test]
    fn default_is_zero() {
        let s = NodeStats::default();
        assert_eq!(s.msgs_sent, 0);
        assert_eq!(s.compute_time, Ns::ZERO);
    }
}
