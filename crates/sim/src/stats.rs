//! Per-node event counters, used by the experiment harness to report the
//! message/fault/diff breakdowns the paper discusses qualitatively.

use crate::time::Ns;

/// Counters accumulated by one simulated node over a run.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Messages injected into the fabric.
    pub msgs_sent: u64,
    /// Payload bytes injected.
    pub bytes_sent: u64,
    /// Messages consumed.
    pub msgs_recv: u64,
    /// Payload bytes consumed.
    pub bytes_recv: u64,
    /// Asynchronous requests this node serviced for peers.
    pub requests_served: u64,
    /// Virtual time spent inside request handlers.
    pub service_time: Ns,
    /// Virtual time spent in application computation.
    pub compute_time: Ns,
    /// Virtual time spent blocked (waiting on responses, locks, barriers).
    pub idle_time: Ns,
    /// DSM: page faults taken (read + write).
    pub page_faults: u64,
    /// DSM: full pages fetched from a remote node.
    pub pages_fetched: u64,
    /// DSM: diffs created.
    pub diffs_created: u64,
    /// DSM: diffs applied.
    pub diffs_applied: u64,
    /// DSM: twins created (first write to a page in an interval).
    pub twins_created: u64,
    /// Lock acquires that went remote.
    pub remote_acquires: u64,
    /// Barrier episodes participated in.
    pub barriers: u64,
}

impl NodeStats {
    /// Fold another node's counters into this one (cluster aggregation).
    pub fn merge(&mut self, other: &NodeStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
        self.requests_served += other.requests_served;
        self.service_time += other.service_time;
        self.compute_time += other.compute_time;
        self.idle_time += other.idle_time;
        self.page_faults += other.page_faults;
        self.pages_fetched += other.pages_fetched;
        self.diffs_created += other.diffs_created;
        self.diffs_applied += other.diffs_applied;
        self.twins_created += other.twins_created;
        self.remote_acquires += other.remote_acquires;
        self.barriers += other.barriers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_all_fields() {
        let mut a = NodeStats {
            msgs_sent: 1,
            bytes_sent: 10,
            msgs_recv: 2,
            bytes_recv: 20,
            requests_served: 3,
            service_time: Ns(30),
            compute_time: Ns(40),
            idle_time: Ns(50),
            page_faults: 4,
            pages_fetched: 5,
            diffs_created: 6,
            diffs_applied: 7,
            twins_created: 8,
            remote_acquires: 9,
            barriers: 10,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.msgs_sent, 2);
        assert_eq!(a.bytes_recv, 40);
        assert_eq!(a.service_time, Ns(60));
        assert_eq!(a.barriers, 20);
        assert_eq!(a.twins_created, 16);
    }

    #[test]
    fn default_is_zero() {
        let s = NodeStats::default();
        assert_eq!(s.msgs_sent, 0);
        assert_eq!(s.compute_time, Ns::ZERO);
    }
}
