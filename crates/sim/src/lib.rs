//! # tm-sim — virtual-time simulation engine
//!
//! The paper's evaluation ran on a 16-node Pentium-III / Myrinet-2000
//! cluster. That hardware does not exist here, so the entire reproduction
//! runs on a *virtual-time* substrate: every simulated node is a real OS
//! thread executing the real DSM protocol code, but time is a per-node
//! logical clock advanced by modeled costs instead of wall time.
//!
//! The pieces:
//!
//! * [`Ns`] — the time unit (nanoseconds, `u64`).
//! * [`NodeClock`] — a per-node clock supporting *retroactive preemption*,
//!   which is how we model interrupt-driven servicing of asynchronous
//!   requests that arrive while a node is computing (the central design
//!   point of the paper, §2.2.4).
//! * [`params`] — the calibrated cost model (Myrinet wire model, GM host
//!   overheads, UDP kernel-stack costs, DSM memory-management costs).
//! * [`stats`] — per-node event counters used by the experiment harness.
//! * [`runner`] — spawns one thread per node and joins results.
//!
//! Nothing in this crate knows about GM, UDP, or TreadMarks; it is the
//! substrate everything else is built on.

pub mod clock;
pub mod faults;
pub mod params;
pub mod runner;
pub mod sched;
pub mod stats;
pub mod time;

pub use clock::{AsyncScheme, NodeClock, SharedClock};
pub use faults::FaultPlan;
pub use params::SimParams;
pub use runner::{run_cluster, NodeEnv};
pub use sched::{LockstepSched, SchedMode, TokenMode, WakeReason};
pub use stats::NodeStats;
pub use time::Ns;
