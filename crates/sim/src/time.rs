//! Virtual time: a `u64` count of simulated nanoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant in simulated nanoseconds.
///
/// Instants are measured from cluster start (all node clocks begin at 0).
/// The same type doubles as a duration; the arithmetic is saturating on
/// subtraction so protocol code never panics on slightly out-of-order
/// timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ns(pub u64);

impl Ns {
    pub const ZERO: Ns = Ns(0);

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Ns {
        Ns(us * 1_000)
    }

    /// Construct from fractional microseconds (e.g. calibration constants).
    pub fn from_us_f64(us: f64) -> Ns {
        Ns((us * 1_000.0).round() as u64)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Ns {
        Ns(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Ns {
        Ns(s * 1_000_000_000)
    }

    /// Value in fractional microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Time to move `bytes` at `mb_per_s` megabytes per second
    /// (1 MB = 1e6 bytes, the networking convention the paper uses).
    pub fn for_bytes(bytes: usize, mb_per_s: f64) -> Ns {
        debug_assert!(mb_per_s > 0.0);
        Ns(((bytes as f64) * 1_000.0 / mb_per_s).round() as u64)
    }

    pub fn max(self, other: Ns) -> Ns {
        Ns(self.0.max(other.0))
    }

    pub fn min(self, other: Ns) -> Ns {
        Ns(self.0.min(other.0))
    }

    /// Saturating subtraction as a duration.
    pub fn saturating_sub(self, other: Ns) -> Ns {
        Ns(self.0.saturating_sub(other.0))
    }
}

impl Add for Ns {
    type Output = Ns;
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Ns {
    fn sub_assign(&mut self, rhs: Ns) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<u64> for Ns {
    type Output = Ns;
    fn div(self, rhs: u64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        Ns(iter.map(|n| n.0).sum())
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}us", self.as_us())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Ns::from_us(5).0, 5_000);
        assert_eq!(Ns::from_ms(2).0, 2_000_000);
        assert_eq!(Ns::from_secs(3).0, 3_000_000_000);
        assert!((Ns::from_us(7).as_us() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_us() {
        assert_eq!(Ns::from_us_f64(1.5).0, 1_500);
        assert_eq!(Ns::from_us_f64(0.3).0, 300);
    }

    #[test]
    fn bytes_at_bandwidth() {
        // 250 MB/s => 4 ns per byte.
        assert_eq!(Ns::for_bytes(1, 250.0).0, 4);
        assert_eq!(Ns::for_bytes(1_000_000, 250.0).0, 4_000_000);
        // 1 byte at 400 MB/s = 2.5ns, rounds to 3 (round-half-up on .5).
        assert_eq!(Ns::for_bytes(1, 400.0).0, 3);
    }

    #[test]
    fn saturating_subtraction() {
        assert_eq!(Ns(5) - Ns(10), Ns(0));
        assert_eq!(Ns(10) - Ns(4), Ns(6));
        let mut t = Ns(3);
        t -= Ns(5);
        assert_eq!(t, Ns(0));
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(Ns(1) < Ns(2));
        assert_eq!(Ns(1).max(Ns(2)), Ns(2));
        assert_eq!(Ns(1).min(Ns(2)), Ns(1));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Ns(500)), "500ns");
        assert_eq!(format!("{}", Ns::from_us(12)), "12.00us");
        assert_eq!(format!("{}", Ns::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", Ns::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_iterates() {
        let total: Ns = [Ns(1), Ns(2), Ns(3)].into_iter().sum();
        assert_eq!(total, Ns(6));
    }
}
