//! Conservative lockstep scheduler: byte-reproducible virtual-time runs.
//!
//! # Why
//!
//! Every number this simulator reports is virtual-time arithmetic, yet a
//! free-running cluster is not reproducible: when several node threads
//! transmit to the same destination "at once", the *wall-clock* order in
//! which they win the fabric's link-reservation CAS decides the virtual
//! queueing order on the shared rx link. Barrier storms (N arrivals
//! converging on the manager) therefore jitter run to run.
//!
//! # How
//!
//! [`LockstepSched`] is a conservative parallel-discrete-event scheduler
//! in the Chandy–Misra tradition. Every *fabric action* — a wire
//! transmission, or the expiry of a virtual receive deadline — becomes an
//! **event** with a totally ordered key `(virtual time, node id, seq)`.
//! Link reservations are split into a two-phase *request/grant*: a node
//! asking to transmit parks in [`LockstepSched::request_transmit`] until
//! the scheduler grants its key; a transmit announces its destination at
//! phase one, and grants to *distinct* rx links may be issued
//! concurrently (see [`TokenMode`]).
//!
//! The safety rule is the conservative horizon. Each node carries a
//! **floor**: a lower bound on the key of any event it could still
//! produce. Floors come from the node's own clock (its preemptible-window
//! start) plus a per-substrate **lookahead** — the minimum modeled cost
//! between resuming execution and the next packet reaching the wire (GM:
//! NIC DMA-descriptor setup plus the `gm_send` host overhead; UDP: the
//! syscall + protocol-stack floor; both: the NIC tx engine). A pending
//! event is dispatched only when every node that is still *running* (not
//! parked, not pending, not finished) has a floor strictly above its key
//! — i.e. no straggler can still create an earlier event — plus the
//! per-link and hazard rules below. Ties never happen: keys are unique by
//! `(node, seq)`.
//!
//! # Per-receiver tokens
//!
//! The original scheduler held one cluster-wide reservation token: at
//! most one transmit was inside the fabric between its grant and its
//! `finish_transmit`. That serializes *all* transmits, even though two
//! grants only truly conflict when they race for the same receiver's rx
//! link. [`TokenMode::PerReceiver`] (the default) instead keeps one token
//! per rx link and grants a transmit when:
//!
//! 1. **Horizon** — every running node's floor is strictly above the
//!    transmit's inject time (unchanged).
//! 2. **Per-link order** — its rx link's token is free (no in-flight
//!    transmit to the same destination) and its key is the minimum among
//!    pending transmits to that destination. Each inbox therefore
//!    receives packets in global key order, exactly as under the single
//!    token.
//! 3. **Pairwise hazards** — for every earlier-keyed pending event and
//!    every in-flight transmit, the *consequences* of either event (the
//!    sender's post-transmit floor, and the wake of its — possibly
//!    parked, floor-zero — receiver) must not be able to inject below the
//!    other's key. Without this, a granted event's wake chain could
//!    produce a smaller-keyed transmit onto a link whose order was
//!    already committed.
//!
//! Reproducibility is preserved because each rx link's reservation
//! sequence — and therefore each inbox's arrival sequence — is the same
//! one the serial schedule produces: per-link tokens serialize same-link
//! reservations in key order, tx links are only ever touched by their
//! owner's thread, and the hazard rule guarantees no not-yet-visible
//! event can undercut a committed grant on any link it could reach. A
//! node's inputs (its inbox sequence and deadline expiries) are thus a
//! pure function of the program, and by the same induction as before so
//! is every virtual timestamp, counter and memory image — only the
//! wall-clock overlap of disjoint-link grants changes.
//!
//! Blocking receives park through the scheduler too
//! ([`LockstepSched::park`]): a parked node's next event is unknowable
//! until a packet is delivered to it (floor = +∞), or bounded by its
//! virtual deadline for timeout waits (the DSM retransmission timer), in
//! which case the deadline is an event like any other and the wall-clock
//! hang guard of the free-running path is never consulted.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};

use crate::time::Ns;

/// How the cluster's node threads are interleaved.
///
/// * `FreeRun` — node threads run unsynchronized; link reservations
///   arbitrate by compare-and-swap in wall-clock order. Fast, and
///   deterministic only for workloads whose message order is fully
///   serialized by data dependencies.
/// * `Lockstep` — all fabric actions are sequenced by [`LockstepSched`]
///   in virtual-key order; runs are byte-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Free-running threads, wall-clock CAS arbitration (the fast default).
    #[default]
    FreeRun,
    /// Conservative lockstep: deterministic, byte-reproducible runs.
    Lockstep,
}

impl SchedMode {
    /// Parse from an environment-style string: `lockstep` (any case)
    /// selects [`SchedMode::Lockstep`]; `freerun`, `free` or the empty
    /// string select [`SchedMode::FreeRun`].
    pub fn parse(s: &str) -> Option<SchedMode> {
        match s.to_ascii_lowercase().as_str() {
            "" | "free" | "freerun" => Some(SchedMode::FreeRun),
            "lockstep" => Some(SchedMode::Lockstep),
            _ => None,
        }
    }
}

/// Granularity of the lockstep scheduler's reservation tokens.
///
/// * `Single` — one cluster-wide token: at most one transmit is inside
///   the fabric at a time. The original (PR 6) regime; kept as the
///   baseline for equivalence tests and overhead measurements.
/// * `PerReceiver` — one token per rx link: transmits to distinct
///   receivers proceed concurrently, subject to the hazard rules in the
///   module docs. Produces the byte-identical schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TokenMode {
    /// One cluster-wide reservation token (fully serial grants).
    Single,
    /// One reservation token per receiver link (concurrent disjoint grants).
    #[default]
    PerReceiver,
}

impl TokenMode {
    /// Parse from an environment-style string: `single` selects
    /// [`TokenMode::Single`]; `per-receiver`, `per_receiver` or the
    /// empty string select [`TokenMode::PerReceiver`].
    pub fn parse(s: &str) -> Option<TokenMode> {
        match s.to_ascii_lowercase().as_str() {
            "single" => Some(TokenMode::Single),
            "" | "per-receiver" | "per_receiver" | "perreceiver" => Some(TokenMode::PerReceiver),
            _ => None,
        }
    }
}

/// Why a parked node was released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// A packet was delivered to the node's inbox (or had already been
    /// delivered when the park was attempted — re-drain and re-check).
    Delivered,
    /// The park's virtual deadline became the cluster's next event.
    Timeout,
    /// Every node in the park's done-watch set has deregistered its NIC
    /// ([`LockstepSched::mark_done`]); reported by
    /// [`LockstepSched::park_done_watch`] and
    /// [`LockstepSched::park_deadline_done_watch`].
    PeersDone,
}

/// A totally ordered event key: virtual time, then node id, then the
/// node's own event sequence number. Unique by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    t: Ns,
    node: usize,
    seq: u64,
}

#[derive(Debug)]
enum St {
    /// Executing between fabric actions. `floor` bounds from below the
    /// virtual time of any event this node can still produce.
    Running { floor: Ns },
    /// Blocked in `request_transmit`, waiting for its key to be granted.
    /// `dst` is the announced receiver — the rx link the grant reserves.
    Pending { key: Key, floor_after: Ns, dst: usize },
    /// Blocked in `park`: waiting for a delivery, and — if `deadline` is
    /// set — for at most that much virtual time. `watch` additionally
    /// releases the park once every listed node is `Done` — NIC
    /// deregistration as a scheduler event.
    Parked {
        deadline: Option<Key>,
        floor: Ns,
        watch: Option<Vec<usize>>,
    },
    /// The node's NIC has left the fabric; it produces no more events.
    Done,
}

#[derive(Debug)]
struct NodeSt {
    st: St,
    /// Per-node event sequence for key uniqueness.
    seq: u64,
    /// Declared substrate lookahead (see module docs). Zero until a
    /// substrate claims better; zero is always safe, only slower.
    lookahead: Ns,
    /// Count of packets ever delivered to this node's inbox. Parking
    /// passes the last value it observed before draining; a mismatch
    /// means a delivery raced the park and the node must re-drain instead
    /// of sleeping (the classic eventcount handshake).
    deliveries: u64,
}

/// A granted transmit that has not yet called `finish_transmit`: it holds
/// its destination's rx-link token. Its sender is `Running{floor_after}`
/// (covered by the horizon rule); its receiver-side consequence — the
/// wake of `dst` — is bounded by `dst`'s wake floor in the hazard rule.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    key: Key,
    src: usize,
    dst: usize,
}

struct State {
    nodes: Vec<NodeSt>,
    /// Transmits between grant and `finish_transmit`, one per held
    /// rx-link token. Under [`TokenMode::Single`] at most one entry;
    /// under [`TokenMode::PerReceiver`] at most one per distinct `dst`.
    /// Tracking `src` lets `mark_done` release a token held by a node
    /// that unwinds mid-transmit.
    in_flight: Vec<InFlight>,
    tokens: TokenMode,
    /// High-water mark of `in_flight.len()` — the gauge tests use to
    /// prove concurrent grants actually happened.
    max_grants: usize,
}

/// The conservative lockstep scheduler for one cluster fabric. Shared
/// (`Arc`) by every node thread; all methods are called from node
/// threads (the scheduler has no thread of its own).
///
/// One condvar per node, not one shared: a grant releases exactly one
/// thread, and waking the whole cluster to have everyone re-check and
/// re-sleep is a futex storm that dominates the scheduler's wall-clock
/// overhead on poll-heavy workloads.
///
/// Release signals travel through `sigs`, one atomic per node, set
/// (while the state lock is held) by whichever thread decides the
/// release and consumed by the single blocked owner. Keeping the signal
/// outside the mutex lets waiters *spin briefly before sleeping*
/// (`await_signal`): the typical grant handoff — the
/// dispatching thread marks a transmit granted, the granted thread
/// resumes, reserves its links, and finishes — is far shorter than a
/// futex round trip, and under [`TokenMode::Single`] that wake latency
/// sits on the fully serialized critical path of *every* transmit in
/// the cluster.
pub struct LockstepSched {
    state: Mutex<State>,
    /// Per-node sleep slots, each with its own mutex: a waiter must never
    /// sleep holding (or contending for) the state lock — with a hundred
    /// parked nodes that one lock becomes the whole cluster's convoy.
    waiters: Vec<WaitSlot>,
    /// Per-node release signal: `SIG_NONE` or an encoded [`WakeReason`].
    sigs: Vec<AtomicU8>,
    /// Busy-wait iterations before yielding in [`LockstepSched::await_signal`].
    /// Zero on a single-CPU host: spinning there steals the only core from
    /// the thread that would post the signal.
    spins: u32,
    /// `yield_now` rounds before the condvar sleep. Sized to the cluster:
    /// small clusters have short waits where a yield beats a futex round
    /// trip; at 100+ threads every yield walks a long run queue, so
    /// sleeping promptly is cheaper for everyone.
    yields: u32,
}

/// One node's private sleep slot (see [`LockstepSched::await_signal`]).
struct WaitSlot {
    m: Mutex<()>,
    cv: Condvar,
}

/// No release pending.
const SIG_NONE: u8 = 0;

fn sig_encode(r: WakeReason) -> u8 {
    match r {
        WakeReason::Delivered => 1,
        WakeReason::Timeout => 2,
        WakeReason::PeersDone => 3,
    }
}

fn sig_decode(v: u8) -> Option<WakeReason> {
    match v {
        SIG_NONE => None,
        1 => Some(WakeReason::Delivered),
        2 => Some(WakeReason::Timeout),
        3 => Some(WakeReason::PeersDone),
        _ => unreachable!("corrupt release signal {v}"),
    }
}

impl LockstepSched {
    /// A scheduler for `n` nodes with the default per-receiver tokens,
    /// all initially running with floor 0 (no event can be granted until
    /// every node has committed to its first fabric action — the
    /// conservative cold start).
    pub fn new(n: usize) -> LockstepSched {
        LockstepSched::new_with_tokens(n, TokenMode::default())
    }

    /// A scheduler for `n` nodes with an explicit [`TokenMode`].
    pub fn new_with_tokens(n: usize, tokens: TokenMode) -> LockstepSched {
        let nodes = (0..n)
            .map(|_| NodeSt {
                st: St::Running { floor: Ns::ZERO },
                seq: 0,
                lookahead: Ns::ZERO,
                deliveries: 0,
            })
            .collect();
        LockstepSched {
            state: Mutex::new(State {
                nodes,
                in_flight: Vec::new(),
                tokens,
                max_grants: 0,
            }),
            waiters: (0..n)
                .map(|_| WaitSlot {
                    m: Mutex::new(()),
                    cv: Condvar::new(),
                })
                .collect(),
            sigs: (0..n).map(|_| AtomicU8::new(SIG_NONE)).collect(),
            spins: match std::thread::available_parallelism() {
                Ok(p) if p.get() > 1 => 200,
                _ => 0,
            },
            yields: if n <= 32 { 8 } else { 2 },
        }
    }

    /// Post `node`'s release signal. Must be called with the state lock
    /// held: the lock serializes signal production with the node's state
    /// transition, and a node has at most one release per blocked episode
    /// (its state leaves `Pending`/`Parked` in the same critical section
    /// that posts the signal, so no second producer can fire). Taking the
    /// slot mutex around the notify closes the lost-wakeup window against
    /// a waiter that checked `sigs` just before the store and is about to
    /// sleep (lock order is always state -> slot, never the reverse).
    fn signal(&self, node: usize, reason: WakeReason) {
        self.sigs[node].store(sig_encode(reason), Ordering::Release);
        let slot = &self.waiters[node];
        drop(slot.m.lock().unwrap());
        slot.cv.notify_one();
    }

    /// Consume `node`'s release signal, if posted. Only ever called by
    /// the node's own (single) blocked thread.
    fn take_sig(&self, node: usize) -> Option<WakeReason> {
        sig_decode(self.sigs[node].swap(SIG_NONE, Ordering::Acquire))
    }

    /// Block `node`'s thread until its release signal is posted:
    /// spin briefly when a second CPU could be posting it concurrently
    /// (the grant handoff is usually much shorter than a futex round
    /// trip), politely yield a few times (on a single CPU this hands the
    /// core straight to the would-be signaler), then sleep on the node's
    /// *private* condvar — never on the state lock, which the signaler
    /// and every other node need. The wait mechanics are invisible to
    /// the virtual schedule — release decisions are made entirely from
    /// virtual state under the state lock — so this is pure wall-clock
    /// tuning.
    fn await_signal(&self, node: usize) -> WakeReason {
        for _ in 0..self.spins {
            if let Some(r) = self.take_sig(node) {
                return r;
            }
            std::hint::spin_loop();
        }
        for _ in 0..self.yields {
            if let Some(r) = self.take_sig(node) {
                return r;
            }
            std::thread::yield_now();
        }
        let slot = &self.waiters[node];
        let mut g = slot.m.lock().unwrap();
        loop {
            if let Some(r) = self.take_sig(node) {
                return r;
            }
            g = slot.cv.wait(g).unwrap();
        }
    }

    /// Declare `node`'s substrate lookahead: a sound lower bound on the
    /// virtual time between the start of its current preemptible window
    /// and its next packet reaching the wire. Larger values let the
    /// dispatcher release events sooner; `Ns::ZERO` (the default) is
    /// always safe.
    pub fn declare_lookahead(&self, node: usize, la: Ns) {
        let mut s = self.state.lock().unwrap();
        s.nodes[node].lookahead = la;
    }

    /// The declared lookahead for `node` (diagnostics / tests).
    pub fn lookahead(&self, node: usize) -> Ns {
        self.state.lock().unwrap().nodes[node].lookahead
    }

    /// The highest number of simultaneously in-flight (granted but not
    /// finished) transmits observed so far. Always ≤ 1 under
    /// [`TokenMode::Single`]; ≥ 2 proves per-receiver grants overlapped.
    pub fn max_concurrent_grants(&self) -> usize {
        self.state.lock().unwrap().max_grants
    }

    /// Phase one of the two-phase link reservation: announce a transmit
    /// to `dst` whose NIC injection happens at virtual time `inject`,
    /// and block until the scheduler grants it. `floor_after` is the
    /// node's floor once this transmit is done (its preemptible-window
    /// start plus its lookahead); the caller computes it from its clock.
    ///
    /// On return the caller holds `dst`'s rx-link reservation token: it
    /// must perform its link reservations and inbox delivery, then call
    /// [`LockstepSched::finish_transmit`]. Grants to distinct receivers
    /// may overlap (see [`TokenMode`]); grants to the same receiver are
    /// serialized in key order, so the CAS loops in the fabric's reserve
    /// path stay uncontended per link.
    pub fn request_transmit(&self, node: usize, dst: usize, inject: Ns, floor_after: Ns) {
        let mut s = self.state.lock().unwrap();
        let seq = s.nodes[node].next_seq();
        let key = Key {
            t: inject,
            node,
            seq,
        };
        s.nodes[node].st = St::Pending {
            key,
            floor_after,
            dst,
        };
        self.dispatch(&mut s);
        drop(s);
        self.await_signal(node);
    }

    /// Phase two: the granted transmit has reserved its links and pushed
    /// the packet (arriving at `arrival`) into `dst`'s inbox. Releases
    /// the sender's rx-link token and wakes `dst` if it is parked. For a
    /// loopback or a delivery to a finished node pass `dst == node` /
    /// the dead node; both degenerate gracefully.
    pub fn finish_transmit(&self, node: usize, dst: usize, arrival: Ns) {
        let mut s = self.state.lock().unwrap();
        s.in_flight.retain(|f| f.src != node);
        if dst != node {
            self.deliver_locked(&mut s, dst, arrival);
        }
        self.dispatch(&mut s);
    }

    /// The number of packets ever delivered to `node`'s inbox. Capture
    /// this *before* draining the inbox and pass it to
    /// [`LockstepSched::park`]; the scheduler refuses to sleep if a
    /// delivery has happened since, closing the drain/park race.
    pub fn delivery_count(&self, node: usize) -> u64 {
        self.state.lock().unwrap().nodes[node].deliveries
    }

    /// Park `node` until a packet is delivered to it or — when `deadline`
    /// is `Some(d)` — until virtual time `d` becomes the cluster's next
    /// event. `seen_deliveries` is the value of
    /// [`LockstepSched::delivery_count`] captured before the caller
    /// last drained its inbox; `floor` is the node's floor while parked
    /// and on timeout release (its preemptible-window start plus
    /// lookahead).
    pub fn park(
        &self,
        node: usize,
        seen_deliveries: u64,
        deadline: Option<Ns>,
        floor: Ns,
    ) -> WakeReason {
        self.park_inner(node, seen_deliveries, deadline, floor, None)
    }

    /// Park `node` until a packet is delivered to it or every node in
    /// `watch` has deregistered its NIC ([`LockstepSched::mark_done`]).
    /// Returns [`WakeReason::PeersDone`] immediately when the watch set
    /// is already drained. This is what makes shutdown lingers
    /// deterministic: "have my peers exited?" stops being a wall-clock
    /// poll of liveness flags and becomes an ordered scheduler event —
    /// the release is serialized against every delivery and grant, so the
    /// number of messages a lingering manager serves before concluding
    /// `Done` is a pure function of the program.
    ///
    /// `seen_deliveries` and `floor` are as for [`LockstepSched::park`].
    pub fn park_done_watch(
        &self,
        node: usize,
        watch: &[usize],
        seen_deliveries: u64,
        floor: Ns,
    ) -> WakeReason {
        self.park_inner(node, seen_deliveries, None, floor, Some(watch))
    }

    /// Park `node` until a packet is delivered, virtual time `deadline`
    /// becomes the cluster's next event, *or* every node in `watch` has
    /// deregistered its NIC — whichever comes first. This is the exit
    /// fan's wait: the deadline keeps a lost notice's retransmission
    /// timer live while the consumer can still be reached, and the
    /// done-watch cancels that timer the moment the consumer is gone, so
    /// a retransmission never fires into a dead node.
    pub fn park_deadline_done_watch(
        &self,
        node: usize,
        watch: &[usize],
        seen_deliveries: u64,
        deadline: Ns,
        floor: Ns,
    ) -> WakeReason {
        self.park_inner(node, seen_deliveries, Some(deadline), floor, Some(watch))
    }

    fn park_inner(
        &self,
        node: usize,
        seen_deliveries: u64,
        deadline: Option<Ns>,
        floor: Ns,
        watch: Option<&[usize]>,
    ) -> WakeReason {
        let mut s = self.state.lock().unwrap();
        if s.nodes[node].deliveries != seen_deliveries {
            // A delivery raced our drain; don't sleep on a stale view.
            return WakeReason::Delivered;
        }
        if let Some(w) = watch {
            if w.iter().all(|&x| matches!(s.nodes[x].st, St::Done)) {
                return WakeReason::PeersDone;
            }
        }
        let deadline = deadline.map(|t| {
            let seq = s.nodes[node].next_seq();
            Key { t, node, seq }
        });
        s.nodes[node].st = St::Parked {
            deadline,
            floor,
            watch: watch.map(|w| w.to_vec()),
        };
        self.dispatch(&mut s);
        drop(s);
        self.await_signal(node)
    }

    /// Settle a *non-blocking poll*: may the node conclude that nothing
    /// with virtual arrival `<= t` will ever reach its inbox?
    ///
    /// A free-running poll races in-flight traffic — whether a packet
    /// whose virtual arrival is already in the poller's past has been
    /// *pushed yet* is pure wall-clock luck, and the answer steers
    /// retroactive request service, so it must be deterministic. Under
    /// lockstep the poll becomes an event like any other: the node parks
    /// on deadline `t` and the dispatcher releases it only once every
    /// earlier event has been granted and no running node's floor allows
    /// an earlier injection. Cycles of concurrent pollers resolve by key
    /// order (the earliest poll settles first).
    ///
    /// Returns `false` if a delivery landed instead — the caller must
    /// re-drain its queues and re-poll (the new packet may still be in
    /// its virtual future). Returns `true` when the "empty" answer is
    /// final; the node's floor is then raised to `t` plus its lookahead,
    /// which is sound because every post-settle send is either a program
    /// send priced at or after `t` or a response to an arrival after `t`.
    ///
    /// `seen_deliveries` and `floor` are as for [`LockstepSched::park`].
    pub fn poll_quiesce(&self, node: usize, t: Ns, seen_deliveries: u64, floor: Ns) -> bool {
        {
            let mut s = self.state.lock().unwrap();
            if s.nodes[node].deliveries != seen_deliveries {
                return false;
            }
            // Fast path: the poll's deadline event would be granted the
            // moment it was created — no candidate event with a smaller
            // key, every running floor above `t`, and the in-flight rules
            // of the poller's token mode hold. Settling inline is then
            // schedule-equivalent to the park below (the dispatcher would
            // release this deadline before anything else), minus the
            // sleep/wake round trip that a poll-heavy engine pays on
            // every miss. The seq that the park would have consumed is
            // skipped, which is harmless: a node has at most one live
            // candidate at a time, so seq never arbitrates between
            // coexisting events. Under per-receiver tokens the fabric is
            // legitimately busy most of the time — that is the point of
            // the mode — so the fast path must tolerate in-flight
            // transmits; `grantable_concurrently` (with no earlier
            // candidate, which the horizon scan just established) is
            // exactly the dispatcher's own admission test.
            let me = Key { t, node, seq: 0 };
            let horizon_clear = s.nodes.iter().enumerate().all(|(i, n)| {
                i == node
                    || match &n.st {
                        St::Running { floor } => t < *floor,
                        St::Pending { key, .. } => *key > me,
                        St::Parked {
                            deadline: Some(d), ..
                        } => *d > me,
                        St::Parked { deadline: None, .. } | St::Done => true,
                    }
            });
            let settled_now = horizon_clear
                && (s.in_flight.is_empty()
                    || (s.tokens == TokenMode::PerReceiver
                        && self.grantable_concurrently(
                            &s,
                            me,
                            &Cand::Deadline { owner: node },
                            &[],
                        )));
            if settled_now {
                let la = s.nodes[node].lookahead;
                if let St::Running { floor: f } = &mut s.nodes[node].st {
                    // Same floor the slow path lands on: the park floor,
                    // raised by the settled poll's horizon.
                    *f = floor.max(t + la);
                }
                self.dispatch(&mut s);
                return true;
            }
        }
        match self.park(node, seen_deliveries, Some(t), floor) {
            WakeReason::Delivered => false,
            WakeReason::PeersDone => unreachable!("plain parks carry no done-watch"),
            WakeReason::Timeout => {
                let mut s = self.state.lock().unwrap();
                let la = s.nodes[node].lookahead;
                if let St::Running { floor } = &mut s.nodes[node].st {
                    *floor = (*floor).max(t + la);
                }
                self.dispatch(&mut s);
                true
            }
        }
    }

    /// `node`'s NIC has left the fabric: it produces no further events.
    /// Called on the node's own thread (from the NIC handle's drop).
    pub fn mark_done(&self, node: usize) {
        let mut s = self.state.lock().unwrap();
        s.nodes[node].st = St::Done;
        // If the node unwound between its grant and `finish_transmit`
        // (a panic mid-reservation), free its rx-link token so the rest
        // of the cluster can drain and surface the failure.
        s.in_flight.retain(|f| f.src != node);
        // This deregistration may complete a done-watch: release every
        // parked watcher whose whole watch set is now `Done`. Ordering is
        // deterministic — the watcher only parked after draining its
        // inbox, and this node's final transmits were granted (program
        // order) before its drop reached here.
        let released: Vec<usize> = s
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| match &n.st {
                St::Parked {
                    watch: Some(w), ..
                } => w.iter().all(|&x| matches!(s.nodes[x].st, St::Done)),
                _ => false,
            })
            .map(|(i, _)| i)
            .collect();
        for i in released {
            let floor = match s.nodes[i].st {
                St::Parked { floor, .. } => floor,
                _ => unreachable!(),
            };
            s.nodes[i].st = St::Running { floor };
            self.signal(i, WakeReason::PeersDone);
        }
        self.dispatch(&mut s);
    }

    /// Deliver-without-transmit: wake `dst` for a packet that reached its
    /// inbox outside the two-phase path (shutdown races deliver nothing;
    /// loopbacks never leave the node). Exposed for the fabric only.
    fn deliver_locked(&self, s: &mut State, dst: usize, _arrival: Ns) {
        let n = &mut s.nodes[dst];
        n.deliveries += 1;
        if let St::Parked { floor, .. } = n.st {
            // Resume with the park floor unchanged: the woken node might
            // react to an *earlier-queued* packet on another port, not the
            // one that woke it, so the arrival time of the waking packet
            // is not a sound lower bound — the park floor still is (the
            // preemptible window only moves forward while blocked).
            n.st = St::Running { floor };
            self.signal(dst, WakeReason::Delivered);
        }
        // Running / Pending / Done nodes will find the packet when they
        // next drain; their floors already bound any response to it.
    }

    /// A lower bound on the key time of any *new* event `node` could
    /// produce as a consequence of a future delivery (or of resuming at
    /// all). `None` means the node is `Done` and produces nothing.
    fn wake_floor(n: &NodeSt) -> Option<Ns> {
        match &n.st {
            St::Running { floor } => Some(*floor),
            // A pending sender reacts to nothing until its own transmit
            // completes; its post-transmit injections are bounded below
            // by the floor it declared for that point.
            St::Pending { floor_after, .. } => Some(*floor_after),
            St::Parked { floor, .. } => Some(*floor),
            St::Done => None,
        }
    }

    /// A lower bound on the key time of anything that can *happen
    /// because of* candidate event `(key, ev)` — the sender's
    /// post-transmit floor and/or the wake of the node it touches.
    fn hazard(s: &State, ev: &Cand) -> Option<Ns> {
        match *ev {
            Cand::Transmit {
                dst, floor_after, ..
            } => {
                let wake = Self::wake_floor(&s.nodes[dst]);
                Some(match wake {
                    Some(w) => floor_after.min(w),
                    None => floor_after,
                })
            }
            Cand::Deadline { owner } => Self::wake_floor(&s.nodes[owner]),
            Cand::Granted => unreachable!("tombstones are never candidates"),
        }
    }

    /// Grant every releasable event. Called with the state lock held
    /// after every transition; wakes each granted node's own condvar.
    ///
    /// Candidates are scanned in key order. Under [`TokenMode::Single`]
    /// only the global minimum is ever considered and nothing is granted
    /// while a transmit is in flight — the original serial regime. Under
    /// [`TokenMode::PerReceiver`] a candidate is granted when it passes
    /// the horizon rule, its rx-link token is free, and the pairwise
    /// hazard rule holds against every earlier-keyed candidate and every
    /// in-flight transmit (module docs, "Per-receiver tokens").
    fn dispatch(&self, s: &mut State) {
        // One allocation for the whole call: the candidate scratch list is
        // rebuilt (but not reallocated) after every grant.
        let mut cands: Vec<(Key, usize, Cand)> = Vec::with_capacity(s.nodes.len());
        loop {
            cands.clear();
            // The conservative horizon collapses to one number: a key is
            // safe iff it is below the minimum floor of every running
            // node (in-flight senders are `Running{floor_after}` and are
            // covered here too). Computing it once per rescan instead of
            // scanning all nodes per candidate is what keeps dispatch
            // affordable at 128 nodes.
            let mut min_running = Ns(u64::MAX);
            for (i, n) in s.nodes.iter().enumerate() {
                match &n.st {
                    St::Pending {
                        key,
                        floor_after,
                        dst,
                    } => cands.push((
                        *key,
                        i,
                        Cand::Transmit {
                            dst: *dst,
                            floor_after: *floor_after,
                        },
                    )),
                    St::Parked {
                        deadline: Some(d), ..
                    } => cands.push((*d, i, Cand::Deadline { owner: i })),
                    St::Running { floor } => min_running = min_running.min(*floor),
                    _ => {}
                }
            }
            if cands.is_empty() {
                self.check_deadlock(s);
                return;
            }
            cands.sort_by_key(|c| c.0);
            let serial = s.tokens == TokenMode::Single;
            // One pass over the sorted candidates, granting as it goes.
            // A grant mid-pass leaves its (now stale) entry in `cands`,
            // which only *adds* same-link and hazard rejections for later
            // candidates — every mid-pass grant is one the
            // rebuild-after-every-grant schedule would also make, so the
            // fixpoint reached by repeating full passes until one grants
            // nothing is the same, at one sort per pass instead of one
            // sort per grant (the difference between O(grants · C log C)
            // and O(passes · C log C) — decisive at 128 nodes).
            let mut granted_any = false;
            for ci in 0..cands.len() {
                let (key, idx, ev) = cands[ci];
                if serial && (ci > 0 || !s.in_flight.is_empty()) {
                    // Single token: only the global minimum, and only
                    // with the fabric empty, may be granted.
                    break;
                }
                if key.t >= min_running {
                    continue;
                }
                if !serial && !self.grantable_concurrently(s, key, &ev, &cands[..ci]) {
                    continue;
                }
                granted_any = true;
                match ev {
                    Cand::Transmit { dst, floor_after } => {
                        s.in_flight.push(InFlight { key, src: idx, dst });
                        s.max_grants = s.max_grants.max(s.in_flight.len());
                        s.nodes[idx].st = St::Running { floor: floor_after };
                        // The granted sender runs again below this floor's
                        // horizon; later candidates must respect it.
                        min_running = min_running.min(floor_after);
                        self.signal(idx, WakeReason::Delivered);
                    }
                    Cand::Deadline { .. } => {
                        let floor = match s.nodes[idx].st {
                            St::Parked { floor, .. } => floor,
                            _ => unreachable!(),
                        };
                        s.nodes[idx].st = St::Running { floor };
                        min_running = min_running.min(floor);
                        self.signal(idx, WakeReason::Timeout);
                    }
                    Cand::Granted => unreachable!("tombstones are never granted"),
                }
                cands[ci].2 = Cand::Granted;
            }
            if !granted_any {
                return;
            }
        }
    }

    /// The per-link and pairwise-hazard half of the grant rule for
    /// candidate `(key, ev)`. `earlier` holds every candidate with a
    /// smaller key (the scan is in key order).
    fn grantable_concurrently(
        &self,
        s: &State,
        key: Key,
        ev: &Cand,
        earlier: &[(Key, usize, Cand)],
    ) -> bool {
        // The rx link this event touches: the receiver of a transmit, or
        // the owner of a deadline (whose "nothing arrived by t" verdict a
        // racing delivery would falsify).
        let touches = match *ev {
            Cand::Transmit { dst, .. } => dst,
            Cand::Deadline { owner } => owner,
            Cand::Granted => unreachable!("tombstones are never candidates"),
        };
        for f in &s.in_flight {
            // Per-link token: an in-flight transmit owns its receiver's
            // rx link, and its landing must not race a deadline verdict
            // on that same receiver.
            if f.dst == touches {
                return false;
            }
            // The in-flight transmit's landing will wake `f.dst`, whose
            // subsequent injections are only bounded by its wake floor;
            // they must not be able to undercut this grant on any link.
            match Self::wake_floor(&s.nodes[f.dst]) {
                Some(w) if w <= key.t => return false,
                _ => {}
            }
            // Symmetric direction, for the rare in-flight transmit with a
            // *larger* key (granted before this candidate appeared): our
            // consequences must not undercut its committed reservation.
            if key < f.key {
                match Self::hazard(s, ev) {
                    Some(h) if h <= f.key.t => return false,
                    None => {}
                    _ => {}
                }
            }
        }
        for (ekey, _eidx, eev) in earlier {
            let etouches = match *eev {
                Cand::Transmit { dst, .. } => dst,
                Cand::Deadline { owner } => owner,
                // Granted this pass: its link is in the in-flight set and
                // its floors are in the horizon minimum — the fresh
                // rescan would not see it as a candidate at all.
                Cand::Granted => continue,
            };
            // Same link: per-link key order says the earlier event goes
            // first (for transmits this is the "minimum key among
            // transmits targeting the same rx link" rule; for a
            // transmit/deadline pair on one node, the delivery and the
            // verdict must not commute).
            if etouches == touches {
                return false;
            }
            // Jumping ahead of the earlier event is only sound when
            // neither event's consequences can undercut the other: the
            // earlier event's wake chain must not inject below our key,
            // and ours must not inject below its.
            match Self::hazard(s, eev) {
                Some(h) if h <= key.t => return false,
                _ => {}
            }
            match Self::hazard(s, ev) {
                Some(h) if h <= ekey.t => return false,
                _ => {}
            }
        }
        true
    }

    /// With no event on offer, every node must be running (it will commit
    /// to an event eventually), mid-transmit, or done. A node parked
    /// without a deadline at that point can never be woken: the
    /// free-running path would hang in `Receiver::recv`; lockstep turns
    /// it into a diagnosis.
    fn check_deadlock(&self, s: &State) {
        let any_running = s
            .nodes
            .iter()
            .any(|n| matches!(n.st, St::Running { .. }));
        if any_running || !s.in_flight.is_empty() {
            return;
        }
        let stuck: Vec<usize> = s
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.st, St::Parked { .. }))
            .map(|(i, _)| i)
            .collect();
        assert!(
            stuck.is_empty(),
            "lockstep deadlock: nodes {stuck:?} parked with no event in \
             flight (protocol deadlock or premature peer exit)"
        );
    }
}

/// A dispatchable candidate event (borrowed view of a node's state).
#[derive(Debug, Clone, Copy)]
enum Cand {
    Transmit { dst: usize, floor_after: Ns },
    Deadline { owner: usize },
    /// Granted earlier in the current dispatch pass; skipped by later
    /// candidates' pairwise checks (its constraints now live in the
    /// in-flight set and the horizon minimum).
    Granted,
}

impl NodeSt {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sched_mode_parses() {
        assert_eq!(SchedMode::parse("lockstep"), Some(SchedMode::Lockstep));
        assert_eq!(SchedMode::parse("LOCKSTEP"), Some(SchedMode::Lockstep));
        assert_eq!(SchedMode::parse(""), Some(SchedMode::FreeRun));
        assert_eq!(SchedMode::parse("freerun"), Some(SchedMode::FreeRun));
        assert_eq!(SchedMode::parse("bogus"), None);
        assert_eq!(SchedMode::default(), SchedMode::FreeRun);
    }

    #[test]
    fn token_mode_parses() {
        assert_eq!(TokenMode::parse("single"), Some(TokenMode::Single));
        assert_eq!(TokenMode::parse("per-receiver"), Some(TokenMode::PerReceiver));
        assert_eq!(TokenMode::parse("PER_RECEIVER"), Some(TokenMode::PerReceiver));
        assert_eq!(TokenMode::parse(""), Some(TokenMode::PerReceiver));
        assert_eq!(TokenMode::parse("bogus"), None);
        assert_eq!(TokenMode::default(), TokenMode::PerReceiver);
    }

    /// Two nodes race to transmit to the *same* receiver; the grant order
    /// must follow virtual keys, not wall-clock arrival at the scheduler
    /// — under either token mode, since the rx link is shared.
    #[test]
    fn grants_follow_virtual_keys() {
        for tokens in [TokenMode::Single, TokenMode::PerReceiver] {
            for _ in 0..20 {
                let sched = Arc::new(LockstepSched::new_with_tokens(3, tokens));
                let order = Arc::new(Mutex::new(Vec::new()));
                let mut handles = Vec::new();
                // Node 2 parks immediately so only 0 and 1 race.
                {
                    let sched = Arc::clone(&sched);
                    handles.push(thread::spawn(move || {
                        let seen = sched.delivery_count(2);
                        sched.park(2, seen, None, Ns(0));
                        // A woken node keeps its (here: zero) floor until it
                        // commits to its next fabric action; committing is
                        // what unblocks later-keyed grants.
                        sched.mark_done(2);
                    }));
                }
                for (node, inject) in [(0usize, Ns(2_000)), (1usize, Ns(1_000))] {
                    let sched = Arc::clone(&sched);
                    let order = Arc::clone(&order);
                    handles.push(thread::spawn(move || {
                        // Stagger wall-clock arrival adversarially.
                        if node == 1 {
                            thread::sleep(std::time::Duration::from_millis(5));
                        }
                        sched.request_transmit(node, 2, inject, inject + Ns(1_000_000));
                        order.lock().unwrap().push(node);
                        sched.finish_transmit(node, 2, inject + Ns(10_000));
                        sched.mark_done(node);
                    }));
                }
                // Wait for both transmits to complete, then unblock node 2's
                // park by letting its delivery land.
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(
                    *order.lock().unwrap(),
                    vec![1, 0],
                    "grants must follow (virtual time, node, seq) order"
                );
                assert_eq!(
                    sched.max_concurrent_grants(),
                    1,
                    "same-receiver transmits must never overlap"
                );
            }
        }
    }

    /// Transmits to *distinct* receivers overlap under per-receiver
    /// tokens: both grants are live at once (proved by both threads
    /// meeting at a barrier between grant and finish, and by the gauge).
    #[test]
    fn disjoint_receivers_grant_concurrently() {
        let sched = Arc::new(LockstepSched::new(4));
        // Receivers 2 and 3 are done: their wake floors are +inf, so the
        // hazard rule cannot block on them.
        sched.mark_done(2);
        sched.mark_done(3);
        let rendezvous = Arc::new(std::sync::Barrier::new(2));
        let mut handles = Vec::new();
        for (node, dst, inject) in [(0usize, 2usize, Ns(1_000)), (1, 3, Ns(2_000))] {
            let sched = Arc::clone(&sched);
            let rendezvous = Arc::clone(&rendezvous);
            handles.push(thread::spawn(move || {
                sched.request_transmit(node, dst, inject, Ns(1_000_000));
                // Under a single cluster-wide token this rendezvous would
                // deadlock: the second grant needs the first to finish.
                rendezvous.wait();
                sched.finish_transmit(node, dst, inject + Ns(10_000));
                sched.mark_done(node);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sched.max_concurrent_grants(), 2);
    }

    /// The same disjoint-receiver schedule under `TokenMode::Single`
    /// never overlaps grants, whatever the wall-clock interleaving.
    #[test]
    fn single_token_serializes_disjoint_receivers() {
        let sched = Arc::new(LockstepSched::new_with_tokens(4, TokenMode::Single));
        sched.mark_done(2);
        sched.mark_done(3);
        let mut handles = Vec::new();
        for (node, dst, inject) in [(0usize, 2usize, Ns(1_000)), (1, 3, Ns(2_000))] {
            let sched = Arc::clone(&sched);
            handles.push(thread::spawn(move || {
                sched.request_transmit(node, dst, inject, Ns(1_000_000));
                thread::sleep(std::time::Duration::from_millis(2));
                sched.finish_transmit(node, dst, inject + Ns(10_000));
                sched.mark_done(node);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sched.max_concurrent_grants(), 1);
    }

    /// An in-flight transmit to a parked, floor-zero receiver blocks a
    /// later-keyed grant to a *different* receiver: the parked node's
    /// wake could inject below the later key, so overlapping would
    /// commit an inbox order the serial schedule might not produce.
    #[test]
    fn parked_receiver_wake_hazard_blocks_overlap() {
        let sched = Arc::new(LockstepSched::new(4));
        sched.mark_done(2);
        let granted1 = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        // Node 3 parks with floor 0 (a blocking receive that declared no
        // better bound).
        {
            let sched = Arc::clone(&sched);
            handles.push(thread::spawn(move || {
                let seen = sched.delivery_count(3);
                sched.park(3, seen, None, Ns(0));
                sched.mark_done(3);
            }));
        }
        thread::sleep(std::time::Duration::from_millis(5));
        // Node 0 transmits to the parked node 3 and holds the grant.
        let s0 = Arc::clone(&sched);
        let hold = Arc::new(std::sync::Barrier::new(2));
        let h0 = Arc::clone(&hold);
        handles.push(thread::spawn(move || {
            s0.request_transmit(0, 3, Ns(1_000), Ns(1_000_000));
            h0.wait();
            thread::sleep(std::time::Duration::from_millis(10));
            s0.finish_transmit(0, 3, Ns(11_000));
            s0.mark_done(0);
        }));
        // Node 1's transmit to the (done, hazard-free) node 2 carries a
        // later key; it must stay blocked while node 0 is in flight,
        // because node 3's wake floor (0) could undercut it.
        let s1 = Arc::clone(&sched);
        let g1 = Arc::clone(&granted1);
        handles.push(thread::spawn(move || {
            s1.request_transmit(1, 2, Ns(5_000), Ns(1_000_000));
            g1.store(true, std::sync::atomic::Ordering::SeqCst);
            s1.finish_transmit(1, 2, Ns(15_000));
            s1.mark_done(1);
        }));
        hold.wait(); // node 0 is granted and in flight
        thread::sleep(std::time::Duration::from_millis(5));
        assert!(
            !granted1.load(std::sync::atomic::Ordering::SeqCst),
            "later-keyed grant overlapped an in-flight transmit whose \
             receiver could wake below its key"
        );
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sched.max_concurrent_grants(), 1);
    }

    /// A park with a deadline wakes by timeout when its deadline is the
    /// next event; a park raced by a delivery refuses to sleep.
    #[test]
    fn deadline_park_times_out_deterministically() {
        let sched = Arc::new(LockstepSched::new(2));
        let s2 = Arc::clone(&sched);
        let t = thread::spawn(move || {
            let seen = s2.delivery_count(1);
            s2.park(1, seen, Some(Ns(5_000)), Ns(100))
        });
        // Node 0 finishing leaves node 1's deadline as the only event.
        sched.mark_done(0);
        assert_eq!(t.join().unwrap(), WakeReason::Timeout);
    }

    #[test]
    fn raced_park_refuses_to_sleep() {
        let sched = LockstepSched::new(2);
        let seen = sched.delivery_count(1);
        // A transmit completes after the count was read but before the
        // park: the park must bounce back as Delivered.
        let mut s = sched.state.lock().unwrap();
        sched.deliver_locked(&mut s, 1, Ns(42));
        drop(s);
        assert_eq!(sched.park(1, seen, None, Ns(0)), WakeReason::Delivered);
    }

    #[test]
    fn lookahead_unblocks_grants_past_running_floors() {
        let sched = Arc::new(LockstepSched::new(2));
        sched.declare_lookahead(0, Ns(3_400));
        // Node 1 transmits at t=2_000. Node 0 is running with floor
        // 10_000 (reported via a finished park), so 2_000 < 10_000 and
        // the grant fires without waiting for node 0 to commit.
        let s2 = Arc::clone(&sched);
        let t = thread::spawn(move || {
            s2.request_transmit(1, 0, Ns(2_000), Ns(5_400));
            s2.finish_transmit(1, 0, Ns(12_000));
        });
        // Stand node 0 up as Running{floor: 10_000}: park then release
        // by delivery is the mechanism, so emulate directly.
        {
            let mut s = sched.state.lock().unwrap();
            s.nodes[0].st = St::Running { floor: Ns(10_000) };
            sched.dispatch(&mut s);
            // dispatch notifies the granted node's condvar itself.
        }
        t.join().unwrap();
    }

    /// Two concurrent pollers whose stale floors sit below each other's
    /// poll times would deadlock under a naive "wait until every floor
    /// passes t" rule. As ordered events they settle smallest key first.
    #[test]
    fn concurrent_polls_settle_in_key_order() {
        let sched = Arc::new(LockstepSched::new(2));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut hs = Vec::new();
        for (node, t) in [(0usize, Ns(100)), (1, Ns(50))] {
            let s = Arc::clone(&sched);
            let order = Arc::clone(&order);
            hs.push(thread::spawn(move || {
                let seen = s.delivery_count(node);
                let settled = s.poll_quiesce(node, t, seen, Ns(10));
                order.lock().unwrap().push(node);
                // A settled poller keeps running; committing (here: done)
                // is what lets later-keyed polls settle behind it.
                s.mark_done(node);
                settled
            }));
        }
        for h in hs {
            assert!(h.join().unwrap(), "poll failed to settle");
        }
        assert_eq!(*order.lock().unwrap(), vec![1, 0]);
    }

    #[test]
    fn poll_raced_by_delivery_returns_false() {
        let sched = LockstepSched::new(2);
        let seen = sched.delivery_count(1);
        let mut s = sched.state.lock().unwrap();
        sched.deliver_locked(&mut s, 1, Ns(42));
        drop(s);
        assert!(!sched.poll_quiesce(1, Ns(100), seen, Ns(0)));
    }

    /// A done-watch park releases with `PeersDone` when the last watched
    /// node deregisters, and immediately when the set is already done.
    #[test]
    fn done_watch_park_releases_on_mark_done() {
        let sched = Arc::new(LockstepSched::new(3));
        let s2 = Arc::clone(&sched);
        let t = thread::spawn(move || {
            let seen = s2.delivery_count(0);
            s2.park_done_watch(0, &[1, 2], seen, Ns(100))
        });
        sched.mark_done(1);
        // One peer alive: the watcher must still be parked; give the
        // spawned thread a chance to park before the final mark_done.
        thread::sleep(std::time::Duration::from_millis(5));
        sched.mark_done(2);
        assert_eq!(t.join().unwrap(), WakeReason::PeersDone);
        // Already-drained watch sets settle inline.
        let seen = sched.delivery_count(0);
        assert_eq!(
            sched.park_done_watch(0, &[1, 2], seen, Ns(100)),
            WakeReason::PeersDone
        );
    }

    /// A delivery beats the done-watch: the watcher wakes `Delivered`,
    /// serves, and only concludes `PeersDone` on a re-park.
    #[test]
    fn done_watch_park_yields_to_deliveries() {
        let sched = LockstepSched::new(2);
        let seen = sched.delivery_count(0);
        let mut s = sched.state.lock().unwrap();
        sched.deliver_locked(&mut s, 0, Ns(42));
        drop(s);
        assert_eq!(
            sched.park_done_watch(0, &[1], seen, Ns(0)),
            WakeReason::Delivered
        );
    }

    /// The combined deadline+done-watch park (the exit fan's wait) fires
    /// whichever release comes first: timeout while the watched peer is
    /// alive, `PeersDone` when the peer deregisters before the deadline.
    #[test]
    fn deadline_done_watch_park_releases_both_ways() {
        // Timeout first: peer 0 stays alive (running with a high floor).
        let sched = Arc::new(LockstepSched::new(2));
        {
            let mut s = sched.state.lock().unwrap();
            s.nodes[0].st = St::Running { floor: Ns(1_000_000) };
        }
        let s2 = Arc::clone(&sched);
        let t = thread::spawn(move || {
            let seen = s2.delivery_count(1);
            s2.park_deadline_done_watch(1, &[0], seen, Ns(5_000), Ns(100))
        });
        assert_eq!(t.join().unwrap(), WakeReason::Timeout);

        // Peer-done first: the watched node deregisters while the
        // deadline still sits beyond its (infinite) floor horizon.
        let sched = Arc::new(LockstepSched::new(2));
        let s2 = Arc::clone(&sched);
        let t = thread::spawn(move || {
            let seen = s2.delivery_count(1);
            s2.park_deadline_done_watch(1, &[0], seen, Ns(5_000), Ns(100))
        });
        thread::sleep(std::time::Duration::from_millis(5));
        sched.mark_done(0);
        let r = t.join().unwrap();
        // Both releases are legitimate here (node 0's mark_done also
        // leaves the deadline as the next event); what matters is that
        // PeersDone is possible and nothing hangs. Pin the determinism:
        // mark_done's watch release runs before its dispatch, so the
        // watcher must see PeersDone.
        assert_eq!(r, WakeReason::PeersDone);
    }

    #[test]
    #[should_panic(expected = "lockstep deadlock")]
    fn all_parked_no_event_is_a_deadlock() {
        let sched = Arc::new(LockstepSched::new(2));
        sched.mark_done(0);
        let seen = sched.delivery_count(1);
        sched.park(1, seen, None, Ns(0));
    }
}
