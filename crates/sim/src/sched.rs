//! Conservative lockstep scheduler: byte-reproducible virtual-time runs.
//!
//! # Why
//!
//! Every number this simulator reports is virtual-time arithmetic, yet a
//! free-running cluster is not reproducible: when several node threads
//! transmit to the same destination "at once", the *wall-clock* order in
//! which they win the fabric's link-reservation CAS decides the virtual
//! queueing order on the shared rx link. Barrier storms (N arrivals
//! converging on the manager) therefore jitter run to run.
//!
//! # How
//!
//! [`LockstepSched`] is a conservative parallel-discrete-event scheduler
//! in the Chandy–Misra tradition. Every *fabric action* — a wire
//! transmission, or the expiry of a virtual receive deadline — becomes an
//! **event** with a totally ordered key `(virtual time, node id, seq)`.
//! Link reservations are split into a two-phase *request/grant*: a node
//! asking to transmit parks in [`LockstepSched::request_transmit`] until
//! the scheduler grants its key, and grants are issued in key order.
//!
//! The safety rule is the conservative horizon. Each node carries a
//! **floor**: a lower bound on the key of any event it could still
//! produce. Floors come from the node's own clock (its preemptible-window
//! start) plus a per-substrate **lookahead** — the minimum modeled cost
//! between resuming execution and the next packet reaching the wire (GM:
//! NIC DMA-descriptor setup plus the `gm_send` host overhead; UDP: the
//! syscall + protocol-stack floor; both: the NIC tx engine). The pending
//! event with the smallest key is dispatched only when every node that is
//! still *running* (not parked, not pending, not finished) has a floor
//! strictly above that key — i.e. no straggler can still create an
//! earlier event. Ties never happen: keys are unique by `(node, seq)`.
//!
//! Determinism argument, in one paragraph: a node's execution between
//! scheduler interactions is a pure function of its inputs (per-node
//! clocks are thread-local, RNG streams are seeded, and wall-clock reads
//! are confined to the free-run path). Its inputs are exactly the
//! sequence of packets delivered to it and deadline expiries — both of
//! which are produced only by grants. Grants fire in an order fixed by
//! the floors: any interleaving-dependent early grant is impossible
//! because a running node that could still produce a smaller key holds a
//! floor at or below that key, blocking the grant until the node commits
//! (requests, parks or finishes). By induction over grants, the whole
//! schedule — and therefore every virtual timestamp, counter and memory
//! image — is a function of the program alone.
//!
//! Blocking receives park through the scheduler too
//! ([`LockstepSched::park`]): a parked node's next event is unknowable
//! until a packet is delivered to it (floor = +∞), or bounded by its
//! virtual deadline for timeout waits (the DSM retransmission timer), in
//! which case the deadline is an event like any other and the wall-clock
//! hang guard of the free-running path is never consulted.

use std::sync::{Condvar, Mutex};

use crate::time::Ns;

/// How the cluster's node threads are interleaved.
///
/// * `FreeRun` — node threads run unsynchronized; link reservations
///   arbitrate by compare-and-swap in wall-clock order. Fast, and
///   deterministic only for workloads whose message order is fully
///   serialized by data dependencies.
/// * `Lockstep` — all fabric actions are sequenced by [`LockstepSched`]
///   in virtual-key order; runs are byte-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Free-running threads, wall-clock CAS arbitration (the fast default).
    #[default]
    FreeRun,
    /// Conservative lockstep: deterministic, byte-reproducible runs.
    Lockstep,
}

impl SchedMode {
    /// Parse from an environment-style string: `lockstep` (any case)
    /// selects [`SchedMode::Lockstep`]; `freerun`, `free` or the empty
    /// string select [`SchedMode::FreeRun`].
    pub fn parse(s: &str) -> Option<SchedMode> {
        match s.to_ascii_lowercase().as_str() {
            "" | "free" | "freerun" => Some(SchedMode::FreeRun),
            "lockstep" => Some(SchedMode::Lockstep),
            _ => None,
        }
    }
}

/// Why a parked node was released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// A packet was delivered to the node's inbox (or had already been
    /// delivered when the park was attempted — re-drain and re-check).
    Delivered,
    /// The park's virtual deadline became the cluster's next event.
    Timeout,
    /// Every node in the park's done-watch set has deregistered its NIC
    /// ([`LockstepSched::mark_done`]); only
    /// [`LockstepSched::park_done_watch`] reports this.
    PeersDone,
}

/// A totally ordered event key: virtual time, then node id, then the
/// node's own event sequence number. Unique by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    t: Ns,
    node: usize,
    seq: u64,
}

#[derive(Debug)]
enum St {
    /// Executing between fabric actions. `floor` bounds from below the
    /// virtual time of any event this node can still produce.
    Running { floor: Ns },
    /// Blocked in `request_transmit`, waiting for its key to be granted.
    Pending { key: Key, floor_after: Ns },
    /// Blocked in `park`: waiting for a delivery, and — if `deadline` is
    /// set — for at most that much virtual time. `watch` (set only by
    /// `park_done_watch`) additionally releases the park once every
    /// listed node is `Done` — NIC deregistration as a scheduler event.
    Parked {
        deadline: Option<Key>,
        floor: Ns,
        watch: Option<Vec<usize>>,
    },
    /// The node's NIC has left the fabric; it produces no more events.
    Done,
}

#[derive(Debug)]
struct NodeSt {
    st: St,
    /// Per-node event sequence for key uniqueness.
    seq: u64,
    /// Declared substrate lookahead (see module docs). Zero until a
    /// substrate claims better; zero is always safe, only slower.
    lookahead: Ns,
    /// Count of packets ever delivered to this node's inbox. Parking
    /// passes the last value it observed before draining; a mismatch
    /// means a delivery raced the park and the node must re-drain instead
    /// of sleeping (the classic eventcount handshake).
    deliveries: u64,
    /// Set by the dispatcher when this node's pending transmit is
    /// granted or its park is released; consumed by the blocked thread.
    release: Option<WakeReason>,
}

struct State {
    nodes: Vec<NodeSt>,
    /// The node holding the reservation token: between its transmit
    /// grant and its `finish_transmit`. Link reservations are exclusive,
    /// so at most one node is inside the fabric's reservation section at
    /// a time; tracking *who* lets `mark_done` release a token held by a
    /// node that unwinds mid-transmit.
    token_owner: Option<usize>,
}

/// The conservative lockstep scheduler for one cluster fabric. Shared
/// (`Arc`) by every node thread; all methods are called from node
/// threads (the scheduler has no thread of its own).
///
/// One condvar per node, not one shared: a grant releases exactly one
/// thread, and waking the whole cluster to have everyone re-check and
/// re-sleep is a futex storm that dominates the scheduler's wall-clock
/// overhead on poll-heavy workloads.
pub struct LockstepSched {
    state: Mutex<State>,
    cvs: Vec<Condvar>,
}

impl LockstepSched {
    /// A scheduler for `n` nodes, all initially running with floor 0 (no
    /// event can be granted until every node has committed to its first
    /// fabric action — the conservative cold start).
    pub fn new(n: usize) -> LockstepSched {
        let nodes = (0..n)
            .map(|_| NodeSt {
                st: St::Running { floor: Ns::ZERO },
                seq: 0,
                lookahead: Ns::ZERO,
                deliveries: 0,
                release: None,
            })
            .collect();
        LockstepSched {
            state: Mutex::new(State {
                nodes,
                token_owner: None,
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
        }
    }

    /// Declare `node`'s substrate lookahead: a sound lower bound on the
    /// virtual time between the start of its current preemptible window
    /// and its next packet reaching the wire. Larger values let the
    /// dispatcher release events sooner; `Ns::ZERO` (the default) is
    /// always safe.
    pub fn declare_lookahead(&self, node: usize, la: Ns) {
        let mut s = self.state.lock().unwrap();
        s.nodes[node].lookahead = la;
    }

    /// The declared lookahead for `node` (diagnostics / tests).
    pub fn lookahead(&self, node: usize) -> Ns {
        self.state.lock().unwrap().nodes[node].lookahead
    }

    /// Phase one of the two-phase link reservation: announce a transmit
    /// whose NIC injection happens at virtual time `inject`, and block
    /// until the scheduler grants it. `floor_after` is the node's floor
    /// once this transmit is done (its preemptible-window start plus its
    /// lookahead); the caller computes it from its clock.
    ///
    /// On return the caller holds the cluster-wide reservation token: it
    /// must perform its link reservations and inbox delivery, then call
    /// [`LockstepSched::finish_transmit`].
    pub fn request_transmit(&self, node: usize, inject: Ns, floor_after: Ns) {
        let mut s = self.state.lock().unwrap();
        let seq = s.nodes[node].next_seq();
        let key = Key {
            t: inject,
            node,
            seq,
        };
        s.nodes[node].st = St::Pending { key, floor_after };
        self.dispatch(&mut s);
        loop {
            if s.nodes[node].release.take().is_some() {
                return;
            }
            s = self.cvs[node].wait(s).unwrap();
        }
    }

    /// Phase two: the granted transmit has reserved its links and pushed
    /// the packet (arriving at `arrival`) into `dst`'s inbox. Releases
    /// the reservation token and wakes `dst` if it is parked. For a
    /// loopback or a delivery to a finished node pass `dst == node` /
    /// the dead node; both degenerate gracefully.
    pub fn finish_transmit(&self, node: usize, dst: usize, arrival: Ns) {
        let mut s = self.state.lock().unwrap();
        s.token_owner = None;
        if dst != node {
            self.deliver_locked(&mut s, dst, arrival);
        }
        self.dispatch(&mut s);
    }

    /// The number of packets ever delivered to `node`'s inbox. Capture
    /// this *before* draining the inbox and pass it to
    /// [`LockstepSched::park`]; the scheduler refuses to sleep if a
    /// delivery has happened since, closing the drain/park race.
    pub fn delivery_count(&self, node: usize) -> u64 {
        self.state.lock().unwrap().nodes[node].deliveries
    }

    /// Park `node` until a packet is delivered to it or — when `deadline`
    /// is `Some(d)` — until virtual time `d` becomes the cluster's next
    /// event. `seen_deliveries` is the value of
    /// [`LockstepSched::delivery_count`] captured before the caller
    /// last drained its inbox; `floor` is the node's floor while parked
    /// and on timeout release (its preemptible-window start plus
    /// lookahead).
    pub fn park(
        &self,
        node: usize,
        seen_deliveries: u64,
        deadline: Option<Ns>,
        floor: Ns,
    ) -> WakeReason {
        let mut s = self.state.lock().unwrap();
        if s.nodes[node].deliveries != seen_deliveries {
            // A delivery raced our drain; don't sleep on a stale view.
            return WakeReason::Delivered;
        }
        let deadline = deadline.map(|t| {
            let seq = s.nodes[node].next_seq();
            Key { t, node, seq }
        });
        s.nodes[node].st = St::Parked {
            deadline,
            floor,
            watch: None,
        };
        self.dispatch(&mut s);
        loop {
            if let Some(reason) = s.nodes[node].release.take() {
                return reason;
            }
            s = self.cvs[node].wait(s).unwrap();
        }
    }

    /// Park `node` until a packet is delivered to it or every node in
    /// `watch` has deregistered its NIC ([`LockstepSched::mark_done`]).
    /// Returns [`WakeReason::PeersDone`] immediately when the watch set
    /// is already drained. This is what makes shutdown lingers
    /// deterministic: "have my peers exited?" stops being a wall-clock
    /// poll of liveness flags and becomes an ordered scheduler event —
    /// the release is serialized against every delivery and grant, so the
    /// number of messages a lingering manager serves before concluding
    /// `Done` is a pure function of the program.
    ///
    /// `seen_deliveries` and `floor` are as for [`LockstepSched::park`].
    pub fn park_done_watch(
        &self,
        node: usize,
        watch: &[usize],
        seen_deliveries: u64,
        floor: Ns,
    ) -> WakeReason {
        let mut s = self.state.lock().unwrap();
        if s.nodes[node].deliveries != seen_deliveries {
            return WakeReason::Delivered;
        }
        if watch.iter().all(|&w| matches!(s.nodes[w].st, St::Done)) {
            return WakeReason::PeersDone;
        }
        s.nodes[node].st = St::Parked {
            deadline: None,
            floor,
            watch: Some(watch.to_vec()),
        };
        self.dispatch(&mut s);
        loop {
            if let Some(reason) = s.nodes[node].release.take() {
                return reason;
            }
            s = self.cvs[node].wait(s).unwrap();
        }
    }

    /// Settle a *non-blocking poll*: may the node conclude that nothing
    /// with virtual arrival `<= t` will ever reach its inbox?
    ///
    /// A free-running poll races in-flight traffic — whether a packet
    /// whose virtual arrival is already in the poller's past has been
    /// *pushed yet* is pure wall-clock luck, and the answer steers
    /// retroactive request service, so it must be deterministic. Under
    /// lockstep the poll becomes an event like any other: the node parks
    /// on deadline `t` and the dispatcher releases it only once every
    /// earlier event has been granted and no running node's floor allows
    /// an earlier injection. Cycles of concurrent pollers resolve by key
    /// order (the earliest poll settles first).
    ///
    /// Returns `false` if a delivery landed instead — the caller must
    /// re-drain its queues and re-poll (the new packet may still be in
    /// its virtual future). Returns `true` when the "empty" answer is
    /// final; the node's floor is then raised to `t` plus its lookahead,
    /// which is sound because every post-settle send is either a program
    /// send priced at or after `t` or a response to an arrival after `t`.
    ///
    /// `seen_deliveries` and `floor` are as for [`LockstepSched::park`].
    pub fn poll_quiesce(&self, node: usize, t: Ns, seen_deliveries: u64, floor: Ns) -> bool {
        {
            let mut s = self.state.lock().unwrap();
            if s.nodes[node].deliveries != seen_deliveries {
                return false;
            }
            // Fast path: the poll's deadline event would be granted the
            // moment it was created — no reservation token in flight, no
            // candidate event with a smaller key, every running floor
            // above `t`. Settling inline is then schedule-equivalent to
            // the park below (the dispatcher would release this deadline
            // before anything else), minus the sleep/wake round trip that
            // a poll-heavy engine pays on every miss. The seq that the
            // park would have consumed is skipped, which is harmless: a
            // node has at most one live candidate at a time, so seq never
            // arbitrates between coexisting events.
            let me = Key { t, node, seq: 0 };
            let settled_now = s.token_owner.is_none()
                && s.nodes.iter().enumerate().all(|(i, n)| {
                    i == node
                        || match &n.st {
                            St::Running { floor } => t < *floor,
                            St::Pending { key, .. } => *key > me,
                            St::Parked {
                                deadline: Some(d), ..
                            } => *d > me,
                            St::Parked { deadline: None, .. } | St::Done => true,
                        }
                });
            if settled_now {
                let la = s.nodes[node].lookahead;
                if let St::Running { floor: f } = &mut s.nodes[node].st {
                    // Same floor the slow path lands on: the park floor,
                    // raised by the settled poll's horizon.
                    *f = floor.max(t + la);
                }
                self.dispatch(&mut s);
                return true;
            }
        }
        match self.park(node, seen_deliveries, Some(t), floor) {
            WakeReason::Delivered => false,
            WakeReason::PeersDone => unreachable!("plain parks carry no done-watch"),
            WakeReason::Timeout => {
                let mut s = self.state.lock().unwrap();
                let la = s.nodes[node].lookahead;
                if let St::Running { floor } = &mut s.nodes[node].st {
                    *floor = (*floor).max(t + la);
                }
                self.dispatch(&mut s);
                true
            }
        }
    }

    /// `node`'s NIC has left the fabric: it produces no further events.
    /// Called on the node's own thread (from the NIC handle's drop).
    pub fn mark_done(&self, node: usize) {
        let mut s = self.state.lock().unwrap();
        s.nodes[node].st = St::Done;
        if s.token_owner == Some(node) {
            // The node unwound between its grant and `finish_transmit`
            // (a panic mid-reservation); free the token so the rest of
            // the cluster can drain and surface the failure.
            s.token_owner = None;
        }
        // This deregistration may complete a done-watch: release every
        // parked watcher whose whole watch set is now `Done`. Ordering is
        // deterministic — the watcher only parked after draining its
        // inbox, and this node's final transmits were granted (program
        // order) before its drop reached here.
        let released: Vec<usize> = s
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| match &n.st {
                St::Parked {
                    watch: Some(w), ..
                } => w.iter().all(|&x| matches!(s.nodes[x].st, St::Done)),
                _ => false,
            })
            .map(|(i, _)| i)
            .collect();
        for i in released {
            let floor = match s.nodes[i].st {
                St::Parked { floor, .. } => floor,
                _ => unreachable!(),
            };
            s.nodes[i].st = St::Running { floor };
            s.nodes[i].release = Some(WakeReason::PeersDone);
            self.cvs[i].notify_all();
        }
        self.dispatch(&mut s);
    }

    /// Deliver-without-transmit: wake `dst` for a packet that reached its
    /// inbox outside the two-phase path (shutdown races deliver nothing;
    /// loopbacks never leave the node). Exposed for the fabric only.
    fn deliver_locked(&self, s: &mut State, dst: usize, _arrival: Ns) {
        let n = &mut s.nodes[dst];
        n.deliveries += 1;
        if let St::Parked { floor, .. } = n.st {
            // Resume with the park floor unchanged: the woken node might
            // react to an *earlier-queued* packet on another port, not the
            // one that woke it, so the arrival time of the waking packet
            // is not a sound lower bound — the park floor still is (the
            // preemptible window only moves forward while blocked).
            n.st = St::Running { floor };
            n.release = Some(WakeReason::Delivered);
            self.cvs[dst].notify_all();
        }
        // Running / Pending / Done nodes will find the packet when they
        // next drain; their floors already bound any response to it.
    }

    /// Grant every releasable event, in key order. Called with the state
    /// lock held after every transition; followed by `notify_all` at the
    /// call sites that can wake sleepers.
    fn dispatch(&self, s: &mut State) {
        loop {
            // The smallest event key on offer: pending transmits and
            // park deadlines.
            let mut best: Option<(Key, usize, bool)> = None;
            for (i, n) in s.nodes.iter().enumerate() {
                let cand = match &n.st {
                    St::Pending { key, .. } => Some((*key, i, true)),
                    St::Parked {
                        deadline: Some(d), ..
                    } => Some((*d, i, false)),
                    _ => None,
                };
                if let Some(c) = cand {
                    if best.is_none_or(|b| c.0 < b.0) {
                        best = Some(c);
                    }
                }
            }
            let Some((key, idx, is_transmit)) = best else {
                self.check_deadlock(s);
                return;
            };
            // Conservative horizon: no running node may still be able to
            // produce an earlier (or equal) key.
            let safe = s.nodes.iter().all(|n| match n.st {
                St::Running { floor } => key.t < floor,
                _ => true,
            });
            if !safe {
                return;
            }
            if s.token_owner.is_some() {
                // A granted transmit has not yet pushed its packet: its
                // links are unreserved and its delivery invisible, so no
                // event — not even a deadline expiry, which could
                // otherwise conclude "nothing arrived" moments before the
                // in-flight packet lands — may be released until
                // `finish_transmit`. Re-dispatch happens there.
                return;
            }
            if is_transmit {
                s.token_owner = Some(idx);
                let n = &mut s.nodes[idx];
                let floor = match n.st {
                    St::Pending { floor_after, .. } => floor_after,
                    _ => unreachable!(),
                };
                n.st = St::Running { floor };
                n.release = Some(WakeReason::Delivered);
            } else {
                let n = &mut s.nodes[idx];
                let floor = match n.st {
                    St::Parked { floor, .. } => floor,
                    _ => unreachable!(),
                };
                n.st = St::Running { floor };
                n.release = Some(WakeReason::Timeout);
            }
            self.cvs[idx].notify_all();
        }
    }

    /// With no event on offer, every node must be running (it will commit
    /// to an event eventually) or done. A node parked without a deadline
    /// at that point can never be woken: the free-running path would hang
    /// in `Receiver::recv`; lockstep turns it into a diagnosis.
    fn check_deadlock(&self, s: &State) {
        let any_running = s
            .nodes
            .iter()
            .any(|n| matches!(n.st, St::Running { .. }));
        if any_running || s.token_owner.is_some() {
            return;
        }
        let stuck: Vec<usize> = s
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.st, St::Parked { .. }))
            .map(|(i, _)| i)
            .collect();
        assert!(
            stuck.is_empty(),
            "lockstep deadlock: nodes {stuck:?} parked with no event in \
             flight (protocol deadlock or premature peer exit)"
        );
    }
}

impl NodeSt {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sched_mode_parses() {
        assert_eq!(SchedMode::parse("lockstep"), Some(SchedMode::Lockstep));
        assert_eq!(SchedMode::parse("LOCKSTEP"), Some(SchedMode::Lockstep));
        assert_eq!(SchedMode::parse(""), Some(SchedMode::FreeRun));
        assert_eq!(SchedMode::parse("freerun"), Some(SchedMode::FreeRun));
        assert_eq!(SchedMode::parse("bogus"), None);
        assert_eq!(SchedMode::default(), SchedMode::FreeRun);
    }

    /// Two nodes race to transmit; the grant order must follow virtual
    /// keys, not wall-clock arrival at the scheduler.
    #[test]
    fn grants_follow_virtual_keys() {
        for _ in 0..20 {
            let sched = Arc::new(LockstepSched::new(3));
            let order = Arc::new(Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            // Node 2 parks immediately so only 0 and 1 race.
            {
                let sched = Arc::clone(&sched);
                handles.push(thread::spawn(move || {
                    let seen = sched.delivery_count(2);
                    sched.park(2, seen, None, Ns(0));
                    // A woken node keeps its (here: zero) floor until it
                    // commits to its next fabric action; committing is
                    // what unblocks later-keyed grants.
                    sched.mark_done(2);
                }));
            }
            for (node, inject) in [(0usize, Ns(2_000)), (1usize, Ns(1_000))] {
                let sched = Arc::clone(&sched);
                let order = Arc::clone(&order);
                handles.push(thread::spawn(move || {
                    // Stagger wall-clock arrival adversarially.
                    if node == 1 {
                        thread::sleep(std::time::Duration::from_millis(5));
                    }
                    sched.request_transmit(node, inject, inject + Ns(1_000_000));
                    order.lock().unwrap().push(node);
                    sched.finish_transmit(node, 2, inject + Ns(10_000));
                    sched.mark_done(node);
                }));
            }
            // Wait for both transmits to complete, then unblock node 2's
            // park by letting its delivery land.
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                *order.lock().unwrap(),
                vec![1, 0],
                "grants must follow (virtual time, node, seq) order"
            );
        }
    }

    /// A park with a deadline wakes by timeout when its deadline is the
    /// next event; a park raced by a delivery refuses to sleep.
    #[test]
    fn deadline_park_times_out_deterministically() {
        let sched = Arc::new(LockstepSched::new(2));
        let s2 = Arc::clone(&sched);
        let t = thread::spawn(move || {
            let seen = s2.delivery_count(1);
            s2.park(1, seen, Some(Ns(5_000)), Ns(100))
        });
        // Node 0 finishing leaves node 1's deadline as the only event.
        sched.mark_done(0);
        assert_eq!(t.join().unwrap(), WakeReason::Timeout);
    }

    #[test]
    fn raced_park_refuses_to_sleep() {
        let sched = LockstepSched::new(2);
        let seen = sched.delivery_count(1);
        // A transmit completes after the count was read but before the
        // park: the park must bounce back as Delivered.
        let mut s = sched.state.lock().unwrap();
        sched.deliver_locked(&mut s, 1, Ns(42));
        drop(s);
        assert_eq!(sched.park(1, seen, None, Ns(0)), WakeReason::Delivered);
    }

    #[test]
    fn lookahead_unblocks_grants_past_running_floors() {
        let sched = Arc::new(LockstepSched::new(2));
        sched.declare_lookahead(0, Ns(3_400));
        // Node 1 transmits at t=2_000. Node 0 is running with floor
        // 10_000 (reported via a finished park), so 2_000 < 10_000 and
        // the grant fires without waiting for node 0 to commit.
        let s2 = Arc::clone(&sched);
        let t = thread::spawn(move || {
            s2.request_transmit(1, Ns(2_000), Ns(5_400));
            s2.finish_transmit(1, 0, Ns(12_000));
        });
        // Stand node 0 up as Running{floor: 10_000}: park then release
        // by delivery is the mechanism, so emulate directly.
        {
            let mut s = sched.state.lock().unwrap();
            s.nodes[0].st = St::Running { floor: Ns(10_000) };
            sched.dispatch(&mut s);
            // dispatch notifies the granted node's condvar itself.
        }
        t.join().unwrap();
    }

    /// Two concurrent pollers whose stale floors sit below each other's
    /// poll times would deadlock under a naive "wait until every floor
    /// passes t" rule. As ordered events they settle smallest key first.
    #[test]
    fn concurrent_polls_settle_in_key_order() {
        let sched = Arc::new(LockstepSched::new(2));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut hs = Vec::new();
        for (node, t) in [(0usize, Ns(100)), (1usize, Ns(50))] {
            let s = Arc::clone(&sched);
            let order = Arc::clone(&order);
            hs.push(thread::spawn(move || {
                let seen = s.delivery_count(node);
                let settled = s.poll_quiesce(node, t, seen, Ns(10));
                order.lock().unwrap().push(node);
                // A settled poller keeps running; committing (here: done)
                // is what lets later-keyed polls settle behind it.
                s.mark_done(node);
                settled
            }));
        }
        for h in hs {
            assert!(h.join().unwrap(), "poll failed to settle");
        }
        assert_eq!(*order.lock().unwrap(), vec![1, 0]);
    }

    #[test]
    fn poll_raced_by_delivery_returns_false() {
        let sched = LockstepSched::new(2);
        let seen = sched.delivery_count(1);
        let mut s = sched.state.lock().unwrap();
        sched.deliver_locked(&mut s, 1, Ns(42));
        drop(s);
        assert!(!sched.poll_quiesce(1, Ns(100), seen, Ns(0)));
    }

    /// A done-watch park releases with `PeersDone` when the last watched
    /// node deregisters, and immediately when the set is already done.
    #[test]
    fn done_watch_park_releases_on_mark_done() {
        let sched = Arc::new(LockstepSched::new(3));
        let s2 = Arc::clone(&sched);
        let t = thread::spawn(move || {
            let seen = s2.delivery_count(0);
            s2.park_done_watch(0, &[1, 2], seen, Ns(100))
        });
        sched.mark_done(1);
        // One peer alive: the watcher must still be parked; give the
        // spawned thread a chance to park before the final mark_done.
        thread::sleep(std::time::Duration::from_millis(5));
        sched.mark_done(2);
        assert_eq!(t.join().unwrap(), WakeReason::PeersDone);
        // Already-drained watch sets settle inline.
        let seen = sched.delivery_count(0);
        assert_eq!(
            sched.park_done_watch(0, &[1, 2], seen, Ns(100)),
            WakeReason::PeersDone
        );
    }

    /// A delivery beats the done-watch: the watcher wakes `Delivered`,
    /// serves, and only concludes `PeersDone` on a re-park.
    #[test]
    fn done_watch_park_yields_to_deliveries() {
        let sched = LockstepSched::new(2);
        let seen = sched.delivery_count(0);
        let mut s = sched.state.lock().unwrap();
        sched.deliver_locked(&mut s, 0, Ns(42));
        drop(s);
        assert_eq!(
            sched.park_done_watch(0, &[1], seen, Ns(0)),
            WakeReason::Delivered
        );
    }

    #[test]
    #[should_panic(expected = "lockstep deadlock")]
    fn all_parked_no_event_is_a_deadlock() {
        let sched = Arc::new(LockstepSched::new(2));
        sched.mark_done(0);
        let seen = sched.delivery_count(1);
        sched.park(1, seen, None, Ns(0));
    }
}
