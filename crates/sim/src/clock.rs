//! Per-node virtual clocks with retroactive interrupt preemption.
//!
//! The paper's whole design discussion (§2.2.4) revolves around *when an
//! asynchronous request gets serviced*: GM has no asynchronous notification,
//! so the authors compare a polling thread, a periodic timer, and a firmware
//! modification that raises a host interrupt. We model all three with one
//! mechanism: when a node observes a pending request, the *virtual* start of
//! servicing is computed from the request's arrival time and the async
//! scheme in force — even if the node's clock has already advanced past the
//! arrival (the node was "computing" when the interrupt would have fired).
//! The displaced computation is pushed back by the service duration, exactly
//! as preemption does on real hardware.

use std::cell::RefCell;
use std::rc::Rc;

use crate::stats::NodeStats;
use crate::time::Ns;

/// How a node learns about asynchronous (request) messages — the three
/// alternatives of §2.2.4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncScheme {
    /// Modified NIC firmware raises a host interrupt on the async port.
    /// `cost` is interrupt delivery + handler dispatch latency. This is the
    /// scheme the paper adopts for FAST/GM.
    Interrupt { cost: Ns },
    /// A dedicated thread spins on the receive queue. Dispatch is fast but
    /// the thread steals a CPU; we model the dispatch latency plus a
    /// per-service CPU tax on the application (`cpu_tax` is charged to the
    /// computation for every serviced request, standing in for the stolen
    /// cycles on the paper's 4-way SMP nodes).
    PollingThread { dispatch: Ns, cpu_tax: Ns },
    /// A timer wakes a thread every `period` to check for requests: the
    /// request waits, on average, half a period (we model the worst-ish
    /// case deterministically: service begins at the next tick).
    Timer { period: Ns, dispatch: Ns },
    /// UNIX SIGIO as used by the stock UDP implementation: kernel interrupt,
    /// softirq processing, then signal delivery to the user process.
    Sigio { cost: Ns },
}

impl AsyncScheme {
    /// Virtual time at which servicing a request that arrived at `arrival`
    /// can begin, ignoring what the node was doing (the clock clamps it).
    pub fn earliest_service(&self, arrival: Ns) -> Ns {
        match *self {
            AsyncScheme::Interrupt { cost } => arrival + cost,
            AsyncScheme::PollingThread { dispatch, .. } => arrival + dispatch,
            AsyncScheme::Timer { period, dispatch } => {
                // Next tick at or after arrival.
                let ticks = (arrival.0 + period.0 - 1) / period.0.max(1);
                Ns(ticks * period.0) + dispatch
            }
            AsyncScheme::Sigio { cost } => arrival + cost,
        }
    }

    /// Extra CPU time the scheme burns per serviced request.
    pub fn cpu_overhead(&self) -> Ns {
        match *self {
            AsyncScheme::Interrupt { cost } => cost,
            AsyncScheme::PollingThread { cpu_tax, .. } => cpu_tax,
            AsyncScheme::Timer { dispatch, .. } => dispatch,
            AsyncScheme::Sigio { cost } => cost,
        }
    }
}

/// A single node's virtual clock.
///
/// * `compute(d)` models application computation — *interruptible*: requests
///   that arrived during the segment are retroactively serviced inside it.
/// * `advance(d)` models protocol/handler work — not interruptible
///   (TreadMarks disables SIGIO inside handlers; the paper calls out that
///   interrupts are "often disabled for consistency reasons").
/// * `service_window(arrival, scheme, dur)` computes when an async request
///   is handled and charges the node for it.
#[derive(Debug)]
pub struct NodeClock {
    now: Ns,
    /// Start of the window we are allowed to retroactively preempt — the
    /// beginning of the current compute segment or wait.
    preemptible_since: Ns,
    pub stats: NodeStats,
}

impl NodeClock {
    pub fn new() -> Self {
        NodeClock {
            now: Ns::ZERO,
            preemptible_since: Ns::ZERO,
            stats: NodeStats::default(),
        }
    }

    pub fn now(&self) -> Ns {
        self.now
    }

    /// Start of the current preemptible window. Every future cost this
    /// node charges begins at or after this point, which makes
    /// `preemptible_since() + lookahead` a sound scheduler floor (see
    /// [`crate::sched`]).
    pub fn preemptible_since(&self) -> Ns {
        self.preemptible_since
    }

    /// Non-interruptible protocol work (message construction, diff
    /// creation, handler bodies…).
    pub fn advance(&mut self, d: Ns) {
        self.now += d;
        self.preemptible_since = self.now;
    }

    /// Interruptible application computation. Requests arriving inside this
    /// segment may be serviced retroactively (see [`Self::service_window`]).
    pub fn compute(&mut self, d: Ns) {
        self.preemptible_since = self.now;
        self.now += d;
        self.stats.compute_time += d;
    }

    /// Begin blocking (waiting for a response / barrier / lock): the wait
    /// window is preemptible from now on.
    pub fn begin_wait(&mut self) {
        self.preemptible_since = self.now;
    }

    /// Jump forward to an external event time (e.g. a response arrival).
    /// No-op if the event is in the past.
    pub fn wait_until(&mut self, t: Ns) {
        if t > self.now {
            self.stats.idle_time += t - self.now;
            self.now = t;
        }
        self.preemptible_since = self.now;
    }

    /// Service an asynchronous request: returns the virtual time at which
    /// the *response* can leave this node (service begin + `dur`), and
    /// charges the clock.
    ///
    /// Semantics: the service begins at the later of (a) the moment the
    /// async scheme can deliver the request and (b) the start of the current
    /// preemptible window. If that point is in our past, the request was
    /// handled *during* work we already accounted — the displaced work is
    /// pushed back by `dur` plus the scheme's CPU overhead. If it is in our
    /// future, we idle until it.
    pub fn service_window(&mut self, arrival: Ns, scheme: &AsyncScheme, dur: Ns) -> Ns {
        let begin = scheme.earliest_service(arrival).max(self.preemptible_since);
        let finish = begin + dur;
        if begin >= self.now {
            // We were idle (blocked) when it became serviceable.
            self.stats.idle_time += begin - self.now;
            self.now = finish;
        } else {
            // Retroactive preemption: displaced computation resumes after
            // the handler, plus the interrupt/dispatch overhead.
            self.now += dur + scheme.cpu_overhead();
        }
        // Later retro-services in the same segment cannot begin before this
        // one finished.
        self.preemptible_since = self.preemptible_since.max(finish);
        self.stats.requests_served += 1;
        self.stats.service_time += dur;
        finish
    }
}

impl Default for NodeClock {
    fn default() -> Self {
        Self::new()
    }
}

/// The clock is shared between the substrate, the DSM runtime and the
/// application *within one node thread*; `Rc<RefCell<…>>` keeps that cheap
/// and statically single-threaded.
pub type SharedClock = Rc<RefCell<NodeClock>>;

/// Convenience constructor for a node-local shared clock.
pub fn shared_clock() -> SharedClock {
    Rc::new(RefCell::new(NodeClock::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTR: AsyncScheme = AsyncScheme::Interrupt { cost: Ns(7_000) };

    #[test]
    fn advance_and_compute_move_time() {
        let mut c = NodeClock::new();
        c.advance(Ns(100));
        c.compute(Ns(900));
        assert_eq!(c.now(), Ns(1_000));
        assert_eq!(c.stats.compute_time, Ns(900));
    }

    #[test]
    fn wait_until_only_moves_forward() {
        let mut c = NodeClock::new();
        c.advance(Ns(500));
        c.wait_until(Ns(200));
        assert_eq!(c.now(), Ns(500));
        c.wait_until(Ns(800));
        assert_eq!(c.now(), Ns(800));
        assert_eq!(c.stats.idle_time, Ns(300));
    }

    #[test]
    fn service_while_idle_waits_for_arrival() {
        let mut c = NodeClock::new();
        c.begin_wait();
        // Request arrives at t=10us, interrupt costs 7us, handler 5us.
        let finish = c.service_window(Ns::from_us(10), &INTR, Ns::from_us(5));
        assert_eq!(finish, Ns::from_us(22));
        assert_eq!(c.now(), Ns::from_us(22));
    }

    #[test]
    fn service_preempts_computation_retroactively() {
        let mut c = NodeClock::new();
        c.compute(Ns::from_us(100)); // segment [0, 100us]
        // Arrived at 10us: with interrupts it was handled at 17us, inside
        // the segment. The response leaves at 22us even though the node's
        // clock already reads 100us; computation is pushed to 112us
        // (5us handler + 7us interrupt overhead).
        let finish = c.service_window(Ns::from_us(10), &INTR, Ns::from_us(5));
        assert_eq!(finish, Ns::from_us(22));
        assert_eq!(c.now(), Ns::from_us(112));
    }

    #[test]
    fn retro_services_are_serialized() {
        let mut c = NodeClock::new();
        c.compute(Ns::from_us(100));
        let f1 = c.service_window(Ns::from_us(10), &INTR, Ns::from_us(5));
        let f2 = c.service_window(Ns::from_us(11), &INTR, Ns::from_us(5));
        assert_eq!(f1, Ns::from_us(22));
        // Second can't begin before the first finished (22us > 11+7us).
        assert_eq!(f2, Ns::from_us(27));
    }

    #[test]
    fn advance_blocks_retroactive_preemption() {
        let mut c = NodeClock::new();
        c.advance(Ns::from_us(50)); // handler work: not preemptible
        let finish = c.service_window(Ns::from_us(10), &INTR, Ns::from_us(5));
        // Earliest service is 17us but the preemptible window starts at
        // 50us, so service runs [50, 55]us.
        assert_eq!(finish, Ns::from_us(55));
        assert_eq!(c.now(), Ns::from_us(55));
    }

    #[test]
    fn timer_scheme_rounds_to_next_tick() {
        let s = AsyncScheme::Timer {
            period: Ns::from_us(100),
            dispatch: Ns::from_us(2),
        };
        assert_eq!(s.earliest_service(Ns::from_us(1)), Ns::from_us(102));
        assert_eq!(s.earliest_service(Ns::from_us(100)), Ns::from_us(102));
        assert_eq!(s.earliest_service(Ns::from_us(101)), Ns::from_us(202));
    }

    #[test]
    fn polling_thread_dispatches_fast() {
        let s = AsyncScheme::PollingThread {
            dispatch: Ns::from_us(1),
            cpu_tax: Ns::from_us(3),
        };
        assert_eq!(s.earliest_service(Ns::from_us(10)), Ns::from_us(11));
        assert_eq!(s.cpu_overhead(), Ns::from_us(3));
    }

    #[test]
    fn sigio_scheme_costs_apply() {
        let s = AsyncScheme::Sigio { cost: Ns::from_us(22) };
        assert_eq!(s.earliest_service(Ns::from_us(10)), Ns::from_us(32));
        assert_eq!(s.cpu_overhead(), Ns::from_us(22));
    }

    #[test]
    fn stats_count_services() {
        let mut c = NodeClock::new();
        c.begin_wait();
        c.service_window(Ns(0), &INTR, Ns(100));
        c.service_window(Ns(0), &INTR, Ns(100));
        assert_eq!(c.stats.requests_served, 2);
        assert_eq!(c.stats.service_time, Ns(200));
    }
}
