//! Cluster runner: one OS thread per simulated node.
//!
//! The runner knows nothing about transports or DSM — it only hands each
//! node thread its identity and a fresh [`SharedClock`], runs the node body,
//! and joins the per-node results. Higher layers (tm-fast, tmk, tm-bench)
//! build their per-node state inside the body closure.

use std::sync::Arc;
use std::thread;

use crate::clock::{shared_clock, SharedClock};
use crate::params::SimParams;
use crate::stats::NodeStats;
use crate::time::Ns;

/// Identity and environment handed to each node thread.
pub struct NodeEnv {
    /// This node's id in `0..nprocs`.
    pub id: usize,
    /// Cluster size.
    pub nprocs: usize,
    /// The node's virtual clock (node-thread local).
    pub clock: SharedClock,
    /// The shared cost model.
    pub params: Arc<SimParams>,
}

/// Result of one node's run.
pub struct NodeOutcome<R> {
    pub id: usize,
    /// The node's final virtual time.
    pub finish: Ns,
    pub stats: NodeStats,
    pub result: R,
}

/// Spawn `nprocs` node threads, run `body` on each, and join.
///
/// The outcome vector is ordered by node id. Panics in any node are
/// propagated (a protocol deadlock shows up as a hung test, which is
/// intentional: blocking is real blocking).
pub fn run_cluster<R, F>(nprocs: usize, params: Arc<SimParams>, body: F) -> Vec<NodeOutcome<R>>
where
    R: Send + 'static,
    F: Fn(&NodeEnv) -> R + Send + Sync + 'static,
{
    assert!(nprocs >= 1, "cluster needs at least one node");
    let body = Arc::new(body);
    let mut handles = Vec::with_capacity(nprocs);
    for id in 0..nprocs {
        let body = Arc::clone(&body);
        let params = Arc::clone(&params);
        handles.push(
            thread::Builder::new()
                .name(format!("node-{id}"))
                .stack_size(16 << 20)
                .spawn(move || {
                    let env = NodeEnv {
                        id,
                        nprocs,
                        clock: shared_clock(),
                        params,
                    };
                    let result = body(&env);
                    let clock = env.clock.borrow();
                    NodeOutcome {
                        id,
                        finish: clock.now(),
                        stats: clock.stats.clone(),
                        result,
                    }
                })
                .expect("spawn node thread"),
        );
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect()
}

/// The paper reports "execution time" as the time of the slowest node.
pub fn cluster_time<R>(outcomes: &[NodeOutcome<R>]) -> Ns {
    outcomes.iter().map(|o| o.finish).max().unwrap_or(Ns::ZERO)
}

/// Aggregate all nodes' stats.
pub fn cluster_stats<R>(outcomes: &[NodeOutcome<R>]) -> NodeStats {
    let mut total = NodeStats::default();
    for o in outcomes {
        total.merge(&o.stats);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_nodes_and_orders_results() {
        let out = run_cluster(4, Arc::new(SimParams::default()), |env| {
            env.clock.borrow_mut().advance(Ns(100 * (env.id as u64 + 1)));
            env.id * 10
        });
        assert_eq!(out.len(), 4);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.id, i);
            assert_eq!(o.result, i * 10);
            assert_eq!(o.finish, Ns(100 * (i as u64 + 1)));
        }
        assert_eq!(cluster_time(&out), Ns(400));
    }

    #[test]
    fn stats_are_collected() {
        let out = run_cluster(2, Arc::new(SimParams::default()), |env| {
            env.clock.borrow_mut().compute(Ns(500));
        });
        let agg = cluster_stats(&out);
        assert_eq!(agg.compute_time, Ns(1000));
    }

    #[test]
    fn single_node_cluster_works() {
        let out = run_cluster(1, Arc::new(SimParams::default()), |_| 42u32);
        assert_eq!(out[0].result, 42);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        run_cluster(0, Arc::new(SimParams::default()), |_| ());
    }
}
