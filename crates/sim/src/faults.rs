//! Deterministic fault-injection plan.
//!
//! The paper's two substrates differ exactly in their failure contract:
//! GM delivers reliably (with send-token backpressure and error
//! callbacks), while UDP forces TreadMarks to carry its own
//! timeout/retransmission machinery. To reproduce that asymmetry the sim
//! needs faults that are *injected deterministically*: every decision is
//! drawn from a per-node seeded RNG and scheduled on virtual time, so a
//! given `(FaultPlan, workload)` pair always produces the identical
//! sequence of drops, duplicates, corruptions and stalls — down to exact
//! retransmission counts asserted in tests.
//!
//! The plan lives on [`crate::SimParams`]; consumers (the UDP socket
//! model, the GM node model, the FAST substrate) read the knobs that
//! apply to their layer. Everything defaults to off, and consumers must
//! not construct RNGs or change wire formats unless the relevant knob is
//! non-zero — zero-fault runs stay bit-identical to a build without any
//! of this code.

use crate::time::Ns;

/// A reproducible schedule of injected faults.
///
/// All probabilities are per-datagram (or per-frame) and drawn from a
/// stream seeded by [`FaultPlan::stream_seed`], so two runs with the same
/// plan and workload observe the same faults in the same order.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Base seed; mixed with the node id and a per-consumer salt.
    pub seed: u64,
    /// Probability an injected datagram is dropped in flight (beyond the
    /// legacy `udp.drop_probability`, which predates this plan).
    pub drop_probability: f64,
    /// Probability a datagram is delivered twice.
    pub duplicate_probability: f64,
    /// Probability a datagram is delayed by [`FaultPlan::reorder_delay`],
    /// letting later traffic overtake it.
    pub reorder_probability: f64,
    /// Extra in-flight delay applied to reordered datagrams.
    pub reorder_delay: Ns,
    /// Probability one payload byte of a datagram/frame is flipped.
    /// Enabling this also turns on wire checksums (see
    /// [`FaultPlan::checksum_frames`]).
    pub corrupt_probability: f64,
    /// GM token starvation: when non-zero, sends fail with
    /// `NoSendTokens` during the first `token_starvation_duration` of
    /// every `token_starvation_period` of virtual time.
    pub token_starvation_period: Ns,
    /// Length of each starvation window (must be < the period to let
    /// progress resume).
    pub token_starvation_duration: Ns,
    /// Receive-buffer pressure: overrides the per-socket queue depth
    /// (0 = keep the stack's default), so overflow drops can be forced.
    pub recvbuf_datagrams: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xfa17_0000_0000_0001,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_delay: Ns::from_us(200),
            corrupt_probability: 0.0,
            token_starvation_period: Ns(0),
            token_starvation_duration: Ns(0),
            recvbuf_datagrams: 0,
        }
    }
}

impl FaultPlan {
    /// Any fault at all enabled?
    pub fn enabled(&self) -> bool {
        self.lossy()
            || self.duplicate_probability > 0.0
            || self.reorder_probability > 0.0
            || self.corrupt_probability > 0.0
            || self.token_starvation_period > Ns(0)
            || self.recvbuf_datagrams > 0
    }

    /// Do datagrams need end-to-end retransmission to survive this plan?
    /// (Corruption counts: a CRC-rejected datagram is a loss.)
    pub fn lossy(&self) -> bool {
        self.drop_probability > 0.0 || self.corrupt_probability > 0.0
    }

    /// Should wire frames carry a checksum trailer? Only when corruption
    /// is being injected — the trailer changes frame sizes and therefore
    /// modeled costs, so it must not leak into zero-fault timing runs.
    pub fn checksum_frames(&self) -> bool {
        self.corrupt_probability > 0.0
    }

    /// Is virtual time `now` inside a GM token-starvation window?
    pub fn token_starved(&self, now: Ns) -> bool {
        self.token_starvation_period > Ns(0)
            && now.0 % self.token_starvation_period.0 < self.token_starvation_duration.0
    }

    /// Seed for one consumer's fault stream on one node. Distinct salts
    /// keep e.g. the UDP drop stream independent of the FAST corruption
    /// stream so enabling one fault never perturbs another's sequence.
    pub fn stream_seed(&self, node: usize, salt: u64) -> u64 {
        self.seed
            ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93)
    }
}

/// FNV-1a over the payload, used as the injected-corruption detector on
/// wire frames. Not cryptographic — it only needs to catch the single
/// byte flips [`FaultPlan::corrupt_probability`] injects.
pub fn checksum32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_off() {
        let f = FaultPlan::default();
        assert!(!f.enabled());
        assert!(!f.lossy());
        assert!(!f.checksum_frames());
        assert!(!f.token_starved(Ns(0)));
        assert!(!f.token_starved(Ns(123_456_789)));
    }

    #[test]
    fn lossy_when_dropping_or_corrupting() {
        let f = FaultPlan {
            drop_probability: 0.1,
            ..FaultPlan::default()
        };
        assert!(f.lossy() && f.enabled() && !f.checksum_frames());
        let g = FaultPlan {
            corrupt_probability: 0.05,
            ..FaultPlan::default()
        };
        assert!(g.lossy() && g.checksum_frames());
    }

    #[test]
    fn starvation_windows_repeat_on_the_period() {
        let f = FaultPlan {
            token_starvation_period: Ns::from_ms(1),
            token_starvation_duration: Ns::from_us(100),
            ..FaultPlan::default()
        };
        assert!(f.token_starved(Ns(0)));
        assert!(f.token_starved(Ns(99_999)));
        assert!(!f.token_starved(Ns(100_000)));
        assert!(!f.token_starved(Ns(999_999)));
        assert!(f.token_starved(Ns(1_000_000)));
        assert!(f.token_starved(Ns(1_050_000)));
    }

    #[test]
    fn stream_seeds_differ_by_node_and_salt() {
        let f = FaultPlan::default();
        assert_ne!(f.stream_seed(0, 1), f.stream_seed(1, 1));
        assert_ne!(f.stream_seed(0, 1), f.stream_seed(0, 2));
        // But they are pure functions of (plan, node, salt).
        assert_eq!(f.stream_seed(3, 7), f.stream_seed(3, 7));
    }

    #[test]
    fn checksum_detects_single_byte_flips() {
        let data = vec![0xABu8; 100];
        let good = checksum32(&data);
        for i in 0..data.len() {
            let mut bad = data.clone();
            bad[i] ^= 0x40;
            assert_ne!(checksum32(&bad), good, "flip at {i} undetected");
        }
        assert_eq!(checksum32(&data), good);
    }
}
