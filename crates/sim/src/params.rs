//! The calibrated cost model.
//!
//! Every constant here models the paper's testbed (§3.1): 16 nodes, each a
//! 4-way 700 MHz Pentium-III with a 66 MHz/64-bit PCI bus, LANai-9 Myrinet
//! NICs on a 2 Gb/s cut-through crossbar, Linux 2.4.18. Calibration targets
//! are the paper's own measurements:
//!
//! * raw GM:   8.99 µs one-way latency (1 byte), ~235 MB/s bandwidth
//! * FAST/GM:  9.4 µs latency, ~215 MB/s (one extra send-side copy)
//! * UDP/GM:   ~30 µs latency (digits lost in the provided OCR text;
//!   contemporary sockets-over-GM measurements sit in the 25–35 µs range)
//!
//! `tests/calibration.rs` in the workspace root asserts these targets.

use crate::clock::AsyncScheme;
use crate::faults::FaultPlan;
use crate::sched::{SchedMode, TokenMode};
use crate::time::Ns;

/// Wire and switch model for the Myrinet-2000 fabric.
#[derive(Debug, Clone)]
pub struct MyrinetParams {
    /// Effective link bandwidth in MB/s. Raw links are 2 Gb/s = 250 MB/s;
    /// routing headers + CRC trailers shave ~5%.
    pub link_mb_s: f64,
    /// Cut-through latency of the (single) crossbar switch.
    pub switch_latency: Ns,
    /// Fixed NIC transmit-side cost: LANai picks up the send descriptor and
    /// programs the DMA engine.
    pub nic_tx: Ns,
    /// Fixed NIC receive-side cost: LANai matches the packet and programs
    /// the host-bound DMA.
    pub nic_rx: Ns,
    /// Cost of raising a host interrupt from the NIC (the firmware
    /// modification of §2.2.4).
    pub host_interrupt: Ns,
    /// LANai-side cost of merging one combined barrier arrival in firmware
    /// (vector-clock meet/join plus record-set union), used by the
    /// NIC-offloaded combining-tree barrier (§5 future work). Charged per
    /// arrival *instead of* `host_interrupt` + the host handler dispatch.
    pub nic_combine: Ns,
    /// LANai-side per-record cost while combining (the firmware walks the
    /// piggybacked write-notice list); the 132 MHz LANai is slower per item
    /// than the host CPU, but never pays the PCI + interrupt crossing.
    pub nic_combine_per_record: Ns,
}

impl Default for MyrinetParams {
    fn default() -> Self {
        MyrinetParams {
            link_mb_s: 237.0,
            switch_latency: Ns(300),
            nic_tx: Ns(2_500),
            nic_rx: Ns(2_800),
            host_interrupt: Ns(7_000),
            nic_combine: Ns(1_500),
            nic_combine_per_record: Ns(400),
        }
    }
}

/// Host-side costs common to every transport.
#[derive(Debug, Clone)]
pub struct HostParams {
    /// Bulk memcpy through the memory system (kernel socket copies).
    pub memcpy_mb_s: f64,
    /// Copy into a warm, registered send-pool buffer (write-combined,
    /// mostly cache-resident for TreadMarks' small messages). This is what
    /// lets FAST/GM sit at ~215 MB/s instead of collapsing to the
    /// store-and-forward rate.
    pub fast_copy_mb_s: f64,
    /// One syscall entry/exit.
    pub syscall: Ns,
    /// SIGIO delivery: kernel interrupt bottom half + signal queueing +
    /// user handler dispatch. The stock TreadMarks async path.
    pub sigio: Ns,
    /// Kernel scheduler wakeup of a blocked process.
    pub sched_wakeup: Ns,
    /// Pinning one page of memory for DMA (gm_register_memory).
    pub pin_page: Ns,
}

impl Default for HostParams {
    fn default() -> Self {
        HostParams {
            memcpy_mb_s: 800.0,
            fast_copy_mb_s: 2_300.0,
            syscall: Ns(1_500),
            sigio: Ns(22_000),
            sched_wakeup: Ns(5_000),
            pin_page: Ns(1_000),
        }
    }
}

/// GM user-level API model (§1.2 of the paper, and the GM API spec).
#[derive(Debug, Clone)]
pub struct GmParams {
    /// Ports per NIC. GM offers 8; port 0 is reserved for the mapper,
    /// leaving seven usable (the paper: "That gives us only seven ports").
    pub num_ports: u8,
    /// Host CPU cost of gm_send_with_callback (descriptor build + doorbell).
    pub send_overhead: Ns,
    /// Host CPU cost of one gm_receive poll that finds an event.
    pub recv_poll_hit: Ns,
    /// Host CPU cost of one empty gm_receive poll.
    pub recv_poll_miss: Ns,
    /// Sender-side resend window: if the receiver never preposts a matching
    /// buffer, the send fails via callback and the port is disabled.
    pub resend_timeout: Ns,
    /// Cost of re-enabling a disabled port (GM probes the network).
    pub port_reenable: Ns,
    /// Send tokens per port (max outstanding sends).
    pub send_tokens: usize,
}

impl Default for GmParams {
    fn default() -> Self {
        GmParams {
            num_ports: 8,
            send_overhead: Ns(900),
            recv_poll_hit: Ns(2_500),
            recv_poll_miss: Ns(150),
            resend_timeout: Ns::from_secs(3),
            port_reenable: Ns::from_ms(50),
            send_tokens: 16,
        }
    }
}

/// Kernel UDP/IP stack model for the Sockets-GM baseline (UDP/GM).
#[derive(Debug, Clone)]
pub struct UdpParams {
    /// Transmit-side UDP/IP processing (header build, route lookup, …).
    pub tx_proto: Ns,
    /// Receive-side processing (interrupt bottom half, IP/UDP demux).
    pub rx_proto: Ns,
    /// Receive NIC interrupt (the kernel path takes one per packet; GM's
    /// user-level path does not).
    pub rx_interrupt: Ns,
    /// Fragment size: sockets-GM carries datagrams over GM in chunks.
    pub mtu: usize,
    /// Per-fragment kernel bookkeeping beyond the first.
    pub per_fragment: Ns,
    /// Probability an entire datagram is dropped (UDP is unreliable; the
    /// paper could not even measure UDP/GM bandwidth because of this).
    /// Timing runs default to 0.
    pub drop_probability: f64,
    /// Initial DSM retransmission timeout (virtual time). Only consulted
    /// when the run is lossy; a zero-fault run never arms the timer.
    /// Stock TreadMarks used a comparable per-request UDP timeout.
    pub rto: Ns,
    /// Retransmission cap: after this many resends of one request the
    /// runtime gives up and panics (a real deployment would evict the
    /// peer). Backoff doubles the RTO on every resend.
    pub rto_retries: u32,
}

impl Default for UdpParams {
    fn default() -> Self {
        UdpParams {
            tx_proto: Ns(5_000),
            rx_proto: Ns(5_000),
            rx_interrupt: Ns(8_000),
            mtu: 1_500,
            per_fragment: Ns(2_000),
            drop_probability: 0.0,
            rto: Ns::from_us(400),
            rto_retries: 12,
        }
    }
}

/// TreadMarks memory-management costs (§2 "user-level memory management").
#[derive(Debug, Clone)]
pub struct DsmParams {
    /// SIGSEGV delivery + fault handler entry on a page access miss.
    pub page_fault: Ns,
    /// One mprotect call.
    pub mprotect: Ns,
    /// Fixed overhead of creating a twin (page copy is charged at
    /// `HostParams::memcpy_mb_s` on top).
    pub twin_overhead: Ns,
    /// Word-compare scan rate for diff creation, MB/s of page scanned.
    pub diff_scan_mb_s: f64,
    /// Fixed overhead per diff created/applied.
    pub diff_overhead: Ns,
    /// Request-handler entry: decode + dispatch inside the interrupt/SIGIO
    /// context.
    pub handler_dispatch: Ns,
    /// Page size. TreadMarks uses the VM page size.
    pub page_size: usize,
    /// Largest message TreadMarks can send (the paper: 32 KB, GM size 15).
    pub max_msg: usize,
}

impl Default for DsmParams {
    fn default() -> Self {
        DsmParams {
            page_fault: Ns(10_000),
            mprotect: Ns(3_000),
            twin_overhead: Ns(1_000),
            diff_scan_mb_s: 600.0,
            diff_overhead: Ns(1_000),
            handler_dispatch: Ns(1_500),
            page_size: 4_096,
            max_msg: 32 * 1024,
        }
    }
}

/// CPU model for application compute costs.
#[derive(Debug, Clone)]
pub struct CpuParams {
    /// Nanoseconds per abstract "work unit" — roughly a handful of
    /// floating-point ops with their loads/stores on a 700 MHz P-III.
    pub ns_per_unit: f64,
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams { ns_per_unit: 10.0 }
    }
}

/// Everything, bundled. One of these is shared (via `Arc`) by the fabric
/// and all node threads.
#[derive(Debug, Clone, Default)]
pub struct SimParams {
    pub net: MyrinetParams,
    pub host: HostParams,
    pub gm: GmParams,
    pub udp: UdpParams,
    pub dsm: DsmParams,
    pub cpu: CpuParams,
    /// Deterministic fault-injection plan; all-off by default.
    pub faults: FaultPlan,
    /// Thread-interleaving regime: free-running (fast, wall-clock
    /// arbitration under contention) or conservative lockstep
    /// (byte-reproducible). See [`crate::sched`].
    pub sched: SchedMode,
    /// Reservation-token granularity for the lockstep scheduler: one
    /// cluster-wide token ([`TokenMode::Single`], the PR 6 baseline) or
    /// one per rx link ([`TokenMode::PerReceiver`], the default —
    /// transmits to distinct receivers overlap). Ignored under
    /// [`SchedMode::FreeRun`].
    pub tokens: TokenMode,
}

impl SimParams {
    /// The paper's testbed, as calibrated against §3.1.
    pub fn paper_testbed() -> Self {
        SimParams::default()
    }

    /// The paper's testbed under the conservative lockstep scheduler
    /// ([`SchedMode::Lockstep`]): identical cost model, byte-reproducible
    /// thread interleaving. The default for all pinned-output tests.
    pub fn lockstep_testbed() -> Self {
        SimParams {
            sched: SchedMode::Lockstep,
            ..SimParams::default()
        }
    }

    /// The async scheme the paper adopted for FAST/GM (modified firmware).
    pub fn interrupt_scheme(&self) -> AsyncScheme {
        AsyncScheme::Interrupt {
            cost: self.net.host_interrupt,
        }
    }

    /// The stock TreadMarks/UDP async scheme.
    pub fn sigio_scheme(&self) -> AsyncScheme {
        AsyncScheme::Sigio {
            cost: self.host.sigio,
        }
    }

    /// Compute cost helper: `units` abstract work units.
    pub fn work(&self, units: u64) -> Ns {
        Ns((units as f64 * self.cpu.ns_per_unit).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = SimParams::paper_testbed();
        assert_eq!(p.gm.num_ports, 8);
        assert_eq!(p.dsm.page_size, 4096);
        assert!(p.net.link_mb_s > 200.0 && p.net.link_mb_s <= 250.0);
        assert!(p.host.fast_copy_mb_s > p.host.memcpy_mb_s);
    }

    #[test]
    fn raw_gm_small_message_latency_near_9us() {
        // One-way fixed path: send overhead + NIC tx + switch + NIC rx +
        // poll hit. This is what tm-gm charges for a 1-byte message.
        let p = SimParams::paper_testbed();
        let fixed = p.gm.send_overhead
            + p.net.nic_tx
            + p.net.switch_latency
            + p.net.nic_rx
            + p.gm.recv_poll_hit;
        let wire = Ns::for_bytes(1, p.net.link_mb_s);
        let total = (fixed + wire).as_us();
        assert!(
            (total - 8.99).abs() < 0.5,
            "raw GM small-message latency {total:.2}us, want ~8.99us"
        );
    }

    #[test]
    fn work_scales_linearly() {
        let p = SimParams::paper_testbed();
        assert_eq!(p.work(0), Ns(0));
        assert_eq!(p.work(100), Ns(1_000));
    }

    #[test]
    fn interrupt_scheme_uses_nic_cost() {
        let p = SimParams::paper_testbed();
        match p.interrupt_scheme() {
            AsyncScheme::Interrupt { cost } => assert_eq!(cost, p.net.host_interrupt),
            _ => panic!("wrong scheme"),
        }
    }
}
