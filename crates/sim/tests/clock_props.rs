//! Property tests on the virtual clock: the invariants the whole timing
//! model stands on.

use proptest::prelude::*;
use tm_sim::{AsyncScheme, Ns, NodeClock};

proptest! {
    /// The clock never goes backwards, whatever mix of operations runs.
    #[test]
    fn clock_is_monotone(ops in proptest::collection::vec((0u8..4, 0u64..1_000_000), 1..64)) {
        let mut c = NodeClock::new();
        let scheme = AsyncScheme::Interrupt { cost: Ns::from_us(7) };
        let mut last = Ns::ZERO;
        for (kind, val) in ops {
            match kind {
                0 => c.advance(Ns(val)),
                1 => c.compute(Ns(val)),
                2 => c.wait_until(Ns(val)),
                _ => {
                    c.service_window(Ns(val), &scheme, Ns(val / 2 + 1));
                }
            }
            prop_assert!(c.now() >= last, "clock regressed");
            last = c.now();
        }
    }

    /// Service completion never precedes the scheme's earliest delivery.
    #[test]
    fn service_respects_scheme_latency(
        arrival in 0u64..1_000_000,
        dur in 1u64..100_000,
        pre in 0u64..2_000_000,
    ) {
        let scheme = AsyncScheme::Interrupt { cost: Ns::from_us(7) };
        let mut c = NodeClock::new();
        c.compute(Ns(pre));
        let finish = c.service_window(Ns(arrival), &scheme, Ns(dur));
        prop_assert!(finish >= scheme.earliest_service(Ns(arrival)) + Ns(dur));
    }

    /// Back-to-back services of the same arrival serialize: each later
    /// finish is strictly after the previous.
    #[test]
    fn services_serialize(count in 2usize..10, arrival in 0u64..100_000) {
        let scheme = AsyncScheme::Interrupt { cost: Ns::from_us(7) };
        let mut c = NodeClock::new();
        c.compute(Ns::from_ms(1));
        let mut prev = Ns::ZERO;
        for _ in 0..count {
            let f = c.service_window(Ns(arrival), &scheme, Ns(5_000));
            prop_assert!(f > prev);
            prev = f;
        }
    }

    /// Timer scheme delivery is always at a tick boundary plus dispatch,
    /// at or after arrival.
    #[test]
    fn timer_ticks_align(arrival in 1u64..10_000_000, period in 1_000u64..1_000_000) {
        let s = AsyncScheme::Timer { period: Ns(period), dispatch: Ns(2_000) };
        let t = s.earliest_service(Ns(arrival));
        let tick = t - Ns(2_000);
        prop_assert!(tick >= Ns(arrival));
        prop_assert_eq!(tick.0 % period, 0);
        prop_assert!(tick.0 - arrival < period + 1);
    }
}
