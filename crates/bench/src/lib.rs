//! # tm-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index): E1 latency/bandwidth, E2 microbenchmarks (Figure 3), E3
//! execution time vs system size (Figure 4), E4 execution time vs
//! application size (Figure 5 + Table 1), E5 the §2.2.2 registered-memory
//! arithmetic, E6 the §2.2.4 async-handling ablation.
//!
//! This library holds the shared pieces: application specs with their
//! size ladders, transport-sweeping runners that also *validate every
//! timed run against the sequential reference*, and table formatting.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use tm_apps::{
    fft_parallel, fft_seq, jacobi_parallel, jacobi_seq, sor_parallel, sor_seq, tsp_parallel,
    tsp_seq, FftConfig, JacobiConfig, SorConfig, TspConfig,
};
use tm_fast::{run_fast_dsm, run_udp_dsm, FastConfig, Transport};
use tm_sim::runner::cluster_time;
use tm_sim::{Ns, SimParams};
use tmk::{LayerMetrics, MetricsHandle, Substrate, Tmk, TmkConfig};

/// Cross-run metrics accumulator: when a sweep binary turns
/// instrumentation on ([`set_metrics_enabled`]), every [`run_spec_with`]
/// run taps each node's event hook and folds the tallies in here. The
/// hook charges no virtual time, so timed results are unchanged.
static METRICS: Mutex<Option<LayerMetrics>> = Mutex::new(None);
static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// Enable/disable per-layer event tallying for subsequent runs.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ON.store(on, Ordering::Relaxed);
}

/// Take (and clear) the accumulated metrics, if any were recorded.
pub fn take_metrics() -> Option<LayerMetrics> {
    METRICS.lock().unwrap().take()
}

fn with_metrics<S: Substrate, R>(tmk: &mut Tmk<S>, body: impl FnOnce(&mut Tmk<S>) -> R) -> R {
    let handle = METRICS_ON
        .load(Ordering::Relaxed)
        .then(|| MetricsHandle::install(tmk));
    let r = body(tmk);
    if let Some(h) = handle {
        METRICS
            .lock()
            .unwrap()
            .get_or_insert_with(LayerMetrics::default)
            .merge(&h.snapshot());
        tmk.clear_event_hook();
    }
    r
}

/// What an application run returns (for validation).
#[derive(Debug, Clone, PartialEq)]
pub enum AppResult {
    Checksum(f64),
    ChecksumResidual(f64, f64),
    TourLength(u32),
}

/// A runnable, validatable application instance.
#[derive(Debug, Clone)]
pub enum AppSpec {
    Jacobi(JacobiConfig),
    Sor(SorConfig),
    Tsp(TspConfig),
    Fft(FftConfig),
}

impl AppSpec {
    pub fn name(&self) -> &'static str {
        match self {
            AppSpec::Jacobi(_) => "Jacobi",
            AppSpec::Sor(_) => "SOR",
            AppSpec::Tsp(_) => "TSP",
            AppSpec::Fft(_) => "3Dfft",
        }
    }

    /// Short description of the problem size.
    pub fn size_label(&self) -> String {
        match self {
            AppSpec::Jacobi(c) => format!("{}x{}", c.size, c.size),
            AppSpec::Sor(c) => format!("{}x{}", c.rows, c.cols),
            AppSpec::Tsp(c) => format!("{} cities", c.cities),
            AppSpec::Fft(c) => format!("{0}x{0}x{0}", c.size),
        }
    }

    /// Run on one node of the cluster (generic over transport).
    pub fn body<S: Substrate>(&self, tmk: &mut Tmk<S>) -> AppResult {
        match self {
            AppSpec::Jacobi(c) => AppResult::Checksum(jacobi_parallel(tmk, c)),
            AppSpec::Sor(c) => {
                let (s, r) = sor_parallel(tmk, c);
                AppResult::ChecksumResidual(s, r)
            }
            AppSpec::Tsp(c) => AppResult::TourLength(tsp_parallel(tmk, c)),
            AppSpec::Fft(c) => AppResult::Checksum(fft_parallel(tmk, c)),
        }
    }

    /// The sequential reference answer.
    pub fn expected(&self) -> AppResult {
        match self {
            AppSpec::Jacobi(c) => AppResult::Checksum(jacobi_seq(c)),
            AppSpec::Sor(c) => {
                let (s, r) = sor_seq(c);
                AppResult::ChecksumResidual(s, r)
            }
            AppSpec::Tsp(c) => AppResult::TourLength(tsp_seq(c)),
            AppSpec::Fft(c) => AppResult::Checksum(fft_seq(c)),
        }
    }

    fn results_match(&self, got: &AppResult, want: &AppResult) -> bool {
        match (got, want) {
            (AppResult::ChecksumResidual(gs, gr), AppResult::ChecksumResidual(ws, wr)) => {
                gs == ws && (gr - wr).abs() <= 1e-9 * wr.abs().max(1.0)
            }
            _ => got == want,
        }
    }

    /// The paper's default problem instance (§3.3.1, with iteration
    /// counts scaled to keep harness runtime reasonable).
    pub fn default_instance(app: &str) -> AppSpec {
        match app {
            "jacobi" => AppSpec::Jacobi(JacobiConfig::new(1024, 10)),
            "sor" => AppSpec::Sor(SorConfig::new(1024, 512, 10)),
            "tsp" => AppSpec::Tsp(TspConfig::new(12)),
            "fft" => AppSpec::Fft(FftConfig::new(32)),
            other => panic!("unknown app {other}"),
        }
    }

    /// The four problem sizes of Table 1 (reconstructed — the OCR of the
    /// paper lost the digits; ladders chosen to span ~an order of
    /// magnitude like the original).
    pub fn size_ladder(app: &str) -> Vec<AppSpec> {
        match app {
            "jacobi" => [256, 512, 1024, 1536]
                .iter()
                .map(|&z| AppSpec::Jacobi(JacobiConfig::new(z, 10)))
                .collect(),
            "sor" => [256, 512, 1024, 2048]
                .iter()
                .map(|&r| AppSpec::Sor(SorConfig::new(r, 512, 10)))
                .collect(),
            "tsp" => [10, 11, 12, 13]
                .iter()
                .map(|&c| AppSpec::Tsp(TspConfig::new(c)))
                .collect(),
            "fft" => [8, 16, 32, 64]
                .iter()
                .map(|&z| AppSpec::Fft(FftConfig::new(z)))
                .collect(),
            other => panic!("unknown app {other}"),
        }
    }

    pub const APPS: [&'static str; 4] = ["jacobi", "sor", "tsp", "fft"];
}

/// Run `spec` on an `n`-node cluster over `transport`; returns the
/// cluster execution time. Panics if any node's answer deviates from the
/// sequential reference — a timed run that computed the wrong thing is
/// worthless.
pub fn run_spec(transport: Transport, n: usize, spec: &AppSpec) -> Ns {
    let want = spec.expected();
    run_spec_with(transport, n, spec, &want)
}

/// Scheduler regime for the bench binaries, from `E2_SCHED`: `freerun`
/// (the default) or `lockstep`. Under `lockstep` every row of every
/// experiment is byte-reproducible across invocations (see
/// `tm_sim::sched`); the pinned `results/*.txt` files are regenerated in
/// that regime. Free-run output is pinned only for rows whose message
/// order is serialized by data dependencies.
pub fn sched_mode() -> tm_sim::SchedMode {
    let v = std::env::var("E2_SCHED").unwrap_or_default();
    tm_sim::SchedMode::parse(&v)
        .unwrap_or_else(|| panic!("unknown E2_SCHED scheduler {v:?} (freerun|lockstep)"))
}

/// The paper testbed under the [`sched_mode`] regime.
pub fn bench_testbed() -> SimParams {
    let mut p = SimParams::paper_testbed();
    p.sched = sched_mode();
    p
}

/// Like [`run_spec`] but with a precomputed sequential reference — sweep
/// binaries compute the reference once per problem instance.
pub fn run_spec_with(transport: Transport, n: usize, spec: &AppSpec, want: &AppResult) -> Ns {
    let params = Arc::new(bench_testbed());
    let outcomes = match transport {
        Transport::Fast => {
            let cfg = FastConfig::paper(&params);
            let s = spec.clone();
            run_fast_dsm(n, params, cfg, TmkConfig::default(), move |tmk| {
                with_metrics(tmk, |tmk| s.body(tmk))
            })
        }
        Transport::Udp => {
            let s = spec.clone();
            run_udp_dsm(n, params, TmkConfig::default(), move |tmk| {
                with_metrics(tmk, |tmk| s.body(tmk))
            })
        }
    };
    for o in &outcomes {
        assert!(
            spec.results_match(&o.result, want),
            "{} on {} x{n}: node {} returned {:?}, sequential reference {:?}",
            spec.name(),
            transport.label(),
            o.id,
            o.result,
            want
        );
    }
    cluster_time(&outcomes)
}

/// Pretty table helper.
pub fn print_header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// A two-transport comparison row.
pub fn print_row(label: &str, udp: Ns, fast: Ns) {
    println!(
        "{label:<28} {:>14} {:>14} {:>8.2}x",
        format!("{udp}"),
        format!("{fast}"),
        udp.0 as f64 / fast.0.max(1) as f64
    );
}

pub fn print_row_header() {
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "case", "UDP/GM", "FAST/GM", "factor"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_have_ladders_of_four() {
        for app in AppSpec::APPS {
            assert_eq!(AppSpec::size_ladder(app).len(), 4, "{app}");
            let _ = AppSpec::default_instance(app);
        }
    }

    #[test]
    fn small_runs_validate_on_both_transports() {
        let spec = AppSpec::Jacobi(JacobiConfig::new(128, 5));
        let tf = run_spec(Transport::Fast, 2, &spec);
        let tu = run_spec(Transport::Udp, 2, &spec);
        assert!(tu > tf, "udp {tu} vs fast {tf}");
    }

    #[test]
    fn tsp_validates_over_fast() {
        let spec = AppSpec::Tsp(TspConfig::new(8));
        let t = run_spec(Transport::Fast, 3, &spec);
        assert!(t > Ns::ZERO);
    }
}
