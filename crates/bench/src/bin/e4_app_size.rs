//! E4 — Figure 5 + Table 1: execution time vs application size.
//!
//! Each application over its four-step size ladder (Table 1 as
//! reconstructed in DESIGN.md), on 16 nodes (FAST-16, UDP-16) and on 2
//! processes (FAST-2, UDP-2), mirroring the four curves of each Figure 5
//! panel. The paper's shape: the UDP/FAST separation *widens* as the
//! problem grows (up to ~4.3× for 3D-FFT), most prominently for the
//! communication-bound codes.

use tm_bench::{print_header, run_spec_with, AppSpec};
use tm_fast::Transport;

fn main() {
    print_header("E4: execution time vs application size (Figure 5 / Table 1)");
    for app in AppSpec::APPS {
        println!();
        println!("--- {} ---", AppSpec::default_instance(app).name());
        println!(
            "{:<14} {:>13} {:>13} {:>13} {:>13} {:>8}",
            "size", "UDP-2", "FAST-2", "UDP-16", "FAST-16", "factor16"
        );
        for spec in AppSpec::size_ladder(app) {
            let want = spec.expected();
            let udp2 = run_spec_with(Transport::Udp, 2, &spec, &want);
            let fast2 = run_spec_with(Transport::Fast, 2, &spec, &want);
            let udp16 = run_spec_with(Transport::Udp, 16, &spec, &want);
            let fast16 = run_spec_with(Transport::Fast, 16, &spec, &want);
            println!(
                "{:<14} {:>13} {:>13} {:>13} {:>13} {:>7.2}x",
                spec.size_label(),
                format!("{udp2}"),
                format!("{fast2}"),
                format!("{udp16}"),
                format!("{fast16}"),
                udp16.0 as f64 / fast16.0.max(1) as f64,
            );
        }
    }
    println!();
    println!("paper: separation grows with size; improvements up to ~4.34x (FFT),");
    println!("~5.5x (SOR), ~1.54x (Jacobi), ~1.84x (TSP) at the largest sizes.");
}
