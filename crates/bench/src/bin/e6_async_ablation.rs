//! E6 — §2.2.4's asynchronous-message handling alternatives.
//!
//! The paper weighed three options for delivering GM's poll-only receives
//! to a busy TreadMarks process — a periodic timer, a dedicated polling
//! thread, and a NIC-firmware interrupt — and adopted the interrupt.
//! This ablation measures request/response latency through each scheme's
//! delivery model (the service window opens when the interrupt fires /
//! the poller notices / the timer ticks), plus the stock UDP SIGIO path,
//! and the virtual time the peer spends on servicing.

use std::sync::Arc;

use parking_lot::Mutex;
use tm_bench::print_header;
use tm_fast::{FastConfig, FastSubstrate};
use tm_gm::gm_cluster;
use tm_sim::{run_cluster, AsyncScheme, Ns, SimParams};
use tm_udp::UdpStack;
use tmk::Substrate;

const ROUNDS: usize = 50;
/// Modeled handler work per request.
const HANDLER: Ns = Ns::from_us(5);

/// Measure mean RPC latency into a busy peer over FAST with `scheme`.
/// Returns (mean latency µs, peer finish time µs).
fn fast_with_scheme(scheme: AsyncScheme) -> (f64, f64) {
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, board, nics) = gm_cluster(2, Arc::clone(&params));
    let nics = Arc::new(Mutex::new(nics.into_iter().map(Some).collect::<Vec<_>>()));
    let out = run_cluster(2, Arc::clone(&params), move |env| {
        let nic = nics.lock()[env.id].take().unwrap();
        let mut cfg = FastConfig::paper(&env.params);
        cfg.scheme = scheme;
        let mut sub = FastSubstrate::new(
            nic,
            env.clock.clone(),
            Arc::clone(&env.params),
            Arc::clone(&board),
            cfg,
        );
        if env.id == 0 {
            // Requester: paced RPCs into the busy peer.
            let mut total = Ns::ZERO;
            for _ in 0..ROUNDS {
                let t0 = env.clock.borrow().now();
                sub.send_request(1, &[9u8; 16]);
                let _ = sub.next_incoming();
                total += env.clock.borrow().now() - t0;
            }
            (total.as_us() / ROUNDS as f64, 0.0)
        } else {
            // Peer: service each request through the scheme's delivery
            // model — the service window starts when the timer tick /
            // poll pass / interrupt would have delivered it.
            for _ in 0..ROUNDS {
                let msg = sub.next_incoming();
                let scheme = sub.scheme();
                let finish = env
                    .clock
                    .borrow_mut()
                    .service_window(msg.arrival, &scheme, HANDLER);
                sub.send_response_at(msg.from, &[1u8], finish);
            }
            (0.0, env.clock.borrow().now().as_us())
        }
    });
    (out[0].result.0, out[1].result.1)
}

/// The same harness over the kernel UDP path (SIGIO).
fn udp_sigio() -> (f64, f64) {
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, nics) = tm_myrinet::Fabric::new(2, Arc::clone(&params));
    let nics = Arc::new(Mutex::new(nics.into_iter().map(Some).collect::<Vec<_>>()));
    let out = run_cluster(2, Arc::clone(&params), move |env| {
        let nic = nics.lock()[env.id].take().unwrap();
        let mut udp = UdpStack::new(nic, env.clock.clone(), Arc::clone(&env.params));
        udp.bind(1, true);
        let sigio = AsyncScheme::Sigio {
            cost: env.params.host.sigio,
        };
        if env.id == 0 {
            let mut total = Ns::ZERO;
            for _ in 0..ROUNDS {
                let t0 = env.clock.borrow().now();
                udp.sendto(1, 1, 1, &[9u8; 16]);
                let _ = udp.recvfrom(1);
                total += env.clock.borrow().now() - t0;
            }
            (total.as_us() / ROUNDS as f64, 0.0)
        } else {
            for _ in 0..ROUNDS {
                let d = udp.recvfrom(1);
                let tx = udp.tx_cost(1);
                let finish = env
                    .clock
                    .borrow_mut()
                    .service_window(d.ready, &sigio, HANDLER + tx);
                udp.sendto_at(d.src, 1, 1, &[1u8], finish);
            }
            (0.0, env.clock.borrow().now().as_us())
        }
    });
    (out[0].result.0, out[1].result.1)
}

fn main() {
    print_header("E6: async request handling alternatives (paper §2.2.4)");
    println!(
        "{:<34} {:>12} {:>16}",
        "scheme", "RPC (us)", "peer time (ms)"
    );
    let params = SimParams::paper_testbed();
    let cases: Vec<(&str, AsyncScheme)> = vec![
        (
            "FAST + NIC interrupt (adopted)",
            AsyncScheme::Interrupt {
                cost: params.net.host_interrupt,
            },
        ),
        (
            "FAST + polling thread",
            AsyncScheme::PollingThread {
                dispatch: Ns::from_us(1),
                cpu_tax: Ns::from_us(4),
            },
        ),
        (
            "FAST + 100us timer",
            AsyncScheme::Timer {
                period: Ns::from_us(100),
                dispatch: Ns::from_us(2),
            },
        ),
        (
            "FAST + 1ms timer",
            AsyncScheme::Timer {
                period: Ns::from_ms(1),
                dispatch: Ns::from_us(2),
            },
        ),
    ];
    for (label, scheme) in cases {
        let (lat, busy) = fast_with_scheme(scheme);
        println!("{label:<34} {lat:>12.2} {:>16.3}", busy / 1000.0);
    }
    let (lat, busy) = udp_sigio();
    println!(
        "{:<34} {lat:>12.2} {:>16.3}",
        "UDP + SIGIO (stock TreadMarks)",
        busy / 1000.0
    );
    println!();
    println!("the interrupt gives a bounded response time without a polling");
    println!("thread's CPU tax — the paper's conclusion, and its choice.");
}
