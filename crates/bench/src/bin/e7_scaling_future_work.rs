//! E7 — §5 future work: "scaling a DSM system to a cluster having 256
//! nodes".
//!
//! The paper closes by asking what it takes to scale past 16 nodes and
//! suggests pushing synchronization primitives down to the NIC. This
//! study takes the reproduced system there:
//!
//! 1. barrier cost vs cluster size (16 → 128 nodes) on FAST/GM, for the
//!    centralized barrier (linear arrival/release serialization — the
//!    first scaling wall the paper anticipates) and for the radix-8
//!    combining tree ([`tmk::BarrierAlgo::Tree`]), which bounds any
//!    node's serialized work at radix arrivals;
//! 2. the same tree with NIC-offloaded combining
//!    ([`tmk::BarrierAlgo::NicTree`]) — arrivals are merged by LANai
//!    firmware at `nic_combine` cost instead of a host interrupt plus
//!    handler, the paper's concrete §5 suggestion;
//! 3. the tree on an *ideal* (zero-latency, zero-overhead) substrate —
//!    the algorithmic floor, i.e. what a perfect network could at best
//!    recover once the algorithm itself scales;
//! 4. Jacobi at a fixed problem size across cluster sizes, showing where
//!    added nodes stop paying for themselves on each transport.
//!
//! `E7_SMOKE=1` runs a small assertion-carrying subset (8/16/32 nodes,
//! centralized vs tree) for CI.

use std::sync::Arc;

use tm_bench::{print_header, AppSpec};
use tm_fast::{run_fast_dsm, FastConfig, Transport};
use tm_sim::runner::NodeOutcome;
use tm_sim::{Ns, SchedMode, SimParams, TokenMode};
use tmk::memsub::run_mem_dsm;
use tmk::{BarrierAlgo, Substrate, Tmk, TmkConfig};

// Enough rounds to average out the wall-clock link-arbitration jitter
// documented in DESIGN.md ("Determinism boundary") — at 10 rounds the
// per-run mean still swings ~±15%.
const ROUNDS: u64 = 60;

/// Combining-tree radix (`E7_RADIX` to override). The default is chosen
/// so 128 nodes fit in two levels (1 + k + k² ≥ 128) while keeping any
/// single node's serialized arrival work well under the centralized
/// manager's n−1.
fn radix() -> u16 {
    std::env::var("E7_RADIX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

fn barrier_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    tmk.barrier(0); // warmup
    let t0 = tmk.clock().borrow().now();
    for k in 1..=ROUNDS {
        tmk.barrier(k as u32);
    }
    (tmk.clock().borrow().now() - t0).0 / ROUNDS
}

fn avg(v: &[NodeOutcome<u64>]) -> Ns {
    Ns(v.iter().map(|o| o.result).sum::<u64>() / v.len() as u64)
}

fn cfg(algo: BarrierAlgo) -> TmkConfig {
    TmkConfig {
        barrier_algo: algo,
        ..TmkConfig::default()
    }
}

/// Average barrier time on FAST/GM under the given algorithm.
/// `E2_SCHED=lockstep` makes every row byte-reproducible (see
/// [`tm_bench::sched_mode`]).
fn fast_barrier(n: usize, algo: BarrierAlgo) -> Ns {
    let params = Arc::new(tm_bench::bench_testbed());
    let fc = FastConfig::paper(&params);
    avg(&run_fast_dsm(n, params, fc, cfg(algo), barrier_body))
}

/// Average barrier time on the ideal (zero-cost) substrate.
fn ideal_barrier(n: usize, algo: BarrierAlgo) -> Ns {
    let params = Arc::new(tm_bench::bench_testbed());
    avg(&run_mem_dsm(n, params, Ns::ZERO, cfg(algo), barrier_body))
}

/// Wall-clock seconds for one `n`-node tree-barrier run under
/// `mode`/`tokens`.
fn wall_once(n: usize, mode: SchedMode, tokens: TokenMode) -> f64 {
    let mut p = SimParams::paper_testbed();
    p.sched = mode;
    p.tokens = tokens;
    let params = Arc::new(p);
    let fc = FastConfig::paper(&params);
    let t0 = std::time::Instant::now();
    run_fast_dsm(
        n,
        params,
        fc,
        cfg(BarrierAlgo::Tree { radix: radix() }),
        barrier_body,
    );
    t0.elapsed().as_secs_f64()
}

/// CI smoke: small clusters, assertion-carrying. Proves the tree barrier
/// actually pays off and stays sub-linear without the 128-node runtime,
/// then prices the lockstep scheduler at 128 nodes: per-receiver tokens
/// must beat (or at worst match) the single-token baseline, and stay
/// under a host-dependent overhead ceiling vs free-run.
fn smoke() {
    print_header("E7 smoke: tree vs centralized barrier (8/16/32 nodes)");
    println!(
        "{:>6} {:>14} {:>14}",
        "nodes",
        "centralized",
        format!("tree({})", radix())
    );
    let mut tree = Vec::new();
    for n in [8usize, 16, 32] {
        let c = fast_barrier(n, BarrierAlgo::Centralized);
        let t = fast_barrier(n, BarrierAlgo::Tree { radix: radix() });
        println!("{n:>6} {:>14} {:>14}", format!("{c}"), format!("{t}"));
        if n >= 16 {
            assert!(
                t < c,
                "tree barrier must beat centralized at {n} nodes ({t} vs {c})"
            );
        }
        tree.push(t);
    }
    assert!(
        tree[2].0 < 2 * tree[0].0,
        "tree barrier 32 nodes ({}) must stay under 2x its 8-node cost ({})",
        tree[2],
        tree[0]
    );
    println!();
    println!("ok: tree < centralized at 16/32 nodes, 32-node tree < 2x 8-node");

    // Lockstep's wall-clock price at scale, in both token modes. Reps
    // alternate regimes (host noise is bursty enough to bias a fixed
    // order — see bench_lockstep) and best-of minimums are compared:
    // scheduler overhead is a floor, and the floor is what the grant
    // protocol adds. Two gates: (1) per-receiver tokens must not lose to
    // the single token at 128 nodes — this is the scale regression the
    // tokens exist to fix (measured ~20% ahead: fewer blocked episodes,
    // since a transmit to a free rx link grants without parking);
    // (2) an absolute overhead ceiling vs free-run. On a single-CPU host
    // grants cannot overlap at all — every handoff is a context switch
    // through a 128-deep run queue — so the ceiling is looser there
    // (measured ≈2.2x after the per-node sleep slots and fixpoint
    // dispatch; it was 6.3x before them).
    const WALL_NODES: usize = 128;
    const WALL_REPS: usize = 3;
    let (mut free_w, mut lock_w, mut single_w) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..WALL_REPS {
        free_w = free_w.min(wall_once(WALL_NODES, SchedMode::FreeRun, TokenMode::PerReceiver));
        lock_w = lock_w.min(wall_once(WALL_NODES, SchedMode::Lockstep, TokenMode::PerReceiver));
        single_w = single_w.min(wall_once(WALL_NODES, SchedMode::Lockstep, TokenMode::Single));
    }
    let ratio = lock_w / free_w.max(1e-9);
    let single_ratio = single_w / free_w.max(1e-9);
    println!();
    println!(
        "lockstep wall at {WALL_NODES} nodes (tree barrier, best of {WALL_REPS}): \
         freerun={free_w:.3}s lockstep(single)={single_w:.3}s ({single_ratio:.2}x) \
         lockstep(per-receiver)={lock_w:.3}s ({ratio:.2}x)"
    );
    assert!(
        lock_w <= single_w * 1.05,
        "per-receiver tokens must not lose to the single token at \
         {WALL_NODES} nodes ({lock_w:.3}s vs {single_w:.3}s)"
    );
    let single_cpu = std::thread::available_parallelism().map_or(true, |p| p.get() == 1);
    let ceiling = if single_cpu { 4.0 } else { 2.5 };
    assert!(
        ratio <= ceiling,
        "per-receiver lockstep at {WALL_NODES} nodes must stay within \
         {ceiling}x of free-run wall-clock on this host (got {ratio:.2}x)"
    );
    println!(
        "ok: per-receiver <= single token at {WALL_NODES} nodes, \
         overhead {ratio:.2}x <= {ceiling}x"
    );
}

fn main() {
    if std::env::var_os("E7_SMOKE").is_some() {
        smoke();
        return;
    }

    print_header("E7: scaling toward 256 nodes (paper §5, future work)");

    println!();
    println!("-- barrier vs cluster size, by algorithm --");
    let k = radix();
    println!(
        "{:>6} {:>14} {:>12} {:>14} {:>12}",
        "nodes",
        "centralized",
        format!("tree({k})"),
        format!("nic-tree({k})"),
        "ideal tree"
    );
    let mut tree = Vec::new();
    for n in [16usize, 32, 64, 128] {
        let central = fast_barrier(n, BarrierAlgo::Centralized);
        let t = fast_barrier(n, BarrierAlgo::Tree { radix: radix() });
        let nic = fast_barrier(n, BarrierAlgo::NicTree { radix: radix() });
        let ideal = ideal_barrier(n, BarrierAlgo::Tree { radix: radix() });
        println!(
            "{n:>6} {:>14} {:>12} {:>14} {:>12}",
            format!("{central}"),
            format!("{t}"),
            format!("{nic}"),
            format!("{ideal}"),
        );
        tree.push((n, t));
    }
    let (n0, t0) = tree[0];
    let (n3, t3) = tree[tree.len() - 1];
    println!(
        "tree scaling: {n3} nodes / {n0} nodes = {:.2}x cost",
        t3.0 as f64 / t0.0.max(1) as f64
    );
    println!("the centralized column grows linearly (serialized arrivals at");
    println!("the manager); the radix-8 tree grows with depth. nic-tree");
    println!("replaces each interior host interrupt + handler with a LANai");
    println!("combining step — the paper's §5 suggestion — and sits between");
    println!("the tree and the ideal-network floor.");

    println!();
    println!("-- Jacobi 512x512, fixed size, growing cluster --");
    println!("{:>6} {:>14} {:>14} {:>8}", "nodes", "UDP/GM", "FAST/GM", "factor");
    let spec = AppSpec::Jacobi(tm_apps::JacobiConfig::new(512, 10));
    let want = spec.expected();
    for n in [8usize, 16, 32, 64] {
        let udp = tm_bench::run_spec_with(Transport::Udp, n, &spec, &want);
        let fast = tm_bench::run_spec_with(Transport::Fast, n, &spec, &want);
        println!(
            "{n:>6} {:>14} {:>14} {:>7.2}x",
            format!("{udp}"),
            format!("{fast}"),
            udp.0 as f64 / fast.0.max(1) as f64
        );
    }
    println!();
    println!("fixed-size scaling flattens as per-node work shrinks against");
    println!("synchronization cost — the regime the paper's 256-node goal");
    println!("must engineer around (NIC primitives, tree barriers).");
}
