//! E7 — §5 future work: "scaling a DSM system to a cluster having 256
//! nodes".
//!
//! The paper closes by asking what it takes to scale past 16 nodes and
//! suggests pushing synchronization primitives down to the NIC. This
//! study takes the reproduced system there:
//!
//! 1. barrier cost vs cluster size (16 → 128 nodes) on FAST/GM — the
//!    centralized barrier's linear arrival/release serialization is the
//!    first scaling wall the paper anticipates;
//! 2. the same barrier on an *ideal* (zero-latency, zero-overhead)
//!    substrate — the protocol floor, i.e. what NIC offload could at
//!    best recover;
//! 3. Jacobi at a fixed problem size across cluster sizes, showing where
//!    added nodes stop paying for themselves on each transport.

use std::sync::Arc;

use tm_bench::{print_header, AppSpec};
use tm_fast::{run_fast_dsm, FastConfig, Transport};
use tm_sim::runner::NodeOutcome;
use tm_sim::{Ns, SimParams};
use tmk::memsub::run_mem_dsm;
use tmk::{Substrate, Tmk, TmkConfig};

const ROUNDS: u64 = 10;

fn barrier_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    tmk.barrier(0); // warmup
    let t0 = tmk.clock().borrow().now();
    for k in 1..=ROUNDS {
        tmk.barrier(k as u32);
    }
    (tmk.clock().borrow().now() - t0).0 / ROUNDS
}

fn avg(v: &[NodeOutcome<u64>]) -> Ns {
    Ns(v.iter().map(|o| o.result).sum::<u64>() / v.len() as u64)
}

fn main() {
    print_header("E7: scaling toward 256 nodes (paper §5, future work)");

    println!();
    println!("-- centralized barrier vs cluster size --");
    println!(
        "{:>6} {:>14} {:>16}",
        "nodes", "FAST/GM", "ideal network"
    );
    for n in [16usize, 32, 64, 128] {
        let params = Arc::new(SimParams::paper_testbed());
        let cfg = FastConfig::paper(&params);
        let fast = run_fast_dsm(n, Arc::clone(&params), cfg, TmkConfig::default(), barrier_body);
        let ideal = run_mem_dsm(
            n,
            params,
            Ns::ZERO,
            TmkConfig::default(),
            barrier_body,
        );
        println!(
            "{n:>6} {:>14} {:>16}",
            format!("{}", avg(&fast)),
            format!("{}", avg(&ideal)),
        );
    }
    println!("the gap between the columns is what NIC-offloaded barriers");
    println!("(the paper's suggestion) could at best recover; the ideal");
    println!("column's own growth is the centralized algorithm's serial");
    println!("arrival/release work — past ~64 nodes a tree barrier is due.");

    println!();
    println!("-- Jacobi 512x512, fixed size, growing cluster --");
    println!("{:>6} {:>14} {:>14} {:>8}", "nodes", "UDP/GM", "FAST/GM", "factor");
    let spec = AppSpec::Jacobi(tm_apps::JacobiConfig::new(512, 10));
    let want = spec.expected();
    for n in [8usize, 16, 32, 64] {
        let udp = tm_bench::run_spec_with(Transport::Udp, n, &spec, &want);
        let fast = tm_bench::run_spec_with(Transport::Fast, n, &spec, &want);
        println!(
            "{n:>6} {:>14} {:>14} {:>7.2}x",
            format!("{udp}"),
            format!("{fast}"),
            udp.0 as f64 / fast.0.max(1) as f64
        );
    }
    println!();
    println!("fixed-size scaling flattens as per-node work shrinks against");
    println!("synchronization cost — the regime the paper's 256-node goal");
    println!("must engineer around (NIC primitives, tree barriers).");
}
