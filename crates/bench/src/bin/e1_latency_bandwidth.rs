//! E1 — §3.1's latency/bandwidth table.
//!
//! Raw GM, FAST/GM and UDP/GM one-way small-message latency and large-
//! message streaming bandwidth on the simulated testbed, next to the
//! paper's measurements. (The provided paper text lost the UDP/GM digits
//! to OCR; contemporary sockets-over-GM sat at 25–35 µs.)

use std::sync::Arc;

use parking_lot::Mutex;
use tm_bench::print_header;
use tm_fast::{FastConfig, FastSubstrate};
use tm_gm::{gm_cluster, gm_size, DmaPool};
use tm_sim::{run_cluster, Ns, SimParams};
use tm_udp::UdpStack;
use tmk::Substrate;

const PING_ROUNDS: u64 = 64;
const BW_MSGS: usize = 64;
const BW_MSG_BYTES: usize = 64 * 1024;

/// Raw GM ping-pong latency (one-way) and streaming bandwidth.
fn raw_gm() -> (f64, f64) {
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, board, nics) = gm_cluster(2, Arc::clone(&params));
    let nics = Arc::new(Mutex::new(nics.into_iter().map(Some).collect::<Vec<_>>()));
    let out = run_cluster(2, Arc::clone(&params), move |env| {
        let nic = nics.lock()[env.id].take().unwrap();
        let mut gm = tm_gm::GmNode::new(
            nic,
            env.clock.clone(),
            Arc::clone(&env.params),
            Arc::clone(&board),
            256 << 20,
        );
        gm.open_port(2, false).unwrap();
        let mut pool = DmaPool::new(&mut gm.book, 32, BW_MSG_BYTES).unwrap();
        // Prepost generously for both phases.
        for _ in 0..PING_ROUNDS + 4 {
            gm.provide_receive_buffer(2, gm_size(1)).unwrap();
        }
        for _ in 0..BW_MSGS + 4 {
            gm.provide_receive_buffer(2, gm_size(BW_MSG_BYTES)).unwrap();
        }
        let me = env.id;
        let peer = 1 - me;
        let one = pool.take(&[0u8]).unwrap();
        pool.recycle();

        // --- ping-pong ---
        let lat_us = if me == 0 {
            let t0 = env.clock.borrow().now();
            for _ in 0..PING_ROUNDS {
                gm.send(2, peer, 2, &one, 1).unwrap();
                let _ = gm.blocking_receive(&[2]);
            }
            let rtt = env.clock.borrow().now() - t0;
            rtt.as_us() / (2.0 * PING_ROUNDS as f64)
        } else {
            for _ in 0..PING_ROUNDS {
                let _ = gm.blocking_receive(&[2]);
                gm.send(2, peer, 2, &one, 1).unwrap();
            }
            0.0
        };

        // --- bandwidth: node 0 streams, node 1 sinks ---
        let bw = if me == 0 {
            let big = pool.take(&vec![7u8; BW_MSG_BYTES]).unwrap();
            pool.recycle();
            let t0 = env.clock.borrow().now();
            for _ in 0..BW_MSGS {
                loop {
                    match gm.send(2, peer, 2, &big, BW_MSG_BYTES) {
                        Ok(_) => break,
                        Err(tm_gm::GmError::NoSendTokens) => {
                            // Wait for callbacks: model by nudging time.
                            env.clock.borrow_mut().advance(Ns::from_us(5));
                        }
                        Err(e) => panic!("{e:?}"),
                    }
                }
            }
            // Wait for the sink's ack.
            let _ = gm.blocking_receive(&[2]);
            let total = env.clock.borrow().now() - t0;
            (BW_MSGS * BW_MSG_BYTES) as f64 / total.as_secs() / 1e6
        } else {
            for _ in 0..BW_MSGS {
                let _ = gm.blocking_receive(&[2]);
            }
            gm.send(2, peer, 2, &one, 1).unwrap();
            0.0
        };
        (lat_us, bw)
    });
    (out[0].result.0, out[0].result.1)
}

/// FAST/GM latency + bandwidth through the substrate API.
fn fast_gm() -> (f64, f64) {
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, board, nics) = gm_cluster(2, Arc::clone(&params));
    let nics = Arc::new(Mutex::new(nics.into_iter().map(Some).collect::<Vec<_>>()));
    let out = run_cluster(2, Arc::clone(&params), move |env| {
        let nic = nics.lock()[env.id].take().unwrap();
        let mut sub = FastSubstrate::new(
            nic,
            env.clock.clone(),
            Arc::clone(&env.params),
            Arc::clone(&board),
            FastConfig::paper(&env.params),
        );
        let me = env.id;
        let peer = 1 - me;
        let lat_us = if me == 0 {
            let t0 = env.clock.borrow().now();
            for _ in 0..PING_ROUNDS {
                sub.send_request(peer, &[1u8]);
                let _ = sub.next_incoming();
            }
            let rtt = env.clock.borrow().now() - t0;
            rtt.as_us() / (2.0 * PING_ROUNDS as f64)
        } else {
            for _ in 0..PING_ROUNDS {
                let _ = sub.next_incoming();
                // The responder pays its receive poll (charged by
                // next_incoming) and the response emission.
                let at = sub.clock().borrow().now() + sub.response_cost(1);
                sub.send_response_at(peer, &[1u8], at);
            }
            0.0
        };
        // Bandwidth: stream max-size requests.
        let chunk = sub.max_msg();
        let bw = if me == 0 {
            let payload = vec![7u8; chunk];
            let t0 = env.clock.borrow().now();
            for _ in 0..BW_MSGS {
                sub.send_request(peer, &payload);
            }
            let _ = sub.next_incoming(); // sink ack
            let total = env.clock.borrow().now() - t0;
            (BW_MSGS * chunk) as f64 / total.as_secs() / 1e6
        } else {
            for _ in 0..BW_MSGS {
                let _ = sub.next_incoming();
            }
            let now = env.clock.borrow().now();
            sub.send_response_at(peer, &[1u8], now);
            0.0
        };
        (lat_us, bw)
    });
    (out[0].result.0, out[0].result.1)
}

/// UDP/GM latency + bandwidth through the kernel socket model.
fn udp_gm() -> (f64, f64) {
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, nics) = tm_myrinet::Fabric::new(2, Arc::clone(&params));
    let nics = Arc::new(Mutex::new(nics.into_iter().map(Some).collect::<Vec<_>>()));
    let out = run_cluster(2, Arc::clone(&params), move |env| {
        let nic = nics.lock()[env.id].take().unwrap();
        let mut udp = UdpStack::new(nic, env.clock.clone(), Arc::clone(&env.params));
        udp.bind(9, false);
        let me = env.id;
        let peer = 1 - me;
        let lat_us = if me == 0 {
            let t0 = env.clock.borrow().now();
            for _ in 0..PING_ROUNDS {
                udp.sendto(peer, 9, 9, &[1u8]);
                let _ = udp.recvfrom(9);
            }
            let rtt = env.clock.borrow().now() - t0;
            rtt.as_us() / (2.0 * PING_ROUNDS as f64)
        } else {
            for _ in 0..PING_ROUNDS {
                let _ = udp.recvfrom(9);
                udp.sendto(peer, 9, 9, &[1u8]);
            }
            0.0
        };
        let chunk = 32 * 1024;
        let bw = if me == 0 {
            let payload = vec![7u8; chunk];
            let t0 = env.clock.borrow().now();
            for _ in 0..BW_MSGS {
                udp.sendto(peer, 9, 9, &payload);
            }
            let _ = udp.recvfrom(9);
            let total = env.clock.borrow().now() - t0;
            (BW_MSGS * chunk) as f64 / total.as_secs() / 1e6
        } else {
            for _ in 0..BW_MSGS {
                let _ = udp.recvfrom(9);
            }
            udp.sendto(peer, 9, 9, &[1u8]);
            0.0
        };
        (lat_us, bw)
    });
    (out[0].result.0, out[0].result.1)
}

fn main() {
    print_header("E1: latency and bandwidth (paper §3.1)");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14}",
        "layer", "lat (us)", "paper (us)", "BW (MB/s)", "paper (MB/s)"
    );
    let (gl, gb) = raw_gm();
    println!(
        "{:<10} {:>12.2} {:>12} {:>14.0} {:>14}",
        "GM", gl, "8.99", gb, "~235"
    );
    let (fl, fb) = fast_gm();
    println!(
        "{:<10} {:>12.2} {:>12} {:>14.0} {:>14}",
        "FAST/GM", fl, "9.4", fb, "~215"
    );
    let (ul, ub) = udp_gm();
    println!(
        "{:<10} {:>12.2} {:>12} {:>14.0} {:>14}",
        "UDP/GM", ul, "(OCR lost)", ub, "unmeasurable*"
    );
    println!();
    println!("* the paper could not measure UDP/GM bandwidth (UDP loss);");
    println!("  our loss model is disabled here, so a number is produced.");
}
