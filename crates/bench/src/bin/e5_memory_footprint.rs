//! E5 — §2.2.2's registered-memory arithmetic.
//!
//! The paper sizes the preposted receive buffers at
//! `64KB·(n−1) + 64KB` per node — "for a system with 256 nodes our
//! system's memory requirement is 16 MB (approx)" — and notes that
//! dropping size classes ≥13 in favour of a rendezvous protocol brings it
//! "down to 6 MB for a 256 node cluster". This binary instantiates the
//! real substrate at several cluster sizes, in both configurations, and
//! prints measured against closed-form numbers.

use std::sync::Arc;

use tm_bench::print_header;
use tm_fast::{FastConfig, FastSubstrate};
use tm_gm::gm_cluster;
use tm_sim::clock::shared_clock;
use tm_sim::SimParams;

fn footprint(n: usize, rendezvous: bool) -> (usize, usize) {
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, board, mut nics) = gm_cluster(n, Arc::clone(&params));
    let mut cfg = FastConfig::paper(&params);
    cfg.rendezvous = rendezvous;
    let nic = nics.remove(0);
    let sub = FastSubstrate::new(nic, shared_clock(), params, board, cfg);
    (sub.prepost_bytes, sub.pinned_bytes())
}

fn mb(b: usize) -> f64 {
    b as f64 / (1 << 20) as f64
}

fn main() {
    print_header("E5: registered-memory requirement (paper §2.2.2)");
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>16}",
        "nodes", "eager (MB)", "paper formula", "rendezvous (MB)", "total pinned"
    );
    for n in [4usize, 16, 64, 256] {
        let (eager, _) = footprint(n, false);
        let (rdv, pinned_rdv) = footprint(n, true);
        // Paper closed form: 64KB*(n-1) + 64KB.
        let formula = 64 * 1024 * (n - 1) + 64 * 1024;
        println!(
            "{n:>6} {:>16.2} {:>16.2} {:>16.2} {:>16.2}",
            mb(eager),
            mb(formula),
            mb(rdv),
            mb(pinned_rdv),
        );
    }
    println!();
    println!("paper anchor points (256 nodes): ~16 MB eager, ~6 MB with the");
    println!("rendezvous protocol for messages above 8 KB.");
}
