//! Host-cost microbenchmarks of the zero-copy hot paths, recorded as
//! `results/BENCH_diff.json` so successive PRs have a perf trajectory.
//!
//! Unlike E1–E7 (which report *simulated* cluster time), this measures
//! how much real host CPU the reproduction burns per operation: diff
//! create/apply on a 4 KiB sparse page, small-frame and fragmented sends
//! on the FAST substrate, and a 1 MB page-fetch storm through the full
//! DSM. `create_scalar` is the pre-optimization word-by-word loop kept as
//! the executable specification — its row doubles as the baseline the
//! u64-chunked scanner is judged against (the `speedup_create_vs_scalar`
//! field).
//!
//! Usage: `cargo run --release -p tm-bench --bin bench_diff [out.json]`

use std::sync::Arc;
use std::time::Instant;

use tm_fast::{run_fast_dsm, FastConfig, FastSubstrate};
use tm_gm::gm_cluster;
use tm_sim::clock::shared_clock;
use tm_sim::SimParams;
use tmk::diff::Diff;
use tmk::wire::{pool, WireWriter};
use tmk::{Substrate, TmkConfig};

/// Time `f` with a calibrated repetition count; returns ns per call.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Calibrate to ~100 ms of measurement.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let el = t.elapsed();
        if el.as_millis() >= 100 || iters >= 1 << 26 {
            return el.as_nanos() as f64 / iters as f64;
        }
        let grow = (100_000_000 / el.as_nanos().max(1) as u64).clamp(2, 1024);
        iters = (iters * grow).min(1 << 26);
    }
}

fn sparse_page() -> (Vec<u8>, Vec<u8>) {
    let twin = vec![0u8; 4096];
    let mut cur = twin.clone();
    for i in (0..cur.len()).step_by(256) {
        cur[i] = 0xA5;
    }
    (twin, cur)
}

struct Case {
    name: &'static str,
    ns_per_op: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_diff.json".into());
    let mut cases: Vec<Case> = Vec::new();

    // --- diff engine -----------------------------------------------------
    let (twin, cur) = sparse_page();
    let create = time_ns(|| {
        std::hint::black_box(Diff::create(&twin, &cur));
    });
    cases.push(Case {
        name: "diff_create_4k_sparse",
        ns_per_op: create,
    });
    let scalar = time_ns(|| {
        std::hint::black_box(Diff::create_scalar(&twin, &cur));
    });
    cases.push(Case {
        name: "diff_create_4k_sparse_scalar_baseline",
        ns_per_op: scalar,
    });
    let create_into = time_ns(|| {
        let mut w = WireWriter::pooled(512);
        std::hint::black_box(Diff::create_into(&twin, &cur, &mut w));
        w.recycle();
    });
    cases.push(Case {
        name: "diff_create_into_4k_sparse",
        ns_per_op: create_into,
    });
    let d = Diff::create(&twin, &cur);
    let mut page = twin.clone();
    let apply = time_ns(|| {
        d.apply(&mut page);
        std::hint::black_box(&page);
    });
    cases.push(Case {
        name: "diff_apply_4k_sparse",
        ns_per_op: apply,
    });

    // --- framing path ----------------------------------------------------
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, board, mut nics) = gm_cluster(2, Arc::clone(&params));
    let cfg = FastConfig::paper(&params);
    let mut rx = FastSubstrate::new(
        nics.pop().unwrap(),
        shared_clock(),
        Arc::clone(&params),
        Arc::clone(&board),
        cfg.clone(),
    );
    let mut tx = FastSubstrate::new(
        nics.pop().unwrap(),
        shared_clock(),
        Arc::clone(&params),
        board,
        cfg,
    );
    let small = [7u8; 64];
    let frame = time_ns(|| {
        tx.send_request(1, &small);
        let m = rx.next_incoming();
        pool::give(m.data);
    });
    cases.push(Case {
        name: "fast_frame_64B_roundtrip",
        ns_per_op: frame,
    });
    let big = vec![3u8; 64 * 1024];
    let frag = time_ns(|| {
        tx.send_request(1, &big);
        let m = rx.next_incoming();
        pool::give(m.data);
    });
    cases.push(Case {
        name: "fast_fragmented_64KiB_roundtrip",
        ns_per_op: frag,
    });

    // --- 1 MB page fetch through the full DSM ----------------------------
    // Node 0 writes a 1 MB region; node 1 faults all 256 pages in. Host
    // wall-clock for the whole two-node episode, dominated by the page
    // fetches.
    let fetch = time_ns(|| {
        let params = Arc::new(SimParams::paper_testbed());
        let cfg = FastConfig::paper(&params);
        let out = run_fast_dsm(2, params, cfg, TmkConfig::default(), |tmk| {
            let bytes = 1 << 20;
            let r = tmk.malloc(bytes);
            if tmk.proc_id() == 0 {
                for p in 0..bytes / 4096 {
                    tmk.set_u32(r, p * 1024, p as u32 + 1);
                }
            }
            tmk.barrier(0);
            let mut sum = 0u64;
            if tmk.proc_id() == 1 {
                for p in 0..bytes / 4096 {
                    sum += tmk.get_u32(r, p * 1024) as u64;
                }
            }
            tmk.barrier(1);
            sum
        });
        std::hint::black_box(out);
    });
    cases.push(Case {
        name: "page_fetch_1mb_cluster",
        ns_per_op: fetch,
    });

    // --- emit ------------------------------------------------------------
    let speedup = scalar / create;
    let mut json = String::from("{\n  \"bench\": \"BENCH_diff\",\n  \"page_size\": 4096,\n");
    json.push_str(&format!(
        "  \"speedup_create_vs_scalar\": {speedup:.2},\n  \"cases\": {{\n"
    ));
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {{ \"ns_per_op\": {:.1}, \"ops_per_sec\": {:.0} }}{comma}\n",
            c.name,
            c.ns_per_op,
            1e9 / c.ns_per_op
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_diff.json");
    println!("{json}");
    println!("wrote {out_path}");
    assert!(
        speedup >= 2.0,
        "chunked diff-create must be >= 2x the scalar baseline (got {speedup:.2}x)"
    );
}
