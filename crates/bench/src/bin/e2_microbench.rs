//! E2 — Figure 3: the TreadMarks distribution microbenchmarks.
//!
//! Barrier (4/8/16 nodes), Lock (direct & indirect), Page and Diff (small
//! & large), each on UDP/GM and FAST/GM. The paper's quoted improvement
//! factors: barrier ~2.5×, locks ~3–4×, Page ~6.2×, Diff similar.

use std::sync::Arc;

use tm_bench::{print_header, print_row, print_row_header};
use tm_fast::{run_fast_dsm, run_udp_dsm, FastConfig};
use tm_sim::stats::NodeStats;
use tm_sim::{FaultPlan, Ns, SimParams};
use tmk::{
    BarrierAlgo, DiffFetch, LayerMetrics, LockPath, MetricsHandle, Substrate, Tmk, TmkConfig,
};

const ROUNDS: u64 = 20;
const PAGES: usize = 64;

/// Fault plan under test, from the environment (`E2_FAULT_LOSS`,
/// `E2_FAULT_SEED`). With no loss requested the plan stays disabled and
/// stdout is byte-identical to a faultless build.
fn fault_plan() -> FaultPlan {
    let loss: f64 = std::env::var("E2_FAULT_LOSS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let mut plan = FaultPlan {
        drop_probability: loss,
        ..FaultPlan::default()
    };
    if let Some(seed) = std::env::var("E2_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        plan.seed = seed;
    }
    plan
}

/// Paper testbed + the fault plan, under the scheduler regime picked by
/// `E2_SCHED` (`freerun` | `lockstep`, see [`tm_bench::sched_mode`]).
/// Under `lockstep` two invocations of this binary produce byte-identical
/// stdout for every row, Barrier and Lock (indirect) included.
fn bench_params() -> SimParams {
    let mut p = tm_bench::bench_testbed();
    p.faults = fault_plan();
    p
}

/// Fault counters accumulated across every workload in the run (UDP and
/// FAST sides both), reported at the end when the plan injects anything.
static TALLY: std::sync::Mutex<Option<NodeStats>> = std::sync::Mutex::new(None);

fn tally<R>(outcomes: &[tm_sim::runner::NodeOutcome<R>]) {
    let mut t = TALLY.lock().unwrap();
    let acc = t.get_or_insert_with(NodeStats::default);
    for o in outcomes {
        acc.merge(&o.stats);
    }
}

/// Per-layer event tallies across every workload and node, reported at
/// the end when `E2_METRICS` is set. Off by default so stdout stays
/// byte-identical to an uninstrumented run.
static METRICS: std::sync::Mutex<Option<LayerMetrics>> = std::sync::Mutex::new(None);

fn metrics_enabled() -> bool {
    std::env::var_os("E2_METRICS").is_some()
}

/// Barrier algorithm under test, from `E2_BARRIER_ALGO`: `centralized`
/// (the default), `tree:<radix>`, or `nictree:<radix>`. Lets the same
/// microbenchmarks (and their fault plans) run against the combining-tree
/// paths without a recompile.
fn barrier_algo() -> BarrierAlgo {
    match std::env::var("E2_BARRIER_ALGO").ok().as_deref() {
        None | Some("") | Some("centralized") => BarrierAlgo::Centralized,
        Some(s) => {
            let (kind, radix) = s.split_once(':').unwrap_or((s, "4"));
            let radix: u16 = radix.parse().expect("E2_BARRIER_ALGO radix must be a u16");
            match kind {
                "tree" => BarrierAlgo::Tree { radix },
                "nictree" => BarrierAlgo::NicTree { radix },
                other => panic!("unknown E2_BARRIER_ALGO algorithm {other:?}"),
            }
        }
    }
}

/// Diff-fetch engine under test, from `E2_DIFF_FETCH`: `coalesced` (the
/// default), `parallel`, or `serial` (the one-outstanding-RPC spec
/// baseline).
fn diff_fetch() -> DiffFetch {
    match std::env::var("E2_DIFF_FETCH").ok().as_deref() {
        None | Some("") | Some("coalesced") => DiffFetch::Coalesced,
        Some("parallel") => DiffFetch::Parallel,
        Some("serial") => DiffFetch::Serial,
        Some(other) => panic!("unknown E2_DIFF_FETCH engine {other:?}"),
    }
}

/// Lock/write-notice path under test, from `E2_LOCK_PATH`: `serial` (the
/// message-for-message spec baseline, the default) or `overlapped` (grant
/// fetches and write-notice fan-out ride the overlapped RPC engine).
fn lock_path() -> LockPath {
    match std::env::var("E2_LOCK_PATH").ok().as_deref() {
        None | Some("") | Some("serial") => LockPath::Serial,
        Some("overlapped") => LockPath::Overlapped,
        Some(other) => panic!("unknown E2_LOCK_PATH {other:?}"),
    }
}

/// Stride-prefetch depth, from `E2_PREFETCH`. 0 (the default) leaves the
/// prefetcher inert.
fn prefetch_depth() -> usize {
    std::env::var("E2_PREFETCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn tmk_cfg() -> TmkConfig {
    TmkConfig {
        barrier_algo: barrier_algo(),
        diff_fetch: diff_fetch(),
        lock_path: lock_path(),
        prefetch_depth: prefetch_depth(),
        ..TmkConfig::default()
    }
}

/// Run one benchmark body, tapping the event hook into the global tally
/// when metrics are requested. The hook charges no virtual time, so the
/// measured numbers are identical either way.
fn instrumented<S: Substrate>(tmk: &mut Tmk<S>, body: fn(&mut Tmk<S>) -> u64) -> u64 {
    let handle = metrics_enabled().then(|| MetricsHandle::install(tmk));
    let r = body(tmk);
    if let Some(h) = handle {
        METRICS
            .lock()
            .unwrap()
            .get_or_insert_with(LayerMetrics::default)
            .merge(&h.snapshot());
        tmk.clear_event_hook();
    }
    r
}

// The bodies are generic functions; a tiny macro instantiates them for
// both substrates without boxing.
macro_rules! on_both {
    ($n:expr, $f:ident) => {{
        let udp = {
            let params = Arc::new(bench_params());
            run_udp_dsm($n, params, tmk_cfg(), move |tmk| instrumented(tmk, $f))
        };
        let fast = {
            let params = Arc::new(bench_params());
            let cfg = FastConfig::paper(&params);
            run_fast_dsm($n, params, cfg, tmk_cfg(), move |tmk| instrumented(tmk, $f))
        };
        tally(&udp);
        tally(&fast);
        (udp, fast)
    }};
}

/// Average barrier time, measured on every node after a warmup barrier.
fn barrier_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    tmk.barrier(0); // warmup: pays first-touch costs
    let t0 = tmk.clock().borrow().now();
    for k in 1..=ROUNDS {
        tmk.barrier(k as u32);
    }
    (tmk.clock().borrow().now() - t0).0 / ROUNDS
}

/// Direct lock: the manager (node 0) is the owner; node 1 measures its
/// acquire.
fn lock_direct_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    let me = tmk.proc_id();
    let mut acquire_ns = 0u64;
    tmk.barrier(0);
    for k in 0..ROUNDS {
        // Node 0 (the manager) takes and releases the lock so it is the
        // last owner — the "direct" case for node 1.
        if me == 0 {
            tmk.acquire(0);
            tmk.release(0);
        }
        tmk.barrier(1 + 2 * k as u32);
        if me == 1 {
            let t0 = tmk.clock().borrow().now();
            tmk.acquire(0);
            acquire_ns += (tmk.clock().borrow().now() - t0).0;
            tmk.release(0);
        }
        tmk.barrier(2 + 2 * k as u32);
    }
    acquire_ns / ROUNDS
}

/// Indirect lock: a third node (2) is the owner; node 1's acquire goes
/// requester → manager → owner → requester.
fn lock_indirect_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    let me = tmk.proc_id();
    let mut acquire_ns = 0u64;
    tmk.barrier(0);
    for k in 0..ROUNDS {
        if me == 2 {
            tmk.acquire(0);
            tmk.release(0);
        }
        tmk.barrier(1 + 2 * k as u32);
        if me == 1 {
            let t0 = tmk.clock().borrow().now();
            tmk.acquire(0);
            acquire_ns += (tmk.clock().borrow().now() - t0).0;
            tmk.release(0);
        }
        tmk.barrier(2 + 2 * k as u32);
    }
    acquire_ns / ROUNDS
}

/// Page: node 1 first-touches PAGES pages homed at node 0 (page managers
/// are round-robin, so only even pages of a 2-node region live on node 0).
fn page_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    let region = tmk.malloc(2 * PAGES * 4096);
    tmk.distribute(region);
    let me = tmk.proc_id();
    if me == 0 {
        // Creator touches one word of each of its pages (all local).
        for p in 0..PAGES {
            let _ = tmk.get_u32(region, 2 * p * 1024);
        }
    }
    tmk.barrier(0);
    let mut per_page = 0u64;
    if me == 1 {
        let t0 = tmk.clock().borrow().now();
        for p in 0..PAGES {
            let _ = tmk.get_u32(region, 2 * p * 1024);
        }
        per_page = (tmk.clock().borrow().now() - t0).0 / PAGES as u64;
    }
    tmk.barrier(1);
    per_page
}

/// Diff: node 0 writes one word (small) or every word (large) of each
/// page; node 1, holding stale copies, re-reads one word per page.
fn diff_body<S: Substrate>(tmk: &mut Tmk<S>, large: bool) -> u64 {
    let region = tmk.malloc(PAGES * 4096);
    let me = tmk.proc_id();
    // Warmup: node 1 faults every page in so the next access is a diff
    // fetch, not a page fetch. (Writes below are partial-page on purpose
    // for the small case; the large case writes whole pages but after a
    // warm interval, so the diff path is exercised either way.)
    if me == 1 {
        for p in 0..PAGES {
            let _ = tmk.get_u32(region, p * 1024);
        }
    }
    tmk.barrier(0);
    if me == 0 {
        // Warm node 0's copies first so its writes are diff-producing
        // writes, not whole-page overwrites of unmapped pages.
        for p in 0..PAGES {
            let _ = tmk.get_u32(region, p * 1024);
        }
        if large {
            let full = vec![7f32; 1024];
            for p in 0..PAGES {
                tmk.write_f32s(region, p * 1024, &full);
            }
        } else {
            for p in 0..PAGES {
                tmk.set_u32(region, p * 1024, 7);
            }
        }
    }
    tmk.barrier(1);
    let mut per_page = 0u64;
    if me == 1 {
        let t0 = tmk.clock().borrow().now();
        for p in 0..PAGES {
            let v = tmk.get_u32(region, p * 1024);
            assert_ne!(v, 0, "diff must have been applied");
        }
        per_page = (tmk.clock().borrow().now() - t0).0 / PAGES as u64;
    }
    tmk.barrier(2);
    per_page
}

fn diff_small_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    diff_body(tmk, false)
}

fn diff_large_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    diff_body(tmk, true)
}

/// Multi-writer diff: nodes `0..n-1` each write a disjoint word of every
/// page; the last node, holding stale copies, re-reads one word per page
/// and pays one diff fetch per writer per page fault. Under the
/// overlapped engine the k requests fly concurrently, so the fault cost
/// approaches the slowest round trip instead of the sum of k of them.
fn diff_multi_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    let region = tmk.malloc(PAGES * 4096);
    let me = tmk.proc_id();
    let writers = tmk.nprocs() - 1;
    // Everyone warms every page: writers need resident copies so their
    // stores produce diffs, and the reader needs stale copies so the
    // measured access is a diff fetch rather than a page fetch.
    for p in 0..PAGES {
        let _ = tmk.get_u32(region, p * 1024);
    }
    tmk.barrier(0);
    if me < writers {
        // Disjoint words of the same pages: concurrent multi-writer
        // intervals, the workload TreadMarks' diff protocol exists for.
        for p in 0..PAGES {
            tmk.set_u32(region, p * 1024 + me * 16, 7 + me as u32);
        }
    }
    tmk.barrier(1);
    let mut per_page = 0u64;
    if me == writers {
        let t0 = tmk.clock().borrow().now();
        for p in 0..PAGES {
            let v = tmk.get_u32(region, p * 1024);
            assert_ne!(v, 0, "writer 0's diff must have been applied");
        }
        per_page = (tmk.clock().borrow().now() - t0).0 / PAGES as u64;
    }
    tmk.barrier(2);
    per_page
}

/// TSP-like lock storm: the holder (node 0) writes a block of pages
/// under the lock, node 1 acquires and reads them. The only ordering
/// between the write and the read is the lock transfer itself, so the
/// grant carries the write notices — under `LockPath::Overlapped` the
/// diff fetches they imply are batched at acquire time instead of
/// faulting one round trip at a time inside the critical section.
fn lock_storm_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    const K: usize = 16;
    const STORM_ROUNDS: u64 = 8;
    let region = tmk.malloc(K * 4096);
    tmk.distribute(region);
    let me = tmk.proc_id();
    for p in 0..K {
        let _ = tmk.get_u32(region, p * 1024);
    }
    tmk.barrier(0);
    let mut ns = 0u64;
    for r in 0..STORM_ROUNDS {
        let want = r as u32 + 1;
        if me == 0 {
            tmk.acquire(0);
            // Payload pages first, the turn marker (page 0) last: a reader
            // that observes the marker holds notices for the whole interval.
            for p in 1..K {
                tmk.set_u32(region, p * 1024 + 4, want);
            }
            tmk.set_u32(region, 4, want);
            tmk.release(0);
        } else {
            let t0 = tmk.clock().borrow().now();
            loop {
                tmk.acquire(0);
                if tmk.get_u32(region, 4) == want {
                    break;
                }
                tmk.release(0);
            }
            for p in 1..K {
                assert_eq!(tmk.get_u32(region, p * 1024 + 4), want, "lock-storm payload");
            }
            tmk.release(0);
            ns += (tmk.clock().borrow().now() - t0).0;
        }
        tmk.barrier(1 + r as u32);
    }
    ns / STORM_ROUNDS
}

/// SOR-like strided sweep: node 0 writes one word of every page, then
/// node 1 reads the pages in ascending order after a barrier. Every read
/// faults, and the constant stride lets the prefetcher run ahead of the
/// fault stream when `prefetch_depth > 0`.
fn strided_sweep_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    const P: usize = 48;
    let region = tmk.malloc(P * 4096);
    tmk.distribute(region);
    let me = tmk.proc_id();
    for p in 0..P {
        let _ = tmk.get_u32(region, p * 1024);
    }
    tmk.barrier(0);
    if me == 0 {
        for p in 0..P {
            tmk.set_u32(region, p * 1024, p as u32 + 1);
        }
    }
    tmk.barrier(1);
    let mut ns = 0u64;
    if me == 1 {
        let t0 = tmk.clock().borrow().now();
        for p in 0..P {
            assert_eq!(tmk.get_u32(region, p * 1024), p as u32 + 1, "sweep payload");
        }
        ns = (tmk.clock().borrow().now() - t0).0 / P as u64;
    }
    tmk.barrier(2);
    ns
}

fn avg_nonzero(v: &[tm_sim::runner::NodeOutcome<u64>]) -> Ns {
    let vals: Vec<u64> = v.iter().map(|o| o.result).filter(|&x| x > 0).collect();
    Ns(vals.iter().sum::<u64>() / vals.len().max(1) as u64)
}

fn main() {
    print_header("E2: TreadMarks microbenchmarks (Figure 3)");
    print_row_header();

    for n in [4usize, 8, 16] {
        let (udp, fast) = on_both!(n, barrier_body);
        print_row(&format!("Barrier ({n})"), avg_nonzero(&udp), avg_nonzero(&fast));
    }
    {
        let (udp, fast) = on_both!(2, lock_direct_body);
        print_row("Lock (direct)", Ns(udp[1].result), Ns(fast[1].result));
    }
    {
        let (udp, fast) = on_both!(3, lock_indirect_body);
        print_row("Lock (indirect)", Ns(udp[1].result), Ns(fast[1].result));
    }
    {
        let (udp, fast) = on_both!(2, page_body);
        print_row("Page (per page)", Ns(udp[1].result), Ns(fast[1].result));
    }
    {
        let (udp, fast) = on_both!(2, diff_small_body);
        print_row("Diff small (per page)", Ns(udp[1].result), Ns(fast[1].result));
    }
    {
        let (udp, fast) = on_both!(2, diff_large_body);
        print_row("Diff large (per page)", Ns(udp[1].result), Ns(fast[1].result));
    }
    {
        let (udp, fast) = on_both!(2, diff_multi_body);
        print_row("Diff 1-writer (per page)", Ns(udp[1].result), Ns(fast[1].result));
    }
    {
        let (udp, fast) = on_both!(5, diff_multi_body);
        print_row("Diff 4-writer (per page)", Ns(udp[4].result), Ns(fast[4].result));
    }
    println!();
    println!("paper factors: Barrier ~2.5x, Lock ~3-4x, Page ~6.2x, Diff comparable");

    // Smoke assertions for CI (`E2_SMOKE`): the overlapped engines must
    // beat the serial spec baseline on the 4-writer diff fetch, and the
    // 4-writer fault must scale sub-linearly (< 2x the 1-writer cost)
    // under overlap. Runs FAST/GM only; prints the numbers it compared.
    if std::env::var_os("E2_SMOKE").is_some() {
        let run = |n: usize, df: DiffFetch| {
            let params = Arc::new(bench_params());
            let cfg = FastConfig::paper(&params);
            let tcfg = TmkConfig {
                diff_fetch: df,
                ..tmk_cfg()
            };
            let out = run_fast_dsm(n, params, cfg, tcfg, diff_multi_body);
            out[n - 1].result
        };
        let serial = run(5, DiffFetch::Serial);
        let parallel = run(5, DiffFetch::Parallel);
        let coalesced = run(5, DiffFetch::Coalesced);
        let k1 = run(2, DiffFetch::Coalesced);
        println!();
        println!(
            "e2-smoke: 4-writer diff fetch (FAST, ns/page): \
             serial={serial} parallel={parallel} coalesced={coalesced} 1-writer={k1}"
        );
        assert!(
            parallel < serial,
            "parallel diff fetch ({parallel}) must beat serial ({serial})"
        );
        assert!(
            coalesced < serial,
            "coalesced diff fetch ({coalesced}) must beat serial ({serial})"
        );
        assert!(
            coalesced < 2 * k1,
            "4-writer fault ({coalesced}) must be sub-linear vs 1-writer ({k1})"
        );
        println!("e2-smoke: overlap assertions passed");

        // Pipelined synchronization: the overlapped lock path must beat
        // the serial baseline on the TSP-like lock storm, and the stride
        // prefetcher must land hits (and help) on the SOR-like sweep.
        // The storm's only ordering is the lock handoff itself (a spin on
        // the turn marker), whose duration is schedule-dependent under
        // freerun — these two comparisons always run under lockstep so
        // the asserted margins are exact, not statistical.
        let lockstep_params = || {
            let mut p = bench_params();
            p.sched = tm_sim::SchedMode::Lockstep;
            Arc::new(p)
        };
        let run_lock = |lp: LockPath| {
            let params = lockstep_params();
            let cfg = FastConfig::paper(&params);
            let tcfg = TmkConfig {
                lock_path: lp,
                ..tmk_cfg()
            };
            let out = run_fast_dsm(2, params, cfg, tcfg, lock_storm_body);
            out[1].result
        };
        let lock_serial = run_lock(LockPath::Serial);
        let lock_overlapped = run_lock(LockPath::Overlapped);
        println!(
            "e2-smoke: lock storm (FAST, ns/round): \
             serial={lock_serial} overlapped={lock_overlapped}"
        );
        assert!(
            lock_overlapped < lock_serial,
            "overlapped lock path ({lock_overlapped}) must beat serial ({lock_serial})"
        );
        let run_sweep = |depth: usize| {
            let params = lockstep_params();
            let cfg = FastConfig::paper(&params);
            let tcfg = TmkConfig {
                prefetch_depth: depth,
                ..tmk_cfg()
            };
            let out = run_fast_dsm(2, params, cfg, tcfg, |tmk| {
                let h = MetricsHandle::install(tmk);
                let ns = strided_sweep_body(tmk);
                let hits = h.snapshot().get("prefetch_hit").map_or(0, |e| e.count);
                tmk.clear_event_hook();
                (ns, hits)
            });
            (out[1].result.0, out[1].result.1)
        };
        let (sweep0, hits0) = run_sweep(0);
        let (sweep8, hits8) = run_sweep(8);
        println!(
            "e2-smoke: strided sweep (FAST, ns/page): \
             depth0={sweep0} depth8={sweep8} hits={hits8}"
        );
        assert_eq!(hits0, 0, "depth 0 must keep the prefetcher inert");
        assert!(hits8 > 0, "stride prefetcher must land hits on the sweep");
        assert!(
            sweep8 < sweep0,
            "prefetched sweep ({sweep8}) must beat the demand-fault sweep ({sweep0})"
        );
        println!("e2-smoke: pipelined-sync assertions passed");
    }

    // Per-layer event tallies: only when explicitly requested, so the
    // default output above stays byte-identical.
    if metrics_enabled() {
        let m = METRICS.lock().unwrap();
        let metrics = m.as_ref().cloned().unwrap_or_default();
        println!();
        println!(
            "per-layer events (all workloads, both transports, algo={:?}):",
            barrier_algo()
        );
        print!("{}", metrics.render());
    }

    // Fault-injection report: only when the plan actually injects
    // something, so the zero-fault output above stays byte-identical.
    let plan = fault_plan();
    if plan.enabled() {
        let t = TALLY.lock().unwrap();
        let s = t.as_ref().cloned().unwrap_or_default();
        println!();
        println!(
            "fault plan: seed={:#x} drop={} dup={} reorder={} corrupt={}",
            plan.seed,
            plan.drop_probability,
            plan.duplicate_probability,
            plan.reorder_probability,
            plan.corrupt_probability
        );
        println!(
            "fault counters: dropped={} duplicated={} reordered={} corrupted={} \
             retransmits={} dup_requests_suppressed={} stale_responses_dropped={} \
             crc_rejected={} malformed_dropped={} token_stalls={}",
            s.dgrams_dropped,
            s.dgrams_duplicated,
            s.dgrams_reordered,
            s.dgrams_corrupted,
            s.retransmits,
            s.dup_requests_suppressed,
            s.stale_responses_dropped,
            s.crc_rejected,
            s.malformed_dropped,
            s.token_stalls
        );
    }
}
