fn main() {
    let spec = tm_bench::AppSpec::Fft(tm_apps::FftConfig::new(64));
    for n in [4usize, 16] {
        let tf = tm_bench::run_spec(tm_fast::Transport::Fast, n, &spec);
        let tu = tm_bench::run_spec(tm_fast::Transport::Udp, n, &spec);
        println!("n={n}: fast={tf} udp={tu} factor={:.2}", tu.0 as f64 / tf.0 as f64);
    }
}
