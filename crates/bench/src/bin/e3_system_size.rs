//! E3 — Figure 4: application execution time vs system size.
//!
//! Jacobi, SOR, TSP and 3D-FFT at their default sizes on 4, 8 and 16
//! nodes over UDP/GM and FAST/GM. Every run is validated against the
//! sequential reference before its time is reported. The paper's
//! headline shapes: FAST/GM wins everywhere; Jacobi's gain is smallest
//! (~2×, high comp/comm); SOR ~6× and 3D-FFT ~6.3× at 16 nodes, where
//! UDP/GM stops scaling (or slows down) while FAST/GM keeps speeding up.

use tm_bench::{print_header, run_spec_with, AppSpec};
use tm_fast::Transport;
use tm_sim::Ns;

fn main() {
    // Per-layer event tallies (histograms, RPC-depth gauge) across every
    // run, printed at the end when `E3_METRICS` is set. Off by default so
    // the default output stays byte-identical to an uninstrumented run.
    let metrics_on = std::env::var_os("E3_METRICS").is_some();
    tm_bench::set_metrics_enabled(metrics_on);
    print_header("E3: execution time vs system size (Figure 4)");
    for app in AppSpec::APPS {
        let spec = AppSpec::default_instance(app);
        println!();
        println!(
            "--- {} ({}) ---",
            spec.name(),
            spec.size_label()
        );
        println!(
            "{:>6} {:>14} {:>14} {:>8} {:>10} {:>10}",
            "nodes", "UDP/GM", "FAST/GM", "factor", "spdup-UDP", "spdup-FAST"
        );
        let want = spec.expected();
        let mut udp4 = Ns::ZERO;
        let mut fast4 = Ns::ZERO;
        for n in [4usize, 8, 16] {
            let udp = run_spec_with(Transport::Udp, n, &spec, &want);
            let fast = run_spec_with(Transport::Fast, n, &spec, &want);
            if n == 4 {
                udp4 = udp;
                fast4 = fast;
            }
            println!(
                "{n:>6} {:>14} {:>14} {:>7.2}x {:>9.2}x {:>9.2}x",
                format!("{udp}"),
                format!("{fast}"),
                udp.0 as f64 / fast.0.max(1) as f64,
                udp4.0 as f64 / udp.0.max(1) as f64,
                fast4.0 as f64 / fast.0.max(1) as f64,
            );
        }
    }
    println!();
    println!("speedups are relative to the same transport's 4-node time,");
    println!("matching the paper's 4->16 node scaling discussion (§3.3.2).");

    if metrics_on {
        let metrics = tm_bench::take_metrics().unwrap_or_default();
        println!();
        println!("per-layer events (all apps, all sizes, both transports):");
        print!("{}", metrics.render());
    }
}
