//! Wall-clock cost of determinism, recorded as
//! `results/BENCH_lockstep.json` so successive PRs can watch the
//! lockstep scheduler's overhead trajectory.
//!
//! The workload is the same 4-writer diff storm as `bench_overlap`: the
//! most scheduler-hostile pattern in the suite (every fault wave is a
//! burst of concurrent transmits racing for grants, plus the engine's
//! non-blocking polls that lockstep must quiesce one by one). Virtual
//! costs are identical in both regimes — the proptest battery in
//! `tests/lockstep.rs` proves memory equivalence — so the only number
//! that moves is real elapsed time.
//!
//! Reported per regime: the minimum wall-clock over `REPS` runs (minimum,
//! not mean — scheduler overhead is a floor, and the floor is what the
//! two-phase grant protocol adds; the mean also pays the host's noise).
//!
//! Usage: `cargo run --release -p tm-bench --bin bench_lockstep [out.json]`

use std::sync::Arc;
use std::time::Instant;

use tm_fast::{run_fast_dsm, FastConfig};
use tm_sim::{SchedMode, SimParams};
use tmk::{Substrate, Tmk, TmkConfig};

const PAGES: usize = 64;
const WRITERS: usize = 4;
const REPS: usize = 5;

/// The `bench_overlap` k-writer diff storm (see that binary for the
/// blow-by-blow): disjoint-word writes to every page, then one
/// `read_bytes` on the last node that faults everything back in.
fn storm_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    let region = tmk.malloc(PAGES * 4096);
    let me = tmk.proc_id();
    let writers = tmk.nprocs() - 1;
    for p in 0..PAGES {
        let _ = tmk.get_u32(region, p * 1024);
    }
    tmk.barrier(0);
    if me < writers {
        for p in 0..PAGES {
            tmk.set_u32(region, p * 1024 + me * 16, 1 + me as u32);
        }
    }
    tmk.barrier(1);
    let mut cost = 0u64;
    if me == writers {
        let mut buf = vec![0u8; PAGES * 4096];
        let t0 = tmk.clock().borrow().now();
        tmk.read_bytes(region, 0, &mut buf);
        cost = (tmk.clock().borrow().now() - t0).0;
        for p in 0..PAGES {
            for w in 0..writers {
                let at = p * 4096 + w * 64;
                let v = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
                assert_eq!(v, 1 + w as u32, "page {p} writer {w}");
            }
        }
    }
    tmk.barrier(2);
    cost
}

/// One storm under `mode`; returns (wall-clock seconds, virtual read ns).
fn run_once(mode: SchedMode) -> (f64, u64) {
    let mut p = SimParams::paper_testbed();
    p.sched = mode;
    let params = Arc::new(p);
    let cfg = FastConfig::paper(&params);
    let t0 = Instant::now();
    let out = run_fast_dsm(WRITERS + 1, params, cfg, TmkConfig::default(), storm_body);
    (t0.elapsed().as_secs_f64(), out[WRITERS].result)
}

/// Minimum wall-clock over `REPS` runs, plus every rep's virtual cost of
/// the measured read.
fn best_of(mode: SchedMode) -> (f64, Vec<u64>) {
    let mut best = f64::INFINITY;
    let mut virts = Vec::new();
    for _ in 0..REPS {
        let (wall, v) = run_once(mode);
        best = best.min(wall);
        virts.push(v);
    }
    (best, virts)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_lockstep.json".into());

    let (free_wall, free_virts) = best_of(SchedMode::FreeRun);
    let (lock_wall, lock_virts) = best_of(SchedMode::Lockstep);
    let overhead = lock_wall / free_wall.max(1e-9);
    println!(
        "{WRITERS}-writer diff storm ({PAGES} pages, best of {REPS}): \
         freerun={free_wall:.4}s lockstep={lock_wall:.4}s overhead={overhead:.2}x"
    );
    println!("virtual read cost: freerun={free_virts:?}ns lockstep={lock_virts:?}ns");
    // The determinism claim, measured: every lockstep rep prices the read
    // identically. (Free-run reps may legitimately disagree — concurrent
    // writers racing the link-reservation CAS is exactly the jitter this
    // scheduler exists to remove, so no cross-regime assert.)
    let lock_virt = lock_virts[0];
    assert!(
        lock_virts.iter().all(|&v| v == lock_virt),
        "lockstep reps disagree on the modeled cost: {lock_virts:?}"
    );

    let json = format!(
        "{{\n  \"bench\": \"BENCH_lockstep\",\n  \"workload\": \"diff_storm\",\n  \
         \"writers\": {WRITERS},\n  \"pages\": {PAGES},\n  \"reps\": {REPS},\n  \
         \"freerun_wall_s\": {free_wall:.4},\n  \"lockstep_wall_s\": {lock_wall:.4},\n  \
         \"lockstep_overhead\": {overhead:.2},\n  \"virtual_read_ns\": {lock_virt}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_lockstep.json");
    println!("wrote {out_path}");
}
