//! Wall-clock cost of determinism, recorded as
//! `results/BENCH_lockstep.json` so successive PRs can watch the
//! lockstep scheduler's overhead trajectory.
//!
//! The workload is the same 4-writer diff storm as `bench_overlap`: the
//! most scheduler-hostile pattern in the suite (every fault wave is a
//! burst of concurrent transmits racing for grants, plus the engine's
//! non-blocking polls that lockstep must quiesce one by one). Virtual
//! costs are identical in both regimes — the proptest battery in
//! `tests/lockstep.rs` proves memory equivalence — so the only number
//! that moves is real elapsed time.
//!
//! Reported per regime: the minimum wall-clock over `REPS` runs (minimum,
//! not mean — scheduler overhead is a floor, and the floor is what the
//! two-phase grant protocol adds; the mean also pays the host's noise).
//! Each round rotates which regime runs first: host noise is bursty
//! enough that a fixed order systematically penalizes the later slots.
//! Lockstep is measured under both token modes — the legacy single
//! global reservation token and the default per-receiver tokens — so
//! the JSON carries a before/after row pair for the concurrency work,
//! and the modeled cost is asserted identical across all lockstep rows.
//!
//! Usage: `cargo run --release -p tm-bench --bin bench_lockstep [out.json]`

use std::sync::Arc;
use std::time::Instant;

use tm_fast::{run_fast_dsm, FastConfig};
use tm_sim::{SchedMode, SimParams, TokenMode};
use tmk::{Substrate, Tmk, TmkConfig};

const PAGES: usize = 64;
const WRITERS: usize = 4;
const REPS: usize = 9;

/// The `bench_overlap` k-writer diff storm (see that binary for the
/// blow-by-blow): disjoint-word writes to every page, then one
/// `read_bytes` on the last node that faults everything back in.
fn storm_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    let region = tmk.malloc(PAGES * 4096);
    let me = tmk.proc_id();
    let writers = tmk.nprocs() - 1;
    for p in 0..PAGES {
        let _ = tmk.get_u32(region, p * 1024);
    }
    tmk.barrier(0);
    if me < writers {
        for p in 0..PAGES {
            tmk.set_u32(region, p * 1024 + me * 16, 1 + me as u32);
        }
    }
    tmk.barrier(1);
    let mut cost = 0u64;
    if me == writers {
        let mut buf = vec![0u8; PAGES * 4096];
        let t0 = tmk.clock().borrow().now();
        tmk.read_bytes(region, 0, &mut buf);
        cost = (tmk.clock().borrow().now() - t0).0;
        for p in 0..PAGES {
            for w in 0..writers {
                let at = p * 4096 + w * 64;
                let v = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
                assert_eq!(v, 1 + w as u32, "page {p} writer {w}");
            }
        }
    }
    tmk.barrier(2);
    cost
}

/// One storm under `mode`/`tokens`; returns (wall-clock seconds, virtual
/// read ns).
fn run_once(mode: SchedMode, tokens: TokenMode) -> (f64, u64) {
    let mut p = SimParams::paper_testbed();
    p.sched = mode;
    p.tokens = tokens;
    let params = Arc::new(p);
    let cfg = FastConfig::paper(&params);
    let t0 = Instant::now();
    let out = run_fast_dsm(WRITERS + 1, params, cfg, TmkConfig::default(), storm_body);
    (t0.elapsed().as_secs_f64(), out[WRITERS].result)
}

/// One measurement slot: running minimum wall-clock plus every rep's
/// virtual cost of the measured read.
struct Slot {
    mode: SchedMode,
    tokens: TokenMode,
    best: f64,
    virts: Vec<u64>,
}

impl Slot {
    fn new(mode: SchedMode, tokens: TokenMode) -> Slot {
        Slot {
            mode,
            tokens,
            best: f64::INFINITY,
            virts: Vec::new(),
        }
    }

    fn rep(&mut self) {
        let (wall, v) = run_once(self.mode, self.tokens);
        self.best = self.best.min(wall);
        self.virts.push(v);
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_lockstep.json".into());

    // Reps are interleaved across the three regimes, and the within-round
    // order rotates every round: host noise is bursty enough that the
    // regime measured last in a fixed order reads measurably slower, so
    // each regime must sample every slot equally. Best-of minimums are
    // what get reported.
    let mut slots = [
        Slot::new(SchedMode::FreeRun, TokenMode::PerReceiver),
        Slot::new(SchedMode::Lockstep, TokenMode::Single),
        Slot::new(SchedMode::Lockstep, TokenMode::PerReceiver),
    ];
    for round in 0..REPS {
        for k in 0..slots.len() {
            slots[(round + k) % 3].rep();
        }
    }
    let [free, single, lock] = slots;
    let (free_wall, free_virts) = (free.best, free.virts);
    let (single_wall, single_virts) = (single.best, single.virts);
    let (lock_wall, lock_virts) = (lock.best, lock.virts);
    let single_overhead = single_wall / free_wall.max(1e-9);
    let overhead = lock_wall / free_wall.max(1e-9);
    println!(
        "{WRITERS}-writer diff storm ({PAGES} pages, best of {REPS}): \
         freerun={free_wall:.4}s lockstep(single)={single_wall:.4}s ({single_overhead:.2}x) \
         lockstep(per-receiver)={lock_wall:.4}s ({overhead:.2}x)"
    );
    println!(
        "virtual read cost: freerun={free_virts:?}ns single={single_virts:?}ns \
         per-receiver={lock_virts:?}ns"
    );
    // The determinism claim, measured: every lockstep rep prices the read
    // identically, and the token mode must not move the virtual schedule
    // at all — per-receiver tokens only buy wall-clock concurrency.
    // (Free-run reps may legitimately disagree — concurrent writers
    // racing the link-reservation CAS is exactly the jitter this
    // scheduler exists to remove, so no cross-regime assert.)
    let lock_virt = lock_virts[0];
    assert!(
        lock_virts.iter().all(|&v| v == lock_virt),
        "lockstep reps disagree on the modeled cost: {lock_virts:?}"
    );
    assert!(
        single_virts.iter().all(|&v| v == lock_virt),
        "token modes disagree on the modeled cost: single={single_virts:?} vs {lock_virt}"
    );

    let json = format!(
        "{{\n  \"bench\": \"BENCH_lockstep\",\n  \"workload\": \"diff_storm\",\n  \
         \"writers\": {WRITERS},\n  \"pages\": {PAGES},\n  \"reps\": {REPS},\n  \
         \"freerun_wall_s\": {free_wall:.4},\n  \
         \"lockstep_single_token_wall_s\": {single_wall:.4},\n  \
         \"lockstep_single_token_overhead\": {single_overhead:.2},\n  \
         \"lockstep_wall_s\": {lock_wall:.4},\n  \
         \"lockstep_overhead\": {overhead:.2},\n  \"virtual_read_ns\": {lock_virt}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_lockstep.json");
    println!("wrote {out_path}");
}
