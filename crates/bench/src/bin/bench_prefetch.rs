//! Pipelined-synchronization microbenchmark, recorded as
//! `results/BENCH_prefetch.json` so successive PRs have a perf
//! trajectory for the lock pipeline and the stride prefetcher.
//!
//! Two workloads:
//!
//! - **lock storm** (TSP-like): node 0 writes a block of pages inside
//!   the critical section, node 1 acquires the lock and reads them. The
//!   only ordering is the lock handoff, so the grant carries the write
//!   notices; `LockPath::Overlapped` batch-fetches the diffs they imply
//!   at acquire time instead of faulting one round trip at a time.
//! - **strided sweep** (SOR-like): a writer dirties every page, the
//!   reader sweeps them in ascending order. With `prefetch_depth > 0`
//!   the stride detector runs volleys ahead of the fault stream and the
//!   sweep converges toward one overlapped fetch per window.
//!
//! Both run under the conservative lockstep scheduler regardless of
//! `E2_SCHED`: the storm's handoff spin is schedule-dependent under
//! freerun, and pinned JSON output needs exact numbers. All times are
//! *simulated* cluster nanoseconds on FAST/GM (the paper testbed).
//!
//! Usage: `cargo run --release -p tm-bench --bin bench_prefetch [out.json]`

use std::sync::Arc;

use tm_fast::{run_fast_dsm, FastConfig};

use tmk::{LockPath, MetricsHandle, Substrate, Tmk, TmkConfig};

const STORM_PAGES: usize = 16;
const STORM_ROUNDS: u64 = 8;
const SWEEP_PAGES: usize = 48;

/// Node 1's per-round cost of taking the lock and reading the block the
/// holder just wrote (zero on node 0).
fn lock_storm_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    let region = tmk.malloc(STORM_PAGES * 4096);
    tmk.distribute(region);
    let me = tmk.proc_id();
    for p in 0..STORM_PAGES {
        let _ = tmk.get_u32(region, p * 1024);
    }
    tmk.barrier(0);
    let mut ns = 0u64;
    for r in 0..STORM_ROUNDS {
        let want = r as u32 + 1;
        if me == 0 {
            tmk.acquire(0);
            // Payload pages first, the turn marker (page 0) last: a reader
            // that observes the marker holds notices for the whole interval.
            for p in 1..STORM_PAGES {
                tmk.set_u32(region, p * 1024 + 4, want);
            }
            tmk.set_u32(region, 4, want);
            tmk.release(0);
        } else {
            let t0 = tmk.clock().borrow().now();
            loop {
                tmk.acquire(0);
                if tmk.get_u32(region, 4) == want {
                    break;
                }
                tmk.release(0);
            }
            for p in 1..STORM_PAGES {
                assert_eq!(tmk.get_u32(region, p * 1024 + 4), want, "storm payload");
            }
            tmk.release(0);
            ns += (tmk.clock().borrow().now() - t0).0;
        }
        tmk.barrier(1 + r as u32);
    }
    ns / STORM_ROUNDS
}

/// Reader's per-page cost of the ascending sweep plus the prefetch
/// tallies `(ns_per_page, issued, hits, wasted)` (zeros on the writer).
fn strided_sweep_body<S: Substrate>(tmk: &mut Tmk<S>) -> (u64, u64, u64, u64) {
    let region = tmk.malloc(SWEEP_PAGES * 4096);
    tmk.distribute(region);
    let me = tmk.proc_id();
    for p in 0..SWEEP_PAGES {
        let _ = tmk.get_u32(region, p * 1024);
    }
    tmk.barrier(0);
    if me == 0 {
        for p in 0..SWEEP_PAGES {
            tmk.set_u32(region, p * 1024, p as u32 + 1);
        }
    }
    tmk.barrier(1);
    let mut out = (0u64, 0u64, 0u64, 0u64);
    if me == 1 {
        let h = MetricsHandle::install(tmk);
        let t0 = tmk.clock().borrow().now();
        for p in 0..SWEEP_PAGES {
            assert_eq!(tmk.get_u32(region, p * 1024), p as u32 + 1, "sweep payload");
        }
        let ns = (tmk.clock().borrow().now() - t0).0 / SWEEP_PAGES as u64;
        let m = h.snapshot();
        let count = |k: &str| m.get(k).map_or(0, |e| e.count);
        out = (
            ns,
            count("prefetch_issued"),
            count("prefetch_hit"),
            count("prefetch_wasted"),
        );
        tmk.clear_event_hook();
    }
    tmk.barrier(2);
    out
}

/// The paper testbed pinned to lockstep (see module docs).
fn params() -> Arc<tm_sim::SimParams> {
    let mut p = tm_bench::bench_testbed();
    p.sched = tm_sim::SchedMode::Lockstep;
    Arc::new(p)
}

fn run_storm(lp: LockPath) -> u64 {
    let params = params();
    let cfg = FastConfig::paper(&params);
    let tcfg = TmkConfig {
        lock_path: lp,
        ..TmkConfig::default()
    };
    let out = run_fast_dsm(2, params, cfg, tcfg, lock_storm_body);
    out[1].result
}

fn run_sweep(depth: usize) -> (u64, u64, u64, u64) {
    let params = params();
    let cfg = FastConfig::paper(&params);
    let tcfg = TmkConfig {
        prefetch_depth: depth,
        ..TmkConfig::default()
    };
    let out = run_fast_dsm(2, params, cfg, tcfg, strided_sweep_body);
    out[1].result
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_prefetch.json".into());

    let serial = run_storm(LockPath::Serial);
    let overlapped = run_storm(LockPath::Overlapped);
    let storm_speedup = serial as f64 / overlapped.max(1) as f64;
    println!(
        "lock storm ({STORM_PAGES} pages/round): serial={serial}ns \
         overlapped={overlapped}ns ({storm_speedup:.2}x)"
    );
    assert!(
        overlapped < serial,
        "overlapped lock path ({overlapped}) must beat serial ({serial})"
    );

    let mut json = String::from("{\n  \"bench\": \"BENCH_prefetch\",\n");
    json.push_str(&format!(
        "  \"lock_storm\": {{ \"pages\": {STORM_PAGES}, \"rounds\": {STORM_ROUNDS}, \
         \"serial_ns\": {serial}, \"overlapped_ns\": {overlapped}, \
         \"serial_over_overlapped\": {storm_speedup:.2} }},\n"
    ));

    json.push_str(&format!(
        "  \"strided_sweep\": {{ \"pages\": {SWEEP_PAGES}, \"rows\": [\n"
    ));
    let (base, _, base_hits, _) = run_sweep(0);
    assert_eq!(base_hits, 0, "depth 0 must keep the prefetcher inert");
    let depths = [0usize, 4, 8];
    let mut best = 0.0f64;
    for (i, &d) in depths.iter().enumerate() {
        let (ns, issued, hits, wasted) = if d == 0 { (base, 0, 0, 0) } else { run_sweep(d) };
        let speedup = base as f64 / ns.max(1) as f64;
        best = best.max(speedup);
        println!(
            "strided sweep depth={d}: {ns}ns/page issued={issued} hits={hits} \
             wasted={wasted} ({speedup:.2}x vs depth 0)"
        );
        if d > 0 {
            assert!(hits > 0, "depth {d}: stride prefetcher must land hits");
            assert!(ns < base, "depth {d}: sweep ({ns}) must beat depth 0 ({base})");
        }
        let comma = if i + 1 < depths.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"depth\": {d}, \"ns_per_page\": {ns}, \"issued\": {issued}, \
             \"hits\": {hits}, \"wasted\": {wasted}, \"speedup\": {speedup:.2} }}{comma}\n"
        ));
    }
    json.push_str("  ] }\n}\n");

    assert!(
        storm_speedup.max(best) >= 1.5,
        "at least one scenario must show a >= 1.5x win \
         (storm {storm_speedup:.2}x, sweep {best:.2}x)"
    );

    std::fs::write(&out_path, &json).expect("write BENCH_prefetch.json");
    println!("wrote {out_path}");
}
