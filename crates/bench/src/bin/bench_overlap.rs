//! Overlapped-RPC microbenchmark, recorded as `results/BENCH_overlap.json`
//! so successive PRs have a perf trajectory for the RPC engine.
//!
//! The workload is a k-writer diff storm: nodes `0..k` each write a
//! disjoint word of every page of a shared region, then the last node
//! reads the whole region back in one `read_bytes`. That read faults
//! every page with pending write notices from all k writers, so the
//! fetch engine decides the cost:
//!
//! - `serial` — one outstanding RPC at a time: k × PAGES round trips,
//!   paid end to end (the spec baseline);
//! - `parallel` — the same k × PAGES requests issued before any response
//!   is collected, so the cost approaches the slowest round trip per
//!   fault wave;
//! - `coalesced` — one `MultiDiff` request per writer covering all of
//!   its pages: k messages total.
//!
//! All times are *simulated* cluster nanoseconds on FAST/GM (the paper
//! testbed), so the numbers are deterministic and comparable across
//! machines.
//!
//! Usage: `cargo run --release -p tm-bench --bin bench_overlap [out.json]`

use std::sync::Arc;

use tm_fast::{run_fast_dsm, FastConfig};

use tmk::{DiffFetch, Substrate, Tmk, TmkConfig};

const PAGES: usize = 64;

/// Reader's virtual cost of the whole-region read (zero on writers).
fn storm_body<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    let region = tmk.malloc(PAGES * 4096);
    let me = tmk.proc_id();
    let writers = tmk.nprocs() - 1;
    // Everyone warms every page: writers need resident copies so their
    // stores produce diffs, and the reader needs stale copies so the
    // measured read is a pure diff-fetch storm.
    for p in 0..PAGES {
        let _ = tmk.get_u32(region, p * 1024);
    }
    tmk.barrier(0);
    if me < writers {
        for p in 0..PAGES {
            tmk.set_u32(region, p * 1024 + me * 16, 1 + me as u32);
        }
    }
    tmk.barrier(1);
    let mut cost = 0u64;
    if me == writers {
        let mut buf = vec![0u8; PAGES * 4096];
        let t0 = tmk.clock().borrow().now();
        tmk.read_bytes(region, 0, &mut buf);
        cost = (tmk.clock().borrow().now() - t0).0;
        // Every writer's word must have landed on every page.
        for p in 0..PAGES {
            for w in 0..writers {
                let at = p * 4096 + w * 64;
                let v = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
                assert_eq!(v, 1 + w as u32, "page {p} writer {w}");
            }
        }
    }
    tmk.barrier(2);
    cost
}

fn run(writers: usize, engine: DiffFetch) -> u64 {
    // `E2_SCHED=lockstep` runs the storm under the conservative lockstep
    // scheduler (byte-reproducible; see `tm_sim::sched`); `bench_lockstep`
    // measures the wall-clock price of that determinism on this same
    // storm.
    let params = Arc::new(tm_bench::bench_testbed());
    let cfg = FastConfig::paper(&params);
    let tcfg = TmkConfig {
        diff_fetch: engine,
        ..TmkConfig::default()
    };
    let out = run_fast_dsm(writers + 1, params, cfg, tcfg, storm_body);
    out[writers].result
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_overlap.json".into());

    let mut json = String::from("{\n  \"bench\": \"BENCH_overlap\",\n");
    json.push_str(&format!("  \"pages\": {PAGES},\n  \"rows\": [\n"));
    let ks = [1usize, 2, 4];
    for (i, &k) in ks.iter().enumerate() {
        let serial = run(k, DiffFetch::Serial);
        let parallel = run(k, DiffFetch::Parallel);
        let coalesced = run(k, DiffFetch::Coalesced);
        println!(
            "writers={k}: serial={serial}ns parallel={parallel}ns coalesced={coalesced}ns \
             (serial/coalesced = {:.2}x)",
            serial as f64 / coalesced.max(1) as f64
        );
        assert!(
            parallel < serial,
            "k={k}: parallel ({parallel}) must beat serial ({serial})"
        );
        assert!(
            coalesced <= parallel,
            "k={k}: coalesced ({coalesced}) must not lose to parallel ({parallel})"
        );
        let comma = if i + 1 < ks.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"writers\": {k}, \"serial_ns\": {serial}, \"parallel_ns\": {parallel}, \
             \"coalesced_ns\": {coalesced}, \"serial_over_coalesced\": {:.2} }}{comma}\n",
            serial as f64 / coalesced.max(1) as f64
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_overlap.json");
    println!("wrote {out_path}");
}
