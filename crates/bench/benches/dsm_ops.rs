//! Criterion benchmarks of whole simulated DSM operations: wall-clock
//! cost of running a barrier round or a lock ping over each substrate.
//! (The *simulated* times are E2's business; this measures how much real
//! CPU the reproduction burns per simulated operation.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use tm_fast::{run_fast_dsm, run_udp_dsm, FastConfig, FastSubstrate};
use tm_gm::gm_cluster;
use tm_sim::clock::shared_clock;
use tm_sim::SimParams;
use tmk::diff::Diff;
use tmk::wire::{pool, WireWriter};
use tmk::{Substrate, Tmk, TmkConfig};

fn barrier_round<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    for k in 0..10 {
        tmk.barrier(k);
    }
    1
}

fn lock_round<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    let r = tmk.malloc(4096);
    tmk.barrier(0);
    for _ in 0..10 {
        tmk.acquire(0);
        let v = tmk.get_u32(r, 0);
        tmk.set_u32(r, 0, v + 1);
        tmk.release(0);
    }
    tmk.barrier(1);
    tmk.get_u32(r, 0) as u64
}

fn bench_cluster_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_cluster");
    g.sample_size(10);
    g.bench_function("fast_barrier_x4_10rounds", |b| {
        b.iter(|| {
            let params = Arc::new(SimParams::paper_testbed());
            let cfg = FastConfig::paper(&params);
            run_fast_dsm(4, params, cfg, TmkConfig::default(), barrier_round)
        })
    });
    g.bench_function("udp_barrier_x4_10rounds", |b| {
        b.iter(|| {
            let params = Arc::new(SimParams::paper_testbed());
            run_udp_dsm(4, params, TmkConfig::default(), barrier_round)
        })
    });
    g.bench_function("fast_lock_counter_x4", |b| {
        b.iter(|| {
            let params = Arc::new(SimParams::paper_testbed());
            let cfg = FastConfig::paper(&params);
            run_fast_dsm(4, params, cfg, TmkConfig::default(), lock_round)
        })
    });
    g.finish();
}

/// A 4 KiB twin/current pair with sparse writes (one dirtied word every
/// 256 bytes) — the Figure 3 "Diff" shape.
fn sparse_page() -> (Vec<u8>, Vec<u8>) {
    let twin = vec![0u8; 4096];
    let mut cur = twin.clone();
    for i in (0..cur.len()).step_by(256) {
        cur[i] = 0xA5;
    }
    (twin, cur)
}

fn bench_diff_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    let (twin, cur) = sparse_page();
    g.bench_function("create_4k_sparse", |b| b.iter(|| Diff::create(&twin, &cur)));
    g.bench_function("create_scalar_4k_sparse", |b| {
        b.iter(|| Diff::create_scalar(&twin, &cur))
    });
    g.bench_function("create_into_4k_sparse", |b| {
        b.iter(|| {
            let mut w = WireWriter::pooled(512);
            let runs = Diff::create_into(&twin, &cur, &mut w);
            w.recycle();
            runs
        })
    });
    let d = Diff::create(&twin, &cur);
    let mut page = twin.clone();
    g.bench_function("apply_4k_sparse", |b| b.iter(|| d.apply(&mut page)));
    g.finish();
}

fn bench_framing_ops(c: &mut Criterion) {
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, board, mut nics) = gm_cluster(2, Arc::clone(&params));
    let cfg = FastConfig::paper(&params);
    let mut rx = FastSubstrate::new(
        nics.pop().unwrap(),
        shared_clock(),
        Arc::clone(&params),
        Arc::clone(&board),
        cfg.clone(),
    );
    let mut tx = FastSubstrate::new(nics.pop().unwrap(), shared_clock(), params, board, cfg);
    let small = [7u8; 64];
    let large = vec![3u8; 64 * 1024]; // > 32 KiB frame limit: fragments
    let mut g = c.benchmark_group("framing");
    g.bench_function("fast_frame_64B_roundtrip", |b| {
        b.iter(|| {
            tx.send_request(1, &small);
            let m = rx.next_incoming();
            pool::give(m.data);
        })
    });
    g.bench_function("fast_fragmented_64KiB_roundtrip", |b| {
        b.iter(|| {
            tx.send_request(1, &large);
            let m = rx.next_incoming();
            pool::give(m.data);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_diff_ops, bench_framing_ops, bench_cluster_ops);
criterion_main!(benches);
