//! Criterion benchmarks of whole simulated DSM operations: wall-clock
//! cost of running a barrier round or a lock ping over each substrate.
//! (The *simulated* times are E2's business; this measures how much real
//! CPU the reproduction burns per simulated operation.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use tm_fast::{run_fast_dsm, run_udp_dsm, FastConfig};
use tm_sim::SimParams;
use tmk::{Substrate, Tmk, TmkConfig};

fn barrier_round<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    for k in 0..10 {
        tmk.barrier(k);
    }
    1
}

fn lock_round<S: Substrate>(tmk: &mut Tmk<S>) -> u64 {
    let r = tmk.malloc(4096);
    tmk.barrier(0);
    for _ in 0..10 {
        tmk.acquire(0);
        let v = tmk.get_u32(r, 0);
        tmk.set_u32(r, 0, v + 1);
        tmk.release(0);
    }
    tmk.barrier(1);
    tmk.get_u32(r, 0) as u64
}

fn bench_cluster_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_cluster");
    g.sample_size(10);
    g.bench_function("fast_barrier_x4_10rounds", |b| {
        b.iter(|| {
            let params = Arc::new(SimParams::paper_testbed());
            let cfg = FastConfig::paper(&params);
            run_fast_dsm(4, params, cfg, TmkConfig::default(), barrier_round)
        })
    });
    g.bench_function("udp_barrier_x4_10rounds", |b| {
        b.iter(|| {
            let params = Arc::new(SimParams::paper_testbed());
            run_udp_dsm(4, params, TmkConfig::default(), barrier_round)
        })
    });
    g.bench_function("fast_lock_counter_x4", |b| {
        b.iter(|| {
            let params = Arc::new(SimParams::paper_testbed());
            let cfg = FastConfig::paper(&params);
            run_fast_dsm(4, params, cfg, TmkConfig::default(), lock_round)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cluster_ops);
criterion_main!(benches);
