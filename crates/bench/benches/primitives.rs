//! Criterion benchmarks of the runtime's hot primitives (real wall time,
//! not simulated): diff creation/application, vector-clock ops, GM size
//! classes, protocol codec, and the FFT kernel. These are the operations
//! the virtual-time cost model prices; their real cost determines how
//! fast the simulator itself runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use tmk::diff::Diff;
use tmk::protocol::{Request, Response};
use tmk::vc::VectorClock;
use tmk::wire::{WireReader, WireWriter};

fn page_pair(change_every: usize) -> (Vec<u8>, Vec<u8>) {
    let twin = vec![0u8; 4096];
    let mut cur = twin.clone();
    let mut i = 0;
    while i < cur.len() {
        cur[i] = 0xAB;
        i += change_every;
    }
    (twin, cur)
}

fn bench_diffs(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    let (twin_sparse, cur_sparse) = page_pair(512);
    let (twin_dense, cur_dense) = page_pair(8);
    g.bench_function("create_sparse_4k", |b| {
        b.iter(|| Diff::create(black_box(&twin_sparse), black_box(&cur_sparse)))
    });
    g.bench_function("create_dense_4k", |b| {
        b.iter(|| Diff::create(black_box(&twin_dense), black_box(&cur_dense)))
    });
    let d = Diff::create(&twin_dense, &cur_dense);
    g.bench_function("apply_dense_4k", |b| {
        b.iter_batched(
            || twin_dense.clone(),
            |mut t| d.apply(black_box(&mut t)),
            BatchSize::SmallInput,
        )
    });
    let mut w = WireWriter::new();
    d.encode(&mut w);
    let buf = w.finish();
    g.bench_function("decode_dense_4k", |b| {
        b.iter(|| Diff::decode(&mut WireReader::new(black_box(&buf))))
    });
    g.finish();
}

fn bench_vc(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_clock");
    let mut a = VectorClock::new(256);
    let mut bvc = VectorClock::new(256);
    for i in 0..256 {
        a.set(i, (i * 7) as u32);
        bvc.set(i, (i * 5 + 3) as u32);
    }
    g.bench_function("join_256", |b| {
        b.iter_batched(
            || a.clone(),
            |mut x| x.join(black_box(&bvc)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("dominated_by_256", |b| {
        b.iter(|| black_box(&a).dominated_by(black_box(&bvc)))
    });
    g.finish();
}

fn bench_gm_size(c: &mut Criterion) {
    c.bench_function("gm_size_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for len in (0..32768usize).step_by(17) {
                acc += tm_gm::gm_size(black_box(len)) as u32;
            }
            acc
        })
    });
}

fn bench_protocol_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    let vc = {
        let mut v = VectorClock::new(16);
        for i in 0..16 {
            v.set(i, i as u32 * 3);
        }
        v
    };
    let req = Request::Acquire { lock: 7, vc };
    g.bench_function("encode_acquire", |b| b.iter(|| black_box(&req).encode(42)));
    let buf = req.encode(42);
    g.bench_function("decode_acquire", |b| {
        b.iter(|| Request::decode(black_box(&buf)))
    });
    let resp = Response::FullPage {
        page: 3,
        applied: vec![1; 16],
        data: vec![7u8; 4096],
    };
    g.bench_function("encode_full_page", |b| b.iter(|| black_box(&resp).encode(9)));
    g.finish();
}

fn bench_fft_kernel(c: &mut Criterion) {
    let data: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.001).sin()).collect();
    c.bench_function("fft1d_1024pt", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| tm_apps::fft::fft1d(&mut d),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_diffs,
    bench_vc,
    bench_gm_size,
    bench_protocol_codec,
    bench_fft_kernel
);
criterion_main!(benches);
