//! Wire packets.

use bytes::Bytes;
use tm_sim::Ns;

/// Node identifier: index into the cluster, `0..nprocs`.
pub type NodeId = usize;

/// Myrinet routing + CRC framing overhead per packet, bytes.
pub const FRAME_OVERHEAD: usize = 16;

/// A packet as it lands in the receiving NIC.
///
/// `dst_port` spans both transports' namespaces: GM uses `0..8`, the
/// sockets emulation uses `1024..`. Demultiplexing is the receiver layer's
/// job, just as GM demuxes by port and the kernel demuxes by socket.
#[derive(Debug, Clone)]
pub struct RawPacket {
    pub src: NodeId,
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Bytes,
    /// Virtual time at which the packet is fully in receiver NIC memory
    /// (wire + switch + receive-side NIC processing all included).
    pub arrival: Ns,
    /// GM directed send (RDMA write): target offset in the receiver's
    /// registered region. Directed sends consume no receive buffer and
    /// raise no receive event; `tm-gm` applies them to the target region
    /// silently, which is exactly GM's semantics.
    pub directed: Option<(u32, u64)>,
    /// Fault-injection tombstone: the packet was "lost" in flight. It
    /// still traverses the fabric so the receiving thread wakes at the
    /// packet's virtual arrival time (keeping loss handling deterministic
    /// — no wall-clock timeout guessing), but receivers must not deliver
    /// its payload. Real hardware gives no such courtesy; the sim uses it
    /// purely as a deterministic scheduling signal.
    pub lost: bool,
}

impl RawPacket {
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_len_reflects_payload() {
        let p = RawPacket {
            src: 0,
            src_port: 1,
            dst_port: 2,
            payload: Bytes::from_static(b"hello"),
            arrival: Ns(0),
            directed: None,
            lost: false,
        };
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
    }
}
