//! The switch fabric: per-link serialization and cut-through forwarding.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use tm_sim::{LockstepSched, Ns, SchedMode, SimParams};

use crate::nic::NicHandle;
use crate::packet::{NodeId, RawPacket, FRAME_OVERHEAD};

/// One node's full-duplex link state: the virtual time at which each
/// direction is next free. Updated with CAS loops so concurrent node
/// threads serialize their occupancy correctly.
///
/// Writer disciplines, audited for the lockstep scheduler's concurrent
/// per-receiver grants: `tx_free` is only ever advanced by the owning
/// node's own thread (a node has at most one transmit in flight), so it
/// is effectively single-writer in *both* regimes. `rx_free` has many
/// potential writers; under free-run they arbitrate by wall-clock CAS
/// order, while under lockstep the per-receiver token makes the current
/// grant holder the unique writer, and same-link grants are issued in
/// virtual-key order — concurrent reservations on *distinct* rx links
/// touch disjoint atomics and cannot perturb each other's occupancy
/// sequence.
struct LinkState {
    tx_free: AtomicU64,
    rx_free: AtomicU64,
}

/// The cluster interconnect. Shared (`Arc`) by every node thread.
pub struct Fabric {
    params: Arc<SimParams>,
    links: Vec<LinkState>,
    inboxes: Vec<Sender<RawPacket>>,
    /// Which nodes still hold their NIC (cleared by `NicHandle::drop`).
    /// Shutdown protocols under fault injection poll this: the barrier
    /// manager lingers, answering duplicate requests, until every peer is
    /// gone.
    alive: Vec<AtomicBool>,
    /// Count of set flags in `alive`, so the shutdown-linger poll loop is
    /// one atomic load instead of a full scan. Decremented *after* the
    /// flag clears, so the count is always ≥ the number of set flags.
    live: AtomicUsize,
    /// Extra switch traversals beyond the first (multi-stage fabrics for
    /// >16 nodes; the paper's 16-node testbed used a single crossbar).
    extra_hops: u32,
    /// The conservative lockstep scheduler, present iff the cluster runs
    /// under [`SchedMode::Lockstep`]. Every transmit then goes through a
    /// two-phase request/grant keyed on virtual injection time; each rx
    /// link's reservation CAS runs uncontended under its per-receiver
    /// token (see [`LinkState`]).
    sched: Option<Arc<LockstepSched>>,
    /// Sends that found the destination's inbox already closed: the
    /// receiver dropped its NIC while the packet was in flight. Always
    /// tolerated (a powered-off host simply eats late wire traffic) and
    /// counted here so tests can assert on clean runs.
    shutdown_races: AtomicU64,
}

impl Fabric {
    /// Build a fabric for `n` nodes; returns the shared fabric plus one
    /// [`NicHandle`] per node (to be moved into that node's thread).
    pub fn new(n: usize, params: Arc<SimParams>) -> (Arc<Fabric>, Vec<NicHandle>) {
        assert!(n >= 1);
        let mut inboxes = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<RawPacket>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let links = (0..n)
            .map(|_| LinkState {
                tx_free: AtomicU64::new(0),
                rx_free: AtomicU64::new(0),
            })
            .collect();
        // A 16-port crossbar covers 16 nodes in one hop. Larger clusters
        // are a folded Clos of 16-port crossbars: a path crosses up the
        // leaf stages to a spine and back down, so each additional level
        // adds *two* traversals (17–256 nodes is leaf–spine–leaf: 2 extra).
        let mut levels = 1u32;
        let mut capacity = 16usize;
        while capacity < n {
            capacity *= 16;
            levels += 1;
        }
        let extra_hops = 2 * (levels - 1);
        let alive = (0..n).map(|_| AtomicBool::new(true)).collect();
        let sched = (params.sched == SchedMode::Lockstep)
            .then(|| Arc::new(LockstepSched::new_with_tokens(n, params.tokens)));
        let fabric = Arc::new(Fabric {
            params,
            links,
            inboxes,
            alive,
            live: AtomicUsize::new(n),
            extra_hops,
            sched,
            shutdown_races: AtomicU64::new(0),
        });
        let handles = receivers
            .into_iter()
            .enumerate()
            .map(|(id, rx)| NicHandle::new(id, rx, Arc::clone(&fabric)))
            .collect();
        (fabric, handles)
    }

    pub fn nprocs(&self) -> usize {
        self.links.len()
    }

    /// Mark a node's NIC as gone (called from `NicHandle::drop`).
    pub(crate) fn mark_dead(&self, node: NodeId) {
        // Clear-then-decrement keeps `live` an upper bound on the set
        // flags at every instant (a transient over-count only makes a
        // linger poll spin once more, never exit early).
        if self.alive[node].swap(false, Ordering::AcqRel) {
            self.live.fetch_sub(1, Ordering::AcqRel);
        }
        if let Some(sched) = &self.sched {
            sched.mark_done(node);
        }
    }

    /// The lockstep scheduler, when this cluster runs under
    /// [`SchedMode::Lockstep`].
    pub fn sched(&self) -> Option<&Arc<LockstepSched>> {
        self.sched.as_ref()
    }

    /// How many in-flight packets hit an already-departed node's inbox.
    pub fn shutdown_races(&self) -> u64 {
        self.shutdown_races.load(Ordering::Relaxed)
    }

    /// Whether any node other than `me` still holds its NIC. O(1) via the
    /// live count (the linger loops poll this on every quantum); checked
    /// against the flag scan in debug builds.
    pub fn others_alive(&self, me: NodeId) -> bool {
        let fast = self.live_others(me);
        #[cfg(debug_assertions)]
        if !fast {
            // Clear-then-decrement makes `live` an upper bound on the set
            // flags at every instant, and both are monotone decreasing, so
            // "count says dead" is the one verdict the scan can soundly
            // contradict: a zero count with a flag still set means the
            // fast path would end a linger while a peer could still
            // retransmit. (fast=true with all flags clear is the benign
            // transient of a `mark_dead` caught between its two steps.)
            let slow = self
                .alive
                .iter()
                .enumerate()
                .any(|(i, a)| i != me && a.load(Ordering::Acquire));
            debug_assert!(!slow, "live count dropped below set alive flags");
        }
        fast
    }

    fn live_others(&self, me: NodeId) -> bool {
        let mut live = self.live.load(Ordering::Acquire);
        if self.alive[me].load(Ordering::Acquire) {
            live = live.saturating_sub(1);
        }
        live > 0
    }

    /// Whether any of `nodes` still holds its NIC. Tree-barrier shutdown
    /// lingers watch only their own subtree through this.
    pub fn any_alive(&self, nodes: &[NodeId]) -> bool {
        nodes.iter().any(|&i| self.alive[i].load(Ordering::Acquire))
    }

    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Reserve `dur` of occupancy on a link, starting no earlier than
    /// `earliest`. Returns the actual start time.
    fn reserve(slot: &AtomicU64, earliest: Ns, dur: Ns) -> Ns {
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let start = cur.max(earliest.0);
            match slot.compare_exchange_weak(
                cur,
                start + dur.0,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ns(start),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Inject a packet. `inject_time` is the virtual time at which the
    /// sending NIC starts driving the wire (the sender layer has already
    /// charged host + NIC-tx costs). Returns the packet's arrival time at
    /// the receiver (wire + switch + NIC-rx included).
    ///
    /// Loopback (`src == dst`) skips the wire but still pays NIC
    /// processing, as GM does.
    #[allow(clippy::too_many_arguments)]
    pub fn transmit(
        &self,
        src: NodeId,
        dst: NodeId,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
        inject_time: Ns,
        directed: Option<(u32, u64)>,
    ) -> Ns {
        self.transmit_flagged(src, dst, src_port, dst_port, payload, inject_time, directed, false)
    }

    /// [`Fabric::transmit`] with an explicit loss tombstone flag. A lost
    /// packet occupies the wire like a real one (the bytes were sent; the
    /// drop happens in flight) and still lands in the receiver's inbox so
    /// the receiving thread wakes at its virtual arrival, but carries
    /// `lost = true` so no payload is delivered.
    ///
    /// Under [`SchedMode::Lockstep`] the sender's floor after the
    /// transmit defaults to `inject_time`, which is sound only for
    /// callers whose successive injections are monotone (true for every
    /// in-tree transport's plain-send path). Fault paths that delay
    /// packets must use [`Fabric::transmit_floored`] with a clock-derived
    /// floor instead.
    #[allow(clippy::too_many_arguments)]
    pub fn transmit_flagged(
        &self,
        src: NodeId,
        dst: NodeId,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
        inject_time: Ns,
        directed: Option<(u32, u64)>,
        lost: bool,
    ) -> Ns {
        self.transmit_floored(
            src, dst, src_port, dst_port, payload, inject_time, directed, lost, inject_time,
        )
    }

    /// The full transmit entry point: [`Fabric::transmit_flagged`] plus an
    /// explicit lockstep floor. `floor_after` is a sound lower bound on
    /// the virtual time of *any* packet `src` may inject after this one —
    /// transports compute it as their clock's preemptible-window start
    /// plus their declared lookahead. Ignored under
    /// [`SchedMode::FreeRun`].
    #[allow(clippy::too_many_arguments)]
    pub fn transmit_floored(
        &self,
        src: NodeId,
        dst: NodeId,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
        inject_time: Ns,
        directed: Option<(u32, u64)>,
        lost: bool,
        floor_after: Ns,
    ) -> Ns {
        assert!(src < self.nprocs() && dst < self.nprocs(), "bad node id");
        let net = &self.params.net;
        let wire = Ns::for_bytes(payload.len() + FRAME_OVERHEAD, net.link_mb_s);
        if src == dst {
            // Loopback skips the wire *and* the scheduler: it never
            // leaves the node, so it is same-thread program order.
            let arrival = inject_time + net.nic_rx;
            self.push(src, dst, src_port, dst_port, payload, arrival, directed, lost);
            return arrival;
        }
        // Two-phase request/grant: announce the destination and block
        // until the scheduler grants this injection's (time, node, seq)
        // key. While granted we hold `dst`'s rx-link reservation token.
        // Grants to *distinct* receivers may run this section
        // concurrently (per-receiver tokens), which stays deterministic
        // because every atomic below is still single-writer at any
        // instant: `links[src].tx_free` is only ever CASed by this
        // node's own thread (one transmit per node at a time), and
        // `links[dst].rx_free` only by the unique holder of `dst`'s
        // token — same-receiver grants are serialized in virtual-key
        // order, so each rx link's occupancy sequence is the one the
        // fully serial schedule produces and the free-running path's
        // wall-clock arbitration is gone.
        if let Some(sched) = &self.sched {
            sched.request_transmit(src, dst, inject_time, floor_after);
        }
        // Occupy our tx link.
        let tx_start = Self::reserve(&self.links[src].tx_free, inject_time, wire);
        // Head reaches the switch; cut-through forwards it as soon as
        // the receiver's link is free.
        let hops = Ns(net.switch_latency.0 * (1 + self.extra_hops as u64));
        let at_switch = tx_start + hops;
        let rx_start = Self::reserve(&self.links[dst].rx_free, at_switch, wire);
        let arrival = rx_start + wire + net.nic_rx;
        let delivered =
            self.push(src, dst, src_port, dst_port, payload, arrival, directed, lost);
        if let Some(sched) = &self.sched {
            // Release `dst`'s rx-link token; credit the delivery (waking
            // `dst` if parked) only if the packet actually landed.
            sched.finish_transmit(src, if delivered { dst } else { src }, arrival);
        }
        arrival
    }

    /// Enqueue a packet into `dst`'s inbox; returns whether it landed.
    /// The channel send can only fail if the receiver node already
    /// finished — legitimate late wire traffic racing the destination's
    /// shutdown (a retransmission, a replayed response, a barrier
    /// arrival to a departed manager). A powered-off host eats such
    /// packets; we count them instead of treating them as errors.
    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        src: NodeId,
        dst: NodeId,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
        arrival: Ns,
        directed: Option<(u32, u64)>,
        lost: bool,
    ) -> bool {
        let pkt = RawPacket {
            src,
            src_port,
            dst_port,
            payload,
            arrival,
            directed,
            lost,
        };
        if self.inboxes[dst].send(pkt).is_err() {
            self.shutdown_races.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> (Arc<Fabric>, Vec<NicHandle>) {
        Fabric::new(n, Arc::new(SimParams::paper_testbed()))
    }

    #[test]
    fn transmit_delivers_to_inbox() {
        let (f, mut nics) = fabric(2);
        let arr = f.transmit(0, 1, 2, 3, Bytes::from_static(b"hi"), Ns(0), None);
        let pkt = nics[1].recv_blocking();
        assert_eq!(pkt.src, 0);
        assert_eq!(pkt.src_port, 2);
        assert_eq!(pkt.dst_port, 3);
        assert_eq!(pkt.arrival, arr);
        assert!(arr > Ns(0));
    }

    #[test]
    fn larger_packets_take_longer() {
        let (f, _nics) = fabric(2);
        let a1 = f.transmit(0, 1, 0, 0, Bytes::from(vec![0u8; 10]), Ns(0), None);
        // Same link now busy, so measure from a later, free time.
        let t = Ns::from_ms(1);
        let a2 = f.transmit(0, 1, 0, 0, Bytes::from(vec![0u8; 100_000]), t, None);
        assert!(a2 - t > a1, "100KB should take longer than 10B");
    }

    #[test]
    fn link_contention_serializes() {
        let (f, _nics) = fabric(3);
        let big = 1_000_000usize;
        let wire = Ns::for_bytes(big + FRAME_OVERHEAD, f.params().net.link_mb_s);
        // Two senders target node 2 at the same instant: the second
        // transfer must queue behind the first on node 2's rx link.
        let a1 = f.transmit(0, 2, 0, 0, Bytes::from(vec![0u8; big]), Ns(0), None);
        let a2 = f.transmit(1, 2, 0, 0, Bytes::from(vec![0u8; big]), Ns(0), None);
        assert!(a2 >= a1 + wire - Ns(1000), "a1={a1:?} a2={a2:?} wire={wire:?}");
    }

    #[test]
    fn loopback_skips_wire() {
        let (f, mut nics) = fabric(2);
        let arr = f.transmit(0, 0, 1, 1, Bytes::from_static(b"self"), Ns(100), None);
        assert_eq!(arr, Ns(100) + f.params().net.nic_rx);
        let pkt = nics[0].recv_blocking();
        assert_eq!(pkt.src, 0);
    }

    #[test]
    fn extra_hops_for_big_clusters() {
        // ≤16 nodes: one crossbar, no extra traversals. 17–256 nodes: a
        // folded Clos of 16-port crossbars is leaf–spine–leaf, so a path
        // crosses two switches beyond the first. 257–4096: three extra
        // levels up and down = 4.
        let (f16, _) = fabric(16);
        let (f17, _) = fabric(17);
        let (f64n, _) = fabric(64);
        let (f256, _) = fabric(256);
        let (f257, _) = fabric(257);
        assert_eq!(f16.extra_hops, 0);
        assert_eq!(f17.extra_hops, 2);
        assert_eq!(f64n.extra_hops, 2);
        assert_eq!(f256.extra_hops, 2);
        assert_eq!(f257.extra_hops, 4);
    }

    #[test]
    fn live_count_tracks_mark_dead() {
        let (f, nics) = fabric(4);
        // Keep the NICs alive for the duration of the test; their Drop
        // would otherwise call mark_dead underneath us.
        assert!(f.others_alive(0));
        f.mark_dead(1);
        f.mark_dead(2);
        assert_eq!(f.live.load(Ordering::Acquire), 2);
        assert!(f.others_alive(0), "node 3 still up");
        assert!(f.any_alive(&[3]));
        assert!(!f.any_alive(&[1, 2]));
        f.mark_dead(3);
        assert!(!f.others_alive(0), "only we remain");
        assert!(f.any_alive(&[0]), "we are still alive");
        drop(nics);
    }

    #[test]
    #[should_panic(expected = "bad node id")]
    fn bad_destination_panics() {
        let (f, _nics) = fabric(2);
        f.transmit(0, 5, 0, 0, Bytes::new(), Ns(0), None);
    }

    #[test]
    fn shutdown_race_is_counted_not_fatal() {
        let (f, mut nics) = fabric(2);
        assert_eq!(f.shutdown_races(), 0);
        // Node 1 departs; a late in-flight packet must evaporate (be
        // counted), not panic — even with no fault plan active.
        drop(nics.remove(1));
        f.transmit(0, 1, 0, 0, Bytes::from_static(b"late"), Ns(0), None);
        assert_eq!(f.shutdown_races(), 1);
    }

    /// Two senders contend for one rx link with adversarial wall-clock
    /// staggering: under lockstep the grant (and therefore the rx-link
    /// queueing order and every arrival time) must follow virtual keys,
    /// identically on every run.
    #[test]
    fn lockstep_serializes_rx_contention_by_virtual_key() {
        use std::thread;
        let run = |stagger_ms: u64| -> Vec<(NodeId, Ns)> {
            let params = Arc::new(SimParams::lockstep_testbed());
            let (_f, mut nics) = Fabric::new(3, params);
            let mut receiver = nics.remove(2);
            let mut senders = vec![];
            for (nic, inject, delay_ms) in [
                (nics.remove(1), Ns(1_000), 0u64),
                (nics.remove(0), Ns(2_000), stagger_ms),
            ] {
                senders.push(thread::spawn(move || {
                    thread::sleep(std::time::Duration::from_millis(delay_ms));
                    nic.inject(2, 0, 0, Bytes::from(vec![0u8; 10_000]), inject, None);
                }));
            }
            let recv_thread = thread::spawn(move || {
                let a = receiver.recv_blocking();
                let b = receiver.recv_blocking();
                vec![(a.src, a.arrival), (b.src, b.arrival)]
            });
            for s in senders {
                s.join().unwrap();
            }
            recv_thread.join().unwrap()
        };
        let fast = run(0);
        let slow = run(30);
        assert_eq!(fast, slow, "arrival schedule must not depend on wall clock");
        assert_eq!(fast[0].0, 1, "virtual key 1000 (node 1) must win the rx link");
    }

    #[test]
    fn concurrent_reservations_never_overlap() {
        use std::thread;
        let (f, _nics) = fabric(2);
        let wire = Ns::for_bytes(10_000 + FRAME_OVERHEAD, f.params().net.link_mb_s);
        let mut handles = vec![];
        for _ in 0..8 {
            let f = Arc::clone(&f);
            handles.push(thread::spawn(move || {
                let mut starts = vec![];
                for _ in 0..50 {
                    let a = f.transmit(0, 1, 0, 0, Bytes::from(vec![0u8; 10_000]), Ns(0), None);
                    starts.push(a);
                }
                starts
            }));
        }
        let mut all: Vec<Ns> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        // 400 packets over one serialized link: arrivals must be spaced by
        // at least the wire time of one packet.
        for w in all.windows(2) {
            assert!(w[1] - w[0] >= wire - Ns(2), "overlapping occupancy");
        }
    }
}
