//! # tm-myrinet — simulated Myrinet-2000 fabric and LANai NIC
//!
//! Models the wire: full-duplex 2 Gb/s links into a cut-through crossbar
//! switch, with per-link serialization (so bandwidth contention is real:
//! two senders targeting one receiver halve each other's throughput), plus
//! the LANai NIC's fixed per-packet processing costs.
//!
//! What it deliberately does **not** model: GM's buffer/token semantics
//! (that is `tm-gm`), kernel sockets (that is `tm-udp`). Both layers share
//! this fabric, which is exactly the physical situation of the paper —
//! UDP/GM and FAST/GM ran over the same NICs and switch.
//!
//! Delivery is via real channels: a node thread blocking on
//! [`NicHandle::recv_blocking`] is genuinely parked until a packet lands,
//! so protocol deadlocks deadlock.

pub mod fabric;
pub mod nic;
pub mod packet;

pub use fabric::Fabric;
pub use nic::{DeadlineWatchRecv, NicHandle};
pub use packet::{NodeId, RawPacket};
