//! Receive side of a node's NIC: demultiplexing and blocking waits.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;
use tm_sim::{Ns, WakeReason};

use crate::fabric::Fabric;
use crate::packet::{NodeId, RawPacket};

/// Ports below this value belong to GM; at or above, to the sockets layer.
pub const SOCKET_PORT_BASE: u16 = 1024;

/// Outcome of a combined deadline + done-watch receive
/// ([`NicHandle::recv_any_deadline_done_watch`]).
#[derive(Debug)]
pub enum DeadlineWatchRecv {
    /// A packet arrived (at or before the deadline, or handed over by
    /// the final drain after the watched peers departed).
    Pkt(RawPacket),
    /// The deadline became the cluster's next event.
    Timeout,
    /// Every watched peer deregistered its NIC, and no packet remained.
    PeersDone,
}

/// A node's handle on its NIC. Owned by the node thread.
///
/// Incoming packets land on one channel; the handle demultiplexes them into
/// per-port queues on demand. Blocking receives park the OS thread — if the
/// protocol above deadlocks, the simulation visibly hangs rather than
/// producing wrong numbers.
pub struct NicHandle {
    node: NodeId,
    rx: Receiver<RawPacket>,
    fabric: Arc<Fabric>,
    /// Demux queues, keyed by dst_port. Sparse: allocated on first use.
    queues: Vec<(u16, VecDeque<RawPacket>)>,
}

impl NicHandle {
    pub(crate) fn new(node: NodeId, rx: Receiver<RawPacket>, fabric: Arc<Fabric>) -> Self {
        NicHandle {
            node,
            rx,
            fabric,
            queues: Vec::new(),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Whether any peer node still holds its NIC (see
    /// [`Fabric::others_alive`]).
    pub fn others_alive(&self) -> bool {
        self.fabric.others_alive(self.node)
    }

    /// Whether any of `nodes` still holds its NIC (see
    /// [`Fabric::any_alive`]). Subtree-scoped shutdown lingers use this.
    pub fn any_alive(&self, nodes: &[NodeId]) -> bool {
        self.fabric.any_alive(nodes)
    }

    /// Whether this cluster runs under the conservative lockstep
    /// scheduler (see [`tm_sim::sched`]).
    pub fn lockstep(&self) -> bool {
        self.fabric.sched().is_some()
    }

    /// Declare this node's substrate lookahead to the lockstep scheduler
    /// (no-op under free-run): a sound lower bound on the virtual time
    /// between the start of the node's preemptible window and its next
    /// packet reaching the wire. Transports call this once at
    /// construction.
    pub fn declare_lookahead(&self, la: Ns) {
        if let Some(sched) = self.fabric.sched() {
            sched.declare_lookahead(self.node, la);
        }
    }

    /// This node's current delivery count under lockstep (0 under
    /// free-run): the race-detection signature for
    /// [`NicHandle::poll_quiesce`]. Sample it *before* draining the
    /// channel, so a delivery that lands between the drain and the
    /// quiesce bounces the quiesce instead of being missed.
    pub fn delivery_signature(&self) -> u64 {
        self.fabric
            .sched()
            .map_or(0, |s| s.delivery_count(self.node))
    }

    /// Lockstep-only settlement of a non-blocking poll at virtual time
    /// `t`: returns `true` once the scheduler proves no packet with
    /// virtual arrival ≤ `t` can still be in flight (the poll's miss is
    /// then deterministic), or `false` if a delivery raced in first (the
    /// caller must re-drain and re-examine its queues). `seen` is the
    /// [`NicHandle::delivery_signature`] sampled before the caller's
    /// drain; `floor` as in [`NicHandle::recv_any_floored`]. Under
    /// free-run this returns `true` immediately — free-run polls are
    /// allowed to race.
    pub fn poll_quiesce(&self, t: Ns, seen: u64, floor: Ns) -> bool {
        match self.fabric.sched() {
            Some(s) => s.poll_quiesce(self.node, t, seen, floor),
            None => true,
        }
    }

    /// Inject a packet from this node (sender side). Thin forwarding to
    /// [`Fabric::transmit`]; cost accounting is the caller's business.
    /// Under lockstep the sender's post-transmit floor defaults to the
    /// injection time — sound only for monotone injectors; transports
    /// with clock access use [`NicHandle::inject_floored`].
    pub fn inject(
        &self,
        dst: NodeId,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
        inject_time: Ns,
        directed: Option<(u32, u64)>,
    ) -> Ns {
        self.fabric
            .transmit(self.node, dst, src_port, dst_port, payload, inject_time, directed)
    }

    /// [`NicHandle::inject`] with an explicit lockstep floor:
    /// `floor_after` bounds from below every packet this node may inject
    /// after this one (clock preemptible-window start + declared
    /// lookahead). Ignored under free-run.
    #[allow(clippy::too_many_arguments)]
    pub fn inject_floored(
        &self,
        dst: NodeId,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
        inject_time: Ns,
        directed: Option<(u32, u64)>,
        floor_after: Ns,
    ) -> Ns {
        self.fabric.transmit_floored(
            self.node,
            dst,
            src_port,
            dst_port,
            payload,
            inject_time,
            directed,
            false,
            floor_after,
        )
    }

    /// Inject a fault-injection loss tombstone: the packet occupies the
    /// wire and wakes the receiver at its virtual arrival, but is flagged
    /// `lost` so the receiver layer discards (and counts) it instead of
    /// delivering the payload.
    pub fn inject_lost(
        &self,
        dst: NodeId,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
        inject_time: Ns,
    ) -> Ns {
        self.inject_lost_floored(dst, src_port, dst_port, payload, inject_time, inject_time)
    }

    /// [`NicHandle::inject_lost`] with an explicit lockstep floor (see
    /// [`NicHandle::inject_floored`]). Fault paths that delay or
    /// duplicate packets must use this: a reordered packet's injection
    /// time is *not* a sound floor for the node's next send.
    pub fn inject_lost_floored(
        &self,
        dst: NodeId,
        src_port: u16,
        dst_port: u16,
        payload: Bytes,
        inject_time: Ns,
        floor_after: Ns,
    ) -> Ns {
        self.fabric.transmit_floored(
            self.node,
            dst,
            src_port,
            dst_port,
            payload,
            inject_time,
            None,
            true,
            floor_after,
        )
    }

    fn queue_mut(&mut self, port: u16) -> &mut VecDeque<RawPacket> {
        if let Some(i) = self.queues.iter().position(|(p, _)| *p == port) {
            &mut self.queues[i].1
        } else {
            self.queues.push((port, VecDeque::new()));
            let last = self.queues.len() - 1;
            &mut self.queues[last].1
        }
    }

    fn stash(&mut self, pkt: RawPacket) {
        let port = pkt.dst_port;
        self.queue_mut(port).push_back(pkt);
    }

    /// Drain everything currently sitting in the channel into the demux
    /// queues (non-blocking).
    pub fn drain(&mut self) {
        while let Ok(pkt) = self.rx.try_recv() {
            self.stash(pkt);
        }
    }

    /// Non-blocking poll of one port.
    pub fn poll_port(&mut self, port: u16) -> Option<RawPacket> {
        self.drain();
        self.queue_mut(port).pop_front()
    }

    /// Peek the earliest-queued packet on a port without consuming it.
    pub fn peek_port(&mut self, port: u16) -> Option<&RawPacket> {
        self.drain();
        // Split lookup to satisfy borrowck: position first, then index.
        let i = self.queues.iter().position(|(p, _)| *p == port)?;
        self.queues[i].1.front()
    }

    /// Number of packets queued for a port.
    pub fn queued(&mut self, port: u16) -> usize {
        self.drain();
        self.queues
            .iter()
            .find(|(p, _)| *p == port)
            .map_or(0, |(_, q)| q.len())
    }

    /// Index of the demux queue whose front packet has the smallest
    /// arrival time among `ports` (or all ports when `None`) —
    /// virtual-time fairness between ports. Callers drain first.
    fn best_queued_idx(&self, ports: Option<&[u16]>) -> Option<usize> {
        let mut best: Option<(usize, Ns)> = None;
        for (i, (p, q)) in self.queues.iter().enumerate() {
            if ports.is_none_or(|ps| ps.contains(p)) {
                if let Some(front) = q.front() {
                    if best.is_none_or(|(_, a)| front.arrival < a) {
                        best = Some((i, front.arrival));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Block until a packet is available on *any* of `ports`; returns it.
    /// FIFO across the wire per sender; arrival order across senders is
    /// channel order (which respects each sender's injection order) under
    /// free-run, and virtual-key grant order under lockstep.
    pub fn recv_any_blocking(&mut self, ports: &[u16]) -> RawPacket {
        self.recv_any_floored(ports, Ns::ZERO)
    }

    /// [`NicHandle::recv_any_blocking`] with an explicit lockstep park
    /// floor: a sound lower bound on any packet this node may inject
    /// after waking (clock preemptible-window start + declared
    /// lookahead). `Ns::ZERO` is always safe — the woken node then
    /// blocks all grants until its next scheduler interaction — and is
    /// what the floor-less wrapper passes. Ignored under free-run.
    pub fn recv_any_floored(&mut self, ports: &[u16], floor: Ns) -> RawPacket {
        let sched = self.fabric.sched().cloned();
        loop {
            // Capture the delivery signature *before* draining: if a
            // delivery lands between our drain and our park, the
            // signature mismatch makes the park bounce back immediately
            // instead of sleeping through the wakeup.
            let sig = sched.as_ref().map(|s| s.delivery_count(self.node));
            self.drain();
            if let Some(i) = self.best_queued_idx(Some(ports)) {
                return self.queues[i].1.pop_front().expect("non-empty");
            }
            match (&sched, sig) {
                (Some(s), Some(sig)) => {
                    // Park on the scheduler (never the channel): cluster
                    // deadlock panics there with the parked-node set.
                    let _ = s.park(self.node, sig, None, floor);
                }
                _ => match self.rx.recv() {
                    Ok(pkt) => self.stash(pkt),
                    Err(_) => panic!(
                        "node {}: waiting on ports {ports:?} but all senders shut down (protocol deadlock or premature exit)",
                        self.node
                    ),
                },
            }
        }
    }

    /// Lockstep-only bounded receive: block until a packet with arrival
    /// ≤ `deadline` is available on any of `ports`, or until the
    /// deadline itself becomes the cluster's next event. Returns `None`
    /// on timeout — including when the earliest queued packet arrives
    /// *after* the deadline (it stays queued; the caller's virtual clock
    /// jumps to the deadline). `floor` as in
    /// [`NicHandle::recv_any_floored`]. This replaces the wall-clock
    /// guard of [`NicHandle::recv_any_bounded`] with a deterministic
    /// virtual-time timeout.
    pub fn recv_any_deadline(
        &mut self,
        ports: &[u16],
        deadline: Ns,
        floor: Ns,
    ) -> Option<RawPacket> {
        let sched = self
            .fabric
            .sched()
            .cloned()
            .expect("recv_any_deadline requires SchedMode::Lockstep");
        loop {
            let sig = sched.delivery_count(self.node);
            self.drain();
            if let Some(i) = self.best_queued_idx(Some(ports)) {
                let q = &mut self.queues[i].1;
                if q.front().expect("non-empty").arrival <= deadline {
                    return q.pop_front();
                }
                // The next event for this node is already past the
                // deadline: the timeout fires first, deterministically.
                return None;
            }
            match sched.park(self.node, sig, Some(deadline), floor) {
                WakeReason::Delivered => continue,
                WakeReason::PeersDone => unreachable!("plain parks carry no done-watch"),
                WakeReason::Timeout => {
                    self.drain();
                    if let Some(i) = self.best_queued_idx(Some(ports)) {
                        let q = &mut self.queues[i].1;
                        if q.front().expect("non-empty").arrival <= deadline {
                            return q.pop_front();
                        }
                    }
                    return None;
                }
            }
        }
    }

    /// Lockstep-only shutdown-linger receive: block until a packet is
    /// available on any of `ports`, or until every node in `watch` has
    /// deregistered its NIC (dropped its handle), in which case `None`
    /// is returned. Deregistration is routed through the scheduler as a
    /// `Done` event ([`tm_sim::LockstepSched::park_done_watch`]), so the
    /// exact set of packets served before the `None` — and therefore
    /// every post-exit counter — is deterministic; no wall-clock
    /// liveness flag is consulted. `floor` as in
    /// [`NicHandle::recv_any_floored`].
    pub fn recv_any_done_watch(
        &mut self,
        ports: &[u16],
        watch: &[NodeId],
        floor: Ns,
    ) -> Option<RawPacket> {
        let sched = self
            .fabric
            .sched()
            .cloned()
            .expect("recv_any_done_watch requires SchedMode::Lockstep");
        loop {
            let sig = sched.delivery_count(self.node);
            self.drain();
            if let Some(i) = self.best_queued_idx(Some(ports)) {
                return self.queues[i].1.pop_front();
            }
            match sched.park_done_watch(self.node, watch, sig, floor) {
                WakeReason::Delivered => continue,
                WakeReason::PeersDone => {
                    // The watched peers' final transmits were granted
                    // before their drops; one last drain picks them up.
                    self.drain();
                    return match self.best_queued_idx(Some(ports)) {
                        Some(i) => self.queues[i].1.pop_front(),
                        None => None,
                    };
                }
                WakeReason::Timeout => unreachable!("no deadline on a done-watch park"),
            }
        }
    }

    /// Combined deadline + done-watch receive (lockstep only): block for
    /// a packet on `ports` until virtual time `deadline` becomes the
    /// cluster's next event *or* every node in `watch` deregisters its
    /// NIC — whichever the scheduler orders first. This is the exit
    /// fan's wait: the deadline keeps a lost notice's retransmission
    /// timer live while the watched consumer can still be reached, and
    /// the done-watch cancels that timer deterministically the moment
    /// the consumer is gone, so a retransmission never fires into a dead
    /// node. On `PeersDone` a final drain hands over any packet the
    /// departing peers' last transmits delivered (their grants are
    /// ordered before their drops).
    pub fn recv_any_deadline_done_watch(
        &mut self,
        ports: &[u16],
        watch: &[NodeId],
        deadline: Ns,
        floor: Ns,
    ) -> DeadlineWatchRecv {
        let sched = self
            .fabric
            .sched()
            .cloned()
            .expect("recv_any_deadline_done_watch requires SchedMode::Lockstep");
        loop {
            let sig = sched.delivery_count(self.node);
            self.drain();
            if let Some(i) = self.best_queued_idx(Some(ports)) {
                let q = &mut self.queues[i].1;
                if q.front().expect("non-empty").arrival <= deadline {
                    return DeadlineWatchRecv::Pkt(q.pop_front().expect("non-empty"));
                }
                // The next event for this node is already past the
                // deadline: the timeout fires first, deterministically.
                return DeadlineWatchRecv::Timeout;
            }
            match sched.park_deadline_done_watch(self.node, watch, sig, deadline, floor) {
                WakeReason::Delivered => continue,
                WakeReason::PeersDone => {
                    self.drain();
                    return match self.best_queued_idx(Some(ports)) {
                        // A packet the peer's final grant delivered wins
                        // over the cancellation, whatever its arrival —
                        // matching `recv_any_done_watch`'s last drain.
                        Some(i) => DeadlineWatchRecv::Pkt(
                            self.queues[i].1.pop_front().expect("non-empty"),
                        ),
                        None => DeadlineWatchRecv::PeersDone,
                    };
                }
                WakeReason::Timeout => {
                    self.drain();
                    if let Some(i) = self.best_queued_idx(Some(ports)) {
                        let q = &mut self.queues[i].1;
                        if q.front().expect("non-empty").arrival <= deadline {
                            return DeadlineWatchRecv::Pkt(q.pop_front().expect("non-empty"));
                        }
                    }
                    return DeadlineWatchRecv::Timeout;
                }
            }
        }
    }

    /// Like [`NicHandle::recv_any_blocking`], but the park on an empty
    /// channel is bounded by a *wall-clock* guard. This is the thin
    /// escape hatch for hang detection under free-run: virtual-time code
    /// never depends on the guard's value for correctness — it only
    /// fires when the cluster is truly silent (e.g. a datagram was
    /// silently dropped with no tombstone, which only receive-buffer
    /// overflow can produce). Returns `None` if the guard expires with
    /// nothing queued. Lockstep callers use
    /// [`NicHandle::recv_any_deadline`] instead.
    pub fn recv_any_bounded(
        &mut self,
        ports: &[u16],
        guard: std::time::Duration,
    ) -> Option<RawPacket> {
        loop {
            self.drain();
            if let Some(i) = self.best_queued_idx(Some(ports)) {
                return Some(self.queues[i].1.pop_front().expect("non-empty"));
            }
            match self.rx.recv_timeout(guard) {
                Ok(pkt) => self.stash(pkt),
                Err(_) => return None,
            }
        }
    }

    /// Block until any packet at all arrives (used by raw benchmarks).
    pub fn recv_blocking(&mut self) -> RawPacket {
        let sched = self.fabric.sched().cloned();
        loop {
            let sig = sched.as_ref().map(|s| s.delivery_count(self.node));
            self.drain();
            if let Some(i) = self.best_queued_idx(None) {
                return self.queues[i].1.pop_front().expect("non-empty");
            }
            match (&sched, sig) {
                (Some(s), Some(sig)) => {
                    let _ = s.park(self.node, sig, None, Ns::ZERO);
                }
                _ => match self.rx.recv() {
                    Ok(pkt) => self.stash(pkt),
                    Err(_) => panic!("node {}: all senders shut down", self.node),
                },
            }
        }
    }
}

impl Drop for NicHandle {
    fn drop(&mut self) {
        self.fabric.mark_dead(self.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_sim::SimParams;

    fn pair() -> (Arc<Fabric>, Vec<NicHandle>) {
        Fabric::new(2, Arc::new(SimParams::paper_testbed()))
    }

    #[test]
    fn poll_port_demuxes() {
        let (f, mut nics) = pair();
        f.transmit(0, 1, 9, 5, Bytes::from_static(b"a"), Ns(0), None);
        f.transmit(0, 1, 9, 6, Bytes::from_static(b"b"), Ns(0), None);
        // Give the channel a moment: sends are synchronous in-process, so
        // they're already there.
        let n1 = &mut nics[1];
        let on5 = n1.poll_port(5).expect("packet on port 5");
        assert_eq!(&on5.payload[..], b"a");
        assert!(n1.poll_port(5).is_none());
        let on6 = n1.poll_port(6).expect("packet on port 6");
        assert_eq!(&on6.payload[..], b"b");
    }

    #[test]
    fn recv_any_picks_earliest_arrival() {
        let (f, mut nics) = pair();
        // Loopback packet lands at 10ms on port 5; a wire packet from node
        // 0 lands microseconds in on port 6. Although the late one is
        // queued first, selection must follow virtual arrival time.
        f.transmit(1, 1, 0, 5, Bytes::from_static(b"late"), Ns::from_ms(10), None);
        f.transmit(0, 1, 0, 6, Bytes::from_static(b"early"), Ns(0), None);
        let got = nics[1].recv_any_blocking(&[5, 6]);
        assert_eq!(&got.payload[..], b"early");
    }

    #[test]
    fn recv_any_ignores_other_ports() {
        let (f, mut nics) = pair();
        f.transmit(0, 1, 0, 7, Bytes::from_static(b"other"), Ns(0), None);
        f.transmit(0, 1, 0, 5, Bytes::from_static(b"mine"), Ns(0), None);
        let got = nics[1].recv_any_blocking(&[5]);
        assert_eq!(&got.payload[..], b"mine");
        // The port-7 packet is still queued.
        assert_eq!(nics[1].queued(7), 1);
    }

    #[test]
    fn blocking_recv_waits_for_sender_thread() {
        use std::thread;
        let (f, mut nics) = pair();
        let mut n1 = nics.remove(1);
        let t = thread::spawn(move || n1.recv_any_blocking(&[3]).payload);
        thread::sleep(std::time::Duration::from_millis(20));
        f.transmit(0, 1, 0, 3, Bytes::from_static(b"wake"), Ns(0), None);
        assert_eq!(&t.join().unwrap()[..], b"wake");
    }

    #[test]
    fn peek_does_not_consume() {
        let (f, mut nics) = pair();
        f.transmit(0, 1, 0, 5, Bytes::from_static(b"x"), Ns(0), None);
        assert!(nics[1].peek_port(5).is_some());
        assert!(nics[1].peek_port(5).is_some());
        assert!(nics[1].poll_port(5).is_some());
        assert!(nics[1].peek_port(5).is_none());
    }
}
