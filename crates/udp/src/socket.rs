//! The kernel UDP/IP socket model.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tm_myrinet::{NicHandle, NodeId};
use tm_sim::{Ns, SharedClock, SimParams};

/// Sockets live above the GM port namespace on the shared fabric.
pub const SOCKET_PORT_BASE: u16 = 1024;

/// Default socket receive-buffer capacity in datagrams (SO_RCVBUF-ish).
const SOCKBUF_DATAGRAMS: usize = 256;

/// A datagram sitting in a socket's receive buffer.
#[derive(Debug, Clone)]
pub struct Datagram {
    pub src: NodeId,
    pub src_port: u16,
    pub data: Bytes,
    /// Virtual time at which the datagram is in the socket buffer:
    /// NIC arrival + receive interrupt + protocol processing + the copy
    /// into the socket buffer.
    pub ready: Ns,
}

struct SocketState {
    port: u16,
    queue: VecDeque<Datagram>,
    /// O_ASYNC: SIGIO on arrival. The signal's cost is charged by the
    /// substrate's async scheme at service time.
    pub sigio: bool,
}

/// One node's kernel socket layer. Owned by the node thread.
pub struct UdpStack {
    nic: NicHandle,
    clock: SharedClock,
    params: Arc<SimParams>,
    sockets: Vec<SocketState>,
    rng: SmallRng,
    /// Datagrams dropped (loss model + buffer overflow).
    pub drops: u64,
}

impl UdpStack {
    pub fn new(nic: NicHandle, clock: SharedClock, params: Arc<SimParams>) -> Self {
        let seed = 0x7ead_a55e_u64 ^ (nic.node() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        UdpStack {
            nic,
            clock,
            params,
            sockets: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            drops: 0,
        }
    }

    pub fn node(&self) -> NodeId {
        self.nic.node()
    }

    pub fn nprocs(&self) -> usize {
        self.nic.fabric().nprocs()
    }

    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    pub fn params(&self) -> &Arc<SimParams> {
        &self.params
    }

    /// `socket() + bind()`: claim a local port. `sigio` models O_ASYNC.
    pub fn bind(&mut self, port: u16, sigio: bool) {
        assert!(
            !self.sockets.iter().any(|s| s.port == port),
            "port {port} already bound"
        );
        // Two syscalls: socket(), bind().
        let syscall = self.params.host.syscall;
        self.clock.borrow_mut().advance(syscall * 2);
        self.sockets.push(SocketState {
            port,
            queue: VecDeque::new(),
            sigio,
        });
    }

    fn fragments(&self, len: usize) -> u64 {
        (len.max(1)).div_ceil(self.params.udp.mtu) as u64
    }

    /// `sendto()`: copy into the kernel, fragment, and inject.
    pub fn sendto(&mut self, dst: NodeId, dst_port: u16, src_port: u16, data: &[u8]) {
        let cost = self.tx_cost(data.len());
        self.clock.borrow_mut().advance(cost);
        let p = &self.params;
        {
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_sent += 1;
            c.stats.bytes_sent += data.len() as u64;
        }
        // Loss model: the datagram evaporates after the sender paid its
        // costs (as with real UDP).
        let drop_p = p.udp.drop_probability;
        if drop_p > 0.0 && self.rng.random::<f64>() < drop_p {
            self.drops += 1;
            return;
        }
        // The kernel path still crosses the NIC.
        let inject = self.clock.borrow().now() + p.net.nic_tx;
        self.nic.inject(
            dst,
            SOCKET_PORT_BASE + src_port,
            SOCKET_PORT_BASE + dst_port,
            Bytes::copy_from_slice(data),
            inject,
            None,
        );
    }

    /// Like [`sendto`](UdpStack::sendto) but injects at virtual time `at`
    /// without charging the clock — for responses emitted from signal
    /// handlers whose kernel work was already accounted by the caller
    /// (fold [`UdpStack::tx_cost`] into the handler's service time).
    pub fn sendto_at(&mut self, dst: NodeId, dst_port: u16, src_port: u16, data: &[u8], at: Ns) {
        {
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_sent += 1;
            c.stats.bytes_sent += data.len() as u64;
        }
        let drop_p = self.params.udp.drop_probability;
        if drop_p > 0.0 && self.rng.random::<f64>() < drop_p {
            self.drops += 1;
            return;
        }
        let inject = at + self.params.net.nic_tx;
        self.nic.inject(
            dst,
            SOCKET_PORT_BASE + src_port,
            SOCKET_PORT_BASE + dst_port,
            Bytes::copy_from_slice(data),
            inject,
            None,
        );
    }

    /// Host-side transmit cost of a datagram of `len` bytes (what
    /// [`sendto`](UdpStack::sendto) charges).
    pub fn tx_cost(&self, len: usize) -> Ns {
        let p = &self.params;
        let frags = self.fragments(len);
        p.host.syscall
            + p.udp.tx_proto
            + Ns::for_bytes(len, p.host.memcpy_mb_s)
            + Ns(p.udp.per_fragment.0 * (frags - 1))
    }

    /// Kernel cost between NIC arrival and the datagram becoming visible
    /// (the first receive interrupt fires regardless of what the CPU is
    /// doing).
    fn rx_kernel_cost(&self, _len: usize) -> Ns {
        self.params.udp.rx_interrupt
    }

    /// Kernel work consumed *serially on the CPU* to deliver one datagram:
    /// protocol processing, the per-fragment interrupts and bookkeeping
    /// beyond the first, the copy into the socket buffer and the copy out
    /// to user space. This is what caps sockets-over-GM streaming
    /// bandwidth well below the wire.
    fn rx_consume_cost(&self, len: usize) -> Ns {
        let p = &self.params;
        let frags = self.fragments(len);
        p.udp.rx_proto
            + Ns((p.udp.per_fragment.0 + p.udp.rx_interrupt.0) * (frags - 1))
            + Ns::for_bytes(len, p.host.memcpy_mb_s) * 2
    }

    /// Pull NIC arrivals into socket buffers.
    fn drain(&mut self) {
        // Collect bound ports first (borrow discipline).
        let ports: Vec<u16> = self.sockets.iter().map(|s| s.port).collect();
        for port in ports {
            while let Some(pkt) = self.nic.poll_port(SOCKET_PORT_BASE + port) {
                let ready = pkt.arrival + self.rx_kernel_cost(pkt.payload.len());
                let sock = self
                    .sockets
                    .iter_mut()
                    .find(|s| s.port == port)
                    .expect("bound");
                if sock.queue.len() >= SOCKBUF_DATAGRAMS {
                    // Socket buffer overflow: silently dropped, like real UDP.
                    self.drops += 1;
                    continue;
                }
                sock.queue.push_back(Datagram {
                    src: pkt.src,
                    src_port: pkt.src_port - SOCKET_PORT_BASE,
                    data: pkt.payload,
                    ready,
                });
            }
        }
    }

    fn sock_mut(&mut self, port: u16) -> &mut SocketState {
        self.sockets
            .iter_mut()
            .find(|s| s.port == port)
            .unwrap_or_else(|| panic!("port {port} not bound"))
    }

    /// Non-blocking `recvfrom(MSG_DONTWAIT)`: returns a datagram whose
    /// kernel processing completed by the node's current virtual time.
    pub fn try_recvfrom(&mut self, port: u16) -> Option<Datagram> {
        self.drain();
        let now = self.clock.borrow().now();
        let syscall = self.params.host.syscall;
        let sock = self.sock_mut(port);
        if sock.queue.front().is_some_and(|d| d.ready <= now) {
            let d = sock.queue.pop_front().expect("non-empty");
            // recvfrom syscall + the serial kernel delivery work.
            let consume = self.rx_consume_cost(d.data.len());
            self.clock.borrow_mut().advance(syscall + consume);
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_recv += 1;
            c.stats.bytes_recv += d.data.len() as u64;
            Some(d)
        } else {
            self.clock.borrow_mut().advance(syscall);
            None
        }
    }

    /// Earliest-ready datagram across `ports`, if any is queued (ignoring
    /// virtual readiness — used by blocking paths which then wait).
    fn earliest_queued(&mut self, ports: &[u16]) -> Option<(u16, Ns)> {
        self.drain();
        let mut best: Option<(u16, Ns)> = None;
        for s in &self.sockets {
            if ports.contains(&s.port) {
                if let Some(d) = s.queue.front() {
                    if best.is_none_or(|(_, r)| d.ready < r) {
                        best = Some((s.port, d.ready));
                    }
                }
            }
        }
        best
    }

    /// Blocking `recvfrom()` on one port.
    pub fn recvfrom(&mut self, port: u16) -> Datagram {
        self.recv_any(&[port]).1
    }

    /// `select()` + `recvfrom()`: block until a datagram is available on
    /// any of `ports`. Charges the select syscall and a scheduler wakeup
    /// if the process actually slept.
    pub fn recv_any(&mut self, ports: &[u16]) -> (u16, Datagram) {
        let p = self.params.clone();
        self.clock.borrow_mut().advance(p.host.syscall); // select()
        loop {
            if let Some((port, ready)) = self.earliest_queued(ports) {
                let was_waiting = {
                    let mut c = self.clock.borrow_mut();
                    let waited = ready > c.now();
                    c.wait_until(ready);
                    waited
                };
                if was_waiting {
                    // The kernel had to wake us.
                    self.clock.borrow_mut().advance(p.host.sched_wakeup);
                }
                let syscall = p.host.syscall;
                let sock = self.sock_mut(port);
                let d = sock.queue.pop_front().expect("non-empty");
                let consume = self.rx_consume_cost(d.data.len());
                self.clock.borrow_mut().advance(syscall + consume);
                let mut c = self.clock.borrow_mut();
                c.stats.msgs_recv += 1;
                c.stats.bytes_recv += d.data.len() as u64;
                drop(c);
                return (port, d);
            }
            // Park on the NIC channel until something arrives for us.
            let filter: Vec<u16> = ports.iter().map(|p| SOCKET_PORT_BASE + p).collect();
            let pkt = self.nic.recv_any_blocking(&filter);
            let ready = pkt.arrival + self.rx_kernel_cost(pkt.payload.len());
            let port = pkt.dst_port - SOCKET_PORT_BASE;
            let sock = self.sock_mut(port);
            if sock.queue.len() >= SOCKBUF_DATAGRAMS {
                self.drops += 1;
                continue;
            }
            sock.queue.push_back(Datagram {
                src: pkt.src,
                src_port: pkt.src_port - SOCKET_PORT_BASE,
                data: pkt.payload,
                ready,
            });
        }
    }

    /// Like [`recv_any`] but gives up after `real_timeout` of *wall-clock*
    /// silence — the escape hatch the DSM substrate uses to retransmit
    /// when the loss model is active. Returns `None` on timeout.
    pub fn recv_any_timeout(
        &mut self,
        ports: &[u16],
        real_timeout: std::time::Duration,
    ) -> Option<(u16, Datagram)> {
        let deadline = std::time::Instant::now() + real_timeout;
        loop {
            if self.earliest_queued(ports).is_some() {
                return Some(self.recv_any(ports));
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Does any bound SIGIO socket have traffic (regardless of virtual
    /// readiness)? The substrate uses this to decide whether a signal
    /// would have been raised.
    pub fn sigio_pending(&mut self) -> bool {
        self.drain();
        self.sockets
            .iter()
            .any(|s| s.sigio && !s.queue.is_empty())
    }

    /// Peek the earliest ready-time on a port without consuming.
    pub fn peek_ready(&mut self, port: u16) -> Option<Ns> {
        self.drain();
        self.sockets
            .iter()
            .find(|s| s.port == port)
            .and_then(|s| s.queue.front().map(|d| d.ready))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_myrinet::Fabric;
    use tm_sim::clock::shared_clock;

    fn stacks(n: usize) -> Vec<UdpStack> {
        let params = Arc::new(SimParams::paper_testbed());
        let (_fabric, nics) = Fabric::new(n, Arc::clone(&params));
        nics.into_iter()
            .map(|nic| UdpStack::new(nic, shared_clock(), Arc::clone(&params)))
            .collect()
    }

    #[test]
    fn sendto_recvfrom_roundtrip() {
        let mut s = stacks(2);
        let (mut a, mut b) = {
            let b = s.pop().unwrap();
            (s.pop().unwrap(), b)
        };
        a.bind(7, false);
        b.bind(9, false);
        a.sendto(1, 9, 7, b"ping");
        let d = b.recvfrom(9);
        assert_eq!(&d.data[..], b"ping");
        assert_eq!(d.src, 0);
        assert_eq!(d.src_port, 7);
        // UDP latency must be well above raw GM's ~9us.
        assert!(b.clock().borrow().now() > Ns::from_us(15));
    }

    #[test]
    fn nonblocking_respects_virtual_time() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        a.sendto(1, 2, 1, b"x");
        assert!(b.try_recvfrom(2).is_none(), "kernel path not done yet");
        b.clock().borrow_mut().advance(Ns::from_us(200));
        assert!(b.try_recvfrom(2).is_some());
    }

    #[test]
    fn recv_any_selects_earliest() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        b.bind(3, false);
        a.sendto(1, 2, 1, b"first");
        a.sendto(1, 3, 1, b"second");
        let (port, d) = b.recv_any(&[2, 3]);
        assert_eq!(port, 2);
        assert_eq!(&d.data[..], b"first");
    }

    #[test]
    fn drop_probability_loses_datagrams() {
        let params = {
            let mut p = SimParams::paper_testbed();
            p.udp.drop_probability = 1.0;
            Arc::new(p)
        };
        let (_f, mut nics) = Fabric::new(2, Arc::clone(&params));
        let mut b = UdpStack::new(nics.pop().unwrap(), shared_clock(), Arc::clone(&params));
        let mut a = UdpStack::new(nics.pop().unwrap(), shared_clock(), params);
        a.bind(1, false);
        b.bind(2, false);
        a.sendto(1, 2, 1, b"doomed");
        assert_eq!(a.drops, 1);
        b.clock().borrow_mut().advance(Ns::from_ms(10));
        assert!(b.try_recvfrom(2).is_none());
    }

    #[test]
    fn recv_timeout_returns_none_when_silent() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        b.bind(2, false);
        let got = b.recv_any_timeout(&[2], std::time::Duration::from_millis(20));
        assert!(got.is_none());
    }

    #[test]
    fn sigio_pending_only_for_async_sockets() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false); // synchronous socket
        b.bind(3, true); // SIGIO socket
        a.sendto(1, 2, 1, b"sync");
        assert!(!b.sigio_pending());
        a.sendto(1, 3, 1, b"async");
        assert!(b.sigio_pending());
    }

    #[test]
    fn large_datagram_charges_fragment_costs() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        let t0 = a.clock().borrow().now();
        a.sendto(1, 2, 1, &vec![0u8; 32 * 1024]);
        let tx_cost = a.clock().borrow().now() - t0;
        // 8 fragments: 7 * per_fragment beyond base costs.
        assert!(tx_cost > Ns::from_us(14), "tx cost {tx_cost}");
        let d = b.recvfrom(2);
        assert_eq!(d.data.len(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut s = stacks(1);
        let mut a = s.pop().unwrap();
        a.bind(5, false);
        a.bind(5, false);
    }
}
