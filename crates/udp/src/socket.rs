//! The kernel UDP/IP socket model.
//!
//! Fault injection lives at this layer for the UDP path: every datagram
//! passes through `UdpStack::push_wire`, where the seeded per-node
//! fault stream decides drop / duplicate / reorder / corrupt. Losses are
//! injected as *tombstones* — `RawPacket { lost: true }` still traverses
//! the fabric so the receiving thread wakes at the datagram's virtual
//! arrival time. That keeps loss observable in virtual time (no
//! wall-clock timeout guessing), which is what makes retransmission
//! counts exactly reproducible.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tm_myrinet::{DeadlineWatchRecv, NicHandle, NodeId, RawPacket};
use tm_sim::faults::checksum32;
use tm_sim::{Ns, SharedClock, SimParams};

/// Sockets live above the GM port namespace on the shared fabric.
pub const SOCKET_PORT_BASE: u16 = 1024;

/// Default socket receive-buffer capacity in datagrams (SO_RCVBUF-ish).
const SOCKBUF_DATAGRAMS: usize = 256;

/// Salt for the UDP datagram fault stream (see `FaultPlan::stream_seed`).
const FAULT_SALT_UDP: u64 = 0x0d47;

/// A datagram sitting in a socket's receive buffer.
#[derive(Debug, Clone)]
pub struct Datagram {
    pub src: NodeId,
    pub src_port: u16,
    pub data: Bytes,
    /// Virtual time at which the datagram is in the socket buffer:
    /// NIC arrival + receive interrupt + protocol processing + the copy
    /// into the socket buffer.
    pub ready: Ns,
    /// Loss tombstone: the datagram was dropped in flight (or rejected by
    /// the wire checksum). It carries no deliverable payload — receivers
    /// use it purely as a virtual-time wake signal. Zero-fault runs never
    /// see one.
    pub lost: bool,
}

/// Outcome of a deadline-bounded receive that also watches for peer
/// departure (see
/// [`recv_any_timeout_watching`](UdpStack::recv_any_timeout_watching)).
#[derive(Debug)]
pub enum RecvOutcome {
    /// A datagram became ready on one of the selected ports.
    Datagram((u16, Datagram)),
    /// The virtual deadline passed first; the clock has advanced to it.
    Timeout,
    /// Every watched peer deregistered its NIC first.
    PeersDone,
}

struct SocketState {
    port: u16,
    queue: VecDeque<Datagram>,
    /// O_ASYNC: SIGIO on arrival. The signal's cost is charged by the
    /// substrate's async scheme at service time.
    pub sigio: bool,
}

/// One node's kernel socket layer. Owned by the node thread.
pub struct UdpStack {
    nic: NicHandle,
    clock: SharedClock,
    params: Arc<SimParams>,
    sockets: Vec<SocketState>,
    rng: SmallRng,
    /// Fault-plan stream; `Some` only when the plan injects datagram
    /// faults, so zero-fault runs draw nothing and stay bit-identical.
    fault_rng: Option<SmallRng>,
    /// Receive-buffer depth (the fault plan can shrink it to force
    /// overflow pressure).
    sockbuf: usize,
    /// Datagrams dropped (loss model + buffer overflow).
    pub drops: u64,
    /// Lockstep lookahead: minimum modeled cost between the start of this
    /// node's preemptible window and its next packet reaching the wire.
    /// For the kernel path that is the NIC tx engine plus the smaller of
    /// (a) the sendto floor (`syscall + tx_proto`) and (b) the handler
    /// floor (`handler_dispatch`, charged before any `sendto_at`
    /// response, which is always emitted immediately after the service
    /// window that prices it).
    la: Ns,
}

impl UdpStack {
    pub fn new(nic: NicHandle, clock: SharedClock, params: Arc<SimParams>) -> Self {
        let seed = 0x7ead_a55e_u64 ^ (nic.node() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let f = &params.faults;
        let fault_rng = if f.drop_probability > 0.0
            || f.duplicate_probability > 0.0
            || f.reorder_probability > 0.0
            || f.corrupt_probability > 0.0
        {
            Some(SmallRng::seed_from_u64(
                f.stream_seed(nic.node(), FAULT_SALT_UDP),
            ))
        } else {
            None
        };
        let sockbuf = if f.recvbuf_datagrams > 0 {
            f.recvbuf_datagrams
        } else {
            SOCKBUF_DATAGRAMS
        };
        let la = params.net.nic_tx
            + params
                .dsm
                .handler_dispatch
                .min(params.host.syscall + params.udp.tx_proto);
        nic.declare_lookahead(la);
        UdpStack {
            nic,
            clock,
            params,
            sockets: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            fault_rng,
            sockbuf,
            drops: 0,
            la,
        }
    }

    /// Current lockstep floor: a sound lower bound on the injection time
    /// of any future datagram from this node (see [`tm_sim::sched`]).
    fn sched_floor(&self) -> Ns {
        self.clock.borrow().preemptible_since() + self.la
    }

    /// The lookahead declared to the lockstep scheduler at construction.
    pub fn lookahead(&self) -> Ns {
        self.la
    }

    pub fn node(&self) -> NodeId {
        self.nic.node()
    }

    pub fn nprocs(&self) -> usize {
        self.nic.fabric().nprocs()
    }

    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    pub fn params(&self) -> &Arc<SimParams> {
        &self.params
    }

    /// Whether any peer node's NIC is still registered on the fabric
    /// (shutdown-linger support under fault injection).
    pub fn peers_alive(&self) -> bool {
        self.nic.others_alive()
    }

    /// Whether any of `nodes` still has its NIC registered — the
    /// subtree-scoped liveness check behind tree-barrier shutdown lingers.
    pub fn peers_alive_in(&self, nodes: &[usize]) -> bool {
        self.nic.any_alive(nodes)
    }

    /// `socket() + bind()`: claim a local port. `sigio` models O_ASYNC.
    pub fn bind(&mut self, port: u16, sigio: bool) {
        assert!(
            !self.sockets.iter().any(|s| s.port == port),
            "port {port} already bound"
        );
        // Two syscalls: socket(), bind().
        let syscall = self.params.host.syscall;
        self.clock.borrow_mut().advance(syscall * 2);
        self.sockets.push(SocketState {
            port,
            queue: VecDeque::new(),
            sigio,
        });
    }

    fn fragments(&self, len: usize) -> u64 {
        tmk::framing::fragment_count(len, self.params.udp.mtu) as u64
    }

    /// `sendto()`: copy into the kernel, fragment, and inject. Returns
    /// `false` if the datagram was dropped at this layer — real UDP gives
    /// the sender no such signal, but the sim's requester uses it as the
    /// deterministic stand-in for "my request evaporated" (the loss event
    /// and its timing are fully decided sender-side either way).
    pub fn sendto(&mut self, dst: NodeId, dst_port: u16, src_port: u16, data: &[u8]) -> bool {
        let cost = self.tx_cost(data.len());
        self.clock.borrow_mut().advance(cost);
        {
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_sent += 1;
            c.stats.bytes_sent += data.len() as u64;
        }
        // The kernel path still crosses the NIC.
        let inject = self.clock.borrow().now() + self.params.net.nic_tx;
        self.push_wire(dst, dst_port, src_port, data, inject)
    }

    /// Like [`sendto`](UdpStack::sendto) but injects at virtual time `at`
    /// without charging the clock — for responses emitted from signal
    /// handlers whose kernel work was already accounted by the caller
    /// (fold [`UdpStack::tx_cost`] into the handler's service time).
    pub fn sendto_at(
        &mut self,
        dst: NodeId,
        dst_port: u16,
        src_port: u16,
        data: &[u8],
        at: Ns,
    ) -> bool {
        {
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_sent += 1;
            c.stats.bytes_sent += data.len() as u64;
        }
        let inject = at + self.params.net.nic_tx;
        self.push_wire(dst, dst_port, src_port, data, inject)
    }

    /// Put one datagram on the wire, applying the loss model and the
    /// fault plan. Returns `false` when the datagram was dropped.
    fn push_wire(
        &mut self,
        dst: NodeId,
        dst_port: u16,
        src_port: u16,
        data: &[u8],
        inject: Ns,
    ) -> bool {
        let sp = SOCKET_PORT_BASE + src_port;
        let dp = SOCKET_PORT_BASE + dst_port;
        let legacy_p = self.params.udp.drop_probability;
        if self.fault_rng.is_none() && legacy_p == 0.0 {
            // Clean fast path: bit-identical to the pre-fault stack.
            let floor = self.sched_floor();
            self.nic.inject_floored(
                dst,
                sp,
                dp,
                Bytes::copy_from_slice(data),
                inject,
                None,
                floor,
            );
            return true;
        }
        let f = self.params.faults.clone();
        // Wire image; corruption detection adds the checksum trailer.
        let mut buf = Vec::with_capacity(data.len() + 4);
        buf.extend_from_slice(data);
        if f.checksum_frames() {
            buf.extend_from_slice(&checksum32(data).to_le_bytes());
        }
        // Loss: the legacy knob draws from the legacy stream (unchanged
        // sequence), the plan from its own. Both leave a tombstone so the
        // receiver still wakes at the would-be arrival.
        let mut dropped = legacy_p > 0.0 && self.rng.random::<f64>() < legacy_p;
        if !dropped && f.drop_probability > 0.0 {
            let r = self.fault_rng.as_mut().expect("fault rng");
            dropped = r.random::<f64>() < f.drop_probability;
        }
        if dropped {
            self.drops += 1;
            self.clock.borrow_mut().stats.dgrams_dropped += 1;
            let floor = self.sched_floor();
            self.nic
                .inject_lost_floored(dst, sp, dp, Bytes::from(buf), inject, floor);
            return false;
        }
        if f.corrupt_probability > 0.0 {
            let r = self.fault_rng.as_mut().expect("fault rng");
            if r.random::<f64>() < f.corrupt_probability {
                let i = (r.random::<u64>() as usize) % buf.len();
                buf[i] ^= 0x20;
                self.clock.borrow_mut().stats.dgrams_corrupted += 1;
            }
        }
        let mut at = inject;
        if f.reorder_probability > 0.0 {
            let r = self.fault_rng.as_mut().expect("fault rng");
            if r.random::<f64>() < f.reorder_probability {
                at += f.reorder_delay;
                self.clock.borrow_mut().stats.dgrams_reordered += 1;
            }
        }
        let mut duplicate = false;
        if f.duplicate_probability > 0.0 {
            let r = self.fault_rng.as_mut().expect("fault rng");
            duplicate = r.random::<f64>() < f.duplicate_probability;
        }
        let payload = Bytes::from(buf);
        let floor = self.sched_floor();
        // When a duplicate follows, this node's very next injection is at
        // `at + 1ns` — the floor after the main copy must not promise
        // anything later than that.
        let main_floor = if duplicate {
            (at + Ns(1)).min(floor)
        } else {
            floor
        };
        self.nic
            .inject_floored(dst, sp, dp, payload.clone(), at, None, main_floor);
        if duplicate {
            self.clock.borrow_mut().stats.dgrams_duplicated += 1;
            self.nic
                .inject_floored(dst, sp, dp, payload, at + Ns(1), None, floor);
        }
        true
    }

    /// Host-side transmit cost of a datagram of `len` bytes (what
    /// [`sendto`](UdpStack::sendto) charges).
    pub fn tx_cost(&self, len: usize) -> Ns {
        let p = &self.params;
        let frags = self.fragments(len);
        p.host.syscall
            + p.udp.tx_proto
            + Ns::for_bytes(len, p.host.memcpy_mb_s)
            + Ns(p.udp.per_fragment.0 * (frags - 1))
    }

    /// Kernel cost between NIC arrival and the datagram becoming visible
    /// (the first receive interrupt fires regardless of what the CPU is
    /// doing).
    fn rx_kernel_cost(&self, _len: usize) -> Ns {
        self.params.udp.rx_interrupt
    }

    /// Kernel work consumed *serially on the CPU* to deliver one datagram:
    /// protocol processing, the per-fragment interrupts and bookkeeping
    /// beyond the first, the copy into the socket buffer and the copy out
    /// to user space. This is what caps sockets-over-GM streaming
    /// bandwidth well below the wire.
    fn rx_consume_cost(&self, len: usize) -> Ns {
        let p = &self.params;
        let frags = self.fragments(len);
        p.udp.rx_proto
            + Ns((p.udp.per_fragment.0 + p.udp.rx_interrupt.0) * (frags - 1))
            + Ns::for_bytes(len, p.host.memcpy_mb_s) * 2
    }

    /// Admit one NIC packet into its socket buffer: checksum verification,
    /// overflow pressure, tombstone passthrough. The single admission
    /// point for both the polled drain and the blocking park path.
    fn admit(&mut self, pkt: RawPacket) {
        let port = pkt.dst_port - SOCKET_PORT_BASE;
        if !self.sockets.iter().any(|s| s.port == port) {
            // No such socket: the kernel discards (ICMP unreachable elided).
            return;
        }
        let mut data = pkt.payload;
        let mut lost = pkt.lost;
        if self.params.faults.checksum_frames() && !lost {
            // Verify and strip the 4-byte trailer appended by push_wire.
            if data.len() < 4 {
                self.clock.borrow_mut().stats.malformed_dropped += 1;
                return;
            }
            let body = data.len() - 4;
            let want = u32::from_le_bytes([
                data[body],
                data[body + 1],
                data[body + 2],
                data[body + 3],
            ]);
            if checksum32(&data[..body]) != want {
                // Corrupted in flight: reject, but keep a tombstone so a
                // requester blocked on this datagram still wakes.
                self.clock.borrow_mut().stats.crc_rejected += 1;
                lost = true;
            }
            data = Bytes::copy_from_slice(&data[..body]);
        }
        let ready = pkt.arrival + self.rx_kernel_cost(data.len());
        let sockbuf = self.sockbuf;
        let sock = self
            .sockets
            .iter_mut()
            .find(|s| s.port == port)
            .expect("bound");
        if !lost && sock.queue.len() >= sockbuf {
            // Socket buffer overflow: silently dropped, like real UDP.
            self.drops += 1;
            self.clock.borrow_mut().stats.dgrams_dropped += 1;
            return;
        }
        sock.queue.push_back(Datagram {
            src: pkt.src,
            src_port: pkt.src_port - SOCKET_PORT_BASE,
            data,
            ready,
            lost,
        });
    }

    /// Pull NIC arrivals into socket buffers.
    fn drain(&mut self) {
        // Collect bound ports first (borrow discipline).
        let ports: Vec<u16> = self.sockets.iter().map(|s| s.port).collect();
        for port in ports {
            while let Some(pkt) = self.nic.poll_port(SOCKET_PORT_BASE + port) {
                self.admit(pkt);
            }
        }
    }

    fn sock_mut(&mut self, port: u16) -> &mut SocketState {
        self.sockets
            .iter_mut()
            .find(|s| s.port == port)
            .unwrap_or_else(|| panic!("port {port} not bound"))
    }

    /// Non-blocking `recvfrom(MSG_DONTWAIT)`: returns a datagram whose
    /// kernel processing completed by the node's current virtual time.
    /// Tombstones are discarded silently — the kernel never saw them.
    ///
    /// Under lockstep a miss is settled through the NIC's
    /// [`poll_quiesce`](tm_myrinet::NicHandle::poll_quiesce) before being
    /// reported, so the set of datagrams this poll observes never depends
    /// on wall-clock thread timing (see `GmNode::receive` in `tm-gm`
    /// for the same pattern on the user-space path).
    pub fn try_recvfrom(&mut self, port: u16) -> Option<Datagram> {
        loop {
            let sig = self.nic.delivery_signature();
            self.drain();
            let now = self.clock.borrow().now();
            let syscall = self.params.host.syscall;
            let sock = self.sock_mut(port);
            while sock.queue.front().is_some_and(|d| d.lost && d.ready <= now) {
                sock.queue.pop_front();
            }
            if sock.queue.front().is_some_and(|d| d.ready <= now) {
                let d = sock.queue.pop_front().expect("non-empty");
                // recvfrom syscall + the serial kernel delivery work.
                let consume = self.rx_consume_cost(d.data.len());
                self.clock.borrow_mut().advance(syscall + consume);
                let mut c = self.clock.borrow_mut();
                c.stats.msgs_recv += 1;
                c.stats.bytes_recv += d.data.len() as u64;
                return Some(d);
            }
            let floor = self.sched_floor();
            if self.nic.poll_quiesce(now, sig, floor) {
                self.clock.borrow_mut().advance(syscall);
                return None;
            }
            // A delivery raced the quiesce: re-drain and look again.
        }
    }

    /// Earliest-ready datagram across `ports`, if any is queued (ignoring
    /// virtual readiness — used by blocking paths which then wait).
    fn earliest_queued(&mut self, ports: &[u16]) -> Option<(u16, Ns)> {
        self.drain();
        let mut best: Option<(u16, Ns)> = None;
        for s in &self.sockets {
            if ports.contains(&s.port) {
                if let Some(d) = s.queue.front() {
                    if best.is_none_or(|(_, r)| d.ready < r) {
                        best = Some((s.port, d.ready));
                    }
                }
            }
        }
        best
    }

    /// Pop the front datagram of `port`, waiting (in virtual time) for it
    /// to become ready and charging delivery costs. Tombstones are
    /// returned uncharged — they are wake signals, not kernel traffic.
    fn pop_ready(&mut self, port: u16) -> (u16, Datagram) {
        let p = self.params.clone();
        let ready = self.sock_mut(port).queue.front().expect("non-empty").ready;
        let was_waiting = {
            let mut c = self.clock.borrow_mut();
            let waited = ready > c.now();
            c.wait_until(ready);
            waited
        };
        let d = self.sock_mut(port).queue.pop_front().expect("non-empty");
        if d.lost {
            return (port, d);
        }
        if was_waiting {
            // The kernel had to wake us.
            self.clock.borrow_mut().advance(p.host.sched_wakeup);
        }
        let consume = self.rx_consume_cost(d.data.len());
        self.clock.borrow_mut().advance(p.host.syscall + consume);
        let mut c = self.clock.borrow_mut();
        c.stats.msgs_recv += 1;
        c.stats.bytes_recv += d.data.len() as u64;
        drop(c);
        (port, d)
    }

    /// Blocking `recvfrom()` on one port.
    pub fn recvfrom(&mut self, port: u16) -> Datagram {
        self.recv_any(&[port]).1
    }

    /// `select()` + `recvfrom()`: block until a datagram is available on
    /// any of `ports`. Charges the select syscall and a scheduler wakeup
    /// if the process actually slept.
    pub fn recv_any(&mut self, ports: &[u16]) -> (u16, Datagram) {
        self.clock.borrow_mut().advance(self.params.host.syscall); // select()
        loop {
            if let Some((port, _)) = self.earliest_queued(ports) {
                return self.pop_ready(port);
            }
            // Park on the NIC channel (under lockstep, on the
            // scheduler) until something arrives for us.
            let filter: Vec<u16> = ports.iter().map(|p| SOCKET_PORT_BASE + p).collect();
            let floor = self.sched_floor();
            let pkt = self.nic.recv_any_floored(&filter, floor);
            self.admit(pkt);
        }
    }

    /// Like [`recv_any`](UdpStack::recv_any) but bounded by a *virtual*
    /// deadline: returns `None` (with the clock advanced to `deadline`)
    /// if no datagram becomes ready by then. This is what the DSM's
    /// retransmission timer runs on — determinism requires the timeout to
    /// be virtual.
    ///
    /// `guard` is the thin wall-clock escape hatch: if the NIC channel
    /// stays silent that long in real time, the wait is abandoned as a
    /// hang. Virtual-time behavior never depends on its value — it only
    /// fires when nothing is in flight at all (e.g. a receive-buffer
    /// overflow swallowed the last traffic without a tombstone).
    pub fn recv_any_timeout(
        &mut self,
        ports: &[u16],
        deadline: Ns,
        guard: std::time::Duration,
    ) -> Option<(u16, Datagram)> {
        self.clock.borrow_mut().advance(self.params.host.syscall); // select()
        loop {
            if let Some((port, ready)) = self.earliest_queued(ports) {
                if ready <= deadline {
                    return Some(self.pop_ready(port));
                }
                // Something is queued but lands after the deadline: the
                // timer fires first.
                self.clock.borrow_mut().wait_until(deadline);
                return None;
            }
            let filter: Vec<u16> = ports.iter().map(|p| SOCKET_PORT_BASE + p).collect();
            if self.nic.lockstep() {
                // Deterministic timeout: the deadline is a scheduler
                // event; the wall-clock guard is never consulted.
                let floor = self.sched_floor();
                match self.nic.recv_any_deadline(&filter, deadline, floor) {
                    Some(pkt) => self.admit(pkt),
                    None => {
                        self.clock.borrow_mut().wait_until(deadline);
                        return None;
                    }
                }
            } else {
                match self.nic.recv_any_bounded(&filter, guard) {
                    Some(pkt) => self.admit(pkt),
                    None => {
                        // True wall-clock silence: treat as a virtual
                        // timeout.
                        self.clock.borrow_mut().wait_until(deadline);
                        return None;
                    }
                }
            }
        }
    }

    /// [`recv_any_timeout`](UdpStack::recv_any_timeout) that additionally
    /// resolves when every node in `watch` has deregistered its NIC. The
    /// exit fan's retransmission timer runs on this: a timeout armed
    /// against a peer that already left the fabric must cancel rather
    /// than fire into a dead node. Under lockstep the three-way race
    /// (datagram / deadline / peers-done) is resolved by the scheduler in
    /// virtual time; free-running, peer departure is checked before each
    /// bounded wait and the wall-clock `guard` keeps its hang-escape
    /// role.
    pub fn recv_any_timeout_watching(
        &mut self,
        ports: &[u16],
        watch: &[usize],
        deadline: Ns,
        guard: std::time::Duration,
    ) -> RecvOutcome {
        self.clock.borrow_mut().advance(self.params.host.syscall); // select()
        loop {
            if let Some((port, ready)) = self.earliest_queued(ports) {
                if ready <= deadline {
                    return RecvOutcome::Datagram(self.pop_ready(port));
                }
                self.clock.borrow_mut().wait_until(deadline);
                return RecvOutcome::Timeout;
            }
            let filter: Vec<u16> = ports.iter().map(|p| SOCKET_PORT_BASE + p).collect();
            if self.nic.lockstep() {
                let floor = self.sched_floor();
                match self
                    .nic
                    .recv_any_deadline_done_watch(&filter, watch, deadline, floor)
                {
                    DeadlineWatchRecv::Pkt(pkt) => self.admit(pkt),
                    DeadlineWatchRecv::Timeout => {
                        self.clock.borrow_mut().wait_until(deadline);
                        return RecvOutcome::Timeout;
                    }
                    DeadlineWatchRecv::PeersDone => return RecvOutcome::PeersDone,
                }
            } else {
                if !self.nic.any_alive(watch) {
                    return RecvOutcome::PeersDone;
                }
                match self.nic.recv_any_bounded(&filter, guard) {
                    Some(pkt) => self.admit(pkt),
                    None => {
                        self.clock.borrow_mut().wait_until(deadline);
                        return RecvOutcome::Timeout;
                    }
                }
            }
        }
    }

    /// Shutdown-linger receive under lockstep: block until a datagram is
    /// ready on any of `ports` or every node in `watch` has deregistered
    /// its NIC — the latter returns `None` and is the deterministic
    /// "all peers exited" signal (NIC deregistration is a scheduler
    /// `Done` event; no wall-clock liveness flag is read, so the set of
    /// late datagrams served before `None` is a pure function of the
    /// program). Panics unless the cluster runs under
    /// `SchedMode::Lockstep`; free-running lingers keep the wall-clock
    /// quantum of [`recv_any_timeout`](UdpStack::recv_any_timeout).
    pub fn recv_any_or_dead(
        &mut self,
        ports: &[u16],
        watch: &[usize],
    ) -> Option<(u16, Datagram)> {
        self.clock.borrow_mut().advance(self.params.host.syscall); // select()
        loop {
            if let Some((port, _)) = self.earliest_queued(ports) {
                return Some(self.pop_ready(port));
            }
            let filter: Vec<u16> = ports.iter().map(|p| SOCKET_PORT_BASE + p).collect();
            let floor = self.sched_floor();
            match self.nic.recv_any_done_watch(&filter, watch, floor) {
                Some(pkt) => self.admit(pkt),
                None => return None,
            }
        }
    }

    /// Does any bound SIGIO socket have traffic (regardless of virtual
    /// readiness)? The substrate uses this to decide whether a signal
    /// would have been raised.
    pub fn sigio_pending(&mut self) -> bool {
        self.drain();
        self.sockets
            .iter()
            .any(|s| s.sigio && s.queue.iter().any(|d| !d.lost))
    }

    /// Peek the earliest ready-time on a port without consuming.
    pub fn peek_ready(&mut self, port: u16) -> Option<Ns> {
        self.drain();
        self.sockets
            .iter()
            .find(|s| s.port == port)
            .and_then(|s| s.queue.front().map(|d| d.ready))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_myrinet::Fabric;
    use tm_sim::clock::shared_clock;
    use tm_sim::FaultPlan;

    fn stacks(n: usize) -> Vec<UdpStack> {
        stacks_with(n, SimParams::paper_testbed())
    }

    fn stacks_with(n: usize, params: SimParams) -> Vec<UdpStack> {
        let params = Arc::new(params);
        let (_fabric, nics) = Fabric::new(n, Arc::clone(&params));
        nics.into_iter()
            .map(|nic| UdpStack::new(nic, shared_clock(), Arc::clone(&params)))
            .collect()
    }

    #[test]
    fn sendto_recvfrom_roundtrip() {
        let mut s = stacks(2);
        let (mut a, mut b) = {
            let b = s.pop().unwrap();
            (s.pop().unwrap(), b)
        };
        a.bind(7, false);
        b.bind(9, false);
        assert!(a.sendto(1, 9, 7, b"ping"));
        let d = b.recvfrom(9);
        assert_eq!(&d.data[..], b"ping");
        assert_eq!(d.src, 0);
        assert_eq!(d.src_port, 7);
        assert!(!d.lost);
        // UDP latency must be well above raw GM's ~9us.
        assert!(b.clock().borrow().now() > Ns::from_us(15));
    }

    #[test]
    fn nonblocking_respects_virtual_time() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        a.sendto(1, 2, 1, b"x");
        assert!(b.try_recvfrom(2).is_none(), "kernel path not done yet");
        b.clock().borrow_mut().advance(Ns::from_us(200));
        assert!(b.try_recvfrom(2).is_some());
    }

    #[test]
    fn recv_any_selects_earliest() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        b.bind(3, false);
        a.sendto(1, 2, 1, b"first");
        a.sendto(1, 3, 1, b"second");
        let (port, d) = b.recv_any(&[2, 3]);
        assert_eq!(port, 2);
        assert_eq!(&d.data[..], b"first");
    }

    #[test]
    fn drop_probability_loses_datagrams() {
        let params = {
            let mut p = SimParams::paper_testbed();
            p.udp.drop_probability = 1.0;
            p
        };
        let mut s = stacks_with(2, params);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        assert!(!a.sendto(1, 2, 1, b"doomed"));
        assert_eq!(a.drops, 1);
        assert_eq!(a.clock().borrow().stats.dgrams_dropped, 1);
        b.clock().borrow_mut().advance(Ns::from_ms(10));
        assert!(b.try_recvfrom(2).is_none());
    }

    #[test]
    fn dropped_datagram_leaves_a_tombstone() {
        let params = {
            let mut p = SimParams::paper_testbed();
            p.faults = FaultPlan {
                drop_probability: 1.0,
                ..FaultPlan::default()
            };
            p
        };
        let mut s = stacks_with(2, params);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        assert!(!a.sendto(1, 2, 1, b"doomed"));
        // The receiver still wakes: recv_any surfaces the tombstone.
        let (port, d) = b.recv_any(&[2]);
        assert_eq!(port, 2);
        assert!(d.lost);
        // But the polled path never shows it.
        assert!(b.try_recvfrom(2).is_none());
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let params = {
            let mut p = SimParams::paper_testbed();
            p.faults = FaultPlan {
                duplicate_probability: 1.0,
                ..FaultPlan::default()
            };
            p
        };
        let mut s = stacks_with(2, params);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        assert!(a.sendto(1, 2, 1, b"twice"));
        assert_eq!(a.clock().borrow().stats.dgrams_duplicated, 1);
        let (_, d1) = b.recv_any(&[2]);
        let (_, d2) = b.recv_any(&[2]);
        assert_eq!(&d1.data[..], b"twice");
        assert_eq!(&d2.data[..], b"twice");
    }

    #[test]
    fn corruption_is_detected_and_tombstoned() {
        let params = {
            let mut p = SimParams::paper_testbed();
            p.faults = FaultPlan {
                corrupt_probability: 1.0,
                ..FaultPlan::default()
            };
            p
        };
        let mut s = stacks_with(2, params);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        assert!(a.sendto(1, 2, 1, b"garbled"));
        assert_eq!(a.clock().borrow().stats.dgrams_corrupted, 1);
        let (_, d) = b.recv_any(&[2]);
        assert!(d.lost, "CRC reject must become a tombstone");
        assert_eq!(b.clock().borrow().stats.crc_rejected, 1);
    }

    #[test]
    fn checksum_roundtrip_when_clean() {
        // Corruption *enabled* (so trailers are on the wire) but with the
        // fault stream seeded such that... easier: probability 0.0 cannot
        // enable checksums, so use a tiny probability and a payload-only
        // assertion across many sends is overkill. Instead: corruption on,
        // but verify an uncorrupted datagram by sending until one survives.
        let params = {
            let mut p = SimParams::paper_testbed();
            p.faults = FaultPlan {
                corrupt_probability: 0.3,
                ..FaultPlan::default()
            };
            p
        };
        let mut s = stacks_with(2, params);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        let mut clean = 0;
        for _ in 0..20 {
            a.sendto(1, 2, 1, b"payload");
            let (_, d) = b.recv_any(&[2]);
            if !d.lost {
                // Trailer must be stripped before delivery.
                assert_eq!(&d.data[..], b"payload");
                clean += 1;
            }
        }
        assert!(clean > 0, "some datagrams must survive 30% corruption");
    }

    #[test]
    fn recvbuf_pressure_forces_overflow() {
        let params = {
            let mut p = SimParams::paper_testbed();
            p.faults = FaultPlan {
                recvbuf_datagrams: 2,
                ..FaultPlan::default()
            };
            p
        };
        let mut s = stacks_with(2, params);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        for _ in 0..5 {
            a.sendto(1, 2, 1, b"flood");
        }
        b.clock().borrow_mut().advance(Ns::from_ms(10));
        let mut got = 0;
        while b.try_recvfrom(2).is_some() {
            got += 1;
        }
        assert_eq!(got, 2, "only the buffer depth survives");
        assert_eq!(b.drops, 3);
        assert_eq!(b.clock().borrow().stats.dgrams_dropped, 3);
    }

    #[test]
    fn recv_timeout_returns_none_when_silent() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        b.bind(2, false);
        let deadline = b.clock().borrow().now() + Ns::from_us(500);
        let got = b.recv_any_timeout(&[2], deadline, std::time::Duration::from_millis(20));
        assert!(got.is_none());
        // The virtual clock advanced to the deadline, not to wall time.
        assert!(b.clock().borrow().now() >= deadline);
    }

    #[test]
    fn recv_timeout_expires_before_late_arrival() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        a.sendto(1, 2, 1, b"late");
        // The datagram is ready ~tens of µs in; deadline far earlier.
        let deadline = b.clock().borrow().now() + Ns(10);
        let got = b.recv_any_timeout(&[2], deadline, std::time::Duration::from_secs(1));
        assert!(got.is_none(), "timer must fire before the late datagram");
        // The datagram is still there for a later receive.
        let (_, d) = b.recv_any(&[2]);
        assert_eq!(&d.data[..], b"late");
    }

    #[test]
    fn sigio_pending_only_for_async_sockets() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false); // synchronous socket
        b.bind(3, true); // SIGIO socket
        a.sendto(1, 2, 1, b"sync");
        assert!(!b.sigio_pending());
        a.sendto(1, 3, 1, b"async");
        assert!(b.sigio_pending());
    }

    #[test]
    fn large_datagram_charges_fragment_costs() {
        let mut s = stacks(2);
        let mut b = s.pop().unwrap();
        let mut a = s.pop().unwrap();
        a.bind(1, false);
        b.bind(2, false);
        let t0 = a.clock().borrow().now();
        a.sendto(1, 2, 1, &vec![0u8; 32 * 1024]);
        let tx_cost = a.clock().borrow().now() - t0;
        // 8 fragments: 7 * per_fragment beyond base costs.
        assert!(tx_cost > Ns::from_us(14), "tx cost {tx_cost}");
        let d = b.recvfrom(2);
        assert_eq!(d.data.len(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut s = stacks(1);
        let mut a = s.pop().unwrap();
        a.bind(5, false);
        a.bind(5, false);
    }
}
