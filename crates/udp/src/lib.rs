//! # tm-udp — the Sockets-GM / UDP baseline transport (UDP/GM)
//!
//! TreadMarks as distributed speaks UDP through the sockets API; on the
//! paper's testbed that meant Myricom's "Sockets over GM" emulation. The
//! kernel is in the critical path: every send and receive pays syscalls,
//! kernel⇄user copies, UDP/IP protocol processing, a per-packet receive
//! interrupt, and (for asynchronous requests) SIGIO signal delivery.
//!
//! This crate models that stack over the same simulated Myrinet fabric the
//! GM layer uses — faithfully to the paper's setup, where UDP/GM and
//! FAST/GM shared NICs and switch and differed only in the software path.
//!
//! UDP is unreliable: datagrams can be dropped (configurable probability,
//! plus deterministic drops on socket-buffer overflow). The paper notes
//! UDP/GM bandwidth "could not be measured accurately because of the
//! unreliable nature of UDP"; timing runs here default to zero loss.

pub mod socket;

pub use socket::{Datagram, RecvOutcome, UdpStack, SOCKET_PORT_BASE};
