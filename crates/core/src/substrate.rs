//! The transport abstraction the DSM runtime binds to.
//!
//! The paper's Figure 1 divides TreadMarks' communication needs into three
//! groups: sending requests (asynchronous at the receiver), sending
//! responses, and receiving responses (synchronous at the requester). A
//! [`Substrate`] provides exactly those services; FAST/GM and UDP/GM are
//! the two implementations under evaluation, and [`crate::memsub`]
//! provides an idealized in-memory one for protocol tests and "infinitely
//! fast network" ablations.
//!
//! The binding is a generic parameter of [`crate::Tmk`], monomorphized at
//! compile time — the paper's "bound to TreadMarks at compile time", with
//! zero dispatch overhead.

use std::sync::Arc;

use tm_sim::{AsyncScheme, Ns, SharedClock, SimParams};

/// Which logical channel a message arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chan {
    /// Asynchronous: interrupts (or signals) the receiver.
    Request,
    /// Synchronous: the receiver is blocked waiting for it.
    Response,
}

/// A message delivered by the substrate.
#[derive(Debug)]
pub struct IncomingMsg {
    pub from: usize,
    pub chan: Chan,
    pub data: Vec<u8>,
    /// Virtual arrival time at this node.
    pub arrival: Ns,
}

/// A request/response transport for one node. Implementations own the
/// node's clock charging for their own operations.
pub trait Substrate {
    fn my_id(&self) -> usize;
    fn nprocs(&self) -> usize;
    fn clock(&self) -> &SharedClock;
    fn params(&self) -> &Arc<SimParams>;

    /// How asynchronous requests reach the application on this transport
    /// (NIC interrupt for FAST/GM, SIGIO for UDP, …).
    fn scheme(&self) -> AsyncScheme;

    /// Send an asynchronous request; charges the clock for the send path.
    fn send_request(&mut self, to: usize, data: &[u8]);

    /// Send a request from *inside a request handler* whose service window
    /// completed at virtual time `at` (lock-manager forwarding). Like
    /// [`send_response_at`](Substrate::send_response_at), does not charge
    /// the clock.
    fn send_request_at(&mut self, to: usize, data: &[u8], at: Ns);

    /// Host-side cost of emitting a response of `len` bytes. The runtime
    /// folds this into the request's service duration before calling
    /// [`send_response_at`](Substrate::send_response_at).
    fn response_cost(&self, len: usize) -> Ns;

    /// Send a response whose service (handler + send) completed at virtual
    /// time `at`. Does **not** charge the clock — the runtime already
    /// accounted the work via the service window (which may lie in the
    /// node's past: retroactive interrupt preemption).
    fn send_response_at(&mut self, to: usize, data: &[u8], at: Ns);

    /// Non-blocking: a request whose arrival is at or before the node's
    /// current virtual time, if any.
    fn poll_request(&mut self) -> Option<IncomingMsg>;

    /// Block until any request or response arrives. Advances the clock to
    /// the message's arrival when the node was idle-waiting.
    fn next_incoming(&mut self) -> IncomingMsg;

    /// Largest message the substrate can carry in one piece. The runtime
    /// chunks diff responses to fit.
    fn max_msg(&self) -> usize {
        self.params().dsm.max_msg
    }
}
