//! The transport abstraction the DSM runtime binds to.
//!
//! The paper's Figure 1 divides TreadMarks' communication needs into three
//! groups: sending requests (asynchronous at the receiver), sending
//! responses, and receiving responses (synchronous at the requester). A
//! [`Substrate`] provides exactly those services; FAST/GM and UDP/GM are
//! the two implementations under evaluation, and [`crate::memsub`]
//! provides an idealized in-memory one for protocol tests and "infinitely
//! fast network" ablations.
//!
//! The binding is a generic parameter of [`crate::Tmk`], monomorphized at
//! compile time — the paper's "bound to TreadMarks at compile time", with
//! zero dispatch overhead.
//!
//! # Scheduling contract (lockstep mode)
//!
//! Under `SchedMode::Lockstep` the fabric serializes transmits through a
//! conservative two-phase request/grant protocol (`tm_sim::sched`). A
//! substrate participates by declaring a *lookahead* — a lower bound on
//! the virtual delay between the moment its node becomes preemptible and
//! the earliest instant any future packet of its can reach the wire — and
//! by routing every send and blocking wait through its NIC handle's
//! `*_floored` entry points. Both transports in this workspace do so at
//! construction time (`GmNode::new`, `UdpStack::new`), so implementations
//! layered on them inherit the contract for free;
//! [`sched_lookahead`](Substrate::sched_lookahead) exposes the declared
//! value for diagnostics and for the lookahead table in `DESIGN.md`.

use std::sync::Arc;

use tm_sim::{AsyncScheme, Ns, SharedClock, SimParams};

/// Which logical channel a message arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chan {
    /// Asynchronous: interrupts (or signals) the receiver.
    Request,
    /// Synchronous: the receiver is blocked waiting for it.
    Response,
}

/// One step of a lossy transport's shutdown linger (see
/// [`Substrate::shutdown_poll`]).
#[derive(Debug)]
pub enum ShutdownPoll {
    /// Every peer has shut down — safe to exit.
    Done,
    /// Peers remain but nothing arrived this quantum; poll again.
    Quiet,
    /// A (possibly duplicate) message arrived; the runtime should serve
    /// requests so retransmitting peers can finish.
    Msg(IncomingMsg),
}

/// Outcome of a deadline-bounded wait that also watches for peer
/// departure (see
/// [`Substrate::next_incoming_until_watching`]).
#[derive(Debug)]
pub enum WaitOutcome {
    /// A message arrived (request or response).
    Msg(IncomingMsg),
    /// The virtual deadline passed first; the clock has advanced to it.
    Deadline,
    /// Every watched peer's NIC left the fabric first.
    PeersDone,
}

/// A message delivered by the substrate.
#[derive(Debug)]
pub struct IncomingMsg {
    pub from: usize,
    pub chan: Chan,
    pub data: Vec<u8>,
    /// Virtual arrival time at this node.
    pub arrival: Ns,
    /// Fault-injection tombstone: the message was lost in flight (dropped
    /// or checksum-rejected). `data` must not be interpreted; the message
    /// exists only so the receiver observes the loss at a deterministic
    /// virtual time. Never set on a zero-fault run.
    pub lost: bool,
}

/// A request/response transport for one node. Implementations own the
/// node's clock charging for their own operations.
pub trait Substrate {
    fn my_id(&self) -> usize;
    fn nprocs(&self) -> usize;
    fn clock(&self) -> &SharedClock;
    fn params(&self) -> &Arc<SimParams>;

    /// How asynchronous requests reach the application on this transport
    /// (NIC interrupt for FAST/GM, SIGIO for UDP, …).
    fn scheme(&self) -> AsyncScheme;

    /// Send an asynchronous request; charges the clock for the send path.
    /// Returns `false` if the transport knows the request was lost on the
    /// way out (UDP drop injection) — the requester can then time out in
    /// virtual time without waiting for a response that will never come.
    /// Reliable transports always return `true`.
    fn send_request(&mut self, to: usize, data: &[u8]) -> bool;

    /// Send a request from *inside a request handler* whose service window
    /// completed at virtual time `at` (lock-manager forwarding). Like
    /// [`send_response_at`](Substrate::send_response_at), does not charge
    /// the clock.
    fn send_request_at(&mut self, to: usize, data: &[u8], at: Ns);

    /// Host-side cost of emitting a response of `len` bytes. The runtime
    /// folds this into the request's service duration before calling
    /// [`send_response_at`](Substrate::send_response_at).
    fn response_cost(&self, len: usize) -> Ns;

    /// Send a response whose service (handler + send) completed at virtual
    /// time `at`. Does **not** charge the clock — the runtime already
    /// accounted the work via the service window (which may lie in the
    /// node's past: retroactive interrupt preemption).
    fn send_response_at(&mut self, to: usize, data: &[u8], at: Ns);

    /// Non-blocking: a request whose arrival is at or before the node's
    /// current virtual time, if any.
    fn poll_request(&mut self) -> Option<IncomingMsg>;

    /// Non-blocking: any message — request *or* response — whose arrival
    /// is at or before the node's current virtual time. The overlapped
    /// rpc engine drains this after a blocking receive to gather the
    /// whole arrived burst, then dispatches it in virtual-arrival order.
    /// The default covers transports whose synchronous channel is only
    /// ever read while blocked.
    fn poll_incoming(&mut self) -> Option<IncomingMsg> {
        self.poll_request()
    }

    /// Block until any request or response arrives. Advances the clock to
    /// the message's arrival when the node was idle-waiting.
    fn next_incoming(&mut self) -> IncomingMsg;

    /// Like [`next_incoming`](Substrate::next_incoming) but bounded by a
    /// *virtual-time* deadline; `None` means the deadline passed first
    /// (and the clock has advanced to it). The runtime's retransmission
    /// timer runs on this. Transports without a loss model never time
    /// out, so the default simply blocks.
    fn next_incoming_until(&mut self, _deadline: Ns) -> Option<IncomingMsg> {
        Some(self.next_incoming())
    }

    /// Like [`next_incoming_until`](Substrate::next_incoming_until) but
    /// additionally resolves when every node in `watch` has deregistered
    /// its NIC. This is the exit fan's wait: a retransmission timer armed
    /// against a peer that is already gone must *cancel* instead of
    /// firing into a dead node (the peer can only have exited after its
    /// release was applied, so the pending rpc is moot). Transports
    /// without a loss model never arm the timer, so the default simply
    /// blocks.
    fn next_incoming_until_watching(&mut self, _deadline: Ns, _watch: &[usize]) -> WaitOutcome {
        WaitOutcome::Msg(self.next_incoming())
    }

    /// Initial retransmission timeout, if this transport needs DSM-level
    /// reliability under the current fault plan. `None` (the default, and
    /// the answer for every reliable transport and for lossless runs)
    /// selects the legacy send-once path.
    fn retransmit_timeout(&self) -> Option<Ns> {
        None
    }

    /// Can this substrate still observe `node`'s NIC on the fabric?
    /// Liveness input to the retransmission budget: a timeout against an
    /// observably *live* peer indicates clock skew between requester and
    /// responder (e.g. a spinning consumer advancing its virtual clock
    /// only ~600 ns per probe while the requester's backed-off deadlines
    /// recede), not a lost peer, and therefore must not consume the
    /// give-up budget. The default — in-memory and reliable transports,
    /// which expose no liveness signal and never retransmit — reports
    /// `true`.
    fn peer_alive(&self, _node: usize) -> bool {
        true
    }

    /// Shutdown linger on lossy transports: the barrier manager cannot
    /// exit while a peer might still be retransmitting a request whose
    /// response was lost, so it polls here — serving duplicates from the
    /// replay cache — until every peer's NIC has left the fabric. The
    /// default (reliable transports) reports `Done` immediately.
    fn shutdown_poll(&mut self) -> ShutdownPoll {
        ShutdownPoll::Done
    }

    /// [`shutdown_poll`](Substrate::shutdown_poll) scoped to a subset of
    /// peers: report `Done` as soon as every node in `watch` has left the
    /// fabric. Tree barriers use this so each combining node lingers only
    /// for its own descendants (the only peers that retransmit to it) and
    /// the tree drains bottom-up instead of deadlocking. The default
    /// (reliable transports) reports `Done` immediately.
    fn shutdown_poll_watching(&mut self, _watch: &[usize]) -> ShutdownPoll {
        ShutdownPoll::Done
    }

    /// Largest message the substrate can carry in one piece. The runtime
    /// chunks diff responses to fit.
    fn max_msg(&self) -> usize {
        self.params().dsm.max_msg
    }

    /// The lookahead this transport declared to the lockstep scheduler: a
    /// sound lower bound on the delay between its node's
    /// `preemptible_since()` and the earliest wire injection of any future
    /// packet (see the module docs). `Ns::ZERO` — the default, and the
    /// answer for in-memory transports that never touch the fabric — is
    /// always sound, merely pessimistic. Informational: the floors actually
    /// enforced are the ones passed per-send through the NIC handle.
    fn sched_lookahead(&self) -> Ns {
        Ns::ZERO
    }
}
