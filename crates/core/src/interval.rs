//! Interval records and the per-node interval log.
//!
//! An *interval* is a stretch of one processor's execution between
//! synchronization operations. Its record carries the processor, the
//! interval sequence number (that processor's vector-clock component) and
//! the write notices: the pages written during the interval. Records
//! propagate lazily — on lock grants to the acquirer, on barriers through
//! the manager — and drive page invalidation at the receiver.

use crate::page::PageId;
use crate::vc::VectorClock;
use crate::wire::{WireReader, WireWriter};

/// One interval's write notices, plus the vector time at the interval's
/// end — receivers use it to apply diffs for a page in causal order when
/// several writers touched the page between two of their synchronizations
/// (migratory data under locks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalRecord {
    pub node: u16,
    pub seq: u32,
    pub vc: VectorClock,
    pub pages: Vec<PageId>,
}

impl IntervalRecord {
    /// Write notices are encoded as ranges over the sorted page list —
    /// applications write contiguous spans (grid bands, planes, queue
    /// slots), so a record listing a thousand pages usually costs eight
    /// bytes on the wire.
    pub fn encode(&self, w: &mut WireWriter) {
        w.u16(self.node);
        w.u32(self.seq);
        self.vc.encode(w);
        let mut sorted = self.pages.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for p in sorted {
            match ranges.last_mut() {
                Some((start, len)) if *start + *len == p => *len += 1,
                _ => ranges.push((p, 1)),
            }
        }
        w.u32(ranges.len() as u32);
        for (start, len) in ranges {
            w.u32(start);
            w.u32(len);
        }
    }

    pub fn decode(r: &mut WireReader) -> Option<IntervalRecord> {
        let node = r.u16()?;
        let seq = r.u32()?;
        let vc = VectorClock::decode(r)?;
        let nranges = r.u32()? as usize;
        let mut pages = Vec::new();
        for _ in 0..nranges {
            let start = r.u32()?;
            let len = r.u32()?;
            pages.extend(start..start + len);
        }
        Some(IntervalRecord { node, seq, vc, pages })
    }
}

/// Encode a batch of records (u32 count prefix).
pub fn encode_records(records: &[IntervalRecord], w: &mut WireWriter) {
    w.u32(records.len() as u32);
    for rec in records {
        rec.encode(w);
    }
}

pub fn decode_records(r: &mut WireReader) -> Option<Vec<IntervalRecord>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(IntervalRecord::decode(r)?);
    }
    Some(out)
}

/// A node's log of interval records — everything it knows about everyone,
/// kept so it can forward the right subset at the next grant or barrier.
#[derive(Debug, Default)]
pub struct IntervalLog {
    /// Per source node, records sorted by `seq`.
    by_node: Vec<Vec<IntervalRecord>>,
}

impl IntervalLog {
    pub fn new(nprocs: usize) -> Self {
        IntervalLog {
            by_node: vec![Vec::new(); nprocs],
        }
    }

    /// Insert a record if not already present. Returns true if new.
    pub fn insert(&mut self, rec: IntervalRecord) -> bool {
        let list = &mut self.by_node[rec.node as usize];
        match list.binary_search_by_key(&rec.seq, |r| r.seq) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, rec);
                true
            }
        }
    }

    /// All records strictly newer than `vc` — what a peer with vector time
    /// `vc` is missing.
    pub fn newer_than(&self, vc: &VectorClock) -> Vec<IntervalRecord> {
        let mut out = Vec::new();
        for (node, list) in self.by_node.iter().enumerate() {
            let floor = vc.get(node);
            let start = list.partition_point(|r| r.seq <= floor);
            out.extend(list[start..].iter().cloned());
        }
        out
    }

    /// Drop records at or below `vc` on every axis — safe once every node
    /// is known to have incorporated them (barrier-epoch GC).
    pub fn trim(&mut self, vc: &VectorClock) {
        for (node, list) in self.by_node.iter_mut().enumerate() {
            let floor = vc.get(node);
            list.retain(|r| r.seq > floor);
        }
    }

    /// Is `(node, seq)` already recorded?
    pub fn contains(&self, node: u16, seq: u32) -> bool {
        self.by_node[node as usize]
            .binary_search_by_key(&seq, |r| r.seq)
            .is_ok()
    }

    pub fn total_records(&self) -> usize {
        self.by_node.iter().map(|l| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u16, seq: u32, pages: &[u32]) -> IntervalRecord {
        let mut vc = VectorClock::new(4);
        vc.set(node as usize, seq);
        IntervalRecord {
            node,
            seq,
            vc,
            pages: pages.to_vec(),
        }
    }

    #[test]
    fn wire_roundtrip() {
        let rs = vec![rec(0, 1, &[1, 2, 3]), rec(3, 9, &[])];
        let mut w = WireWriter::new();
        encode_records(&rs, &mut w);
        let buf = w.finish();
        assert_eq!(decode_records(&mut WireReader::new(&buf)), Some(rs));
    }

    #[test]
    fn insert_dedups() {
        let mut log = IntervalLog::new(2);
        assert!(log.insert(rec(0, 1, &[5])));
        assert!(!log.insert(rec(0, 1, &[5])));
        assert!(log.insert(rec(0, 2, &[6])));
        assert_eq!(log.total_records(), 2);
    }

    #[test]
    fn insert_keeps_sorted_out_of_order() {
        let mut log = IntervalLog::new(1);
        log.insert(rec(0, 3, &[]));
        log.insert(rec(0, 1, &[]));
        log.insert(rec(0, 2, &[]));
        let vc = VectorClock::new(1);
        let newer = log.newer_than(&vc);
        let seqs: Vec<u32> = newer.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn newer_than_filters_per_node() {
        let mut log = IntervalLog::new(2);
        log.insert(rec(0, 1, &[1]));
        log.insert(rec(0, 2, &[2]));
        log.insert(rec(1, 1, &[3]));
        let mut vc = VectorClock::new(2);
        vc.set(0, 1);
        let newer = log.newer_than(&vc);
        assert_eq!(newer.len(), 2);
        assert!(newer.iter().any(|r| r.node == 0 && r.seq == 2));
        assert!(newer.iter().any(|r| r.node == 1 && r.seq == 1));
    }

    #[test]
    fn contains_finds_records() {
        let mut log = IntervalLog::new(2);
        log.insert(rec(1, 5, &[3]));
        assert!(log.contains(1, 5));
        assert!(!log.contains(1, 4));
        assert!(!log.contains(0, 5));
    }

    #[test]
    fn page_ranges_compress_contiguous_spans() {
        // A record naming 1000 contiguous pages encodes as one range.
        let pages: Vec<u32> = (100..1100).collect();
        let r = rec(0, 1, &pages);
        let mut w = WireWriter::new();
        r.encode(&mut w);
        let buf = w.finish();
        assert!(buf.len() < 64, "RLE should compress: {} bytes", buf.len());
        let back = IntervalRecord::decode(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(back.pages, pages);
    }

    #[test]
    fn page_ranges_handle_scattered_pages() {
        let pages = vec![5u32, 1, 9, 3, 7];
        let r = rec(0, 1, &pages);
        let mut w = WireWriter::new();
        r.encode(&mut w);
        let buf = w.finish();
        let back = IntervalRecord::decode(&mut WireReader::new(&buf)).unwrap();
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        assert_eq!(back.pages, sorted);
    }

    #[test]
    fn trim_garbage_collects() {
        let mut log = IntervalLog::new(2);
        log.insert(rec(0, 1, &[]));
        log.insert(rec(0, 2, &[]));
        log.insert(rec(1, 5, &[]));
        let mut vc = VectorClock::new(2);
        vc.set(0, 1);
        vc.set(1, 5);
        log.trim(&vc);
        assert_eq!(log.total_records(), 1);
        let rest = log.newer_than(&VectorClock::new(2));
        assert_eq!(rest[0].seq, 2);
    }
}
