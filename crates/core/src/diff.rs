//! Twins and diffs.
//!
//! TreadMarks detects what a processor wrote to a page by comparing the
//! page against its *twin* (a copy taken at the first write of the
//! interval) word by word, and encodes the changed runs. Diffs are what
//! cross the wire instead of whole pages — the Diff microbenchmark of the
//! paper's Figure 3 times exactly this machinery.
//!
//! The comparison itself is the dominant host cost for sparse pages, so
//! [`Diff::create`] scans eight bytes per iteration (`u64::from_ne_bytes`)
//! and only drops to the protocol's 32-bit word granularity inside a
//! mismatching chunk. Run boundaries are identical to the scalar
//! word-by-word scan ([`Diff::create_scalar`], kept as the executable
//! specification); an equivalence property test pins that down.

use crate::wire::{WireReader, WireWriter};

/// Comparison granularity, bytes. TreadMarks compares 32-bit words.
pub const WORD: usize = 4;

/// u64 fast-scan chunk: two words per comparison.
const CHUNK: usize = 8;

/// Wide fast-scan block: fixed-size array equality compiles to a SIMD
/// compare, so long equal stretches cost one branch per 64 bytes.
const BLOCK: usize = 64;

#[inline]
fn load64(b: &[u8], i: usize) -> u64 {
    u64::from_ne_bytes(b[i..i + CHUNK].try_into().unwrap())
}

/// `i` addresses a chunk whose u64s differ; return the offset of its first
/// differing word.
#[inline]
fn diff_word_in_chunk(twin: &[u8], cur: &[u8], i: usize) -> usize {
    if twin[i..i + WORD] != cur[i..i + WORD] {
        i
    } else {
        i + WORD
    }
}

/// From word-aligned `i`, advance past equal words; returns the offset of
/// the first differing word (or `n`). Equal regions are skipped 64 bytes
/// per comparison, narrowing to a u64 and then to word granularity only
/// around a mismatch — run boundaries stay exactly word-granular.
#[inline]
fn skip_equal(twin: &[u8], cur: &[u8], mut i: usize) -> usize {
    let n = cur.len();
    // Step one word if needed so the u64 loop runs chunk-aligned.
    if !i.is_multiple_of(CHUNK) && i + WORD <= n {
        if twin[i..i + WORD] != cur[i..i + WORD] {
            return i;
        }
        i += WORD;
    }
    // Chunk-step up to block alignment.
    while !i.is_multiple_of(BLOCK) && i + CHUNK <= n {
        if load64(twin, i) != load64(cur, i) {
            return diff_word_in_chunk(twin, cur, i);
        }
        i += CHUNK;
    }
    // Wide scan: one SIMD compare per 64 bytes.
    while i + BLOCK <= n {
        let a: &[u8; BLOCK] = twin[i..i + BLOCK].try_into().unwrap();
        let b: &[u8; BLOCK] = cur[i..i + BLOCK].try_into().unwrap();
        if a != b {
            break;
        }
        i += BLOCK;
    }
    // Narrow scan inside (or after) the mismatching block.
    while i + CHUNK <= n {
        if load64(twin, i) != load64(cur, i) {
            return diff_word_in_chunk(twin, cur, i);
        }
        i += CHUNK;
    }
    // Tail shorter than a chunk: word-by-word.
    while i < n {
        let e = (i + WORD).min(n);
        if twin[i..e] != cur[i..e] {
            return i;
        }
        i = e;
    }
    n
}

/// From the start of a changed run at `i`, advance past differing words;
/// returns the offset of the first equal word (or `n`). Word granularity
/// here is load-bearing: it decides where runs end on the wire.
#[inline]
fn skip_diff(twin: &[u8], cur: &[u8], mut i: usize) -> usize {
    let n = cur.len();
    while i < n {
        let e = (i + WORD).min(n);
        if twin[i..e] == cur[i..e] {
            return i;
        }
        i = e;
    }
    n
}

/// `true` iff every byte is zero, scanned a u64 at a time (the full-page
/// serve path uses this to spot freshly-zeroed pages and send a compact
/// `ZeroPage` marker instead of the payload).
pub fn is_all_zero(buf: &[u8]) -> bool {
    let mut i = 0;
    while i + CHUNK <= buf.len() {
        if u64::from_ne_bytes(buf[i..i + CHUNK].try_into().unwrap()) != 0 {
            return false;
        }
        i += CHUNK;
    }
    buf[i..].iter().all(|&b| b == 0)
}

/// A run-length-encoded page delta: sorted, non-overlapping runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    runs: Vec<(u32, Vec<u8>)>,
}

impl Diff {
    /// Compare `twin` (before) and `cur` (after); encode changed runs at
    /// word granularity. Slices must be the same length.
    pub fn create(twin: &[u8], cur: &[u8]) -> Diff {
        assert_eq!(twin.len(), cur.len(), "twin/page size mismatch");
        let mut runs: Vec<(u32, Vec<u8>)> = Vec::new();
        let n = cur.len();
        let mut i = skip_equal(twin, cur, 0);
        while i < n {
            let start = i;
            i = skip_diff(twin, cur, i);
            runs.push((start as u32, cur[start..i].to_vec()));
            i = skip_equal(twin, cur, i);
        }
        Diff { runs }
    }

    /// The original word-by-word comparison loop: the executable
    /// specification for run boundaries, and the benchmark baseline the
    /// chunked [`Diff::create`] is measured against.
    pub fn create_scalar(twin: &[u8], cur: &[u8]) -> Diff {
        assert_eq!(twin.len(), cur.len(), "twin/page size mismatch");
        let mut runs: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut i = 0;
        let n = cur.len();
        while i < n {
            let end = (i + WORD).min(n);
            if twin[i..end] != cur[i..end] {
                // Start of a changed run; extend word by word.
                let start = i;
                while i < n {
                    let e = (i + WORD).min(n);
                    if twin[i..e] == cur[i..e] {
                        break;
                    }
                    i = e;
                }
                runs.push((start as u32, cur[start..i].to_vec()));
            } else {
                i = end;
            }
        }
        Diff { runs }
    }

    /// Compare and encode in one pass, writing the wire form straight into
    /// `w` with no intermediate `Vec<(u32, Vec<u8>)>`. Byte-identical to
    /// `Diff::create(..).encode(&mut w)`; the run count is backpatched.
    /// Returns the number of runs written.
    pub fn create_into(twin: &[u8], cur: &[u8], w: &mut WireWriter) -> usize {
        assert_eq!(twin.len(), cur.len(), "twin/page size mismatch");
        let slot = w.reserve_u16();
        let mut count = 0usize;
        let n = cur.len();
        let mut i = skip_equal(twin, cur, 0);
        while i < n {
            let start = i;
            i = skip_diff(twin, cur, i);
            w.u16(start as u16);
            w.u16((i - start) as u16);
            w.raw(&cur[start..i]);
            count += 1;
            i = skip_equal(twin, cur, i);
        }
        w.patch_u16(slot, count as u16);
        count
    }

    /// An empty diff (no words changed).
    pub fn empty() -> Diff {
        Diff { runs: Vec::new() }
    }

    /// A diff carrying the entire page (used when a whole-page overwrite
    /// skipped fetching the old content: every word is authoritative).
    pub fn full(cur: &[u8]) -> Diff {
        Diff {
            runs: vec![(0, cur.to_vec())],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total payload bytes carried (what the wire pays for).
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|(_, d)| d.len()).sum()
    }

    /// Encoded size on the wire: header + per-run (offset u16, len u16) +
    /// payload.
    pub fn encoded_len(&self) -> usize {
        2 + self.runs.len() * 4 + self.payload_bytes()
    }

    /// Overlay the diff onto `target` (the receiving node's copy).
    /// In-place: only `copy_from_slice` into the existing page, never a
    /// reallocation.
    pub fn apply(&self, target: &mut [u8]) {
        for (off, data) in &self.runs {
            let off = *off as usize;
            target[off..off + data.len()].copy_from_slice(data);
        }
    }

    /// Decode-and-apply in one pass: overlay an encoded diff from the wire
    /// directly onto `target`, with no per-run `Vec` materialization.
    /// `None` on malformed input or a run that falls outside the page
    /// (target is left partially updated only on the malformed path,
    /// which the protocol layer treats as fatal).
    pub fn apply_wire(r: &mut WireReader, target: &mut [u8]) -> Option<()> {
        let n = r.u16()? as usize;
        for _ in 0..n {
            let off = r.u16()? as usize;
            let len = r.u16()? as usize;
            let data = r.raw_bytes(len)?;
            target.get_mut(off..off + len)?.copy_from_slice(data);
        }
        Some(())
    }

    pub fn encode(&self, w: &mut WireWriter) {
        w.u16(self.runs.len() as u16);
        for (off, data) in &self.runs {
            w.u16(*off as u16);
            w.u16(data.len() as u16);
            w.raw(data);
        }
    }

    pub fn decode(r: &mut WireReader) -> Option<Diff> {
        let n = r.u16()? as usize;
        let mut runs = Vec::with_capacity(n);
        for _ in 0..n {
            let off = r.u16()? as u32;
            let len = r.u16()? as usize;
            let data = r.raw_bytes(len)?.to_vec();
            runs.push((off, data));
        }
        Some(Diff { runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(d: &Diff) -> Diff {
        let mut w = WireWriter::new();
        d.encode(&mut w);
        let buf = w.finish();
        Diff::decode(&mut WireReader::new(&buf)).expect("decode")
    }

    #[test]
    fn no_change_is_empty() {
        let page = vec![7u8; 128];
        let d = Diff::create(&page, &page);
        assert!(d.is_empty());
        assert_eq!(d.encoded_len(), 2);
    }

    #[test]
    fn single_word_change() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[8] = 0xFF;
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 4); // whole word
        let mut target = twin.clone();
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn adjacent_changes_coalesce() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        for b in cur.iter_mut().take(16).skip(4) {
            *b = 1;
        }
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 12);
    }

    #[test]
    fn disjoint_changes_make_runs() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[0] = 1;
        cur[32] = 2;
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.run_count(), 2);
    }

    #[test]
    fn tail_shorter_than_word() {
        let twin = vec![0u8; 10]; // 2.5 words
        let mut cur = twin.clone();
        cur[9] = 5;
        let d = Diff::create(&twin, &cur);
        let mut target = twin.clone();
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn full_diff_covers_every_word() {
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let d = Diff::full(&data);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 256);
        let mut target = vec![0xFFu8; 256];
        d.apply(&mut target);
        assert_eq!(target, data);
    }

    #[test]
    fn wire_roundtrip_multi_run() {
        let twin = vec![0u8; 4096];
        let mut cur = twin.clone();
        cur[0] = 1;
        cur[100] = 2;
        cur[4092] = 3;
        let d = Diff::create(&twin, &cur);
        assert_eq!(roundtrip(&d), d);
    }

    /// Satellite regression: tails not a multiple of WORD, and not a
    /// multiple of the 8-byte scan chunk, with a change in the final
    /// partial word.
    #[test]
    fn tail_regression_partial_word_change() {
        // Lengths covering every residue mod 8 (and thus mod WORD).
        for len in [9usize, 10, 11, 12, 13, 14, 15, 17, 21, 4093, 4094, 4095] {
            let twin: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut cur = twin.clone();
            *cur.last_mut().unwrap() ^= 0xA5; // flip a bit in the final partial word
            let d = Diff::create(&twin, &cur);
            assert_eq!(
                d,
                Diff::create_scalar(&twin, &cur),
                "chunked/scalar divergence at len={len}"
            );
            let mut target = twin.clone();
            d.apply(&mut target);
            assert_eq!(target, cur, "tail change lost at len={len}");
            // The run must end exactly at the page end, not past it.
            let (off, data) = (&d.runs[0].0, &d.runs[0].1);
            assert_eq!(*off as usize + data.len(), len);
        }
    }

    #[test]
    fn tail_change_in_both_last_words() {
        // Change straddling the last full word and the partial tail word.
        let len = 4097; // 1024 full words + 1 tail byte
        let twin = vec![0u8; len];
        let mut cur = twin.clone();
        cur[4092] = 1; // last full word
        cur[4096] = 2; // partial tail word
        let d = Diff::create(&twin, &cur);
        assert_eq!(d, Diff::create_scalar(&twin, &cur));
        assert_eq!(d.run_count(), 1); // adjacent words coalesce
        assert_eq!(d.payload_bytes(), 5);
        let mut target = twin.clone();
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn create_into_matches_create_then_encode() {
        let twin = vec![0u8; 4096];
        let mut cur = twin.clone();
        for at in [0usize, 7, 8, 100, 101, 2048, 4090, 4095] {
            cur[at] = cur[at].wrapping_add(1);
        }
        let mut expected = WireWriter::new();
        Diff::create(&twin, &cur).encode(&mut expected);
        let mut got = WireWriter::new();
        let runs = Diff::create_into(&twin, &cur, &mut got);
        assert_eq!(got.as_slice(), expected.as_slice());
        assert_eq!(runs, Diff::create(&twin, &cur).run_count());
    }

    #[test]
    fn all_zero_scan() {
        assert!(is_all_zero(&[]));
        for len in [1usize, 7, 8, 9, 63, 64, 65] {
            let mut v = vec![0u8; len];
            assert!(is_all_zero(&v), "len={len}");
            v[len - 1] = 1;
            assert!(!is_all_zero(&v), "len={len}");
            v[len - 1] = 0;
            v[0] = 1;
            assert!(!is_all_zero(&v), "len={len}");
        }
    }

    #[test]
    fn apply_wire_rejects_out_of_range_runs() {
        let mut w = WireWriter::new();
        w.u16(1).u16(60).u16(8).raw(&[0xEE; 8]); // run ends at 68 > 64
        let buf = w.finish();
        let mut page = vec![0u8; 64];
        assert!(Diff::apply_wire(&mut WireReader::new(&buf), &mut page).is_none());
    }

    proptest! {
        /// The chunked scan and the scalar specification agree exactly —
        /// same runs, same boundaries — for arbitrary lengths and edits.
        #[test]
        fn chunked_equals_scalar(
            twin in proptest::collection::vec(any::<u8>(), 1..600),
            flips in proptest::collection::vec((0usize..600, any::<u8>()), 0..48)
        ) {
            let mut cur = twin.clone();
            for (i, v) in flips {
                let i = i % cur.len();
                cur[i] = v;
            }
            prop_assert_eq!(Diff::create(&twin, &cur), Diff::create_scalar(&twin, &cur));
        }

        /// Streaming encode is byte-identical to create-then-encode, and
        /// apply_wire replays it onto the twin to reproduce `cur`.
        #[test]
        fn create_into_and_apply_wire_identity(
            twin in proptest::collection::vec(any::<u8>(), 1..600),
            flips in proptest::collection::vec((0usize..600, any::<u8>()), 0..48)
        ) {
            let mut cur = twin.clone();
            for (i, v) in flips {
                let i = i % cur.len();
                cur[i] = v;
            }
            let mut expected = WireWriter::new();
            Diff::create(&twin, &cur).encode(&mut expected);
            let mut got = WireWriter::new();
            Diff::create_into(&twin, &cur, &mut got);
            prop_assert_eq!(got.as_slice(), expected.as_slice());

            let mut target = twin.clone();
            Diff::apply_wire(&mut WireReader::new(got.as_slice()), &mut target)
                .expect("well-formed");
            prop_assert_eq!(target, cur);
        }

        /// apply(create(t, c), t) == c — the fundamental diff identity.
        #[test]
        fn create_apply_identity(
            twin in proptest::collection::vec(any::<u8>(), 1..512),
            flips in proptest::collection::vec((0usize..512, any::<u8>()), 0..32)
        ) {
            let mut cur = twin.clone();
            for (i, v) in flips {
                let i = i % cur.len();
                cur[i] = v;
            }
            let d = Diff::create(&twin, &cur);
            let mut target = twin.clone();
            d.apply(&mut target);
            prop_assert_eq!(target, cur);
        }

        /// Encoding roundtrips for arbitrary change patterns.
        #[test]
        fn encode_roundtrip(
            twin in proptest::collection::vec(any::<u8>(), 1..512),
            flips in proptest::collection::vec((0usize..512, any::<u8>()), 0..32)
        ) {
            let mut cur = twin.clone();
            for (i, v) in flips {
                let i = i % cur.len();
                cur[i] = v;
            }
            let d = Diff::create(&twin, &cur);
            prop_assert_eq!(roundtrip(&d), d);
        }

        /// Sequentially composed diffs replay to the final state.
        #[test]
        fn diffs_compose_in_order(
            base in proptest::collection::vec(any::<u8>(), 64..128),
            edits1 in proptest::collection::vec((0usize..128, any::<u8>()), 1..16),
            edits2 in proptest::collection::vec((0usize..128, any::<u8>()), 1..16)
        ) {
            let mut v1 = base.clone();
            for (i, b) in edits1 { let i = i % v1.len(); v1[i] = b; }
            let mut v2 = v1.clone();
            for (i, b) in edits2 { let i = i % v2.len(); v2[i] = b; }
            let d1 = Diff::create(&base, &v1);
            let d2 = Diff::create(&v1, &v2);
            let mut replay = base.clone();
            d1.apply(&mut replay);
            d2.apply(&mut replay);
            prop_assert_eq!(replay, v2);
        }
    }
}
