//! Twins and diffs.
//!
//! TreadMarks detects what a processor wrote to a page by comparing the
//! page against its *twin* (a copy taken at the first write of the
//! interval) word by word, and encodes the changed runs. Diffs are what
//! cross the wire instead of whole pages — the Diff microbenchmark of the
//! paper's Figure 3 times exactly this machinery.

use crate::wire::{WireReader, WireWriter};

/// Comparison granularity, bytes. TreadMarks compares 32-bit words.
pub const WORD: usize = 4;

/// A run-length-encoded page delta: sorted, non-overlapping runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    runs: Vec<(u32, Vec<u8>)>,
}

impl Diff {
    /// Compare `twin` (before) and `cur` (after); encode changed runs at
    /// word granularity. Slices must be the same length.
    pub fn create(twin: &[u8], cur: &[u8]) -> Diff {
        assert_eq!(twin.len(), cur.len(), "twin/page size mismatch");
        let mut runs: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut i = 0;
        let n = cur.len();
        while i < n {
            let end = (i + WORD).min(n);
            if twin[i..end] != cur[i..end] {
                // Start of a changed run; extend word by word.
                let start = i;
                while i < n {
                    let e = (i + WORD).min(n);
                    if twin[i..e] == cur[i..e] {
                        break;
                    }
                    i = e;
                }
                runs.push((start as u32, cur[start..i].to_vec()));
            } else {
                i = end;
            }
        }
        Diff { runs }
    }

    /// An empty diff (no words changed).
    pub fn empty() -> Diff {
        Diff { runs: Vec::new() }
    }

    /// A diff carrying the entire page (used when a whole-page overwrite
    /// skipped fetching the old content: every word is authoritative).
    pub fn full(cur: &[u8]) -> Diff {
        Diff {
            runs: vec![(0, cur.to_vec())],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total payload bytes carried (what the wire pays for).
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|(_, d)| d.len()).sum()
    }

    /// Encoded size on the wire: header + per-run (offset u16, len u16) +
    /// payload.
    pub fn encoded_len(&self) -> usize {
        2 + self.runs.len() * 4 + self.payload_bytes()
    }

    /// Overlay the diff onto `target` (the receiving node's copy).
    pub fn apply(&self, target: &mut [u8]) {
        for (off, data) in &self.runs {
            let off = *off as usize;
            target[off..off + data.len()].copy_from_slice(data);
        }
    }

    pub fn encode(&self, w: &mut WireWriter) {
        w.u16(self.runs.len() as u16);
        for (off, data) in &self.runs {
            w.u16(*off as u16);
            w.u16(data.len() as u16);
            w.raw(data);
        }
    }

    pub fn decode(r: &mut WireReader) -> Option<Diff> {
        let n = r.u16()? as usize;
        let mut runs = Vec::with_capacity(n);
        for _ in 0..n {
            let off = r.u16()? as u32;
            let len = r.u16()? as usize;
            let data = r.raw_bytes(len)?.to_vec();
            runs.push((off, data));
        }
        Some(Diff { runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(d: &Diff) -> Diff {
        let mut w = WireWriter::new();
        d.encode(&mut w);
        let buf = w.finish();
        Diff::decode(&mut WireReader::new(&buf)).expect("decode")
    }

    #[test]
    fn no_change_is_empty() {
        let page = vec![7u8; 128];
        let d = Diff::create(&page, &page);
        assert!(d.is_empty());
        assert_eq!(d.encoded_len(), 2);
    }

    #[test]
    fn single_word_change() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[8] = 0xFF;
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 4); // whole word
        let mut target = twin.clone();
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn adjacent_changes_coalesce() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        for b in cur.iter_mut().take(16).skip(4) {
            *b = 1;
        }
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 12);
    }

    #[test]
    fn disjoint_changes_make_runs() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[0] = 1;
        cur[32] = 2;
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.run_count(), 2);
    }

    #[test]
    fn tail_shorter_than_word() {
        let twin = vec![0u8; 10]; // 2.5 words
        let mut cur = twin.clone();
        cur[9] = 5;
        let d = Diff::create(&twin, &cur);
        let mut target = twin.clone();
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn full_diff_covers_every_word() {
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let d = Diff::full(&data);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 256);
        let mut target = vec![0xFFu8; 256];
        d.apply(&mut target);
        assert_eq!(target, data);
    }

    #[test]
    fn wire_roundtrip_multi_run() {
        let twin = vec![0u8; 4096];
        let mut cur = twin.clone();
        cur[0] = 1;
        cur[100] = 2;
        cur[4092] = 3;
        let d = Diff::create(&twin, &cur);
        assert_eq!(roundtrip(&d), d);
    }

    proptest! {
        /// apply(create(t, c), t) == c — the fundamental diff identity.
        #[test]
        fn create_apply_identity(
            twin in proptest::collection::vec(any::<u8>(), 1..512),
            flips in proptest::collection::vec((0usize..512, any::<u8>()), 0..32)
        ) {
            let mut cur = twin.clone();
            for (i, v) in flips {
                let i = i % cur.len();
                cur[i] = v;
            }
            let d = Diff::create(&twin, &cur);
            let mut target = twin.clone();
            d.apply(&mut target);
            prop_assert_eq!(target, cur);
        }

        /// Encoding roundtrips for arbitrary change patterns.
        #[test]
        fn encode_roundtrip(
            twin in proptest::collection::vec(any::<u8>(), 1..512),
            flips in proptest::collection::vec((0usize..512, any::<u8>()), 0..32)
        ) {
            let mut cur = twin.clone();
            for (i, v) in flips {
                let i = i % cur.len();
                cur[i] = v;
            }
            let d = Diff::create(&twin, &cur);
            prop_assert_eq!(roundtrip(&d), d);
        }

        /// Sequentially composed diffs replay to the final state.
        #[test]
        fn diffs_compose_in_order(
            base in proptest::collection::vec(any::<u8>(), 64..128),
            edits1 in proptest::collection::vec((0usize..128, any::<u8>()), 1..16),
            edits2 in proptest::collection::vec((0usize..128, any::<u8>()), 1..16)
        ) {
            let mut v1 = base.clone();
            for (i, b) in edits1 { let i = i % v1.len(); v1[i] = b; }
            let mut v2 = v1.clone();
            for (i, b) in edits2 { let i = i % v2.len(); v2[i] = b; }
            let d1 = Diff::create(&base, &v1);
            let d2 = Diff::create(&v1, &v2);
            let mut replay = base.clone();
            d1.apply(&mut replay);
            d2.apply(&mut replay);
            prop_assert_eq!(replay, v2);
        }
    }
}
