//! Hand-rolled wire encoding: little-endian, length-prefixed.
//!
//! TreadMarks' messages are C structs on the wire; we keep the same spirit
//! (no self-describing serialization framework, no allocation churn) with a
//! tiny writer/reader pair. All protocol messages in [`crate::protocol`]
//! encode through these.
//!
//! The [`pool`] module supplies the buffers: a thread-local free-list of
//! `Vec<u8>` bucketed into power-of-two size classes, directly modeled on
//! GM's preposted receive buffers (`crates/gm/src/size.rs`, paper §2.1).
//! Steady-state message construction takes a buffer from the pool, encodes
//! into it, and recycles it after the send-side copy — zero heap
//! allocations per message once the pool is warm.

/// Thread-local buffer pool with GM-style power-of-two size classes.
///
/// A class `s` holds buffers of capacity `2^s`; `take(cap)` hands out the
/// smallest class that fits, `give(v)` returns a buffer to its class.
/// Hit/miss counters make the steady-state zero-allocation property
/// testable (and observable in benchmarks).
pub mod pool {
    use std::cell::RefCell;

    /// Smallest class handed out: `2^6` = 64 bytes (below this, pooling
    /// costs more than it saves; GM likewise never preposts below size 4).
    const MIN_CLASS: u32 = 6;
    /// Largest class retained: `2^20` = 1 MiB (a full TreadMarks barrier
    /// payload; anything bigger is freed rather than hoarded).
    const MAX_CLASS: u32 = 20;
    /// Free-list depth per class, mirroring a NIC's finite prepost ring.
    const PER_CLASS: usize = 32;

    /// Pool observability counters (monotonic per thread).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct PoolStats {
        /// `take()` satisfied from the free list (no allocation).
        pub hits: u64,
        /// `take()` had to allocate a fresh buffer.
        pub misses: u64,
        /// `give()` accepted a buffer back into the free list.
        pub recycled: u64,
        /// `give()` dropped a buffer (class full or out of range).
        pub discarded: u64,
    }

    struct Pool {
        classes: Vec<Vec<Vec<u8>>>,
        stats: PoolStats,
    }

    thread_local! {
        static POOL: RefCell<Pool> = RefCell::new(Pool {
            classes: (0..=MAX_CLASS).map(|_| Vec::new()).collect(),
            stats: PoolStats::default(),
        });
    }

    /// Size class for a requested capacity: smallest `s` with
    /// `cap <= 2^s`, clamped to `MIN_CLASS` (cf. `gm_size`).
    fn class_for(cap: usize) -> u32 {
        let bits = usize::BITS - cap.saturating_sub(1).leading_zeros();
        bits.max(MIN_CLASS)
    }

    /// An empty `Vec<u8>` with capacity at least `cap`. Pops from the
    /// free list when a buffer of the right class is available.
    pub fn take(cap: usize) -> Vec<u8> {
        let s = class_for(cap);
        if s > MAX_CLASS {
            POOL.with(|p| p.borrow_mut().stats.misses += 1);
            return Vec::with_capacity(cap);
        }
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if let Some(mut v) = p.classes[s as usize].pop() {
                p.stats.hits += 1;
                v.clear();
                v
            } else {
                p.stats.misses += 1;
                Vec::with_capacity(1usize << s)
            }
        })
    }

    /// Return a buffer to the pool. Buffers whose class ring is full (or
    /// whose capacity is out of the pooled range) are simply freed.
    pub fn give(v: Vec<u8>) {
        let cap = v.capacity();
        if cap < (1usize << MIN_CLASS) {
            POOL.with(|p| p.borrow_mut().stats.discarded += 1);
            return;
        }
        // Floor class: the largest `s` with `2^s <= capacity`, so a
        // subsequent `take` of up to `2^s` is guaranteed to fit.
        let s = (usize::BITS - 1 - cap.leading_zeros()).min(MAX_CLASS);
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.classes[s as usize].len() < PER_CLASS {
                p.stats.recycled += 1;
                p.classes[s as usize].push(v);
            } else {
                p.stats.discarded += 1;
            }
        });
    }

    /// Snapshot this thread's counters.
    pub fn stats() -> PoolStats {
        POOL.with(|p| p.borrow().stats)
    }

    /// Zero the counters (free lists are kept warm).
    pub fn reset_stats() {
        POOL.with(|p| p.borrow_mut().stats = PoolStats::default());
    }
}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// A writer backed by a pooled buffer; pair with [`recycle`] (or
    /// [`pool::give`] on the finished Vec) to keep the pool warm.
    ///
    /// [`recycle`]: WireWriter::recycle
    pub fn pooled(cap: usize) -> Self {
        WireWriter {
            buf: pool::take(cap),
        }
    }

    /// Wrap an existing buffer (cleared), reusing its capacity.
    pub fn reuse(mut buf: Vec<u8>) -> Self {
        buf.clear();
        WireWriter { buf }
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// LEB128 variable-length u32: 1 byte for values < 128, at most 5.
    /// Used where small values dominate but the full range must stay
    /// representable — vector-clock entries chiefly, whose fixed-width
    /// encoding made every synchronization message grow 4·nprocs bytes.
    pub fn u32v(&mut self, mut v: u32) -> &mut Self {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return self;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Length-prefixed byte slice (u32 length).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Raw bytes, no length prefix (caller knows the framing).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Reserve a u16 slot to be filled in later (e.g. a run count that is
    /// only known after streaming the runs). Returns the slot's offset for
    /// [`patch_u16`].
    ///
    /// [`patch_u16`]: WireWriter::patch_u16
    pub fn reserve_u16(&mut self) -> usize {
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0, 0]);
        at
    }

    /// Backpatch a slot from [`reserve_u16`].
    ///
    /// [`reserve_u16`]: WireWriter::reserve_u16
    pub fn patch_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes so far, without consuming the writer.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Drop the encoded content but keep the capacity for the next message.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Return the backing buffer to the thread-local [`pool`].
    pub fn recycle(self) {
        pool::give(self.buf);
    }
}

/// Cursor-style decoder. All reads return `Option` — a malformed message
/// surfaces as `None`, which the protocol layer treats as a hard error.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
        })
    }

    /// LEB128 variable-length u32. Rejects encodings longer than 5 bytes
    /// or overflowing 32 bits (possible once fault injection corrupts a
    /// continuation bit) instead of panicking.
    pub fn u32v(&mut self) -> Option<u32> {
        let mut v: u64 = 0;
        for shift in (0..35).step_by(7) {
            let b = self.u8()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return u32::try_from(v).ok();
            }
        }
        None
    }

    /// Length-prefixed byte slice.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Exactly `n` raw bytes (caller-framed).
    pub fn raw_bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        self.take(n)
    }

    /// All remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u16(), Some(300));
        assert_eq!(r.u32(), Some(70_000));
        assert_eq!(r.u64(), Some(1 << 40));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut w = WireWriter::new();
        w.bytes(b"hello").bytes(b"").u8(9);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes(), Some(&b"hello"[..]));
        assert_eq!(r.bytes(), Some(&b""[..]));
        assert_eq!(r.u8(), Some(9));
    }

    #[test]
    fn varint_sizes_and_roundtrip() {
        for (v, len) in [
            (0u32, 1usize),
            (1, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u32::MAX, 5),
        ] {
            let mut w = WireWriter::new();
            w.u32v(v);
            let buf = w.finish();
            assert_eq!(buf.len(), len, "encoded size of {v}");
            let mut r = WireReader::new(&buf);
            assert_eq!(r.u32v(), Some(v));
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn varint_rejects_overlong_and_overflow() {
        // Six continuation bytes: too long for a u32.
        let mut r = WireReader::new(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]);
        assert_eq!(r.u32v(), None);
        // Five bytes whose top nibble overflows 32 bits.
        let mut r = WireReader::new(&[0xff, 0xff, 0xff, 0xff, 0x7f]);
        assert_eq!(r.u32v(), None);
        // Truncated mid-value.
        let mut r = WireReader::new(&[0x80]);
        assert_eq!(r.u32v(), None);
    }

    #[test]
    fn short_reads_are_none_not_panic() {
        let buf = [1u8, 2];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u32(), None);
        // A failed read consumes nothing.
        assert_eq!(r.u16(), Some(0x0201));
    }

    #[test]
    fn truncated_length_prefix() {
        let mut w = WireWriter::new();
        w.u32(100); // claims 100 bytes follow; none do
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes(), None);
    }

    #[test]
    fn reserve_and_patch_u16() {
        let mut w = WireWriter::new();
        w.u8(9);
        let at = w.reserve_u16();
        w.u32(0xAABBCCDD);
        w.patch_u16(at, 513);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8(), Some(9));
        assert_eq!(r.u16(), Some(513));
        assert_eq!(r.u32(), Some(0xAABBCCDD));
    }

    #[test]
    fn pool_round_trips_buffers() {
        pool::reset_stats();
        let v = pool::take(100); // class 7 -> 128B capacity
        assert!(v.capacity() >= 100);
        assert_eq!(pool::stats().misses, 1);
        pool::give(v);
        assert_eq!(pool::stats().recycled, 1);
        let v2 = pool::take(120); // same class: must be a hit
        assert_eq!(pool::stats().hits, 1);
        assert!(v2.is_empty() && v2.capacity() >= 120);
        pool::give(v2);
    }

    #[test]
    fn pool_steady_state_allocates_nothing() {
        pool::reset_stats();
        // Warm one class, then cycle it: every take after the first must hit.
        for _ in 0..64 {
            let mut w = WireWriter::pooled(1024);
            w.u64(42).raw(&[0u8; 500]);
            w.recycle();
        }
        let s = pool::stats();
        assert_eq!(s.misses, 1, "only the warm-up take may allocate: {s:?}");
        assert_eq!(s.hits, 63);
    }

    #[test]
    fn pool_tiny_and_huge_are_not_hoarded() {
        pool::reset_stats();
        pool::give(Vec::with_capacity(8)); // below MIN_CLASS
        assert_eq!(pool::stats().discarded, 1);
        let big = pool::take(4 << 20); // above MAX_CLASS: plain allocation
        assert!(big.capacity() >= 4 << 20);
        assert_eq!(pool::stats().misses, 1);
    }

    #[test]
    fn reuse_keeps_capacity() {
        let w = WireWriter::with_capacity(256);
        let buf = w.finish();
        let cap = buf.capacity();
        let mut w = WireWriter::reuse(buf);
        assert!(w.is_empty());
        w.u32(5);
        assert_eq!(w.as_slice(), &5u32.to_le_bytes());
        assert!(w.finish().capacity() >= cap);
    }

    #[test]
    fn rest_consumes_everything() {
        let buf = [1u8, 2, 3];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8(), Some(1));
        assert_eq!(r.rest(), &[2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    proptest! {
        #[test]
        fn mixed_roundtrip(a: u8, b: u16, c: u32, d: u64, v in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut w = WireWriter::new();
            w.u8(a).u16(b).bytes(&v).u32(c).u64(d);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            prop_assert_eq!(r.u8(), Some(a));
            prop_assert_eq!(r.u16(), Some(b));
            prop_assert_eq!(r.bytes(), Some(&v[..]));
            prop_assert_eq!(r.u32(), Some(c));
            prop_assert_eq!(r.u64(), Some(d));
            prop_assert_eq!(r.remaining(), 0);
        }
    }
}
