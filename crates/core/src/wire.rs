//! Hand-rolled wire encoding: little-endian, length-prefixed.
//!
//! TreadMarks' messages are C structs on the wire; we keep the same spirit
//! (no self-describing serialization framework, no allocation churn) with a
//! tiny writer/reader pair. All protocol messages in [`crate::protocol`]
//! encode through these.

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Length-prefixed byte slice (u32 length).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Raw bytes, no length prefix (caller knows the framing).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-style decoder. All reads return `Option` — a malformed message
/// surfaces as `None`, which the protocol layer treats as a hard error.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
        })
    }

    /// Length-prefixed byte slice.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Exactly `n` raw bytes (caller-framed).
    pub fn raw_bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        self.take(n)
    }

    /// All remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u16(), Some(300));
        assert_eq!(r.u32(), Some(70_000));
        assert_eq!(r.u64(), Some(1 << 40));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut w = WireWriter::new();
        w.bytes(b"hello").bytes(b"").u8(9);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes(), Some(&b"hello"[..]));
        assert_eq!(r.bytes(), Some(&b""[..]));
        assert_eq!(r.u8(), Some(9));
    }

    #[test]
    fn short_reads_are_none_not_panic() {
        let buf = [1u8, 2];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u32(), None);
        // A failed read consumes nothing.
        assert_eq!(r.u16(), Some(0x0201));
    }

    #[test]
    fn truncated_length_prefix() {
        let mut w = WireWriter::new();
        w.u32(100); // claims 100 bytes follow; none do
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes(), None);
    }

    #[test]
    fn rest_consumes_everything() {
        let buf = [1u8, 2, 3];
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8(), Some(1));
        assert_eq!(r.rest(), &[2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    proptest! {
        #[test]
        fn mixed_roundtrip(a: u8, b: u16, c: u32, d: u64, v in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut w = WireWriter::new();
            w.u8(a).u16(b).bytes(&v).u32(c).u64(d);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            prop_assert_eq!(r.u8(), Some(a));
            prop_assert_eq!(r.u16(), Some(b));
            prop_assert_eq!(r.bytes(), Some(&v[..]));
            prop_assert_eq!(r.u32(), Some(c));
            prop_assert_eq!(r.u64(), Some(d));
            prop_assert_eq!(r.remaining(), 0);
        }
    }
}
