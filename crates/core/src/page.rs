//! Per-page state: the access state machine, twins, pending write notices,
//! retained diffs.

use crate::diff::Diff;
use crate::vc::VectorClock;

/// Global page number within the shared address space.
pub type PageId = u32;

/// The mprotect-equivalent access state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// No local copy has ever been valid: first access fetches the whole
    /// page from its manager.
    Unmapped,
    /// Local copy exists but write notices are pending: access faults and
    /// fetches diffs.
    Invalid,
    /// Clean, readable copy.
    Read,
    /// Twin exists; writes are in progress this interval.
    Write,
    /// Twin exists *and* notices arrived (concurrent writers / false
    /// sharing): access fetches diffs, applying them to page and twin.
    WriteInvalid,
}

/// A pending (not yet applied) write notice for this page. Carries the
/// writing interval's vector time so diffs can be applied in causal order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pending {
    pub node: u16,
    pub seq: u32,
    pub vc: VectorClock,
}

/// One shared page's local bookkeeping.
#[derive(Debug)]
pub struct Page {
    pub state: Access,
    /// Local copy; empty until first validated.
    pub data: Vec<u8>,
    /// Copy taken at first write of the current interval.
    pub twin: Option<Vec<u8>>,
    /// Manager (owner of the authoritative initial copy): the allocating
    /// node.
    pub manager: u16,
    /// Highest interval seq per writer whose diff is incorporated locally.
    pub applied: Vec<u32>,
    /// Write notices awaiting diff fetch, sorted by (node, seq).
    pub pending: Vec<Pending>,
    /// Diffs this node created for this page: (seq, diff), newest last.
    pub my_diffs: Vec<(u32, Diff)>,
    /// The current interval overwrote the whole page without fetching its
    /// old content: the flush must emit a full-page diff so readers that
    /// causally order our diff last see every word we wrote.
    pub force_full_diff: bool,
}

impl Page {
    pub fn new(nprocs: usize, manager: u16) -> Self {
        Page {
            state: Access::Unmapped,
            data: Vec::new(),
            twin: None,
            manager,
            applied: vec![0; nprocs],
            pending: Vec::new(),
            my_diffs: Vec::new(),
            force_full_diff: false,
        }
    }

    /// A freshly allocated page on its manager: valid and zeroed.
    pub fn new_resident(nprocs: usize, manager: u16, page_size: usize) -> Self {
        let mut p = Self::new(nprocs, manager);
        p.data = vec![0; page_size];
        p.state = Access::Read;
        p
    }

    pub fn has_copy(&self) -> bool {
        !self.data.is_empty()
    }

    pub fn is_dirty(&self) -> bool {
        self.twin.is_some()
    }

    /// Record an incoming write notice. Ignores notices already applied or
    /// already pending. Transitions the access state.
    pub fn add_notice(&mut self, node: u16, seq: u32, vc: VectorClock) {
        if self.applied[node as usize] >= seq {
            return;
        }
        if self.pending.iter().any(|p| p.node == node && p.seq == seq) {
            return;
        }
        self.pending.push(Pending { node, seq, vc });
        self.pending.sort_by_key(|p| (p.node, p.seq));
        self.state = match self.state {
            Access::Unmapped => Access::Unmapped,
            Access::Write | Access::WriteInvalid => Access::WriteInvalid,
            _ => Access::Invalid,
        };
    }

    /// Mark a pending notice applied.
    pub fn applied_notice(&mut self, node: u16, seq: u32) {
        self.applied[node as usize] = self.applied[node as usize].max(seq);
        self.pending.retain(|p| !(p.node == node && p.seq <= seq));
    }

    /// The set of writers we still need diffs from, with the lowest and
    /// highest missing seq for each.
    pub fn missing_by_writer(&self) -> Vec<(u16, u32, u32)> {
        let mut out: Vec<(u16, u32, u32)> = Vec::new();
        for p in &self.pending {
            match out.iter_mut().find(|(n, _, _)| *n == p.node) {
                Some((_, lo, hi)) => {
                    *lo = (*lo).min(p.seq);
                    *hi = (*hi).max(p.seq);
                }
                None => out.push((p.node, p.seq, p.seq)),
            }
        }
        out
    }

    /// Retain only the most recent `keep` diffs (barrier-epoch GC). Older
    /// requests are served with a full page instead.
    pub fn trim_diffs(&mut self, keep: usize) {
        if self.my_diffs.len() > keep {
            let cut = self.my_diffs.len() - keep;
            self.my_diffs.drain(..cut);
        }
    }

    /// Diffs with `lo <= seq <= hi`, borrowed (no per-diff clone), or
    /// `None` if any in that range was already garbage collected.
    /// `my_diffs` is sorted by seq (appended monotonically), so the answer
    /// is a contiguous slice.
    pub fn diffs_range(&self, lo: u32, hi: u32) -> Option<&[(u32, Diff)]> {
        if self.my_diffs.is_empty() {
            return if lo > hi { Some(&[]) } else { None };
        }
        if self.my_diffs[0].0 > lo {
            return None;
        }
        let a = self.my_diffs.partition_point(|(s, _)| *s < lo);
        let b = self.my_diffs.partition_point(|(s, _)| *s <= hi).max(a);
        Some(&self.my_diffs[a..b])
    }

    /// Owned variant of [`diffs_range`] (kept for tests and callers that
    /// need the diffs to outlive the page borrow).
    ///
    /// [`diffs_range`]: Page::diffs_range
    pub fn diffs_in(&self, lo: u32, hi: u32) -> Option<Vec<(u32, Diff)>> {
        self.diffs_range(lo, hi).map(<[_]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc_of(node: u16, seq: u32) -> VectorClock {
        let mut v = VectorClock::new(4);
        v.set(node as usize, seq);
        v
    }

    fn notice(p: &mut Page, node: u16, seq: u32) {
        p.add_notice(node, seq, vc_of(node, seq));
    }

    #[test]
    fn fresh_pages() {
        let p = Page::new(4, 2);
        assert_eq!(p.state, Access::Unmapped);
        assert!(!p.has_copy());
        let r = Page::new_resident(4, 2, 4096);
        assert_eq!(r.state, Access::Read);
        assert_eq!(r.data.len(), 4096);
    }

    #[test]
    fn notice_transitions() {
        let mut p = Page::new_resident(2, 0, 64);
        notice(&mut p, 1, 1);
        assert_eq!(p.state, Access::Invalid);
        assert_eq!(p.pending.len(), 1);
        // Dirty page + notice = WriteInvalid (false-sharing case).
        let mut q = Page::new_resident(2, 0, 64);
        q.twin = Some(q.data.clone());
        q.state = Access::Write;
        notice(&mut q, 1, 1);
        assert_eq!(q.state, Access::WriteInvalid);
    }

    #[test]
    fn duplicate_and_stale_notices_ignored() {
        let mut p = Page::new_resident(2, 0, 64);
        p.applied[1] = 5;
        notice(&mut p, 1, 4); // stale
        assert!(p.pending.is_empty());
        assert_eq!(p.state, Access::Read);
        notice(&mut p, 1, 6);
        notice(&mut p, 1, 6); // duplicate
        assert_eq!(p.pending.len(), 1);
    }

    #[test]
    fn applied_notice_clears_pending() {
        let mut p = Page::new_resident(2, 0, 64);
        notice(&mut p, 1, 1);
        notice(&mut p, 1, 2);
        p.applied_notice(1, 2);
        assert!(p.pending.is_empty());
        assert_eq!(p.applied[1], 2);
    }

    #[test]
    fn missing_by_writer_ranges() {
        let mut p = Page::new_resident(3, 0, 64);
        notice(&mut p, 1, 2);
        notice(&mut p, 1, 4);
        notice(&mut p, 2, 7);
        let m = p.missing_by_writer();
        assert!(m.contains(&(1, 2, 4)));
        assert!(m.contains(&(2, 7, 7)));
    }

    #[test]
    fn diff_retention_and_gc() {
        let mut p = Page::new_resident(2, 0, 8);
        for seq in 1..=5 {
            p.my_diffs.push((seq, Diff::empty()));
        }
        assert!(p.diffs_in(2, 4).is_some_and(|v| v.len() == 3));
        p.trim_diffs(2); // keeps seq 4, 5
        assert!(p.diffs_in(2, 4).is_none(), "gc'd range must signal None");
        assert!(p.diffs_in(4, 5).is_some_and(|v| v.len() == 2));
        assert!(p.diffs_in(5, 4).is_some_and(|v| v.is_empty()));
    }
}
