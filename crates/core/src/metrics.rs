//! Per-layer metrics sink on the [`TmkEvent`](crate::TmkEvent) hook.
//!
//! [`MetricsHandle::install`] attaches a tallying hook to one node's
//! runtime: every emitted event bumps a per-variant counter and records
//! the virtual time at emission (first and last). Harnesses merge the
//! per-node tallies into one [`LayerMetrics`] and print it next to
//! `NodeStats` — this is how tree-barrier hops (`barrier_arrive_forwarded`
//! / `barrier_release_fanned`) are observable without a debugger.
//!
//! The hook charges no virtual time and allocates only on the first
//! occurrence of each variant, so installing it does not perturb results.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::substrate::Substrate;
use crate::tmk::Tmk;

/// Tally for one event variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventStat {
    pub count: u64,
    /// Virtual time (ns) of the first emission seen.
    pub first_ns: u64,
    /// Virtual time (ns) of the last emission seen.
    pub last_ns: u64,
}

/// Per-variant event tallies, keyed by
/// [`TmkEvent::kind`](crate::TmkEvent::kind). Also the cross-node merge
/// target: harnesses fold every node's tally into one of these.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayerMetrics {
    stats: BTreeMap<&'static str, EventStat>,
}

impl LayerMetrics {
    pub fn record(&mut self, kind: &'static str, now_ns: u64) {
        let e = self.stats.entry(kind).or_insert(EventStat {
            count: 0,
            first_ns: now_ns,
            last_ns: now_ns,
        });
        e.count += 1;
        e.first_ns = e.first_ns.min(now_ns);
        e.last_ns = e.last_ns.max(now_ns);
    }

    /// Fold another tally (typically a peer node's) into this one.
    pub fn merge(&mut self, other: &LayerMetrics) {
        for (kind, o) in &other.stats {
            match self.stats.get_mut(kind) {
                Some(e) => {
                    e.count += o.count;
                    e.first_ns = e.first_ns.min(o.first_ns);
                    e.last_ns = e.last_ns.max(o.last_ns);
                }
                None => {
                    self.stats.insert(kind, *o);
                }
            }
        }
    }

    pub fn get(&self, kind: &str) -> Option<&EventStat> {
        self.stats.get(kind)
    }

    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Iterate tallies in stable (alphabetical) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &EventStat)> {
        self.stats.iter().map(|(k, v)| (*k, v))
    }

    /// Render as aligned `kind count [first..last]us` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.stats.keys().map(|k| k.len()).max().unwrap_or(0);
        for (kind, e) in &self.stats {
            out.push_str(&format!(
                "  {kind:width$}  x{:<8} t={:.1}..{:.1}us\n",
                e.count,
                e.first_ns as f64 / 1_000.0,
                e.last_ns as f64 / 1_000.0,
            ));
        }
        out
    }
}

/// A node-local metrics sink: shared ownership of the tally that the
/// installed event hook writes into.
#[derive(Clone, Default)]
pub struct MetricsHandle {
    inner: Rc<RefCell<LayerMetrics>>,
}

impl MetricsHandle {
    /// Install a tallying hook on `tmk` (replacing any existing hook) and
    /// return the handle to read the tally back out.
    pub fn install<S: Substrate>(tmk: &mut Tmk<S>) -> MetricsHandle {
        let handle = MetricsHandle::default();
        let sink = Rc::clone(&handle.inner);
        let clock = tmk.clock().clone();
        tmk.set_event_hook(move |ev| {
            let now = clock.borrow().now().0;
            sink.borrow_mut().record(ev.kind(), now);
        });
        handle
    }

    /// A snapshot of the tally so far.
    pub fn snapshot(&self) -> LayerMetrics {
        self.inner.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_count_and_time_bounds() {
        let mut m = LayerMetrics::default();
        m.record("lock_granted", 500);
        m.record("lock_granted", 100);
        m.record("lock_granted", 900);
        let e = m.get("lock_granted").unwrap();
        assert_eq!(e.count, 3);
        assert_eq!(e.first_ns, 100);
        assert_eq!(e.last_ns, 900);
    }

    #[test]
    fn merge_folds_counts_and_bounds() {
        let mut a = LayerMetrics::default();
        a.record("barrier_crossed", 10);
        let mut b = LayerMetrics::default();
        b.record("barrier_crossed", 5);
        b.record("barrier_crossed", 50);
        b.record("page_fetched", 7);
        a.merge(&b);
        let e = a.get("barrier_crossed").unwrap();
        assert_eq!(e.count, 3);
        assert_eq!(e.first_ns, 5);
        assert_eq!(e.last_ns, 50);
        assert_eq!(a.get("page_fetched").unwrap().count, 1);
    }

    #[test]
    fn render_is_stable_and_aligned() {
        let mut m = LayerMetrics::default();
        m.record("b_kind", 1_000);
        m.record("a_kind", 2_000);
        let r = m.render();
        let a_pos = r.find("a_kind").unwrap();
        let b_pos = r.find("b_kind").unwrap();
        assert!(a_pos < b_pos, "alphabetical order");
    }
}
