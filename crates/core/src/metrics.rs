//! Per-layer metrics sink on the [`TmkEvent`] hook.
//!
//! [`MetricsHandle::install`] attaches a tallying hook to one node's
//! runtime: every emitted event bumps a per-variant counter, records the
//! virtual time at emission (first and last), and files the emission time
//! into a log2-bucketed histogram — the shape of *when* a layer was busy,
//! not just how often. Gauge-like events (the overlapped RPC engine's
//! outstanding-request depth) additionally track their high-water mark.
//! Harnesses merge the per-node tallies into one [`LayerMetrics`] and
//! print it next to `NodeStats` — this is how tree-barrier hops
//! (`barrier_arrive_forwarded` / `barrier_release_fanned`) and RPC
//! overlap depth are observable without a debugger.
//!
//! The hook charges no virtual time and allocates only on the first
//! occurrence of each variant, so installing it does not perturb results.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::substrate::Substrate;
use crate::tmk::{Tmk, TmkEvent};

/// Number of log2 buckets: bucket `i` holds values whose bit length is
/// `i` (bucket 0 is the value zero). 44 bits of nanoseconds is ~4.8
/// hours of virtual time — far past any simulated run.
pub const HIST_BUCKETS: usize = 44;

/// A log2-bucketed histogram of `u64` samples (virtual-time nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Log2Hist {
    /// Bucket index for a sample: its bit length, clamped to the table.
    pub fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
    }

    pub fn merge(&mut self, other: &Log2Hist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The contiguous occupied span: `(bucket_index, count)` from the
    /// first non-empty bucket through the last, *including* interior
    /// zeros. This is what [`LayerMetrics::render`] prints — leading and
    /// trailing empties are skipped but the span itself never develops
    /// holes, so two runs whose samples land in slightly different
    /// buckets produce line diffs (`2^i:0` vs `2^i:2`), not column
    /// shifts.
    pub fn span(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        let first = self.buckets.iter().position(|&c| c > 0);
        let last = self.buckets.iter().rposition(|&c| c > 0);
        let range = match (first, last) {
            (Some(a), Some(b)) => a..b + 1,
            _ => 0..0,
        };
        range.map(|i| (i, self.buckets[i]))
    }
}

/// Tally for one event variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventStat {
    pub count: u64,
    /// Virtual time (ns) of the first emission seen.
    pub first_ns: u64,
    /// Virtual time (ns) of the last emission seen.
    pub last_ns: u64,
    /// Log2 histogram of emission times.
    pub hist: Log2Hist,
}

/// Per-variant event tallies, keyed by
/// [`TmkEvent::kind`](crate::TmkEvent::kind). Also the cross-node merge
/// target: harnesses fold every node's tally into one of these.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayerMetrics {
    stats: BTreeMap<&'static str, EventStat>,
    /// Max-tracked gauges (e.g. `outstanding_rpc_depth`).
    gauges: BTreeMap<&'static str, u64>,
}

/// Gauge name for the overlapped RPC engine's high-water outstanding
/// depth, fed from [`TmkEvent::RpcIssued`].
pub const GAUGE_RPC_DEPTH: &str = "outstanding_rpc_depth";

/// Gauge name for the lock pipeline's high-water overlapped-fetch count
/// (pages fetched concurrently off a grant's write notices), fed from
/// [`TmkEvent::LockPipelined`].
pub const GAUGE_LOCK_PIPELINE: &str = "lock_pipeline_depth";

impl LayerMetrics {
    pub fn record(&mut self, kind: &'static str, now_ns: u64) {
        let e = self.stats.entry(kind).or_insert(EventStat {
            count: 0,
            first_ns: now_ns,
            last_ns: now_ns,
            hist: Log2Hist::default(),
        });
        e.count += 1;
        e.first_ns = e.first_ns.min(now_ns);
        e.last_ns = e.last_ns.max(now_ns);
        e.hist.record(now_ns);
    }

    /// Record an event with its gauge side-channels: the variant tally
    /// plus, for [`TmkEvent::RpcIssued`], the outstanding-depth high-water
    /// mark.
    pub fn record_event(&mut self, ev: &TmkEvent, now_ns: u64) {
        self.record(ev.kind(), now_ns);
        match ev {
            TmkEvent::RpcIssued { depth, .. } => {
                self.gauge_max(GAUGE_RPC_DEPTH, u64::from(*depth));
            }
            TmkEvent::LockPipelined { fetches, .. } => {
                self.gauge_max(GAUGE_LOCK_PIPELINE, *fetches as u64);
            }
            _ => {}
        }
    }

    /// Raise a max-tracked gauge.
    pub fn gauge_max(&mut self, name: &'static str, v: u64) {
        let g = self.gauges.entry(name).or_insert(0);
        *g = (*g).max(v);
    }

    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Fold another tally (typically a peer node's) into this one.
    pub fn merge(&mut self, other: &LayerMetrics) {
        for (kind, o) in &other.stats {
            match self.stats.get_mut(kind) {
                Some(e) => {
                    e.count += o.count;
                    e.first_ns = e.first_ns.min(o.first_ns);
                    e.last_ns = e.last_ns.max(o.last_ns);
                    e.hist.merge(&o.hist);
                }
                None => {
                    self.stats.insert(kind, *o);
                }
            }
        }
        for (name, &v) in &other.gauges {
            self.gauge_max(name, v);
        }
    }

    pub fn get(&self, kind: &str) -> Option<&EventStat> {
        self.stats.get(kind)
    }

    pub fn is_empty(&self) -> bool {
        self.stats.is_empty() && self.gauges.is_empty()
    }

    /// Iterate tallies in stable (alphabetical) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &EventStat)> {
        self.stats.iter().map(|(k, v)| (*k, v))
    }

    /// Render as aligned `kind count [first..last]us` lines, each with its
    /// emission-time histogram (`2^i:count` for non-empty log2(ns)
    /// buckets), followed by the gauges.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.stats.keys().map(|k| k.len()).max().unwrap_or(0);
        for (kind, e) in &self.stats {
            out.push_str(&format!(
                "  {kind:width$}  x{:<8} t={:.1}..{:.1}us",
                e.count,
                e.first_ns as f64 / 1_000.0,
                e.last_ns as f64 / 1_000.0,
            ));
            out.push_str("  hist(ns)");
            for (i, c) in e.hist.span() {
                out.push_str(&format!(" 2^{i}:{c}"));
            }
            out.push('\n');
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("  {name:width$}  max={v}\n"));
        }
        out
    }
}

/// A node-local metrics sink: shared ownership of the tally that the
/// installed event hook writes into.
#[derive(Clone, Default)]
pub struct MetricsHandle {
    inner: Rc<RefCell<LayerMetrics>>,
}

impl MetricsHandle {
    /// Install a tallying hook on `tmk` (replacing any existing hook) and
    /// return the handle to read the tally back out.
    pub fn install<S: Substrate>(tmk: &mut Tmk<S>) -> MetricsHandle {
        let handle = MetricsHandle::default();
        let sink = Rc::clone(&handle.inner);
        let clock = tmk.clock().clone();
        tmk.set_event_hook(move |ev| {
            let now = clock.borrow().now().0;
            sink.borrow_mut().record_event(ev, now);
        });
        handle
    }

    /// A snapshot of the tally so far.
    pub fn snapshot(&self) -> LayerMetrics {
        self.inner.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_count_and_time_bounds() {
        let mut m = LayerMetrics::default();
        m.record("lock_granted", 500);
        m.record("lock_granted", 100);
        m.record("lock_granted", 900);
        let e = m.get("lock_granted").unwrap();
        assert_eq!(e.count, 3);
        assert_eq!(e.first_ns, 100);
        assert_eq!(e.last_ns, 900);
        assert_eq!(e.hist.count(), 3);
    }

    #[test]
    fn merge_folds_counts_and_bounds() {
        let mut a = LayerMetrics::default();
        a.record("barrier_crossed", 10);
        let mut b = LayerMetrics::default();
        b.record("barrier_crossed", 5);
        b.record("barrier_crossed", 50);
        b.record("page_fetched", 7);
        a.merge(&b);
        let e = a.get("barrier_crossed").unwrap();
        assert_eq!(e.count, 3);
        assert_eq!(e.first_ns, 5);
        assert_eq!(e.last_ns, 50);
        assert_eq!(e.hist.count(), 3);
        assert_eq!(a.get("page_fetched").unwrap().count, 1);
    }

    #[test]
    fn render_is_stable_and_aligned() {
        let mut m = LayerMetrics::default();
        m.record("b_kind", 1_000);
        m.record("a_kind", 2_000);
        let r = m.render();
        let a_pos = r.find("a_kind").unwrap();
        let b_pos = r.find("b_kind").unwrap();
        assert!(a_pos < b_pos, "alphabetical order");
    }

    #[test]
    fn log2_buckets_split_by_bit_length() {
        let mut h = Log2Hist::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1 << 20); // bucket 21
        h.record(u64::MAX); // clamped to the last bucket
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let got: Vec<(usize, u64)> = h.nonzero().collect();
        assert_eq!(got, vec![(0, 1), (1, 1), (2, 2), (21, 1), (43, 1)]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn span_fills_interior_zeros_only() {
        let mut h = Log2Hist::default();
        h.record(2); // bucket 2
        h.record(1 << 4); // bucket 5
        let got: Vec<(usize, u64)> = h.span().collect();
        assert_eq!(got, vec![(2, 1), (3, 0), (4, 0), (5, 1)]);
        assert_eq!(Log2Hist::default().span().count(), 0);
    }

    /// The rendered histogram must be a contiguous ascending span —
    /// leading/trailing empties skipped, interior zeros printed — so two
    /// runs with slightly different samples diff line-by-line instead of
    /// shifting columns.
    #[test]
    fn render_prints_contiguous_ascending_span() {
        let mut m = LayerMetrics::default();
        m.record("k", 2); // bucket 2
        m.record("k", 1 << 4); // bucket 5
        let r = m.render();
        assert!(
            r.contains("hist(ns) 2^2:1 2^3:0 2^4:0 2^5:1"),
            "contiguous span: {r}"
        );
        assert!(!r.contains("2^0:"), "leading empties skipped: {r}");
        assert!(!r.contains("2^6:"), "trailing empties skipped: {r}");
    }

    #[test]
    fn lock_pipelined_feeds_depth_gauge() {
        let mut m = LayerMetrics::default();
        m.record_event(&TmkEvent::LockPipelined { lock: 0, fetches: 2 }, 10);
        m.record_event(&TmkEvent::LockPipelined { lock: 0, fetches: 9 }, 20);
        m.record_event(&TmkEvent::LockPipelined { lock: 1, fetches: 4 }, 30);
        assert_eq!(m.gauge(GAUGE_LOCK_PIPELINE), Some(9));
        assert_eq!(m.get("lock_pipelined").unwrap().count, 3);
    }

    #[test]
    fn rpc_issued_feeds_depth_gauge() {
        let mut m = LayerMetrics::default();
        m.record_event(&TmkEvent::RpcIssued { rid: 1, depth: 1 }, 10);
        m.record_event(&TmkEvent::RpcIssued { rid: 2, depth: 3 }, 20);
        m.record_event(&TmkEvent::RpcIssued { rid: 3, depth: 2 }, 30);
        assert_eq!(m.gauge(GAUGE_RPC_DEPTH), Some(3));
        assert_eq!(m.get("rpc_issued").unwrap().count, 3);
        let mut other = LayerMetrics::default();
        other.record_event(&TmkEvent::RpcIssued { rid: 9, depth: 7 }, 40);
        m.merge(&other);
        assert_eq!(m.gauge(GAUGE_RPC_DEPTH), Some(7));
        let r = m.render();
        assert!(r.contains("outstanding_rpc_depth"), "gauge rendered: {r}");
    }
}
