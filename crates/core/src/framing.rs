//! Shared substrate framing: fragmentation geometry, fragment headers,
//! and partial-frame reassembly.
//!
//! Both transports carry DSM messages larger than one wire unit by
//! cutting the logical stream into indexed fragments and reassembling at
//! the receiver. The geometry and bookkeeping are transport-independent;
//! only the *cost model* (what a fragment costs to send/receive) and the
//! *event source* (GM receive events vs. socket datagrams) differ. This
//! module is the single implementation both FAST/GM and UDP/GM use:
//!
//! * [`FragPlan`] — how a stream of `len` bytes splits at a chunk size
//!   (also the IP-level fragment count the UDP kernel cost model folds
//!   per-fragment costs over, via [`fragment_count`]);
//! * [`FragHeader`] — the `xid`/`idx`/`total` header every fragment
//!   carries (encode and checked decode);
//! * [`Reassembler`] — per-`(src, xid, tag)` partial-frame tracking with
//!   duplicate suppression, geometry validation, and single-copy
//!   assembly into a pooled buffer.
//!
//! Wire-format note: the transport's one-byte frame *kind* stays with the
//! transport (FAST and UDP use different kind values); this module owns
//! everything after it.

use tm_sim::Ns;

use crate::wire::pool;

/// Encoded size of the header body: `[xid u32][idx u16][total u16]`.
pub const FRAG_BODY_LEN: usize = 8;

/// The per-fragment header: which transfer, which piece, how many pieces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragHeader {
    /// Transfer id, unique per sender (one counter per substrate).
    pub xid: u32,
    /// This fragment's index in `0..total`.
    pub idx: u16,
    /// Total fragments in the transfer.
    pub total: u16,
}

impl FragHeader {
    /// The full on-wire head: `[kind] ++ [xid][idx][total]`.
    pub fn head(&self, kind: u8) -> [u8; 1 + FRAG_BODY_LEN] {
        let mut h = [0u8; 1 + FRAG_BODY_LEN];
        h[0] = kind;
        h[1..5].copy_from_slice(&self.xid.to_le_bytes());
        h[5..7].copy_from_slice(&self.idx.to_le_bytes());
        h[7..9].copy_from_slice(&self.total.to_le_bytes());
        h
    }

    /// Checked decode of a fragment body (everything after the kind
    /// byte). `None` on a truncated header or impossible geometry
    /// (`total == 0`, `idx >= total`) — the callers count those as
    /// malformed frames. Returns the header and the fragment payload.
    pub fn parse(body: &[u8]) -> Option<(FragHeader, &[u8])> {
        if body.len() < FRAG_BODY_LEN {
            return None;
        }
        let xid = u32::from_le_bytes(body[0..4].try_into().expect("checked len"));
        let idx = u16::from_le_bytes(body[4..6].try_into().expect("checked len"));
        let total = u16::from_le_bytes(body[6..8].try_into().expect("checked len"));
        if total == 0 || idx >= total {
            return None;
        }
        Some((FragHeader { xid, idx, total }, &body[FRAG_BODY_LEN..]))
    }
}

/// How many wire units a payload of `len` bytes occupies at unit size
/// `mtu` (at least one — an empty datagram still travels). This is both
/// the DSM-level fragment count and the IP-level fragment count the UDP
/// kernel model folds per-fragment interrupt/bookkeeping costs over.
pub fn fragment_count(len: usize, mtu: usize) -> usize {
    len.max(1).div_ceil(mtu)
}

/// Fragmentation geometry for one outbound transfer: `len` stream bytes
/// cut into `total` chunks of at most `chunk` bytes.
#[derive(Debug, Clone, Copy)]
pub struct FragPlan {
    len: usize,
    chunk: usize,
    /// Number of fragments the stream cuts into.
    pub total: usize,
}

/// Plan the split of a `len`-byte logical stream at `chunk` bytes per
/// fragment. `len` must be positive (callers only fragment oversized
/// frames).
pub fn plan(len: usize, chunk: usize) -> FragPlan {
    debug_assert!(len > 0 && chunk > 0);
    FragPlan {
        len,
        chunk,
        total: len.div_ceil(chunk),
    }
}

impl FragPlan {
    /// The byte range of the logical stream each fragment carries, in
    /// index order — identical boundaries to slicing a materialized
    /// frame.
    pub fn ranges(&self) -> impl Iterator<Item = core::ops::Range<usize>> + '_ {
        let (chunk, len) = (self.chunk, self.len);
        (0..self.total).map(move |i| (i * chunk)..((i + 1) * chunk).min(len))
    }
}

/// A partially reassembled transfer.
struct Partial<T> {
    src: usize,
    tag: T,
    xid: u32,
    have: u16,
    chunks: Vec<Option<Vec<u8>>>,
    last_arrival: Ns,
}

/// Outcome of absorbing one fragment.
pub enum Insert<T> {
    /// Fragment absorbed (or was a duplicate); the transfer is still
    /// incomplete.
    Pending,
    /// The fragment's geometry disagrees with the first fragment seen for
    /// this transfer — the frame is untrustworthy and the fragment was
    /// discarded (count it as malformed).
    Malformed,
    /// The last piece arrived: the complete frame.
    Complete(CompleteFrame<T>),
}

/// A fully reassembled transfer, ready for single-copy assembly.
pub struct CompleteFrame<T> {
    /// Sending node.
    pub src: usize,
    /// The caller's demux tag (port or socket) from the first fragment.
    pub tag: T,
    /// Latest fragment arrival — when the frame became deliverable.
    pub arrival: Ns,
    chunks: Vec<Option<Vec<u8>>>,
}

impl<T> CompleteFrame<T> {
    /// First byte of the logical stream (the transport's embedded kind
    /// byte, when the transport fragments kind-prefixed frames).
    pub fn first_byte(&self) -> u8 {
        self.chunks[0].as_ref().expect("complete")[0]
    }

    /// Join the chunks into one pooled buffer, skipping the first `skip`
    /// bytes of the logical stream (a transport that fragments
    /// `[kind] ++ body` strips its kind byte here). Single copy: each
    /// chunk moves straight into the surfaced buffer and returns to the
    /// pool.
    pub fn assemble(self, skip: usize) -> Vec<u8> {
        let flen: usize = self.chunks.iter().flatten().map(Vec::len).sum();
        let mut full = pool::take(flen - skip);
        for (i, c) in self.chunks.into_iter().enumerate() {
            let c = c.expect("complete");
            if i == 0 {
                full.extend_from_slice(&c[skip..]);
            } else {
                full.extend_from_slice(&c);
            }
            pool::give(c);
        }
        full
    }
}

/// Receiver-side reassembly state for one endpoint. `T` is the
/// transport's demux tag (GM port, UDP socket): transfers are keyed on
/// `(src, xid, tag)`, so an xid reused across channels can never splice.
pub struct Reassembler<T> {
    partials: Vec<Partial<T>>,
}

impl<T: Copy + Eq> Reassembler<T> {
    pub fn new() -> Self {
        Reassembler {
            partials: Vec::new(),
        }
    }

    /// Number of transfers currently in flight (introspection/tests).
    pub fn in_flight(&self) -> usize {
        self.partials.len()
    }

    /// Absorb one fragment. `payload` must be a pooled buffer holding
    /// exactly this fragment's bytes; ownership transfers (it is recycled
    /// on duplicates and surfaced inside [`Insert::Complete`]).
    pub fn insert(
        &mut self,
        src: usize,
        tag: T,
        h: FragHeader,
        payload: Vec<u8>,
        arrival: Ns,
    ) -> Insert<T> {
        let slot = match self
            .partials
            .iter()
            .position(|p| p.src == src && p.xid == h.xid && p.tag == tag)
        {
            Some(i) => i,
            None => {
                self.partials.push(Partial {
                    src,
                    tag,
                    xid: h.xid,
                    have: 0,
                    chunks: vec![None; h.total as usize],
                    last_arrival: arrival,
                });
                self.partials.len() - 1
            }
        };
        {
            let p = &mut self.partials[slot];
            if p.chunks.len() != h.total as usize {
                pool::give(payload);
                return Insert::Malformed;
            }
            if p.chunks[h.idx as usize].is_none() {
                p.chunks[h.idx as usize] = Some(payload);
                p.have += 1;
            } else {
                // Duplicate fragment (lossy transports retransmit whole
                // messages): keep the first copy.
                pool::give(payload);
            }
            p.last_arrival = p.last_arrival.max(arrival);
        }
        if self.partials[slot].have as usize == self.partials[slot].chunks.len() {
            let p = self.partials.remove(slot);
            Insert::Complete(CompleteFrame {
                src: p.src,
                tag: p.tag,
                arrival: p.last_arrival,
                chunks: p.chunks,
            })
        } else {
            Insert::Pending
        }
    }
}

impl<T: Copy + Eq> Default for Reassembler<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(xid: u32, idx: u16, total: u16) -> FragHeader {
        FragHeader { xid, idx, total }
    }

    #[test]
    fn header_roundtrip() {
        let h = frag(0xDEAD_BEEF, 3, 9);
        let head = h.head(4);
        assert_eq!(head[0], 4);
        let (got, rest) = FragHeader::parse(&head[1..]).expect("parses");
        assert_eq!(got, h);
        assert!(rest.is_empty());
    }

    #[test]
    fn parse_rejects_bad_geometry() {
        assert!(FragHeader::parse(&[0u8; 7]).is_none(), "truncated");
        let zero_total = frag(1, 0, 0).head(0);
        // Hand-build: total 0 is impossible.
        assert!(FragHeader::parse(&zero_total[1..]).is_none());
        let oob = frag(1, 5, 5).head(0);
        assert!(FragHeader::parse(&oob[1..]).is_none(), "idx >= total");
    }

    #[test]
    fn plan_covers_stream_exactly() {
        let p = plan(100, 30);
        assert_eq!(p.total, 4);
        let ranges: Vec<_> = p.ranges().collect();
        assert_eq!(ranges, vec![0..30, 30..60, 60..90, 90..100]);
        // Exact multiple: no ragged tail.
        let q = plan(60, 30);
        assert_eq!(q.total, 2);
        assert_eq!(q.ranges().last(), Some(30..60));
    }

    #[test]
    fn fragment_count_floor_is_one() {
        assert_eq!(fragment_count(0, 1500), 1);
        assert_eq!(fragment_count(1500, 1500), 1);
        assert_eq!(fragment_count(1501, 1500), 2);
    }

    #[test]
    fn reassembles_out_of_order_with_duplicates() {
        let mut r: Reassembler<u8> = Reassembler::new();
        let parts: [&[u8]; 3] = [b"aa", b"bb", b"c"];
        // Deliver 2, 0, 0 (dup), 1.
        for (idx, t) in [(2u16, Ns(30)), (0, Ns(10)), (0, Ns(11)), (1, Ns(20))] {
            let got = r.insert(7, 1, frag(42, idx, 3), parts[idx as usize].to_vec(), t);
            match (idx, got) {
                (1, Insert::Complete(f)) => {
                    assert_eq!(f.src, 7);
                    assert_eq!(f.tag, 1);
                    assert_eq!(f.arrival, Ns(30), "latest fragment arrival wins");
                    assert_eq!(f.assemble(0), b"aabbc");
                }
                (1, _) => panic!("last fragment must complete"),
                (_, Insert::Pending) => {}
                _ => panic!("unexpected outcome"),
            }
        }
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn assemble_skips_embedded_kind_byte() {
        let mut r: Reassembler<u8> = Reassembler::new();
        let Insert::Pending = r.insert(0, 0, frag(1, 0, 2), b"\x00head".to_vec(), Ns(1)) else {
            panic!("incomplete")
        };
        let Insert::Complete(f) = r.insert(0, 0, frag(1, 1, 2), b"tail".to_vec(), Ns(2)) else {
            panic!("complete")
        };
        assert_eq!(f.first_byte(), 0);
        assert_eq!(f.assemble(1), b"headtail");
    }

    #[test]
    fn distinct_tags_never_splice() {
        let mut r: Reassembler<u8> = Reassembler::new();
        assert!(matches!(
            r.insert(0, 1, frag(5, 0, 2), b"x".to_vec(), Ns(0)),
            Insert::Pending
        ));
        // Same (src, xid) on another tag is a different transfer.
        assert!(matches!(
            r.insert(0, 2, frag(5, 1, 2), b"y".to_vec(), Ns(0)),
            Insert::Pending
        ));
        assert_eq!(r.in_flight(), 2);
    }

    #[test]
    fn geometry_mismatch_is_malformed() {
        let mut r: Reassembler<u8> = Reassembler::new();
        assert!(matches!(
            r.insert(0, 0, frag(9, 0, 3), b"x".to_vec(), Ns(0)),
            Insert::Pending
        ));
        assert!(matches!(
            r.insert(0, 0, frag(9, 1, 4), b"y".to_vec(), Ns(0)),
            Insert::Malformed
        ));
    }
}
