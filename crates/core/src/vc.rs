//! Vector timestamps for lazy release consistency.
//!
//! `vc[p]` counts the intervals of processor `p` whose write notices this
//! node has incorporated. The happens-before partial order of LRC is the
//! pointwise order on these vectors.

use crate::wire::{WireReader, WireWriter};

/// A vector timestamp, one counter per processor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    v: Vec<u32>,
}

impl VectorClock {
    pub fn new(nprocs: usize) -> Self {
        VectorClock { v: vec![0; nprocs] }
    }

    pub fn len(&self) -> usize {
        self.v.len()
    }

    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    pub fn get(&self, p: usize) -> u32 {
        self.v[p]
    }

    pub fn set(&mut self, p: usize, val: u32) {
        self.v[p] = val;
    }

    /// Start processor `p`'s next interval; returns the new counter.
    pub fn tick(&mut self, p: usize) -> u32 {
        self.v[p] += 1;
        self.v[p]
    }

    /// Pointwise maximum (join). Panics on mismatched cluster sizes.
    pub fn join(&mut self, other: &VectorClock) {
        assert_eq!(self.v.len(), other.v.len());
        for (a, b) in self.v.iter_mut().zip(&other.v) {
            *a = (*a).max(*b);
        }
    }

    /// Pointwise minimum (meet). The combining-tree barrier uses this as a
    /// subtree's coverage floor: an interval record is needed by *some*
    /// subtree member iff it is newer than the meet of the members' clocks.
    /// Panics on mismatched cluster sizes.
    pub fn meet(&mut self, other: &VectorClock) {
        assert_eq!(self.v.len(), other.v.len());
        for (a, b) in self.v.iter_mut().zip(&other.v) {
            *a = (*a).min(*b);
        }
    }

    /// `self ≤ other` in the pointwise (happens-before) order.
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        assert_eq!(self.v.len(), other.v.len());
        self.v.iter().zip(&other.v).all(|(a, b)| a <= b)
    }

    /// Neither dominates: concurrent.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.dominated_by(other) && !other.dominated_by(self)
    }

    /// Has this clock seen interval `seq` of processor `p`?
    pub fn covers(&self, p: usize, seq: u32) -> bool {
        self.v[p] >= seq
    }

    /// Wire encoding: u16 length then one LEB128 varint per entry.
    /// Interval counters are small in practice, so a clock costs about
    /// nprocs bytes instead of 4·nprocs — on a 128-node cluster that is
    /// the difference between barrier arrivals being latency-bound and
    /// being wire-bound.
    pub fn encode(&self, w: &mut WireWriter) {
        w.u16(self.v.len() as u16);
        for &x in &self.v {
            w.u32v(x);
        }
    }

    pub fn decode(r: &mut WireReader) -> Option<VectorClock> {
        let n = r.u16()? as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(r.u32v()?);
        }
        Some(VectorClock { v })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tick_and_get() {
        let mut vc = VectorClock::new(3);
        assert_eq!(vc.tick(1), 1);
        assert_eq!(vc.tick(1), 2);
        assert_eq!(vc.get(1), 2);
        assert_eq!(vc.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new(3);
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VectorClock::new(3);
        b.set(0, 2);
        b.set(1, 7);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 7);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn dominance_and_concurrency() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        assert!(a.dominated_by(&b) && b.dominated_by(&a)); // equal
        a.tick(0);
        assert!(b.dominated_by(&a));
        assert!(!a.dominated_by(&b));
        b.tick(1);
        assert!(a.concurrent_with(&b));
    }

    #[test]
    fn covers_intervals() {
        let mut a = VectorClock::new(2);
        a.set(1, 3);
        assert!(a.covers(1, 3));
        assert!(a.covers(1, 1));
        assert!(!a.covers(1, 4));
        assert!(a.covers(0, 0));
    }

    #[test]
    fn wire_roundtrip() {
        let mut a = VectorClock::new(4);
        a.set(0, 1);
        a.set(3, 9);
        let mut w = WireWriter::new();
        a.encode(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(VectorClock::decode(&mut r), Some(a));
    }

    proptest! {
        /// join is a least upper bound: idempotent, commutative, monotone.
        #[test]
        fn join_is_lub(xs in proptest::collection::vec(0u32..100, 4), ys in proptest::collection::vec(0u32..100, 4)) {
            let a = VectorClock { v: xs };
            let b = VectorClock { v: ys };
            let mut ab = a.clone();
            ab.join(&b);
            let mut ba = b.clone();
            ba.join(&a);
            prop_assert_eq!(&ab, &ba);            // commutative
            prop_assert!(a.dominated_by(&ab));    // upper bound
            prop_assert!(b.dominated_by(&ab));
            let mut abb = ab.clone();
            abb.join(&b);
            prop_assert_eq!(&abb, &ab);           // idempotent
        }

        /// meet is a greatest lower bound, dual to join.
        #[test]
        fn meet_is_glb(xs in proptest::collection::vec(0u32..100, 4), ys in proptest::collection::vec(0u32..100, 4)) {
            let a = VectorClock { v: xs };
            let b = VectorClock { v: ys };
            let mut ab = a.clone();
            ab.meet(&b);
            let mut ba = b.clone();
            ba.meet(&a);
            prop_assert_eq!(&ab, &ba);            // commutative
            prop_assert!(ab.dominated_by(&a));    // lower bound
            prop_assert!(ab.dominated_by(&b));
            let mut abb = ab.clone();
            abb.meet(&b);
            prop_assert_eq!(&abb, &ab);           // idempotent
        }

        #[test]
        fn roundtrip_any(xs in proptest::collection::vec(any::<u32>(), 0..64)) {
            let a = VectorClock { v: xs };
            let mut w = WireWriter::new();
            a.encode(&mut w);
            let buf = w.finish();
            prop_assert_eq!(VectorClock::decode(&mut WireReader::new(&buf)), Some(a));
        }
    }
}
