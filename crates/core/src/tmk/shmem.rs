//! The application-facing shared-memory layer.
//!
//! Owns region bookkeeping (`malloc`/`distribute`), the byte accessors
//! `read_bytes`/`write_bytes` that stand in for direct loads and stores,
//! and the typed `get_*`/`set_*`/`read_f*`/`write_f*` helpers built on
//! them. Every access walks the touched pages and calls down into the
//! coherence layer for the fault transitions an mprotect implementation
//! would take, charging the modeled fault costs.

use crate::page::{Access, PageId};
use crate::substrate::Substrate;

use super::{SharedId, Tmk};

pub(super) struct RegionInfo {
    pub(super) start_page: usize,
    pub(super) len: usize,
}

impl<S: Substrate> Tmk<S> {
    // ----- allocation ----------------------------------------------------

    /// Collective: every node must call with the same sizes in the same
    /// order (this is how TreadMarks programs use `Tmk_malloc` before
    /// `Tmk_distribute`). Page managers are assigned round-robin across
    /// the processors (as in TreadMarks); each page starts resident
    /// (zeroed) on its manager and unmapped elsewhere.
    pub fn malloc(&mut self, len: usize) -> SharedId {
        assert!(len > 0, "zero-length shared allocation");
        let npages = len.div_ceil(self.page_size);
        let start_page = self.allocated_pages;
        self.allocated_pages += npages;
        self.ensure_pages(start_page + npages);
        self.regions.push(RegionInfo { start_page, len });
        SharedId(self.regions.len() - 1)
    }

    /// `Tmk_distribute`: in TreadMarks this broadcasts the shared pointer
    /// so the other processes can address the allocation. Under the
    /// simulator the collective `malloc` is deterministic — every node
    /// derives the same region table — so there is no pointer to ship and
    /// no message or virtual time is charged. The call remains in the API
    /// for program fidelity and validates that the handle names a region
    /// this node actually allocated (the error `Tmk_distribute` would
    /// surface).
    pub fn distribute(&mut self, id: SharedId) {
        assert!(
            id.0 < self.regions.len(),
            "node {}: distribute of unallocated region {}",
            self.me,
            id.0
        );
    }

    /// Bytes in a region.
    pub fn region_len(&self, id: SharedId) -> usize {
        self.regions[id.0].len
    }

    fn page_of(&self, id: SharedId, off: usize) -> PageId {
        let r = &self.regions[id.0];
        assert!(off < r.len, "offset {off} outside region of {} bytes", r.len);
        (r.start_page + off / self.page_size) as PageId
    }

    // ----- data access ----------------------------------------------------

    /// Read `out.len()` bytes from `(region, off)`.
    pub fn read_bytes(&mut self, id: SharedId, off: usize, out: &mut [u8]) {
        if out.is_empty() {
            return;
        }
        let r = &self.regions[id.0];
        assert!(off + out.len() <= r.len, "read beyond region");
        let start_page = r.start_page;
        let first = (start_page + off / self.page_size) as PageId;
        let last = (start_page + (off + out.len() - 1) / self.page_size) as PageId;
        if last > first {
            // Multi-page read: fault the whole span in one overlapped
            // batch so diff fetches to distinct writers fly together.
            let pids: Vec<PageId> = (first..=last).collect();
            self.ensure_readable_batch(&pids);
        }
        let mut done = 0;
        while done < out.len() {
            let abs = off + done;
            let pid = (start_page + abs / self.page_size) as PageId;
            self.ensure_readable(pid);
            let in_page = abs % self.page_size;
            let take = (self.page_size - in_page).min(out.len() - done);
            let page = &self.pages[pid as usize];
            out[done..done + take].copy_from_slice(&page.data[in_page..in_page + take]);
            done += take;
        }
    }

    /// Write `src` to `(region, off)`.
    pub fn write_bytes(&mut self, id: SharedId, off: usize, src: &[u8]) {
        if src.is_empty() {
            return;
        }
        let r = &self.regions[id.0];
        assert!(off + src.len() <= r.len, "write beyond region");
        let start_page = r.start_page;
        let mut done = 0;
        while done < src.len() {
            let abs = off + done;
            let pid = (start_page + abs / self.page_size) as PageId;
            let in_page = abs % self.page_size;
            let take = (self.page_size - in_page).min(src.len() - done);
            if in_page == 0 && take == self.page_size {
                // Whole-page overwrite: no need to fetch content we are
                // about to replace (first-touch writes of fresh arrays
                // would otherwise ship pages of zeroes across the wire).
                self.ensure_writable_overwrite(pid);
            } else {
                self.ensure_writable(pid);
            }
            let page = &mut self.pages[pid as usize];
            page.data[in_page..in_page + take].copy_from_slice(&src[done..done + take]);
            done += take;
        }
    }

    // Typed helpers ------------------------------------------------------

    pub fn get_u32(&mut self, id: SharedId, idx: usize) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(id, idx * 4, &mut b);
        u32::from_le_bytes(b)
    }

    pub fn set_u32(&mut self, id: SharedId, idx: usize, v: u32) {
        self.write_bytes(id, idx * 4, &v.to_le_bytes());
    }

    pub fn get_i32(&mut self, id: SharedId, idx: usize) -> i32 {
        self.get_u32(id, idx) as i32
    }

    pub fn set_i32(&mut self, id: SharedId, idx: usize, v: i32) {
        self.set_u32(id, idx, v as u32);
    }

    pub fn get_f32(&mut self, id: SharedId, idx: usize) -> f32 {
        f32::from_bits(self.get_u32(id, idx))
    }

    pub fn set_f32(&mut self, id: SharedId, idx: usize, v: f32) {
        self.set_u32(id, idx, v.to_bits());
    }

    pub fn get_f64(&mut self, id: SharedId, idx: usize) -> f64 {
        let mut b = [0u8; 8];
        self.read_bytes(id, idx * 8, &mut b);
        f64::from_le_bytes(b)
    }

    pub fn set_f64(&mut self, id: SharedId, idx: usize, v: f64) {
        self.write_bytes(id, idx * 8, &v.to_le_bytes());
    }

    /// Bulk f32 read starting at element `idx`.
    pub fn read_f32s(&mut self, id: SharedId, idx: usize, out: &mut [f32]) {
        let mut bytes = vec![0u8; out.len() * 4];
        self.read_bytes(id, idx * 4, &mut bytes);
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            out[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }

    /// Bulk f32 write starting at element `idx`.
    pub fn write_f32s(&mut self, id: SharedId, idx: usize, src: &[f32]) {
        let mut bytes = Vec::with_capacity(src.len() * 4);
        for v in src {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(id, idx * 4, &bytes);
    }

    /// Bulk f64 read starting at element `idx`.
    pub fn read_f64s(&mut self, id: SharedId, idx: usize, out: &mut [f64]) {
        let mut bytes = vec![0u8; out.len() * 8];
        self.read_bytes(id, idx * 8, &mut bytes);
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            out[i] = f64::from_le_bytes(b);
        }
    }

    /// Bulk f64 write starting at element `idx`.
    pub fn write_f64s(&mut self, id: SharedId, idx: usize, src: &[f64]) {
        let mut bytes = Vec::with_capacity(src.len() * 8);
        for v in src {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(id, idx * 8, &bytes);
    }

    /// Introspection for tests: the page state of `(region, off)`.
    pub fn page_state(&self, id: SharedId, off: usize) -> Access {
        let pid = self.page_of(id, off);
        self.pages[pid as usize].state
    }
}
