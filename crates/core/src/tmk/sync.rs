//! Synchronization: distributed locks and the centralized barrier.
//!
//! Locks have statically assigned managers (`lock % nprocs`) and a
//! migrating token: the manager forwards an acquire to its owner hint,
//! the owner grants at release, and direct (manager-owned) vs. indirect
//! (third-node) acquisition are exactly the two cases of the paper's
//! Lock microbenchmark. Barriers are centralized at
//! [`TmkConfig::barrier_manager`](super::TmkConfig): arrivals carry fresh
//! interval records; the release broadcasts the union.
//!
//! This layer calls down into coherence (flush/apply intervals at every
//! synchronization point, epoch GC after barriers) and rpc (moving
//! grants, arrivals and releases; recording out-of-band responses in the
//! replay cache).

use std::collections::VecDeque;

use tm_sim::Ns;

use super::{Tmk, TmkEvent};
use crate::interval::IntervalRecord;
use crate::protocol::{Request, Response};
use crate::substrate::{Chan, Substrate};
use crate::vc::VectorClock;
use crate::wire::{pool, WireWriter};

pub(super) struct LockState {
    /// Manager's record of who holds (or will next hold) the token.
    owner_hint: u16,
    have_token: bool,
    busy: bool,
    /// Requests waiting for our release: (requester, rid, their vc,
    /// arrival key). The arrival key is the `(from, rid)` the request
    /// last reached us under — identical to `(requester, rid)` for a
    /// direct acquire, but the forwarding manager's `(manager, fwd_rid)`
    /// for a forwarded one. Replay-cache upgrades go through it so a
    /// retransmitted forward finds the grant we eventually sent.
    waiting: VecDeque<(u16, u32, VectorClock, (usize, u32))>,
}

pub(super) struct BarrierEpisode {
    arrived: Vec<bool>,
    /// Client rid + vector time at arrival, per node.
    clients: Vec<Option<(u32, VectorClock)>>,
    count: usize,
    /// Barrier id of this episode — mismatched ids are a program error
    /// (different nodes waiting at different barriers) and panic loudly
    /// instead of deadlocking.
    id: Option<u32>,
    /// Records collected from arrivals, noticed at departure (the manager
    /// must not invalidate its own pages before it reaches the barrier).
    records: Vec<IntervalRecord>,
}

impl BarrierEpisode {
    pub(super) fn new(n: usize) -> Self {
        BarrierEpisode {
            arrived: vec![false; n],
            clients: vec![None; n],
            count: 0,
            id: None,
            records: Vec::new(),
        }
    }
}

impl<S: Substrate> Tmk<S> {
    fn lock_manager(&self, lock: u32) -> u16 {
        (lock as usize % self.n) as u16
    }

    fn ensure_lock(&mut self, lock: u32) {
        while self.locks.len() <= lock as usize {
            let id = self.locks.len() as u32;
            let mgr = self.lock_manager(id);
            self.locks.push(LockState {
                owner_hint: mgr,
                have_token: self.me == mgr,
                busy: false,
                waiting: VecDeque::new(),
            });
        }
    }

    // ----- request handlers (dispatched by rpc::serve) ----------------------

    /// An `Acquire` reached us as this lock's manager: grant directly if
    /// we hold a free token, queue if we hold it busy, else forward to
    /// the owner hint.
    pub(super) fn serve_acquire(
        &mut self,
        from: usize,
        rid: u32,
        lock: u32,
        vc: VectorClock,
        arrival: Ns,
        mut cost: Ns,
    ) {
        self.ensure_lock(lock);
        debug_assert_eq!(self.lock_manager(lock), self.me, "acquire sent to non-manager");
        let ls = &mut self.locks[lock as usize];
        if ls.owner_hint == self.me {
            if ls.have_token && !ls.busy {
                // Direct grant: manager holds a free token.
                let (resp, c) = self.make_grant(lock, &vc);
                cost += c;
                let ls = &mut self.locks[lock as usize];
                ls.have_token = false;
                ls.owner_hint = from as u16;
                self.respond(from, rid, resp, arrival, cost);
                self.emit(TmkEvent::LockGranted {
                    lock,
                    to: from as u16,
                });
            } else {
                // We hold it busy (or the token is en route to us):
                // grant at release.
                ls.waiting.push_back((from as u16, rid, vc, (from, rid)));
                ls.owner_hint = from as u16;
                self.charge_service(arrival, cost);
                self.note_pending();
            }
        } else {
            // Forward to the current owner; requester stays blocked.
            let owner = ls.owner_hint as usize;
            ls.owner_hint = from as u16;
            let fwd = Request::AcquireFwd {
                lock,
                requester: from as u16,
                rid,
                vc,
            };
            let fwd_rid = self.rid();
            let mut w = WireWriter::pooled(64);
            fwd.encode_into(fwd_rid, &mut w);
            self.forward_wire(owner, w, arrival, cost);
        }
    }

    /// A forwarded acquire reached us as the token's owner: grant now if
    /// the token is free, else queue until our release.
    // The parameter list mirrors the AcquireFwd wire fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn serve_acquire_fwd(
        &mut self,
        from: usize,
        rid: u32,
        lock: u32,
        requester: u16,
        orig_rid: u32,
        vc: VectorClock,
        arrival: Ns,
        mut cost: Ns,
    ) {
        self.ensure_lock(lock);
        let ls = &mut self.locks[lock as usize];
        if ls.have_token && !ls.busy {
            let (resp, c) = self.make_grant(lock, &vc);
            cost += c;
            self.locks[lock as usize].have_token = false;
            self.respond(requester as usize, orig_rid, resp, arrival, cost);
            self.emit(TmkEvent::LockGranted { lock, to: requester });
        } else {
            ls.waiting.push_back((requester, orig_rid, vc, (from, rid)));
            self.charge_service(arrival, cost);
            self.note_pending();
        }
    }

    /// A client's `BarrierArrive` reached us as the barrier manager.
    // The parameter list mirrors the BarrierArrive wire fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn serve_barrier_arrive(
        &mut self,
        from: usize,
        rid: u32,
        barrier: u32,
        vc: VectorClock,
        records: Vec<IntervalRecord>,
        arrival: Ns,
        mut cost: Ns,
    ) {
        debug_assert_eq!(self.cfg.barrier_manager, self.me);
        match self.barrier.id {
            None => self.barrier.id = Some(barrier),
            Some(b) => assert_eq!(
                b, barrier,
                "barrier mismatch: node {from} arrived at {barrier}, episode is {b}"
            ),
        }
        cost += Ns(200 * records.len() as u64);
        // Stash — the manager must not incorporate arrivals'
        // intervals (records OR vector time) before its own
        // departure: doing so would make its interim lock grants
        // claim coverage of write notices it never forwarded.
        for rec in records {
            let stashed = self
                .barrier
                .records
                .iter()
                .any(|r| r.node == rec.node && r.seq == rec.seq);
            if !stashed && !self.log.contains(rec.node, rec.seq) {
                self.barrier.records.push(rec);
            }
        }
        if !self.barrier.arrived[from] {
            self.barrier.arrived[from] = true;
            self.barrier.count += 1;
        }
        self.barrier.clients[from] = Some((rid, vc));
        self.charge_service(arrival, cost);
        self.note_pending();
    }

    /// Flush our interval and package a grant carrying everything the
    /// requester's vector time shows it hasn't seen.
    fn make_grant(&mut self, lock: u32, rvc: &VectorClock) -> (Response, Ns) {
        let flush_cost = self.flush_interval();
        let records = self.log.newer_than(rvc);
        trace!(self, "grant lock={} rvc={:?} records={:?}", lock, rvc, records.iter().map(|r| (r.node, r.seq)).collect::<Vec<_>>());
        let cost = flush_cost + Ns(200 * records.len() as u64);
        (
            Response::Grant {
                lock,
                vc: self.vc.clone(),
                records,
            },
            cost,
        )
    }

    // ----- synchronization API ----------------------------------------------

    /// `Tmk_lock_acquire`.
    pub fn acquire(&mut self, lock: u32) {
        // Service anything pending first: a cached-token fast path must
        // not starve peers whose acquire was forwarded to us.
        self.poll_serve();
        self.ensure_lock(lock);
        let ls = &self.locks[lock as usize];
        if ls.have_token && !ls.busy {
            // Token cached locally: free re-acquire.
            self.locks[lock as usize].busy = true;
            self.clock().borrow_mut().advance(Ns(300));
            return;
        }
        assert!(!ls.busy, "node {} re-acquiring lock {lock} it holds", self.me);
        self.clock().borrow_mut().stats.remote_acquires += 1;
        let mgr = self.lock_manager(lock) as usize;
        let resp = if mgr == self.me as usize {
            // We are the manager but the token is elsewhere: forward
            // directly to the owner.
            let owner = self.locks[lock as usize].owner_hint as usize;
            debug_assert_ne!(owner, self.me as usize);
            self.locks[lock as usize].owner_hint = self.me;
            let rid = self.rid();
            let req = Request::AcquireFwd {
                lock,
                requester: self.me,
                rid,
                vc: self.vc.clone(),
            };
            // Run the rpc with the chosen rid so the grant correlates.
            let mut w = WireWriter::pooled(64);
            req.encode_into(rid, &mut w);
            self.rpc_encoded(owner, rid, w)
        } else {
            self.rpc(
                mgr,
                Request::Acquire {
                    lock,
                    vc: self.vc.clone(),
                },
            )
        };
        match resp {
            Response::Grant { lock: l, vc, records } => {
                assert_eq!(l, lock);
                let cost = self.apply_records(records);
                self.vc.join(&vc);
                self.clock().borrow_mut().advance(cost);
                let ls = &mut self.locks[lock as usize];
                ls.have_token = true;
                ls.busy = true;
            }
            other => panic!("expected Grant, got {other:?}"),
        }
    }

    /// `Tmk_lock_release`.
    pub fn release(&mut self, lock: u32) {
        self.poll_serve();
        self.ensure_lock(lock);
        assert!(
            self.locks[lock as usize].busy,
            "node {} releasing lock {lock} it doesn't hold",
            self.me
        );
        self.locks[lock as usize].busy = false;
        self.clock().borrow_mut().advance(Ns(300));
        self.grant_waiting(lock);
    }

    /// Hand the token to the next queued requester, if any.
    fn grant_waiting(&mut self, lock: u32) {
        let ls = &mut self.locks[lock as usize];
        if !ls.have_token || ls.busy {
            return;
        }
        let Some((requester, rid, rvc, via)) = ls.waiting.pop_front() else {
            return;
        };
        let (resp, cost) = self.make_grant(lock, &rvc);
        self.locks[lock as usize].have_token = false;
        let mut w = WireWriter::pooled(128);
        resp.encode_into(rid, &mut w);
        let total = cost + self.sub.response_cost(w.len());
        self.clock().borrow_mut().advance(total);
        let now = self.clock().borrow().now();
        self.sub.send_response_at(requester as usize, w.as_slice(), now);
        self.remember_response(via, requester as usize, w.as_slice());
        w.recycle();
        self.emit(TmkEvent::LockGranted { lock, to: requester });
    }

    /// `Tmk_barrier`.
    pub fn barrier(&mut self, id: u32) {
        trace!(self, "barrier {id} enter");
        let flush_cost = self.flush_interval();
        self.clock().borrow_mut().advance(flush_cost);
        self.clock().borrow_mut().stats.barriers += 1;
        let mgr = self.cfg.barrier_manager;
        if self.me == mgr {
            self.barrier_as_manager(id)
        } else {
            let records = self.records_since_epoch();
            let resp = self.rpc(
                mgr as usize,
                Request::BarrierArrive {
                    barrier: id,
                    vc: self.vc.clone(),
                    records,
                },
            );
            match resp {
                Response::BarrierRelease { vc, records } => {
                    let cost = self.apply_records(records);
                    self.vc.join(&vc);
                    self.clock().borrow_mut().advance(cost);
                    self.epoch_gc(vc);
                }
                other => panic!("expected BarrierRelease, got {other:?}"),
            }
        }
        self.emit(TmkEvent::BarrierCrossed { id });
    }

    fn barrier_as_manager(&mut self, id: u32) {
        // Local arrival.
        match self.barrier.id {
            None => self.barrier.id = Some(id),
            Some(b) => assert_eq!(b, id, "manager at barrier {id}, episode is {b}"),
        }
        if !self.barrier.arrived[self.me as usize] {
            self.barrier.arrived[self.me as usize] = true;
            self.barrier.count += 1;
        }
        self.clock().borrow_mut().begin_wait();
        while self.barrier.count < self.n {
            let msg = self.sub.next_incoming();
            if msg.lost {
                // A peer's arrival (or a stray duplicate) died in flight;
                // the sender's retransmission timer will re-deliver it.
                pool::give(msg.data);
                self.clock().borrow_mut().begin_wait();
                continue;
            }
            match msg.chan {
                Chan::Request => {
                    self.serve(msg.from, &msg.data, msg.arrival);
                    pool::give(msg.data);
                    self.clock().borrow_mut().begin_wait();
                }
                Chan::Response if self.sub.retransmit_timeout().is_some() => {
                    // A duplicate answer to an rpc we completed before the
                    // barrier (a retransmission crossed its response).
                    self.clock().borrow_mut().stats.stale_responses_dropped += 1;
                    pool::give(msg.data);
                    self.clock().borrow_mut().begin_wait();
                }
                Chan::Response => panic!("manager got a response inside barrier wait"),
            }
        }
        // Everyone is here: departure. Incorporate the arrivals' interval
        // records and vector times, invalidate, then release the clients.
        // The stashed records move into apply_records — no clone.
        let BarrierEpisode {
            records, clients, ..
        } = std::mem::replace(&mut self.barrier, BarrierEpisode::new(self.n));
        let apply_cost = self.apply_records(records);
        self.clock().borrow_mut().advance(apply_cost);
        for slot in clients.iter().flatten() {
            self.vc.join(&slot.1);
        }
        let merged = self.vc.clone();
        for (node, slot) in clients.into_iter().enumerate() {
            let Some((rid, cvc)) = slot else { continue };
            let records = self.log.newer_than(&cvc);
            let resp = Response::BarrierRelease {
                vc: merged.clone(),
                records,
            };
            let mut w = WireWriter::pooled(128);
            resp.encode_into(rid, &mut w);
            let cost = self.sub.response_cost(w.len()) + Ns(500);
            self.clock().borrow_mut().advance(cost);
            let now = self.clock().borrow().now();
            self.sub.send_response_at(node, w.as_slice(), now);
            // A lost release leaves the client retransmitting its
            // BarrierArrive; answer the duplicate from the cache.
            self.remember_response((node, rid), node, w.as_slice());
            w.recycle();
        }
        self.epoch_gc(merged);
    }

    /// Final synchronization before the node thread returns: a barrier, so
    /// no peer is left blocked on us.
    ///
    /// On a lossy transport the barrier manager additionally lingers: a
    /// client whose exit release was lost keeps retransmitting its
    /// `BarrierArrive`, and only the manager's replay cache can answer it.
    /// The linger ends when every peer's NIC has left the fabric.
    pub fn exit(&mut self) {
        self.barrier(u32::MAX);
        if self.sub.retransmit_timeout().is_some() && self.me == self.cfg.barrier_manager {
            self.shutdown_linger();
        }
    }
}

#[cfg(test)]
#[path = "sync_tests.rs"]
mod tests;
