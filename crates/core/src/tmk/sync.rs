//! Synchronization: distributed locks and barriers.
//!
//! Locks have statically assigned managers (`lock % nprocs`) and a
//! migrating token: the manager forwards an acquire to its owner hint,
//! the owner grants at release, and direct (manager-owned) vs. indirect
//! (third-node) acquisition are exactly the two cases of the paper's
//! Lock microbenchmark.
//!
//! Barriers come in two shapes, selected by
//! [`TmkConfig::barrier_algo`](super::TmkConfig): the paper's centralized
//! barrier at [`TmkConfig::barrier_manager`](super::TmkConfig) (arrivals
//! carry fresh interval records; the release broadcasts the union), and a
//! radix-k combining tree rooted at the same node, where each interior
//! node merges its children's arrivals (record union, vector-clock meet
//! and join) into one combined arrival and the root fans the release back
//! down. [`BarrierAlgo::NicTree`](super::BarrierAlgo) charges the
//! combining at NIC-firmware cost instead of host interrupt + handler
//! dispatch — the paper's §5 NIC-based barrier suggestion.
//!
//! This layer calls down into coherence (flush/apply intervals at every
//! synchronization point, epoch GC after barriers) and rpc (moving
//! grants, arrivals and releases; recording out-of-band responses in the
//! replay cache).

use std::collections::VecDeque;

use tm_sim::Ns;

use super::{Tmk, TmkEvent};
use crate::interval::IntervalRecord;
use crate::protocol::{Request, Response};
use crate::substrate::Substrate;
use crate::vc::VectorClock;
use crate::wire::WireWriter;

pub(super) struct LockState {
    /// Manager's record of who holds (or will next hold) the token.
    owner_hint: u16,
    have_token: bool,
    busy: bool,
    /// Requests waiting for our release: (requester, rid, their vc,
    /// arrival key). The arrival key is the `(from, rid)` the request
    /// last reached us under — identical to `(requester, rid)` for a
    /// direct acquire, but the forwarding manager's `(manager, fwd_rid)`
    /// for a forwarded one. Replay-cache upgrades go through it so a
    /// retransmitted forward finds the grant we eventually sent.
    waiting: VecDeque<(u16, u32, VectorClock, (usize, u32))>,
}

pub(super) struct BarrierEpisode {
    arrived: Vec<bool>,
    /// Per arriving node: rid, coverage floor, coverage ceiling. For a
    /// centralized client the floor and ceiling are both its vector time;
    /// for a tree child they are the meet and join over its whole subtree.
    /// The release back to that node carries every record newer than the
    /// floor; the ceilings merge into the global barrier time.
    clients: Vec<Option<(u32, VectorClock, VectorClock)>>,
    count: usize,
    /// Barrier id of this episode — mismatched ids are a program error
    /// (different nodes waiting at different barriers) and panic loudly
    /// instead of deadlocking.
    id: Option<u32>,
    /// Records collected from arrivals, noticed at departure (the manager
    /// must not invalidate its own pages before it reaches the barrier).
    records: Vec<IntervalRecord>,
}

impl BarrierEpisode {
    pub(super) fn new(n: usize) -> Self {
        BarrierEpisode {
            arrived: vec![false; n],
            clients: vec![None; n],
            count: 0,
            id: None,
            records: Vec::new(),
        }
    }
}

impl<S: Substrate> Tmk<S> {
    fn lock_manager(&self, lock: u32) -> u16 {
        (lock as usize % self.n) as u16
    }

    fn ensure_lock(&mut self, lock: u32) {
        while self.locks.len() <= lock as usize {
            let id = self.locks.len() as u32;
            let mgr = self.lock_manager(id);
            self.locks.push(LockState {
                owner_hint: mgr,
                have_token: self.me == mgr,
                busy: false,
                waiting: VecDeque::new(),
            });
        }
    }

    // ----- request handlers (dispatched by rpc::serve) ----------------------

    /// An `Acquire` reached us as this lock's manager: grant directly if
    /// we hold a free token, queue if we hold it busy, else forward to
    /// the owner hint.
    pub(super) fn serve_acquire(
        &mut self,
        from: usize,
        rid: u32,
        lock: u32,
        vc: VectorClock,
        arrival: Ns,
        mut cost: Ns,
    ) {
        self.ensure_lock(lock);
        debug_assert_eq!(self.lock_manager(lock), self.me, "acquire sent to non-manager");
        let ls = &mut self.locks[lock as usize];
        if ls.owner_hint == self.me {
            if ls.have_token && !ls.busy {
                // Direct grant: manager holds a free token.
                let (resp, c) = self.make_grant(lock, &vc);
                cost += c;
                let ls = &mut self.locks[lock as usize];
                ls.have_token = false;
                ls.owner_hint = from as u16;
                self.respond(from, rid, resp, arrival, cost);
                self.emit(TmkEvent::LockGranted {
                    lock,
                    to: from as u16,
                });
            } else {
                // We hold it busy (or the token is en route to us):
                // grant at release.
                ls.waiting.push_back((from as u16, rid, vc, (from, rid)));
                ls.owner_hint = from as u16;
                self.charge_service(arrival, cost);
                self.note_pending();
            }
        } else {
            // Forward to the current owner; requester stays blocked.
            let owner = ls.owner_hint as usize;
            ls.owner_hint = from as u16;
            let fwd = Request::AcquireFwd {
                lock,
                requester: from as u16,
                rid,
                vc,
            };
            let fwd_rid = self.rid();
            let mut w = WireWriter::pooled(64);
            fwd.encode_into(fwd_rid, &mut w);
            self.forward_wire(owner, w, arrival, cost);
        }
    }

    /// A forwarded acquire reached us as the token's owner: grant now if
    /// the token is free, else queue until our release.
    // The parameter list mirrors the AcquireFwd wire fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn serve_acquire_fwd(
        &mut self,
        from: usize,
        rid: u32,
        lock: u32,
        requester: u16,
        orig_rid: u32,
        vc: VectorClock,
        arrival: Ns,
        mut cost: Ns,
    ) {
        self.ensure_lock(lock);
        let ls = &mut self.locks[lock as usize];
        if ls.have_token && !ls.busy {
            let (resp, c) = self.make_grant(lock, &vc);
            cost += c;
            self.locks[lock as usize].have_token = false;
            self.respond(requester as usize, orig_rid, resp, arrival, cost);
            self.emit(TmkEvent::LockGranted { lock, to: requester });
        } else {
            ls.waiting.push_back((requester, orig_rid, vc, (from, rid)));
            self.charge_service(arrival, cost);
            self.note_pending();
        }
    }

    /// A client's `BarrierArrive` reached us as the barrier manager.
    // The parameter list mirrors the BarrierArrive wire fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn serve_barrier_arrive(
        &mut self,
        from: usize,
        rid: u32,
        barrier: u32,
        vc: VectorClock,
        records: Vec<IntervalRecord>,
        arrival: Ns,
        mut cost: Ns,
    ) {
        debug_assert_eq!(self.cfg.barrier_manager, self.me);
        match self.barrier.id {
            None => self.barrier.id = Some(barrier),
            Some(b) => assert_eq!(
                b, barrier,
                "barrier mismatch: node {from} arrived at {barrier}, episode is {b}"
            ),
        }
        cost += Ns(200 * records.len() as u64);
        self.stash_barrier_records(records);
        if !self.barrier.arrived[from] {
            self.barrier.arrived[from] = true;
            self.barrier.count += 1;
        }
        self.barrier.clients[from] = Some((rid, vc.clone(), vc));
        self.charge_service(arrival, cost);
        self.note_pending();
    }

    /// A child's combined `BarrierTreeArrive` reached us as its tree
    /// parent. Same deferred-incorporation discipline as the centralized
    /// manager; under `NicTree` the merge is charged at NIC-firmware cost
    /// with no host interrupt (the host CPU is never preempted).
    // The parameter list mirrors the BarrierTreeArrive wire fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn serve_tree_arrive(
        &mut self,
        from: usize,
        rid: u32,
        barrier: u32,
        min_vc: VectorClock,
        vc: VectorClock,
        records: Vec<IntervalRecord>,
        arrival: Ns,
        cost: Ns,
    ) {
        debug_assert!(
            self.tree_children().contains(&from),
            "tree arrival from {from}, not a child of {}",
            self.me
        );
        match self.barrier.id {
            None => self.barrier.id = Some(barrier),
            Some(b) => assert_eq!(
                b, barrier,
                "barrier mismatch: subtree {from} arrived at {barrier}, episode is {b}"
            ),
        }
        let nrec = records.len() as u64;
        self.stash_barrier_records(records);
        if !self.barrier.arrived[from] {
            self.barrier.arrived[from] = true;
            self.barrier.count += 1;
        }
        self.barrier.clients[from] = Some((rid, min_vc, vc));
        if let super::BarrierAlgo::NicTree { .. } = self.cfg.barrier_algo {
            let net = &self.sub.params().net;
            let c = net.nic_combine + Ns(net.nic_combine_per_record.0 * nrec);
            self.charge_service_offloaded(arrival, c);
        } else {
            self.charge_service(arrival, cost + Ns(200 * nrec));
        }
        self.note_pending();
    }

    /// Stash arrival records for departure. The combining node must not
    /// incorporate arrivals' intervals (records OR vector time) before its
    /// own release: doing so would make its interim lock grants claim
    /// coverage of write notices it never forwarded.
    fn stash_barrier_records(&mut self, records: Vec<IntervalRecord>) {
        for rec in records {
            let stashed = self
                .barrier
                .records
                .iter()
                .any(|r| r.node == rec.node && r.seq == rec.seq);
            if !stashed && !self.log.contains(rec.node, rec.seq) {
                self.barrier.records.push(rec);
            }
        }
    }

    /// Flush our interval and package a grant carrying everything the
    /// requester's vector time shows it hasn't seen.
    fn make_grant(&mut self, lock: u32, rvc: &VectorClock) -> (Response, Ns) {
        let flush_cost = self.flush_interval();
        let records = self.log.newer_than(rvc);
        trace!(self, "grant lock={} rvc={:?} records={:?}", lock, rvc, records.iter().map(|r| (r.node, r.seq)).collect::<Vec<_>>());
        let cost = flush_cost + Ns(200 * records.len() as u64);
        (
            Response::Grant {
                lock,
                vc: self.vc.clone(),
                records,
            },
            cost,
        )
    }

    // ----- synchronization API ----------------------------------------------

    /// `Tmk_lock_acquire`.
    pub fn acquire(&mut self, lock: u32) {
        // Service anything pending first: a cached-token fast path must
        // not starve peers whose acquire was forwarded to us.
        self.poll_serve();
        self.ensure_lock(lock);
        let ls = &self.locks[lock as usize];
        if ls.have_token && !ls.busy {
            // Token cached locally: free re-acquire.
            self.locks[lock as usize].busy = true;
            self.clock().borrow_mut().advance(Ns(300));
            return;
        }
        assert!(!ls.busy, "node {} re-acquiring lock {lock} it holds", self.me);
        self.clock().borrow_mut().stats.remote_acquires += 1;
        let mgr = self.lock_manager(lock) as usize;
        let resp = if mgr == self.me as usize {
            // We are the manager but the token is elsewhere: forward
            // directly to the owner.
            let owner = self.locks[lock as usize].owner_hint as usize;
            debug_assert_ne!(owner, self.me as usize);
            self.locks[lock as usize].owner_hint = self.me;
            let rid = self.rid();
            let req = Request::AcquireFwd {
                lock,
                requester: self.me,
                rid,
                vc: self.vc.clone(),
            };
            // Run the rpc with the chosen rid so the grant correlates.
            let mut w = WireWriter::pooled(64);
            req.encode_into(rid, &mut w);
            self.rpc_encoded(owner, rid, w)
        } else {
            self.rpc(
                mgr,
                Request::Acquire {
                    lock,
                    vc: self.vc.clone(),
                },
            )
        };
        match resp {
            Response::Grant { lock: l, vc, records } => {
                assert_eq!(l, lock);
                // Under the overlapped lock path the pages these records
                // invalidate are fetched *now*, as one concurrent batch,
                // instead of one fault round-trip at a time inside the
                // critical section — acquire latency becomes
                // max(grant, fetch) rather than their sum.
                let pipelined: Vec<crate::page::PageId> = match self.cfg.lock_path {
                    super::LockPath::Serial => Vec::new(),
                    super::LockPath::Overlapped => records
                        .iter()
                        .filter(|r| r.node != self.me)
                        .flat_map(|r| r.pages.iter().copied())
                        .collect(),
                };
                let cost = self.apply_records(records);
                self.vc.join(&vc);
                self.clock().borrow_mut().advance(cost);
                let ls = &mut self.locks[lock as usize];
                ls.have_token = true;
                ls.busy = true;
                if !pipelined.is_empty() {
                    let fetches = self.pipeline_fetch(&pipelined);
                    if fetches > 0 {
                        self.emit(TmkEvent::LockPipelined { lock, fetches });
                    }
                }
            }
            other => panic!("expected Grant, got {other:?}"),
        }
    }

    /// `Tmk_lock_release`.
    pub fn release(&mut self, lock: u32) {
        self.poll_serve();
        self.ensure_lock(lock);
        assert!(
            self.locks[lock as usize].busy,
            "node {} releasing lock {lock} it doesn't hold",
            self.me
        );
        self.locks[lock as usize].busy = false;
        self.clock().borrow_mut().advance(Ns(300));
        self.grant_waiting(lock);
    }

    /// Hand the token to the next queued requester, if any.
    fn grant_waiting(&mut self, lock: u32) {
        let ls = &mut self.locks[lock as usize];
        if !ls.have_token || ls.busy {
            return;
        }
        let Some((requester, rid, rvc, via)) = ls.waiting.pop_front() else {
            return;
        };
        let (resp, cost) = self.make_grant(lock, &rvc);
        self.locks[lock as usize].have_token = false;
        let mut w = WireWriter::pooled(128);
        resp.encode_into(rid, &mut w);
        let total = cost + self.sub.response_cost(w.len());
        self.clock().borrow_mut().advance(total);
        let now = self.clock().borrow().now();
        self.sub.send_response_at(requester as usize, w.as_slice(), now);
        self.remember_response(via, requester as usize, w.as_slice());
        w.recycle();
        self.emit(TmkEvent::LockGranted { lock, to: requester });
    }

    // ----- barrier tree topology --------------------------------------------

    /// Combining radix, or `None` for the centralized algorithm.
    fn tree_radix(&self) -> Option<usize> {
        match self.cfg.barrier_algo {
            super::BarrierAlgo::Centralized => None,
            super::BarrierAlgo::Tree { radix } | super::BarrierAlgo::NicTree { radix } => {
                Some(radix.max(1) as usize)
            }
        }
    }

    /// Logical id in the tree: nodes renumbered so the barrier manager is
    /// logical 0 (the root), which keeps the root knob meaningful at every
    /// radix.
    fn tree_lid(&self, node: usize) -> usize {
        (node + self.n - self.cfg.barrier_manager as usize) % self.n
    }

    fn tree_node(&self, lid: usize) -> usize {
        (lid + self.cfg.barrier_manager as usize) % self.n
    }

    /// Our parent in the combining tree (`None` at the root, and always
    /// `None` under the centralized algorithm).
    fn tree_parent(&self) -> Option<usize> {
        let k = self.tree_radix()?;
        let lid = self.tree_lid(self.me as usize);
        if lid == 0 {
            None
        } else {
            Some(self.tree_node((lid - 1) / k))
        }
    }

    /// Our direct children in the combining tree (empty for leaves and
    /// under the centralized algorithm).
    fn tree_children(&self) -> Vec<usize> {
        let Some(k) = self.tree_radix() else {
            return Vec::new();
        };
        let lid = self.tree_lid(self.me as usize);
        (k * lid + 1..=k * lid + k)
            .take_while(|&c| c < self.n)
            .map(|c| self.tree_node(c))
            .collect()
    }

    /// Every node in our subtree, excluding ourselves. The shutdown linger
    /// watches exactly these: they are the only peers whose retransmitted
    /// arrivals we are responsible for answering.
    fn tree_descendants(&self) -> Vec<usize> {
        let Some(k) = self.tree_radix() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut frontier = vec![self.tree_lid(self.me as usize)];
        while let Some(lid) = frontier.pop() {
            for c in k * lid + 1..=k * lid + k {
                if c < self.n {
                    out.push(self.tree_node(c));
                    frontier.push(c);
                }
            }
        }
        out
    }

    // ----- barrier ----------------------------------------------------------

    /// `Tmk_barrier`.
    pub fn barrier(&mut self, id: u32) {
        trace!(self, "barrier {id} enter");
        // Settle speculative traffic before synchronizing: in-flight
        // prefetch volleys are collected (and their stale stages
        // discarded) so nothing issued against the old epoch survives it.
        self.prefetch_drain();
        let flush_cost = self.flush_interval();
        self.clock().borrow_mut().advance(flush_cost);
        self.clock().borrow_mut().stats.barriers += 1;
        match self.tree_radix() {
            None if self.me == self.cfg.barrier_manager => self.barrier_as_manager(id),
            None => {
                let records = self.records_since_epoch();
                let resp = self.rpc(
                    self.cfg.barrier_manager as usize,
                    Request::BarrierArrive {
                        barrier: id,
                        vc: self.vc.clone(),
                        records,
                    },
                );
                match resp {
                    Response::BarrierRelease { vc, records } => {
                        let cost = self.apply_records(records);
                        self.vc.join(&vc);
                        self.clock().borrow_mut().advance(cost);
                        self.epoch_gc(vc);
                    }
                    other => panic!("expected BarrierRelease, got {other:?}"),
                }
            }
            Some(_) => self.barrier_tree(id),
        }
        self.emit(TmkEvent::BarrierCrossed { id });
    }

    /// Note our own arrival in the current episode (manager / tree-node
    /// local bookkeeping).
    fn barrier_arrive_self(&mut self, id: u32) {
        match self.barrier.id {
            None => self.barrier.id = Some(id),
            Some(b) => assert_eq!(b, id, "node {} at barrier {id}, episode is {b}", self.me),
        }
        if !self.barrier.arrived[self.me as usize] {
            self.barrier.arrived[self.me as usize] = true;
            self.barrier.count += 1;
        }
    }

    /// Serve-while-waiting until `expected` arrivals (ours included) are
    /// in the episode. Runs on the overlapped engine's absorb/drain step:
    /// requests keep being dispatched (in virtual-arrival order) — lock
    /// traffic and late subtree arrivals must make progress while we
    /// wait. No rid is outstanding here, so any non-duplicate response is
    /// a protocol error (the engine's stale discard panics on reliable
    /// transports and counts on lossy ones).
    fn barrier_wait_arrivals(&mut self, expected: usize) {
        loop {
            // Drain before checking: an arrival may already sit in the
            // serve queue, gathered during a preceding collect (blocking
            // with it queued would deadlock — its sender is waiting on
            // us).
            self.drain_serve_queue();
            if self.barrier.count >= expected {
                break;
            }
            self.clock().borrow_mut().begin_wait();
            let msg = self.sub.next_incoming();
            self.absorb(msg);
        }
    }

    fn barrier_as_manager(&mut self, id: u32) {
        self.barrier_arrive_self(id);
        self.barrier_wait_arrivals(self.n);
        // Everyone is here: departure. Incorporate the arrivals' interval
        // records and vector times, invalidate, then release the clients.
        // The stashed records move into apply_records — no clone.
        let BarrierEpisode {
            records, clients, ..
        } = std::mem::replace(&mut self.barrier, BarrierEpisode::new(self.n));
        let apply_cost = self.apply_records(records);
        self.clock().borrow_mut().advance(apply_cost);
        for slot in clients.iter().flatten() {
            self.vc.join(&slot.2);
        }
        let merged = self.vc.clone();
        self.fan_release(id, clients, &merged);
        self.epoch_gc(merged);
    }

    /// Tree-barrier path, for the root, interior nodes and leaves alike.
    fn barrier_tree(&mut self, id: u32) {
        let children = self.tree_children();
        self.barrier_arrive_self(id);
        // Wait for one combined arrival per direct child subtree (leaves
        // skip straight through).
        self.barrier_wait_arrivals(children.len() + 1);
        let episode = std::mem::replace(&mut self.barrier, BarrierEpisode::new(self.n));
        match self.tree_parent() {
            None => self.tree_depart_root(id, episode),
            Some(parent) => self.tree_combine_upward(id, parent, episode),
        }
    }

    /// Root departure: the episode now covers the whole cluster. Merge,
    /// fan the release down, advance the epoch.
    fn tree_depart_root(&mut self, id: u32, episode: BarrierEpisode) {
        let BarrierEpisode {
            records, clients, ..
        } = episode;
        let apply_cost = self.apply_records(records);
        self.clock().borrow_mut().advance(apply_cost);
        for slot in clients.iter().flatten() {
            self.vc.join(&slot.2);
        }
        let merged = self.vc.clone();
        self.fan_release(id, clients, &merged);
        self.epoch_gc(merged);
    }

    /// Interior/leaf upward phase: merge our children's combined arrivals
    /// with our own state, forward one `BarrierTreeArrive` to our parent,
    /// and on release fan it down to our children before advancing the
    /// epoch. Like the centralized manager, we must not incorporate the
    /// children's intervals until our own release arrives.
    fn tree_combine_upward(&mut self, id: u32, parent: usize, episode: BarrierEpisode) {
        let BarrierEpisode {
            mut records,
            clients,
            ..
        } = episode;
        // Subtree coverage floor (meet) and ceiling (join) over ourselves
        // and every child subtree.
        let mut min_vc = self.vc.clone();
        let mut max_vc = self.vc.clone();
        for slot in clients.iter().flatten() {
            min_vc.meet(&slot.1);
            max_vc.join(&slot.2);
        }
        // Our own fresh records ride along with the stashed subtree union
        // (records_since_epoch also re-covers third-party intervals we
        // learned through locks, so nothing is lost to the stash dedup).
        for rec in self.records_since_epoch() {
            if !records.iter().any(|r| r.node == rec.node && r.seq == rec.seq) {
                records.push(rec);
            }
        }
        self.emit(TmkEvent::BarrierArriveForwarded {
            barrier: id,
            to: parent as u16,
            children: clients.iter().flatten().count() as u16,
        });
        let resp = self.rpc(
            parent,
            Request::BarrierTreeArrive {
                barrier: id,
                min_vc,
                vc: max_vc,
                records,
            },
        );
        match resp {
            Response::BarrierTreeRelease {
                barrier,
                vc,
                records,
            } => {
                assert_eq!(barrier, id, "release for barrier {barrier}, expected {id}");
                let cost = self.apply_records(records);
                self.vc.join(&vc);
                self.clock().borrow_mut().advance(cost);
                // Fan down before the epoch advances: newer_than against
                // the children's floors needs the pre-GC log.
                self.fan_release(id, clients, &vc);
                self.epoch_gc(vc);
            }
            other => panic!("expected BarrierTreeRelease, got {other:?}"),
        }
    }

    /// Release every arrival in `clients`: each gets the merged barrier
    /// time plus all records newer than its coverage floor. Under
    /// `NicTree` the fan-out is charged at NIC-firmware cost; otherwise at
    /// the substrate's host response cost.
    fn fan_release(
        &mut self,
        id: u32,
        clients: Vec<Option<(u32, VectorClock, VectorClock)>>,
        merged: &VectorClock,
    ) {
        let tree = self.tree_radix().is_some();
        let offloaded = matches!(self.cfg.barrier_algo, super::BarrierAlgo::NicTree { .. });
        if matches!(self.cfg.lock_path, super::LockPath::Overlapped) && !offloaded {
            // Overlapped write-notice distribution: every consumer's
            // release goes out as an issued request; acks collect out of
            // order. The exit fan rides the same path: each ack collect
            // watches its consumer's NIC, so a retransmission timer armed
            // against a consumer that applied the release and tore down
            // cancels instead of firing into the dead node. Only the
            // NIC-offloaded fan stays serial (its cost model is the
            // point).
            return self.fan_release_overlapped(id, tree, clients, merged);
        }
        let mut fanned = 0u16;
        for (node, slot) in clients.into_iter().enumerate() {
            let Some((rid, floor, _)) = slot else { continue };
            let records = self.log.newer_than(&floor);
            let resp = if tree {
                Response::BarrierTreeRelease {
                    barrier: id,
                    vc: merged.clone(),
                    records,
                }
            } else {
                Response::BarrierRelease {
                    vc: merged.clone(),
                    records,
                }
            };
            let mut w = WireWriter::pooled(128);
            resp.encode_into(rid, &mut w);
            let cost = if offloaded {
                self.sub.params().net.nic_combine
            } else {
                self.sub.response_cost(w.len()) + Ns(500)
            };
            self.clock().borrow_mut().advance(cost);
            let now = self.clock().borrow().now();
            self.sub.send_response_at(node, w.as_slice(), now);
            // A lost release leaves the peer retransmitting its arrival;
            // answer the duplicate from the cache.
            self.remember_response((node, rid), node, w.as_slice());
            w.recycle();
            fanned += 1;
        }
        if tree && fanned > 0 {
            self.emit(TmkEvent::BarrierReleaseFanned {
                barrier: id,
                children: fanned,
            });
        }
    }

    /// [`Self::fan_release`] on the overlapped engine: one
    /// [`Request::NoticeRelease`] per consumer, all issued before any ack
    /// is collected. Each consumer synthesizes its own release response
    /// from the request payload (see [`Self::serve_notice_release`]), so
    /// the notices gain per-rid retransmission — on lossy wires a dropped
    /// release is re-driven by *our* timer instead of waiting out the
    /// consumer's arrival retransmission.
    ///
    /// Ack collection watches each consumer's NIC: on the exit fan a
    /// consumer applies the release, passes the barrier and may tear down
    /// before its ack (or our retransmitted notice) survives the wire. A
    /// departed consumer *proves* the release was applied — it can only
    /// have exited past the barrier — so the pending ack rpc is cancelled
    /// instead of retransmitted into the dead node.
    fn fan_release_overlapped(
        &mut self,
        id: u32,
        tree: bool,
        clients: Vec<Option<(u32, VectorClock, VectorClock)>>,
        merged: &VectorClock,
    ) {
        let mut acks: Vec<(usize, u32)> = Vec::new();
        for (node, slot) in clients.into_iter().enumerate() {
            let Some((rid, floor, _)) = slot else { continue };
            let records = self.log.newer_than(&floor);
            let nrid = self.rpc_issue(
                node,
                Request::NoticeRelease {
                    barrier: id,
                    tree,
                    reply_rid: rid,
                    vc: merged.clone(),
                    records,
                },
            );
            acks.push((node, nrid));
        }
        let fanned = acks.len() as u16;
        for (node, nrid) in acks {
            match self.rpc_collect_or_peer_done(nrid, node) {
                Some(Response::NoticeAck { barrier }) => {
                    assert_eq!(barrier, id, "ack for barrier {barrier}, expected {id}")
                }
                // Consumer already deregistered: release applied, ack moot.
                None => {}
                Some(other) => panic!("expected NoticeAck, got {other:?}"),
            }
        }
        if tree && fanned > 0 {
            self.emit(TmkEvent::BarrierReleaseFanned {
                barrier: id,
                children: fanned,
            });
        }
    }

    /// A releaser's `NoticeRelease` reached us: synthesize the barrier
    /// release it carries, file it into our own blocked arrival rpc
    /// (`reply_rid`), and ack. A duplicate whose original already landed
    /// finds the slot gone and just re-acks — idempotent by construction.
    // The parameter list mirrors the NoticeRelease wire fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn serve_notice_release(
        &mut self,
        from: usize,
        rid: u32,
        barrier: u32,
        tree: bool,
        reply_rid: u32,
        vc: VectorClock,
        records: Vec<IntervalRecord>,
        arrival: Ns,
        mut cost: Ns,
    ) {
        cost += Ns(200 * records.len() as u64);
        let release = if tree {
            Response::BarrierTreeRelease {
                barrier,
                vc,
                records,
            }
        } else {
            Response::BarrierRelease { vc, records }
        };
        self.complete_local(reply_rid, release);
        self.respond(from, rid, Response::NoticeAck { barrier }, arrival, cost);
    }

    /// Final synchronization before the node thread returns: a barrier, so
    /// no peer is left blocked on us.
    ///
    /// On a lossy transport every node that answers barrier arrivals
    /// additionally lingers: a peer whose exit release was lost keeps
    /// retransmitting its arrival, and only our replay cache can answer
    /// it. The centralized manager watches the whole cluster; a tree node
    /// watches its descendants — leaves exit immediately and the tree
    /// drains bottom-up (a parent lingering on *all* peers would deadlock
    /// against its own lingering ancestors).
    pub fn exit(&mut self) {
        self.barrier(u32::MAX);
        if self.sub.retransmit_timeout().is_some() {
            if self.tree_radix().is_some() {
                let watch = self.tree_descendants();
                if !watch.is_empty() {
                    self.shutdown_linger_watching(&watch);
                }
            } else if self.me == self.cfg.barrier_manager {
                self.shutdown_linger();
            }
        }
    }
}

#[cfg(test)]
#[path = "sync_tests.rs"]
mod tests;
