//! Lazy release consistency proper: the coherence layer.
//!
//! Owns the page table and its fault transitions (twin on first write,
//! invalidate on write notice), interval records and their propagation,
//! diff creation/fetch/application in causal order, the serve-side
//! encoders for `Diff` and `Page` requests, and the post-barrier epoch
//! GC. The layer above (sync) calls in to flush and apply intervals at
//! synchronization points; this layer calls down into rpc to move pages
//! and diffs.

use tm_sim::Ns;

use super::{DiffFetch, Tmk, TmkEvent};
use crate::diff::Diff;
use crate::interval::IntervalRecord;
use crate::page::{Access, Page, PageId, Pending};
use crate::protocol::{PageDiffs, Request, Response};
use crate::substrate::Substrate;
use crate::vc::VectorClock;
use crate::wire::{pool, WireWriter};

/// Per-page bookkeeping for one (possibly multi-page) diff fetch.
struct PageFetchState {
    pid: PageId,
    /// `(pending, diff)` pairs gathered so far, applied in causal order
    /// once nothing is owed.
    collected: Vec<(Pending, Diff)>,
    /// Per-writer seq ceiling already settled by responses: pending
    /// entries at or below it that produced no diff never wrote this
    /// page (speculative repair ranges) and are dropped.
    covered: Vec<(u16, u32)>,
}

/// One writer's owed intervals in a fetch round:
/// `(writer, [(page, lo_seq, hi_seq)])`.
type WriterNeed = (u16, Vec<(PageId, u32, u32)>);

/// Stride-prefetcher state: a detector over the page-fault sequence plus
/// the speculative requests it has in flight and the payloads they
/// returned. Inert when `cfg.prefetch_depth == 0` (the default) — the
/// detector is never consulted and nothing is ever issued.
///
/// LRC-safety: a volley only ever asks a writer for seqs that were
/// *pending on the page at issue time*, and its payload is staged — at
/// consumption the staged diffs are filtered against the page's *current*
/// pending set, so a page whose coverage moved on (a full-page adoption, a
/// repair notice) simply ignores the stale speculation. Speculation can
/// waste messages; it can never weaken what a fault applies.
#[derive(Default)]
pub(super) struct Prefetcher {
    /// Last faulting page, previous inter-fault stride, and how many
    /// consecutive faults repeated that stride.
    last: Option<PageId>,
    stride: i64,
    streak: u32,
    /// Issued, uncollected speculative volleys.
    volleys: Vec<PrefetchVolley>,
    /// Collected speculative payloads awaiting the fault that wants them:
    /// `(page, writer, payload)`.
    staged: Vec<(PageId, u16, StagedPage)>,
}

/// One speculative request to one writer: the rid to collect and the
/// issue-time `(page, lo_seq, hi_seq)` ranges it asked for.
struct PrefetchVolley {
    rid: u32,
    writer: u16,
    pages: Vec<(PageId, u32, u32)>,
}

/// A prefetched per-page payload parked until its page faults. Mirrors
/// the fetch-response vocabulary; `Diffs` keeps the issue-time `lo` so a
/// repair pending queued *below* it since issue blocks the stale ceiling
/// from settling anything.
enum StagedPage {
    Diffs {
        lo: u32,
        covered_hi: u32,
        diffs: Vec<(u32, Diff)>,
    },
    Full {
        applied: Vec<u32>,
        data: Vec<u8>,
    },
    Zero {
        applied: Vec<u32>,
    },
}

fn covered_of(covered: &[(u16, u32)], node: u16) -> u32 {
    covered
        .iter()
        .find(|(n, _)| *n == node)
        .map(|(_, h)| *h)
        .unwrap_or(0)
}

impl<S: Substrate> Tmk<S> {
    /// Materialize page-table entries up to `upto` (exclusive).
    pub(super) fn ensure_pages(&mut self, upto: usize) {
        while self.pages.len() < upto {
            let idx = self.pages.len();
            let manager = (idx % self.n) as u16;
            let page = if self.me == manager {
                Page::new_resident(self.n, manager, self.page_size)
            } else {
                Page::new(self.n, manager)
            };
            self.pages.push(page);
        }
    }

    // ----- interval machinery ---------------------------------------------

    /// Close the current interval if it wrote anything: create diffs from
    /// twins, emit the interval record. Returns the modeled cost (caller
    /// charges it into the right accounting context).
    pub(super) fn flush_interval(&mut self) -> Ns {
        if self.dirty.is_empty() {
            return Ns::ZERO;
        }
        let params = self.sub.params().clone();
        let seq = self.vc.tick(self.me as usize);
        let mut cost = Ns::ZERO;
        let mut pages_written = Vec::with_capacity(self.dirty.len());
        let dirty = std::mem::take(&mut self.dirty);
        for pid in dirty {
            let page = &mut self.pages[pid as usize];
            let twin = page.twin.take().expect("dirty page without twin");
            let d = if page.force_full_diff {
                page.force_full_diff = false;
                Diff::full(&page.data)
            } else {
                Diff::create(&twin, &page.data)
            };
            pool::give(twin); // twin buffers cycle through the pool
            cost += Ns::for_bytes(self.page_size, params.dsm.diff_scan_mb_s)
                + params.dsm.diff_overhead
                + params.dsm.mprotect;
            page.my_diffs.push((seq, d));
            page.trim_diffs(self.cfg.diff_keep);
            page.applied[self.me as usize] = seq;
            page.state = match page.state {
                Access::WriteInvalid => Access::Invalid,
                _ => Access::Read,
            };
            pages_written.push(pid);
            self.clock().borrow_mut().stats.diffs_created += 1;
        }
        let rec = IntervalRecord {
            node: self.me,
            seq,
            vc: self.vc.clone(),
            pages: pages_written,
        };
        trace!(self, "flush seq={} pages={:?}", seq, rec.pages);
        self.log.insert(rec);
        cost
    }

    /// Incorporate interval records learned from a grant or release:
    /// insert into the log and invalidate the named pages. Records move
    /// straight through — novelty is checked up front so nothing is
    /// cloned just to find out the log already had it.
    pub(super) fn apply_records(&mut self, records: Vec<IntervalRecord>) -> Ns {
        let mut fresh: Vec<IntervalRecord> = Vec::with_capacity(records.len());
        for rec in records {
            trace!(self, "record n{} seq={} pages={:?}", rec.node, rec.seq, rec.pages);
            // Novelty check covers both the log and this batch: barrier
            // arrivals from different clients often relay the same record.
            if self.log.contains(rec.node, rec.seq)
                || fresh.iter().any(|f| f.node == rec.node && f.seq == rec.seq)
            {
                trace!(self, "record n{} seq={} already known", rec.node, rec.seq);
            } else {
                fresh.push(rec);
            }
        }
        let cost = self.notice_records(&fresh);
        for rec in fresh {
            self.log.insert(rec);
        }
        cost
    }

    /// Invalidate pages named by `records`' write notices.
    fn notice_records(&mut self, records: &[IntervalRecord]) -> Ns {
        let mprotect = self.sub.params().dsm.mprotect;
        let mut cost = Ns::ZERO;
        for rec in records {
            if rec.node == self.me {
                continue;
            }
            if let Some(&max_pid) = rec.pages.iter().max() {
                self.ensure_pages(max_pid as usize + 1);
            }
            for &pid in &rec.pages {
                let page = &mut self.pages[pid as usize];
                let before = page.state;
                page.add_notice(rec.node, rec.seq, rec.vc.clone());
                if page.state != before {
                    cost += mprotect;
                }
            }
        }
        cost
    }

    /// Post-barrier GC: everyone has incorporated everything up to `vc`.
    pub(super) fn epoch_gc(&mut self, vc: VectorClock) {
        self.last_barrier_vc = vc;
        self.log.trim(&self.last_barrier_vc);
    }

    /// Interval records newer than the last barrier epoch (what a barrier
    /// arrival relays to the manager).
    pub(super) fn records_since_epoch(&self) -> Vec<IntervalRecord> {
        self.log.newer_than(&self.last_barrier_vc)
    }

    // ----- serve-side encoders ---------------------------------------------

    /// Encode a `Diffs` response directly from the page's retained diff
    /// list (borrowed — no `Vec<(u32, Diff)>` clone). Byte-identical to
    /// `Response::Diffs { .. }.encode(rid)`.
    pub(super) fn encode_diff_response(
        &self,
        rid: u32,
        pid: PageId,
        lo: u32,
        hi: u32,
        w: &mut WireWriter,
    ) -> Ns {
        let params = self.sub.params();
        let max = self.sub.max_msg();
        let page = &self.pages[pid as usize];
        match page.diffs_range(lo, hi) {
            Some(all) => {
                // Chunk to the substrate's message limit; the requester
                // re-requests the remainder. First pass picks the cut.
                let total = all.len();
                let mut take = 0usize;
                let mut sz = 16usize;
                let mut cost = Ns::ZERO;
                for (_, d) in all {
                    let dl = d.encoded_len() + 4;
                    if take > 0 && sz + dl > max {
                        break;
                    }
                    sz += dl;
                    cost += params.dsm.diff_overhead
                        + Ns::for_bytes(d.payload_bytes(), params.host.memcpy_mb_s);
                    take += 1;
                }
                // Everything fit: the whole range is settled; truncated:
                // settled up to the last included diff.
                let covered_hi = if take == total {
                    hi
                } else {
                    all[..take].last().map(|(s, _)| *s).unwrap_or(lo)
                };
                w.u32(rid).u8(1).u32(pid).u32(covered_hi).u16(take as u16);
                for (seq, d) in &all[..take] {
                    w.u32(*seq);
                    d.encode(w);
                }
                cost
            }
            // Requested diffs were GC'd: fall back to a full page.
            None => self.encode_full_page(rid, pid, w),
        }
    }

    /// Encode the stable copy of a page (the twin if the current interval
    /// is writing it) plus its applied vector, straight from the page's
    /// buffers. All-zero pages (freshly allocated memory on first touch)
    /// travel as a compact marker. Byte-identical to encoding
    /// `Response::FullPage`/`Response::ZeroPage`.
    pub(super) fn encode_full_page(&self, rid: u32, pid: PageId, w: &mut WireWriter) -> Ns {
        let params = self.sub.params();
        let page = &self.pages[pid as usize];
        assert!(
            page.has_copy(),
            "node {} asked for page {pid} it never held",
            self.me
        );
        let stable = page.twin.as_deref().unwrap_or(&page.data);
        let scan = Ns::for_bytes(stable.len(), params.dsm.diff_scan_mb_s);
        if crate::diff::is_all_zero(stable) {
            w.u32(rid).u8(5).u32(pid);
            crate::protocol::encode_applied(&page.applied, w);
            return scan;
        }
        w.u32(rid).u8(2).u32(pid);
        crate::protocol::encode_applied(&page.applied, w);
        w.bytes(stable);
        scan + Ns::for_bytes(stable.len(), params.host.memcpy_mb_s)
    }

    /// Encode a `MultiDiffs` response for a coalesced multi-page request,
    /// page entries serialized by reference like [`Self::encode_diff_response`].
    /// Byte-identical to encoding `Response::MultiDiffs`. Pages that do
    /// not fit the substrate's message budget are omitted entirely — the
    /// requester's round loop re-requests what is still owed.
    pub(super) fn encode_multi_diff_response(
        &self,
        rid: u32,
        pages: &[(PageId, u32, u32)],
        w: &mut WireWriter,
    ) -> Ns {
        let params = self.sub.params();
        let max = self.sub.max_msg();
        w.u32(rid).u8(7);
        let count_pos = w.reserve_u16();
        let mut included = 0u16;
        let mut cost = Ns::ZERO;
        for &(pid, lo, hi) in pages {
            if included > 0 && w.len() >= max {
                break;
            }
            let budget = max.saturating_sub(w.len());
            let page = &self.pages[pid as usize];
            w.u32(pid);
            match page.diffs_range(lo, hi) {
                Some(all) => {
                    // Chunk within the remaining budget; at least one diff
                    // always goes out so the covered ceiling advances.
                    let total = all.len();
                    let mut take = 0usize;
                    let mut sz = 16usize;
                    for (_, d) in all {
                        let dl = d.encoded_len() + 4;
                        if take > 0 && sz + dl > budget {
                            break;
                        }
                        sz += dl;
                        cost += params.dsm.diff_overhead
                            + Ns::for_bytes(d.payload_bytes(), params.host.memcpy_mb_s);
                        take += 1;
                    }
                    let covered_hi = if take == total {
                        hi
                    } else {
                        all[..take].last().map(|(s, _)| *s).unwrap_or(lo)
                    };
                    w.u8(1).u32(covered_hi).u16(take as u16);
                    for (seq, d) in &all[..take] {
                        w.u32(*seq);
                        d.encode(w);
                    }
                }
                None => {
                    // Requested diffs were GC'd: inline full-page fallback.
                    assert!(
                        page.has_copy(),
                        "node {} asked for page {pid} it never held",
                        self.me
                    );
                    let stable = page.twin.as_deref().unwrap_or(&page.data);
                    let scan = Ns::for_bytes(stable.len(), params.dsm.diff_scan_mb_s);
                    if crate::diff::is_all_zero(stable) {
                        w.u8(5);
                        crate::protocol::encode_applied(&page.applied, w);
                        cost += scan;
                    } else {
                        w.u8(2);
                        crate::protocol::encode_applied(&page.applied, w);
                        w.bytes(stable);
                        cost += scan + Ns::for_bytes(stable.len(), params.host.memcpy_mb_s);
                    }
                }
            }
            included += 1;
        }
        w.patch_u16(count_pos, included);
        cost
    }

    // ----- faults -----------------------------------------------------------

    pub(super) fn ensure_readable(&mut self, pid: PageId) {
        match self.pages[pid as usize].state {
            Access::Read | Access::Write => {}
            Access::Unmapped => {
                let fault = self.sub.params().dsm.page_fault;
                self.clock().borrow_mut().advance(fault);
                self.clock().borrow_mut().stats.page_faults += 1;
                self.prefetch_note_fault(pid);
                self.fetch_page(pid);
                self.fetch_pending_diffs(pid);
            }
            Access::Invalid | Access::WriteInvalid => {
                let fault = self.sub.params().dsm.page_fault;
                self.clock().borrow_mut().advance(fault);
                self.clock().borrow_mut().stats.page_faults += 1;
                self.prefetch_note_fault(pid);
                self.fetch_pending_diffs(pid);
            }
        }
    }

    pub(super) fn ensure_writable(&mut self, pid: PageId) {
        self.ensure_readable(pid);
        let params = self.sub.params().clone();
        let page = &mut self.pages[pid as usize];
        if page.state == Access::Read {
            // Write fault: twin the page into a pooled buffer (twins are
            // created and retired every interval — prime churn).
            let mut twin = pool::take(page.data.len());
            twin.extend_from_slice(&page.data);
            page.twin = Some(twin);
            page.state = Access::Write;
            self.dirty.push(pid);
            let mut c = self.clock().borrow_mut();
            c.advance(
                params.dsm.page_fault
                    + params.dsm.mprotect
                    + params.dsm.twin_overhead
                    + Ns::for_bytes(self.page_size, params.host.memcpy_mb_s),
            );
            c.stats.page_faults += 1;
            c.stats.twins_created += 1;
        }
    }

    /// Write fault for a whole-page overwrite: skip fetching the old
    /// content. Pending notices are marked applied — their diffs would be
    /// overwritten verbatim (any word both we and a concurrent writer
    /// touch would be a data race in the program).
    pub(super) fn ensure_writable_overwrite(&mut self, pid: PageId) {
        let state = self.pages[pid as usize].state;
        match state {
            Access::Write => return,
            Access::Read => {
                self.ensure_writable(pid);
                return;
            }
            Access::Unmapped | Access::Invalid | Access::WriteInvalid => {}
        }
        let params = self.sub.params().clone();
        let page = &mut self.pages[pid as usize];
        if !page.has_copy() {
            page.data = vec![0; self.page_size];
        }
        // Absorb pending notices without fetching their diffs.
        let pending = std::mem::take(&mut page.pending);
        for p in &pending {
            page.applied[p.node as usize] = page.applied[p.node as usize].max(p.seq);
        }
        let mut cost = params.dsm.page_fault + params.dsm.mprotect;
        if page.twin.is_none() {
            let mut twin = pool::take(page.data.len());
            twin.extend_from_slice(&page.data);
            page.twin = Some(twin);
            self.dirty.push(pid);
            cost += params.dsm.twin_overhead
                + Ns::for_bytes(self.page_size, params.host.memcpy_mb_s);
            let mut c = self.clock().borrow_mut();
            c.stats.twins_created += 1;
        }
        let page = &mut self.pages[pid as usize];
        page.force_full_diff = true;
        page.state = Access::Write;
        let mut c = self.clock().borrow_mut();
        c.advance(cost);
        c.stats.page_faults += 1;
    }

    /// First touch: fetch the whole page from its manager.
    fn fetch_page(&mut self, pid: PageId) {
        let manager = self.pages[pid as usize].manager as usize;
        assert_ne!(manager, self.me as usize, "manager pages are resident");
        let resp = self.rpc(manager, Request::Page { page: pid });
        match resp {
            Response::FullPage { page, applied, data } => {
                assert_eq!(page, pid);
                self.adopt_full_page(pid, applied, data);
                self.clock().borrow_mut().stats.pages_fetched += 1;
                self.emit(TmkEvent::PageFetched { page: pid });
            }
            Response::ZeroPage { page, applied } => {
                assert_eq!(page, pid);
                let zeros = vec![0u8; self.page_size];
                self.adopt_full_page(pid, applied, zeros);
                self.clock().borrow_mut().stats.pages_fetched += 1;
                self.emit(TmkEvent::PageFetched { page: pid });
            }
            other => panic!("expected FullPage, got {other:?}"),
        }
    }

    /// Merge a received full page into local state, preserving our own
    /// uncommitted writes if any.
    ///
    /// The responder's copy can be *behind* us on some writers' axes (its
    /// `applied[v]` below ours): adopting it wholesale would regress those
    /// writers' words. We repair: our own newer flushed intervals are
    /// replayed from `my_diffs`, and deficits on other axes are re-queued
    /// as pending notices so the normal diff fetch re-applies them (their
    /// synthetic vector time makes them sort before anything causally
    /// newer; concurrent repairs touch disjoint words in race-free
    /// programs).
    fn adopt_full_page(&mut self, pid: PageId, applied: Vec<u32>, data: Vec<u8>) {
        let params = self.sub.params().clone();
        let mut cost = Ns::for_bytes(data.len(), params.host.memcpy_mb_s) + params.dsm.mprotect;
        let me = self.me as usize;
        let n = self.n;
        let page = &mut self.pages[pid as usize];
        if let Some(twin) = page.twin.take() {
            // We hold uncommitted writes: replay them on the new base.
            let own = Diff::create(&twin, &page.data);
            pool::give(twin);
            cost += Ns::for_bytes(self.page_size, params.dsm.diff_scan_mb_s);
            // One copy (data -> new twin) is inherent — page and twin are
            // distinct buffers — but it lands in a pooled one, and the
            // displaced page buffer goes back to the pool.
            let mut new_twin = pool::take(self.page_size);
            new_twin.extend_from_slice(&data[..self.page_size.min(data.len())]);
            pool::give(std::mem::replace(&mut page.data, data));
            page.twin = Some(new_twin);
            own.apply(&mut page.data);
        } else {
            pool::give(std::mem::replace(&mut page.data, data));
        }
        // Adopt the responder's view…
        let old_applied = std::mem::replace(&mut page.applied, applied);
        // …then repair our own axis from locally retained diffs (applied
        // by reference: my_diffs and data are disjoint fields).
        if old_applied[me] > page.applied[me] {
            let lo = page.applied[me];
            for (seq, d) in &page.my_diffs {
                if *seq > lo && *seq <= old_applied[me] {
                    d.apply(&mut page.data);
                    if let Some(t) = page.twin.as_mut() {
                        d.apply(t);
                    }
                    cost += params.dsm.diff_overhead;
                }
            }
            page.applied[me] = old_applied[me];
        }
        // Repair deficits on other axes by re-queuing pending notices
        // (fetched and applied by the ongoing fault).
        for (v, &old) in old_applied.iter().enumerate() {
            if v == me {
                continue;
            }
            if old > page.applied[v] {
                for seq in page.applied[v] + 1..=old {
                    let mut vcv = VectorClock::new(n);
                    vcv.set(v, seq);
                    page.add_notice(v as u16, seq, vcv);
                }
            }
        }
        let Page {
            pending, applied, ..
        } = page;
        pending.retain(|p| p.seq > applied[p.node as usize]);
        page.state = match (page.twin.is_some(), page.pending.is_empty()) {
            (true, true) => Access::Write,
            (true, false) => Access::WriteInvalid,
            (false, true) => Access::Read,
            (false, false) => Access::Invalid,
        };
        self.clock().borrow_mut().advance(cost);
    }

    /// Fetch and apply every pending diff for a page, in causal order.
    fn fetch_pending_diffs(&mut self, pid: PageId) {
        self.fetch_diffs_batch(&[pid]);
    }

    /// Fault in a span of pages at once. Each page is charged its fault
    /// and (if unmapped) fetched from its manager exactly as the per-page
    /// path would, but the pending-diff fetches for the whole span share
    /// one overlapped round: requests to distinct writers are in flight
    /// simultaneously, and multi-page requests to one writer coalesce.
    /// Under [`DiffFetch::Serial`] this degenerates to the per-page loop,
    /// message for message.
    pub(super) fn ensure_readable_batch(&mut self, pids: &[PageId]) {
        if self.cfg.diff_fetch == DiffFetch::Serial {
            for &pid in pids {
                self.ensure_readable(pid);
            }
            return;
        }
        let mut faulted: Vec<PageId> = Vec::new();
        for &pid in pids {
            match self.pages[pid as usize].state {
                Access::Read | Access::Write => {}
                Access::Unmapped => {
                    let fault = self.sub.params().dsm.page_fault;
                    self.clock().borrow_mut().advance(fault);
                    self.clock().borrow_mut().stats.page_faults += 1;
                    self.prefetch_note_fault(pid);
                    self.fetch_page(pid);
                    faulted.push(pid);
                }
                Access::Invalid | Access::WriteInvalid => {
                    let fault = self.sub.params().dsm.page_fault;
                    self.clock().borrow_mut().advance(fault);
                    self.clock().borrow_mut().stats.page_faults += 1;
                    self.prefetch_note_fault(pid);
                    faulted.push(pid);
                }
            }
        }
        if !faulted.is_empty() {
            self.fetch_diffs_batch(&faulted);
        }
    }

    /// Fetch and apply pending diffs for a set of pages.
    ///
    /// New notices can land mid-fetch (we service peers' requests while
    /// blocked), so each round re-derives what is pending but not yet
    /// collected across *all* pages, then dispatches per
    /// [`DiffFetch`]: serially (one blocking RPC per writer per page, the
    /// spec baseline), in parallel (issue everything, then collect), or
    /// coalesced (at most one request per writer per round).
    fn fetch_diffs_batch(&mut self, pids: &[PageId]) {
        let mut states: Vec<PageFetchState> = pids
            .iter()
            .map(|&pid| PageFetchState {
                pid,
                collected: Vec::new(),
                covered: Vec::new(),
            })
            .collect();
        self.prefetch_harvest(&mut states);
        loop {
            // Owed ranges this round, grouped by writer.
            let mut need: Vec<WriterNeed> = Vec::new();
            for st in &states {
                for p in &self.pages[st.pid as usize].pending {
                    if st
                        .collected
                        .iter()
                        .any(|(q, _)| q.node == p.node && q.seq == p.seq)
                    {
                        continue;
                    }
                    if p.seq <= covered_of(&st.covered, p.node) {
                        // Settled as nonexistent.
                        continue;
                    }
                    let pages = match need.iter_mut().position(|(n, _)| *n == p.node) {
                        Some(i) => &mut need[i].1,
                        None => {
                            need.push((p.node, Vec::new()));
                            &mut need.last_mut().expect("just pushed").1
                        }
                    };
                    match pages.iter_mut().find(|(q, _, _)| *q == st.pid) {
                        Some((_, lo, hi)) => {
                            *lo = (*lo).min(p.seq);
                            *hi = (*hi).max(p.seq);
                        }
                        None => pages.push((st.pid, p.seq, p.seq)),
                    }
                }
            }
            if need.is_empty() {
                break;
            }
            match self.cfg.diff_fetch {
                DiffFetch::Serial => {
                    for (writer, pages) in need {
                        for (pid, lo, hi) in pages {
                            let resp =
                                self.rpc(writer as usize, Request::Diff { page: pid, lo, hi });
                            self.handle_fetch_response(&mut states, writer, resp);
                        }
                    }
                }
                DiffFetch::Parallel => {
                    let mut issued: Vec<(u32, u16)> = Vec::new();
                    for (writer, pages) in &need {
                        for &(pid, lo, hi) in pages {
                            let rid = self
                                .rpc_issue(*writer as usize, Request::Diff { page: pid, lo, hi });
                            issued.push((rid, *writer));
                        }
                    }
                    self.note_fanout(need.len(), issued.len());
                    for (rid, writer) in issued {
                        let resp = self.rpc_collect(rid);
                        self.handle_fetch_response(&mut states, writer, resp);
                    }
                }
                DiffFetch::Coalesced => {
                    let mut issued: Vec<(u32, u16)> = Vec::new();
                    for (writer, pages) in &need {
                        let req = if pages.len() == 1 {
                            let (pid, lo, hi) = pages[0];
                            Request::Diff { page: pid, lo, hi }
                        } else {
                            Request::MultiDiff {
                                pages: pages.clone(),
                            }
                        };
                        issued.push((self.rpc_issue(*writer as usize, req), *writer));
                    }
                    self.note_fanout(need.len(), issued.len());
                    for (rid, writer) in issued {
                        let resp = self.rpc_collect(rid);
                        self.handle_fetch_response(&mut states, writer, resp);
                    }
                }
            }
        }
        for st in states {
            self.apply_fetched_page(st);
        }
    }

    // ----- stride prefetcher ------------------------------------------------

    /// Feed one page fault to the stride detector; on a confirmed
    /// constant stride, speculatively issue diff fetches for the next
    /// `prefetch_depth` predicted pages.
    fn prefetch_note_fault(&mut self, pid: PageId) {
        if self.cfg.prefetch_depth == 0 {
            return;
        }
        let Some(prev) = self.pf.last.replace(pid) else {
            return;
        };
        let stride = pid as i64 - prev as i64;
        if stride != 0 && stride == self.pf.stride {
            self.pf.streak += 1;
        } else {
            self.pf.stride = stride;
            self.pf.streak = u32::from(stride != 0);
        }
        if self.pf.streak >= 2 {
            self.prefetch_issue(pid);
        }
    }

    /// Issue speculative volleys for the predicted window
    /// `origin + stride .. origin + depth * stride`: only pages that are
    /// invalid with pending notices, not already in flight or staged. The
    /// requests ride the overlapped engine — the faulting page's demand
    /// fetch proceeds while these are in the air.
    fn prefetch_issue(&mut self, origin: PageId) {
        let stride = self.pf.stride;
        let mut need: Vec<WriterNeed> = Vec::new();
        let mut targets: Vec<PageId> = Vec::new();
        for k in 1..=self.cfg.prefetch_depth as i64 {
            let t = origin as i64 + stride * k;
            if t < 0 || t as usize >= self.pages.len() {
                break;
            }
            let pid = t as PageId;
            if self
                .pf
                .volleys
                .iter()
                .any(|v| v.pages.iter().any(|&(p, _, _)| p == pid))
                || self.pf.staged.iter().any(|&(p, _, _)| p == pid)
            {
                continue;
            }
            let page = &self.pages[pid as usize];
            if !matches!(page.state, Access::Invalid | Access::WriteInvalid)
                || page.pending.is_empty()
            {
                continue;
            }
            for p in &page.pending {
                let pages = match need.iter_mut().position(|(n, _)| *n == p.node) {
                    Some(i) => &mut need[i].1,
                    None => {
                        need.push((p.node, Vec::new()));
                        &mut need.last_mut().expect("just pushed").1
                    }
                };
                match pages.iter_mut().find(|(q, _, _)| *q == pid) {
                    Some((_, lo, hi)) => {
                        *lo = (*lo).min(p.seq);
                        *hi = (*hi).max(p.seq);
                    }
                    None => pages.push((pid, p.seq, p.seq)),
                }
            }
            targets.push(pid);
        }
        for (writer, pages) in need {
            let req = if pages.len() == 1 {
                let (pid, lo, hi) = pages[0];
                Request::Diff { page: pid, lo, hi }
            } else {
                Request::MultiDiff {
                    pages: pages.clone(),
                }
            };
            let rid = self.rpc_issue(writer as usize, req);
            self.pf.volleys.push(PrefetchVolley { rid, writer, pages });
        }
        for pid in targets {
            self.emit(TmkEvent::PrefetchIssued { page: pid });
        }
    }

    /// Collect every volley that targets one of the faulting pages and
    /// fold the staged payloads for those pages into the fetch states.
    /// Payloads for pages *not* faulting stay staged for their own fault;
    /// volleys with no page in the batch stay in the air.
    fn prefetch_harvest(&mut self, states: &mut [PageFetchState]) {
        if self.pf.volleys.is_empty() && self.pf.staged.is_empty() {
            return;
        }
        let mut due: Vec<PrefetchVolley> = Vec::new();
        let mut i = 0;
        while i < self.pf.volleys.len() {
            let hit = self.pf.volleys[i]
                .pages
                .iter()
                .any(|&(p, _, _)| states.iter().any(|s| s.pid == p));
            if hit {
                due.push(self.pf.volleys.swap_remove(i));
            } else {
                i += 1;
            }
        }
        for v in due {
            let resp = self.rpc_collect(v.rid);
            self.stage_response(&v, resp);
        }
        let staged = std::mem::take(&mut self.pf.staged);
        let mut hits: Vec<PageId> = Vec::new();
        for (pid, writer, payload) in staged {
            if !states.iter().any(|s| s.pid == pid) {
                self.pf.staged.push((pid, writer, payload));
                continue;
            }
            if !hits.contains(&pid) {
                hits.push(pid);
            }
            match payload {
                StagedPage::Diffs {
                    lo,
                    covered_hi,
                    diffs,
                } => {
                    // Validity check at apply time: only diffs the page
                    // still awaits are usable; a pending queued *below*
                    // the issued floor since (a repair) blocks the stale
                    // ceiling from settling anything.
                    let pending = &self.pages[pid as usize].pending;
                    let filtered: Vec<(u32, Diff)> = diffs
                        .into_iter()
                        .filter(|(seq, _)| {
                            pending.iter().any(|p| p.node == writer && p.seq == *seq)
                        })
                        .collect();
                    let eff = if pending.iter().any(|p| p.node == writer && p.seq < lo) {
                        0
                    } else {
                        covered_hi
                    };
                    if !filtered.is_empty() || eff > 0 {
                        let st = states
                            .iter_mut()
                            .find(|s| s.pid == pid)
                            .expect("membership checked above");
                        self.absorb_page_diffs(st, writer, eff, filtered);
                    }
                }
                StagedPage::Full { applied, data } => {
                    self.adopt_fetched_full(states, pid, applied, data);
                }
                StagedPage::Zero { applied } => {
                    let zeros = vec![0u8; self.page_size];
                    self.adopt_fetched_full(states, pid, applied, zeros);
                }
            }
        }
        for pid in hits {
            self.emit(TmkEvent::PrefetchHit { page: pid });
        }
    }

    /// Break a volley's response into per-page staged payloads. Pages the
    /// responder omitted under its message budget simply never stage —
    /// speculation is never re-requested.
    fn stage_response(&mut self, v: &PrefetchVolley, resp: Response) {
        let lo_of = |pid: PageId| {
            v.pages
                .iter()
                .find(|&&(p, _, _)| p == pid)
                .map(|&(_, lo, _)| lo)
                .unwrap_or(0)
        };
        match resp {
            Response::Diffs {
                page,
                covered_hi,
                diffs,
            } => {
                let lo = lo_of(page);
                self.pf.staged.push((
                    page,
                    v.writer,
                    StagedPage::Diffs {
                        lo,
                        covered_hi,
                        diffs,
                    },
                ));
            }
            Response::MultiDiffs { pages } => {
                for (page, pd) in pages {
                    let entry = match pd {
                        PageDiffs::Diffs { covered_hi, diffs } => StagedPage::Diffs {
                            lo: lo_of(page),
                            covered_hi,
                            diffs,
                        },
                        PageDiffs::Full { applied, data } => StagedPage::Full { applied, data },
                        PageDiffs::Zero { applied } => StagedPage::Zero { applied },
                    };
                    self.pf.staged.push((page, v.writer, entry));
                }
            }
            Response::FullPage { page, applied, data } => {
                self.pf
                    .staged
                    .push((page, v.writer, StagedPage::Full { applied, data }));
            }
            Response::ZeroPage { page, applied } => {
                self.pf
                    .staged
                    .push((page, v.writer, StagedPage::Zero { applied }));
            }
            other => panic!("expected diff/page payload for prefetch, got {other:?}"),
        }
    }

    /// Settle all speculative state: collect what is still in the air and
    /// discard every unused payload, counting it wasted. Called on barrier
    /// entry — nothing issued against the old epoch survives it — and a
    /// no-op whenever the prefetcher is inert.
    pub(super) fn prefetch_drain(&mut self) {
        let volleys = std::mem::take(&mut self.pf.volleys);
        for v in volleys {
            let _ = self.rpc_collect(v.rid);
            for &(pid, _, _) in &v.pages {
                self.emit(TmkEvent::PrefetchWasted { page: pid });
            }
        }
        for (pid, _, _) in std::mem::take(&mut self.pf.staged) {
            self.emit(TmkEvent::PrefetchWasted { page: pid });
        }
        self.pf.last = None;
        self.pf.stride = 0;
        self.pf.streak = 0;
    }

    /// The lock pipeline's fetch arm: batch-fetch every (mapped, invalid,
    /// pending) page in `pids` through the overlapped engine, charging no
    /// page faults — the point is that the faults never happen. Returns
    /// how many pages were fetched.
    pub(super) fn pipeline_fetch(&mut self, pids: &[PageId]) -> usize {
        let mut targets: Vec<PageId> = Vec::new();
        for &pid in pids {
            if (pid as usize) < self.pages.len()
                && !targets.contains(&pid)
                && matches!(
                    self.pages[pid as usize].state,
                    Access::Invalid | Access::WriteInvalid
                )
                && !self.pages[pid as usize].pending.is_empty()
            {
                targets.push(pid);
            }
        }
        if targets.is_empty() {
            return 0;
        }
        self.fetch_diffs_batch(&targets);
        targets.len()
    }

    fn note_fanout(&mut self, writers: usize, requests: usize) {
        if requests > 1 {
            self.emit(TmkEvent::DiffFanout {
                writers: writers as u16,
                requests: requests as u16,
            });
        }
    }

    /// Fold one diff-fetch response into the per-page fetch states.
    fn handle_fetch_response(
        &mut self,
        states: &mut [PageFetchState],
        writer: u16,
        resp: Response,
    ) {
        match resp {
            Response::Diffs {
                page,
                covered_hi,
                diffs,
            } => {
                let st = states
                    .iter_mut()
                    .find(|s| s.pid == page)
                    .expect("diffs for a page we did not request");
                self.absorb_page_diffs(st, writer, covered_hi, diffs);
            }
            Response::MultiDiffs { pages } => {
                for (page, pd) in pages {
                    match pd {
                        PageDiffs::Diffs { covered_hi, diffs } => {
                            let st = states
                                .iter_mut()
                                .find(|s| s.pid == page)
                                .expect("diffs for a page we did not request");
                            self.absorb_page_diffs(st, writer, covered_hi, diffs);
                        }
                        PageDiffs::Full { applied, data } => {
                            self.adopt_fetched_full(states, page, applied, data);
                        }
                        PageDiffs::Zero { applied } => {
                            let zeros = vec![0u8; self.page_size];
                            self.adopt_fetched_full(states, page, applied, zeros);
                        }
                    }
                }
            }
            Response::ZeroPage { page, applied } => {
                let zeros = vec![0u8; self.page_size];
                self.adopt_fetched_full(states, page, applied, zeros);
            }
            Response::FullPage { page, applied, data } => {
                // GC fallback: adopt, then continue with whatever is
                // still pending.
                self.adopt_fetched_full(states, page, applied, data);
            }
            other => panic!("expected Diffs/FullPage, got {other:?}"),
        }
    }

    /// Record a writer's `Diffs` payload for one page: advance the covered
    /// ceiling and stash the diffs against their pending notices.
    fn absorb_page_diffs(
        &mut self,
        st: &mut PageFetchState,
        writer: u16,
        covered_hi: u32,
        diffs: Vec<(u32, Diff)>,
    ) {
        match st.covered.iter_mut().find(|(n, _)| *n == writer) {
            Some((_, h)) => *h = (*h).max(covered_hi),
            None => st.covered.push((writer, covered_hi)),
        }
        for (seq, d) in diffs {
            let pend = self.pages[st.pid as usize]
                .pending
                .iter()
                .find(|p| p.node == writer && p.seq == seq)
                .cloned();
            match pend {
                Some(p) => st.collected.push((p, d)),
                None => {
                    // Returned but not (yet) noticed: the covered ceiling
                    // will advance past it, so it must be applied now. Its
                    // synthetic vector time sorts it before anything that
                    // causally follows it.
                    let mut vcv = VectorClock::new(self.n);
                    vcv.set(writer as usize, seq);
                    st.collected.push((
                        Pending {
                            node: writer,
                            seq,
                            vc: vcv,
                        },
                        d,
                    ));
                }
            }
        }
    }

    /// Adopt a full-page response received mid-fetch and drop collected
    /// diffs the adoption already settled.
    fn adopt_fetched_full(
        &mut self,
        states: &mut [PageFetchState],
        pid: PageId,
        applied: Vec<u32>,
        data: Vec<u8>,
    ) {
        self.adopt_full_page(pid, applied, data);
        self.clock().borrow_mut().stats.pages_fetched += 1;
        self.emit(TmkEvent::PageFetched { page: pid });
        if let Some(st) = states.iter_mut().find(|s| s.pid == pid) {
            let pending = &self.pages[pid as usize].pending;
            st.collected
                .retain(|(p, _)| pending.iter().any(|q| q.node == p.node && q.seq == p.seq));
        }
    }

    /// Apply one page's collected diffs in causal order and finish the
    /// fault (mprotect, state transition).
    fn apply_fetched_page(&mut self, st: PageFetchState) {
        let params = self.sub.params().clone();
        let PageFetchState {
            pid,
            mut collected,
            covered,
        } = st;
        // Causal sort: repeatedly take a minimal element (nothing else
        // happens-before it).
        let mut ordered: Vec<(Pending, Diff)> = Vec::with_capacity(collected.len());
        while !collected.is_empty() {
            let mut pick = 0;
            for i in 0..collected.len() {
                let candidate = &collected[i].0;
                let minimal = collected.iter().enumerate().all(|(j, (other, _))| {
                    j == i
                        || !(other.vc.dominated_by(&candidate.vc)
                            && other.vc != candidate.vc)
                });
                if minimal {
                    pick = i;
                    break;
                }
            }
            ordered.push(collected.remove(pick));
        }
        // Apply in order, to data and (if present) twin.
        let mut cost = Ns::ZERO;
        let mut applied_count = 0u64;
        let page = &mut self.pages[pid as usize];
        for (pend, d) in ordered {
            d.apply(&mut page.data);
            if let Some(twin) = page.twin.as_mut() {
                d.apply(twin);
            }
            cost += params.dsm.diff_overhead
                + Ns::for_bytes(d.payload_bytes(), params.host.memcpy_mb_s);
            page.applied_notice(pend.node, pend.seq);
            applied_count += 1;
        }
        self.clock().borrow_mut().stats.diffs_applied += applied_count;
        if applied_count > 0 {
            self.emit(TmkEvent::DiffApplied {
                page: pid,
                count: applied_count,
            });
        }
        cost += params.dsm.mprotect;
        // Clear speculative pendings that turned out not to exist.
        let page = &mut self.pages[pid as usize];
        for (node, hi) in covered {
            page.applied_notice(node, hi);
        }
        debug_assert!(
            page.pending.is_empty(),
            "unresolved pendings: {:?}",
            page.pending
        );
        page.state = if page.twin.is_some() {
            Access::Write
        } else {
            Access::Read
        };
        self.clock().borrow_mut().advance(cost);
    }
}
