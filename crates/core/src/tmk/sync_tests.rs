//! Lock grant-forwarding chain tests over the in-memory substrate — no
//! fabric, no threads. Each test drives the `serve` dispatcher by hand
//! with wire-encoded requests, so the manager → owner → requester chain
//! and its replay-cache behavior under retransmission are exercised at
//! the layer seam, deterministically.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use tm_sim::clock::shared_clock;
use tm_sim::{AsyncScheme, Ns, SharedClock, SimParams};

use crate::memsub::{mem_cluster, MemSubstrate};
use crate::protocol::{Request, Response};
use crate::substrate::{Chan, IncomingMsg, Substrate};
use crate::vc::VectorClock;
use crate::{Tmk, TmkConfig, TmkEvent};

/// [`MemSubstrate`] plus a fixed retransmission timeout: flips the rpc
/// layer onto its lossy path (replay cache active) without any loss
/// model underneath — the tests inject duplicates by calling `serve`
/// twice with the same bytes.
struct LossyMem(MemSubstrate);

impl Substrate for LossyMem {
    fn my_id(&self) -> usize {
        self.0.my_id()
    }
    fn nprocs(&self) -> usize {
        self.0.nprocs()
    }
    fn clock(&self) -> &SharedClock {
        self.0.clock()
    }
    fn params(&self) -> &Arc<SimParams> {
        self.0.params()
    }
    fn scheme(&self) -> AsyncScheme {
        self.0.scheme()
    }
    fn send_request(&mut self, to: usize, data: &[u8]) -> bool {
        self.0.send_request(to, data)
    }
    fn send_request_at(&mut self, to: usize, data: &[u8], at: Ns) {
        self.0.send_request_at(to, data, at)
    }
    fn response_cost(&self, len: usize) -> Ns {
        self.0.response_cost(len)
    }
    fn send_response_at(&mut self, to: usize, data: &[u8], at: Ns) {
        self.0.send_response_at(to, data, at)
    }
    fn poll_request(&mut self) -> Option<IncomingMsg> {
        self.0.poll_request()
    }
    fn next_incoming(&mut self) -> IncomingMsg {
        self.0.next_incoming()
    }
    fn retransmit_timeout(&self) -> Option<Ns> {
        Some(Ns::from_us(500))
    }
}

/// Three-node cluster: node 0 is lock 0's manager, node 1 the (eventual)
/// owner, node 2 the requester — the requester side needs no runtime, a
/// bare substrate receives its grants.
fn chain() -> (Tmk<LossyMem>, Tmk<LossyMem>, MemSubstrate) {
    let params = Arc::new(SimParams::paper_testbed());
    let mut eps = mem_cluster(3);
    let e2 = eps.pop().unwrap();
    let e1 = eps.pop().unwrap();
    let e0 = eps.pop().unwrap();
    let mk = |ep| MemSubstrate::new(ep, shared_clock(), Arc::clone(&params), Ns::ZERO, Ns(500));
    let t0 = Tmk::new(LossyMem(mk(e0)), TmkConfig::default());
    let t1 = Tmk::new(LossyMem(mk(e1)), TmkConfig::default());
    let s2 = mk(e2);
    (t0, t1, s2)
}

fn encode(req: Request, rid: u32) -> Vec<u8> {
    let mut w = crate::wire::WireWriter::pooled(64);
    req.encode_into(rid, &mut w);
    let bytes = w.as_slice().to_vec();
    w.recycle();
    bytes
}

fn acquire_bytes(rid: u32) -> Vec<u8> {
    encode(
        Request::Acquire {
            lock: 0,
            vc: VectorClock::new(3),
        },
        rid,
    )
}

/// Run the real manager-side handoff that makes node 1 lock 0's owner,
/// mirroring the grant in node 1's local token state.
fn seed_owner(t0: &mut Tmk<LossyMem>, t1: &mut Tmk<LossyMem>) {
    t0.serve(1, &acquire_bytes(1), Ns(0));
    let grant = t1.sub.next_incoming();
    assert_eq!(grant.chan, Chan::Response);
    t1.ensure_lock(0);
    t1.locks[0].have_token = true;
}

#[test]
fn grant_forwarding_chain_over_memsub() {
    let (mut t0, mut t1, mut s2) = chain();
    let granted = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&granted);
    t1.set_event_hook(move |e| {
        if let TmkEvent::LockGranted { lock, to } = *e {
            sink.borrow_mut().push((lock, to));
        }
    });
    seed_owner(&mut t0, &mut t1);
    // Node 2's acquire reaches the manager, which no longer holds the
    // token: it must forward to node 1, not answer.
    let rid2 = 77;
    t0.serve(2, &acquire_bytes(rid2), Ns(100));
    let fwd = t1.sub.next_incoming();
    assert_eq!(fwd.chan, Chan::Request);
    assert_eq!(fwd.from, 0);
    t1.serve(fwd.from, &fwd.data, fwd.arrival);
    // The owner's grant goes straight to node 2, correlated with node 2's
    // *original* rid — the forwarding hop is invisible to the requester.
    let msg = s2.next_incoming();
    assert_eq!(msg.chan, Chan::Response);
    assert_eq!(msg.from, 1);
    let (rid, resp) = Response::decode(&msg.data).unwrap();
    assert_eq!(rid, rid2);
    assert!(matches!(resp, Response::Grant { lock: 0, .. }));
    assert_eq!(granted.borrow().as_slice(), &[(0u32, 2u16)]);
    assert!(!t1.locks[0].have_token, "token must migrate with the grant");
}

#[test]
fn retransmitted_acquire_replays_forward_and_grant() {
    let (mut t0, mut t1, mut s2) = chain();
    seed_owner(&mut t0, &mut t1);
    let rid2 = 9;
    let acq = acquire_bytes(rid2);
    t0.serve(2, &acq, Ns(100));
    let fwd1 = t1.sub.next_incoming();
    // Node 2 retransmits (its grant hasn't arrived): the manager must
    // re-forward the identical bytes, not re-run the handler — a re-run
    // would re-read the (now stale) owner hint.
    t0.serve(2, &acq, Ns(700));
    let fwd2 = t1.sub.next_incoming();
    assert_eq!(fwd1.data, fwd2.data, "replayed forward must be byte-identical");
    assert_eq!(t0.clock().borrow().stats.dup_requests_suppressed, 1);
    // The owner grants on the first copy and replays the recorded grant
    // on the duplicate, keyed on the *forward's* (manager, fwd_rid).
    t1.serve(fwd1.from, &fwd1.data, fwd1.arrival);
    t1.serve(fwd2.from, &fwd2.data, fwd2.arrival);
    assert_eq!(t1.clock().borrow().stats.dup_requests_suppressed, 1);
    let g1 = s2.next_incoming();
    let g2 = s2.next_incoming();
    assert_eq!(g1.data, g2.data, "replayed grant must be byte-identical");
    let (rid, resp) = Response::decode(&g1.data).unwrap();
    assert_eq!(rid, rid2);
    assert!(matches!(resp, Response::Grant { lock: 0, .. }));
}

#[test]
fn queued_forward_grants_at_release_then_replays() {
    let (_t0, mut t1, mut s2) = chain();
    t1.ensure_lock(0);
    t1.locks[0].have_token = true;
    t1.locks[0].busy = true;
    let fwd = encode(
        Request::AcquireFwd {
            lock: 0,
            requester: 2,
            rid: 31,
            vc: VectorClock::new(3),
        },
        900,
    );
    // Owner is busy: the forward parks in the wait queue, Pending in the
    // replay cache.
    t1.serve(0, &fwd, Ns(10));
    assert_eq!(t1.locks[0].waiting.len(), 1);
    // A retransmitted forward meanwhile is swallowed, not double-queued.
    t1.serve(0, &fwd, Ns(600));
    assert_eq!(t1.locks[0].waiting.len(), 1);
    assert_eq!(t1.clock().borrow().stats.dup_requests_suppressed, 1);
    // Release hands the token over; the grant answers the requester's
    // original rid...
    t1.release(0);
    let g1 = s2.next_incoming();
    let (rid, resp) = Response::decode(&g1.data).unwrap();
    assert_eq!(rid, 31);
    assert!(matches!(resp, Response::Grant { lock: 0, .. }));
    assert!(!t1.locks[0].have_token, "token must migrate with the grant");
    // ...and upgrades the Pending entry in place, so a late duplicate of
    // the forward replays the grant instead of re-queueing.
    t1.serve(0, &fwd, Ns(2000));
    let g2 = s2.next_incoming();
    assert_eq!(g1.data, g2.data, "post-release duplicate must replay the grant");
    assert!(t1.locks[0].waiting.is_empty());
}
