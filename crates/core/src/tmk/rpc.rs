//! Request/response plumbing: the bottom layer of the runtime.
//!
//! Owns rid allocation, the **overlapped rpc engine** —
//! [`Tmk::rpc_issue`] registers a pending-response slot and sends;
//! [`Tmk::rpc_collect`] drains the substrate, matches out-of-order
//! responses against the whole outstanding-rid set, and defers incoming
//! requests to an async serve queue drained in virtual-arrival order
//! (the TreadMarks SIGIO discipline, minus the re-entrant dispatch) —
//! DSM-level reliability on lossy transports (per-rid virtual-time
//! retransmission timers with exponential backoff, the bounded
//! `(from, rid)` [`ReplayCache`], stale-response discard keyed on the
//! outstanding set), the `serve` dispatcher that fans incoming requests
//! out to the coherence and sync layers, and the shutdown linger. This
//! layer talks only to the [`Substrate`]; it never inspects protocol
//! payloads beyond the request/response envelope.

use std::collections::VecDeque;

use tm_sim::Ns;

use super::{Tmk, TmkEvent};
use crate::protocol::{Request, Response};
use crate::substrate::{Chan, IncomingMsg, Substrate, WaitOutcome};
use crate::wire::{pool, WireWriter};

/// One issued-but-uncollected rpc: the pending-response slot
/// [`Tmk::rpc_issue`] registers and [`Tmk::rpc_collect`] resolves.
///
/// Rid lifecycle: *issued* (slot pushed, frame sent) → *answered*
/// (`response` filled by the collector's absorb loop, possibly while
/// collecting a different rid) → *collected* (slot removed, frame
/// returned to the pool). On lossy transports an issued slot also cycles
/// through *retransmitting* whenever its per-rid deadline passes.
#[derive(Debug)]
pub(super) struct OutstandingRpc {
    rid: u32,
    to: usize,
    /// The encoded request, kept for retransmission. Empty on reliable
    /// transports (they never resend).
    frame: Vec<u8>,
    /// Current (backed-off) retransmission timeout. Unused on reliable
    /// transports.
    rto: Ns,
    /// Virtual-time deadline of the next retransmission. When the
    /// transport reports the send dropped on the way out, this deadline
    /// is simply the earliest useful resend time — the collect loop's
    /// bounded wait covers both cases.
    deadline: Ns,
    attempts: u32,
    /// Retransmissions fired while the peer was *not* observably alive on
    /// the fabric. Only these count against the give-up budget: a timeout
    /// against a live peer is clock skew (a spinning consumer advances
    /// its virtual clock only ~600 ns per probe while our backed-off
    /// deadlines recede), not evidence of loss.
    silent: u32,
    response: Option<Response>,
}

/// A request deferred to the async serve queue: received mid-collect and
/// dispatched later in virtual-arrival order.
#[derive(Debug)]
pub(super) struct QueuedRequest {
    from: usize,
    data: Vec<u8>,
    arrival: Ns,
}

/// What to do when a duplicate of an already-seen request arrives
/// (lossy transports retransmit; handlers must stay idempotent).
#[derive(Debug, Clone)]
pub(super) enum ReplayAction {
    /// The original is still queued (lock wait, barrier wait): swallow
    /// duplicates; the eventual grant/release goes out through the
    /// normal path (which upgrades this entry to `Respond`).
    Pending,
    /// We already responded with these bytes: re-send them (the original
    /// response may have been the loss that triggered the retransmit).
    Respond { to: usize, bytes: Vec<u8> },
    /// We forwarded the request (lock manager → owner): re-forward the
    /// identical bytes — same forwarded rid, so dedup chains compose.
    Forward { to: usize, bytes: Vec<u8> },
}

/// Bounded responder-side replay cache entry, keyed on `(from, rid)`.
#[derive(Debug)]
struct ReplayEntry {
    from: usize,
    rid: u32,
    action: ReplayAction,
}

/// Replay-cache depth. With one outstanding request per peer plus
/// forwards, live duplicates are always much younger than this.
const REPLAY_CACHE_CAP: usize = 128;

/// Bounded responder-side duplicate suppression, keyed on `(from, rid)`.
/// FIFO eviction; `remember` upgrades in place so a queued request's
/// entry follows it from [`ReplayAction::Pending`] to the terminal
/// action taken when it is finally answered.
#[derive(Debug, Default)]
pub(super) struct ReplayCache {
    entries: VecDeque<ReplayEntry>,
}

impl ReplayCache {
    pub(super) fn new() -> Self {
        ReplayCache {
            entries: VecDeque::new(),
        }
    }

    /// The recorded action for `(from, rid)`, if the request was seen.
    pub(super) fn lookup(&self, from: usize, rid: u32) -> Option<&ReplayAction> {
        self.entries
            .iter()
            .find(|e| e.from == from && e.rid == rid)
            .map(|e| &e.action)
    }

    /// Record (or upgrade in place) the action taken for `(from, rid)`,
    /// evicting the oldest entry at capacity.
    pub(super) fn remember(&mut self, from: usize, rid: u32, action: ReplayAction) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.from == from && e.rid == rid)
        {
            e.action = action;
            return;
        }
        if self.entries.len() >= REPLAY_CACHE_CAP {
            self.entries.pop_front();
        }
        self.entries.push_back(ReplayEntry { from, rid, action });
    }

    #[cfg(test)]
    pub(super) fn len(&self) -> usize {
        self.entries.len()
    }
}

impl<S: Substrate> Tmk<S> {
    /// Allocate the next request id (monotonic per node).
    pub(super) fn rid(&mut self) -> u32 {
        let r = self.next_rid;
        self.next_rid += 1;
        r
    }

    /// Service one incoming request. `arrival` drives the interrupt
    /// preemption model.
    pub(super) fn serve(&mut self, from: usize, data: &[u8], arrival: Ns) {
        let Some((rid, req)) = Request::decode(data) else {
            // Undecodable frame (possible on lossy wires): discard, count.
            self.clock().borrow_mut().stats.malformed_dropped += 1;
            return;
        };
        trace!(self, "serve from={from} rid={rid} req={req:?}");
        if self.sub.retransmit_timeout().is_some() {
            if self.replay.lookup(from, rid).is_some() {
                // A retransmission of a request we already handled (or
                // still hold queued): replay the recorded action instead
                // of re-running the (state-mutating) handler.
                self.replay_duplicate(from, rid, arrival);
                return;
            }
            self.serving = Some((from, rid));
        }
        let cost = self.sub.params().dsm.handler_dispatch;
        match req {
            Request::Diff { page, lo, hi } => {
                self.ensure_pages(page as usize + 1);
                // Encode straight into a pooled frame: the diffs are
                // serialized from the page's retained list by reference,
                // never materialized as an owned Response.
                let mut w = WireWriter::pooled(256);
                let c = self.encode_diff_response(rid, page, lo, hi, &mut w);
                self.respond_wire(from, w, arrival, cost + c);
            }
            Request::MultiDiff { pages } => {
                let maxp = pages.iter().map(|&(p, _, _)| p).max().unwrap_or(0);
                self.ensure_pages(maxp as usize + 1);
                let mut w = WireWriter::pooled(1024);
                let c = self.encode_multi_diff_response(rid, &pages, &mut w);
                self.respond_wire(from, w, arrival, cost + c);
            }
            Request::Page { page } => {
                self.ensure_pages(page as usize + 1);
                let mut w = WireWriter::pooled(self.page_size + 32);
                let c = self.encode_full_page(rid, page, &mut w);
                self.respond_wire(from, w, arrival, cost + c);
            }
            Request::Acquire { lock, vc } => self.serve_acquire(from, rid, lock, vc, arrival, cost),
            Request::AcquireFwd {
                lock,
                requester,
                rid: orig_rid,
                vc,
            } => self.serve_acquire_fwd(from, rid, lock, requester, orig_rid, vc, arrival, cost),
            Request::BarrierArrive {
                barrier,
                vc,
                records,
            } => self.serve_barrier_arrive(from, rid, barrier, vc, records, arrival, cost),
            Request::BarrierTreeArrive {
                barrier,
                min_vc,
                vc,
                records,
            } => self.serve_tree_arrive(from, rid, barrier, min_vc, vc, records, arrival, cost),
            Request::NoticeRelease {
                barrier,
                tree,
                reply_rid,
                vc,
                records,
            } => self.serve_notice_release(from, rid, barrier, tree, reply_rid, vc, records, arrival, cost),
        }
        self.emit(TmkEvent::RequestServed { from, rid });
        // Handlers that responded already cleared this via the remember
        // hooks; anything left would mis-attribute a later response.
        self.serving = None;
    }

    // ----- duplicate-request suppression ------------------------------------

    /// If the request being served hasn't recorded an action yet, park it
    /// in the replay cache as pending (response comes later — queued lock
    /// grant, barrier release). A retransmission arriving meanwhile is
    /// then recognized and suppressed instead of re-queued.
    pub(super) fn note_pending(&mut self) {
        if let Some((f, r)) = self.serving.take() {
            self.replay.remember(f, r, ReplayAction::Pending);
        }
    }

    /// A retransmitted request matched the replay cache: re-emit the
    /// recorded effect without re-running the handler. Pending entries
    /// (response still owed) are swallowed — the eventual grant/release
    /// answers the original rid.
    fn replay_duplicate(&mut self, from: usize, rid: u32, arrival: Ns) {
        self.clock().borrow_mut().stats.dup_requests_suppressed += 1;
        let cost = self.sub.params().dsm.handler_dispatch;
        let action = self.replay.lookup(from, rid).expect("caller checked").clone();
        match action {
            ReplayAction::Pending => {
                self.charge_service(arrival, cost);
            }
            ReplayAction::Respond { to, bytes } => {
                let total = cost + self.sub.response_cost(bytes.len());
                let finish = self.charge_service(arrival, total);
                self.sub.send_response_at(to, &bytes, finish);
            }
            ReplayAction::Forward { to, bytes } => {
                let total = cost + self.sub.response_cost(bytes.len());
                let finish = self.charge_service(arrival, total);
                self.sub.send_request_at(to, &bytes, finish);
            }
        }
    }

    // ----- response emission ------------------------------------------------

    /// Charge the service window for a request with no (immediate)
    /// response; returns the service completion time.
    pub(super) fn charge_service(&mut self, arrival: Ns, cost: Ns) -> Ns {
        let scheme = self.sub.scheme();
        self.clock()
            .borrow_mut()
            .service_window(arrival, &scheme, cost)
    }

    /// Charge a NIC-offloaded service window: the work happens in NIC
    /// firmware on the asynchronous port, so no host interrupt is raised
    /// and no handler-dispatch cost is paid — service begins at arrival
    /// (or after earlier NIC work), costed by `cost` alone.
    pub(super) fn charge_service_offloaded(&mut self, arrival: Ns, cost: Ns) -> Ns {
        let scheme = tm_sim::AsyncScheme::Interrupt { cost: Ns::ZERO };
        self.clock()
            .borrow_mut()
            .service_window(arrival, &scheme, cost)
    }

    /// Charge the service window and emit the response at its completion.
    pub(super) fn respond(&mut self, to: usize, rid: u32, resp: Response, arrival: Ns, cost: Ns) {
        let mut w = WireWriter::pooled(128);
        resp.encode_into(rid, &mut w);
        self.respond_wire(to, w, arrival, cost);
    }

    /// Emit an already-encoded response at service completion, returning
    /// the frame buffer to the pool after the substrate copies it out.
    pub(super) fn respond_wire(&mut self, to: usize, w: WireWriter, arrival: Ns, mut cost: Ns) {
        cost += self.sub.response_cost(w.len());
        let finish = self.charge_service(arrival, cost);
        self.sub.send_response_at(to, w.as_slice(), finish);
        if let Some((from, rid)) = self.serving.take() {
            let bytes = w.as_slice().to_vec();
            self.replay
                .remember(from, rid, ReplayAction::Respond { to, bytes });
        }
        w.recycle();
    }

    /// Forward an encoded request on behalf of the one being served (lock
    /// manager → owner), recording the forward for replay.
    pub(super) fn forward_wire(&mut self, to: usize, w: WireWriter, arrival: Ns, mut cost: Ns) {
        cost += self.sub.response_cost(w.len());
        let finish = self.charge_service(arrival, cost);
        self.sub.send_request_at(to, w.as_slice(), finish);
        if let Some((f, r)) = self.serving.take() {
            let bytes = w.as_slice().to_vec();
            self.replay
                .remember(f, r, ReplayAction::Forward { to, bytes });
        }
        w.recycle();
    }

    /// Record the out-of-band response sent for request `(via)` — a queued
    /// grant or barrier release that goes out long after its serve window.
    /// The bytes are only copied on lossy transports; reliable ones pay
    /// nothing here.
    pub(super) fn remember_response(&mut self, via: (usize, u32), to: usize, bytes: &[u8]) {
        if self.sub.retransmit_timeout().is_some() {
            let bytes = bytes.to_vec();
            self.replay
                .remember(via.0, via.1, ReplayAction::Respond { to, bytes });
        }
    }

    // ----- the overlapped rpc engine ----------------------------------------

    /// Send a request and block for its response, servicing peers'
    /// requests while waiting (the TreadMarks SIGIO discipline). A plain
    /// issue + collect; overlap-aware callers split the two.
    pub(super) fn rpc(&mut self, to: usize, req: Request) -> Response {
        let rid = self.rpc_issue(to, req);
        self.rpc_collect(rid)
    }

    /// Legacy entry for callers that pre-chose the rid (acquire's
    /// manager-forwarding path): issue the already-encoded frame, then
    /// block for its response.
    pub(super) fn rpc_encoded(&mut self, to: usize, rid: u32, w: WireWriter) -> Response {
        self.rpc_issue_encoded(to, rid, w);
        self.rpc_collect(rid)
    }

    /// Allocate a rid, register its pending-response slot and send the
    /// request — without blocking. Any number of rids may be outstanding;
    /// each is collected exactly once via [`Self::rpc_collect`].
    pub(super) fn rpc_issue(&mut self, to: usize, req: Request) -> u32 {
        let rid = self.rid();
        trace!(self, "rpc to={to} rid={rid} req={req:?}");
        let mut w = WireWriter::pooled(64);
        req.encode_into(rid, &mut w);
        self.rpc_issue_encoded(to, rid, w);
        rid
    }

    /// [`Self::rpc_issue`] for an already-encoded frame. Consumes the
    /// writer: on lossy transports the frame is retained for per-rid
    /// retransmission, on reliable ones it goes straight back to the pool.
    pub(super) fn rpc_issue_encoded(&mut self, to: usize, rid: u32, w: WireWriter) {
        self.sub.send_request(to, w.as_slice());
        let (frame, rto, deadline) = match self.sub.retransmit_timeout() {
            Some(rto0) => {
                let now = self.clock().borrow().now();
                (w.finish(), rto0, now + rto0)
            }
            None => {
                w.recycle();
                (Vec::new(), Ns::ZERO, Ns::ZERO)
            }
        };
        self.outstanding.push(OutstandingRpc {
            rid,
            to,
            frame,
            rto,
            deadline,
            attempts: 0,
            silent: 0,
            response: None,
        });
        let depth = self.outstanding.len() as u32;
        self.emit(TmkEvent::RpcIssued { rid, depth });
    }

    /// Block until the response for `rid` is in, absorbing whatever else
    /// the substrate delivers meanwhile: responses for *other* outstanding
    /// rids are parked in their slots, requests go to the async serve
    /// queue and are dispatched in virtual-arrival order between waits.
    pub(super) fn rpc_collect(&mut self, rid: u32) -> Response {
        debug_assert!(
            self.outstanding.iter().any(|o| o.rid == rid),
            "node {}: collect of unissued rid {rid}",
            self.me
        );
        let lossy = self.sub.retransmit_timeout().is_some();
        loop {
            if let Some(resp) = self.take_collected(rid) {
                return resp;
            }
            self.drain_serve_queue();
            // Re-check after the drain: serving a `NoticeRelease` completes
            // one of our *own* slots locally — blocking below with the
            // answer already in hand would deadlock a reliable transport.
            if let Some(resp) = self.take_collected(rid) {
                return resp;
            }
            self.clock().borrow_mut().begin_wait();
            if lossy {
                let deadline = self
                    .nearest_deadline()
                    .expect("collecting with no unanswered rid");
                match self.sub.next_incoming_until(deadline) {
                    None => self.retransmit_due(),
                    Some(msg) => self.absorb(msg),
                }
            } else {
                let msg = self.sub.next_incoming();
                self.absorb(msg);
            }
        }
    }

    /// [`Self::rpc_collect`] for the exit fan: block until the response
    /// for `rid` is in *or* `peer` has deregistered its NIC, whichever
    /// the substrate observes first. `None` means the peer is gone — it
    /// can only have exited after applying our release, so the pending
    /// rpc is moot and its slot is cancelled (retransmission timers must
    /// not keep firing into a dead node and burning the give-up budget).
    /// Reliable transports never lose the response and collect normally.
    pub(super) fn rpc_collect_or_peer_done(&mut self, rid: u32, peer: usize) -> Option<Response> {
        if self.sub.retransmit_timeout().is_none() {
            return Some(self.rpc_collect(rid));
        }
        debug_assert!(
            self.outstanding.iter().any(|o| o.rid == rid),
            "node {}: collect of unissued rid {rid}",
            self.me
        );
        loop {
            if let Some(resp) = self.take_collected(rid) {
                return Some(resp);
            }
            self.drain_serve_queue();
            if let Some(resp) = self.take_collected(rid) {
                return Some(resp);
            }
            self.clock().borrow_mut().begin_wait();
            let deadline = self
                .nearest_deadline()
                .expect("collecting with no unanswered rid");
            match self.sub.next_incoming_until_watching(deadline, &[peer]) {
                WaitOutcome::Msg(msg) => self.absorb(msg),
                WaitOutcome::Deadline => self.retransmit_due(),
                WaitOutcome::PeersDone => {
                    self.cancel_rpc(rid);
                    return None;
                }
            }
        }
    }

    /// Drop `rid`'s pending slot without a response (the peer exited;
    /// the rpc is moot), recycling the retained retransmission frame.
    pub(super) fn cancel_rpc(&mut self, rid: u32) {
        if let Some(i) = self.outstanding.iter().position(|o| o.rid == rid) {
            let slot = self.outstanding.swap_remove(i);
            if !slot.frame.is_empty() {
                pool::give(slot.frame);
            }
        }
    }

    /// File `resp` into the local outstanding slot for `rid`, as if it had
    /// arrived on the wire — the overlapped write-notice path delivers the
    /// release payload *inside* a request, and the consumer completes its
    /// own blocked arrival rpc with the synthesized response. Returns
    /// `false` (and drops `resp`) when the slot is absent or already
    /// answered: a retransmitted `NoticeRelease` after the original landed.
    pub(super) fn complete_local(&mut self, rid: u32, resp: Response) -> bool {
        match self.outstanding.iter().position(|o| o.rid == rid) {
            Some(i) if self.outstanding[i].response.is_none() => {
                trace!(self, "complete-local rid={rid} resp={resp:?}");
                self.outstanding[i].response = Some(resp);
                true
            }
            _ => false,
        }
    }

    /// Remove `rid`'s slot if its response has arrived, recycling the
    /// retained retransmission frame.
    fn take_collected(&mut self, rid: u32) -> Option<Response> {
        let i = self
            .outstanding
            .iter()
            .position(|o| o.rid == rid && o.response.is_some())?;
        let slot = self.outstanding.swap_remove(i);
        if !slot.frame.is_empty() {
            pool::give(slot.frame);
        }
        slot.response
    }

    /// Earliest retransmission deadline over unanswered slots.
    fn nearest_deadline(&self) -> Option<Ns> {
        self.outstanding
            .iter()
            .filter(|o| o.response.is_none())
            .map(|o| o.deadline)
            .min()
    }

    /// Classify one delivered message: responses are matched against the
    /// whole outstanding-rid set, requests are deferred to the serve
    /// queue (together with any burst that arrived behind them), loss
    /// tombstones trigger targeted retransmission.
    pub(super) fn absorb(&mut self, msg: IncomingMsg) {
        if msg.lost {
            if msg.chan == Chan::Response {
                // A response from that peer died in flight: retransmit
                // what we still owe it instead of sitting out the timers.
                self.retransmit_to(msg.from);
            }
            // Lost requests are the sender's problem — its timer
            // re-delivers.
            pool::give(msg.data);
            return;
        }
        match msg.chan {
            Chan::Response => self.absorb_response(msg),
            Chan::Request => {
                self.queue_request(msg);
                // Pull in everything else that already arrived so the
                // next drain dispatches the burst in virtual-arrival
                // order rather than substrate pop order.
                while let Some(m) = self.sub.poll_incoming() {
                    if m.lost {
                        pool::give(m.data);
                    } else if m.chan == Chan::Request {
                        self.queue_request(m);
                    } else {
                        self.absorb_response(m);
                    }
                }
            }
        }
    }

    fn queue_request(&mut self, msg: IncomingMsg) {
        self.serve_q.push(QueuedRequest {
            from: msg.from,
            data: msg.data,
            arrival: msg.arrival,
        });
    }

    /// File a response into its outstanding slot, or discard it as stale.
    /// The discard keys on the *full* outstanding set: a late duplicate
    /// for rid A must never be mistaken for rid B's answer just because B
    /// is the one currently being collected.
    fn absorb_response(&mut self, msg: IncomingMsg) {
        let lossy = self.sub.retransmit_timeout().is_some();
        let Some((rid, resp)) = Response::decode(&msg.data) else {
            assert!(lossy, "node {}: malformed response", self.me);
            self.clock().borrow_mut().stats.malformed_dropped += 1;
            pool::give(msg.data);
            return;
        };
        pool::give(msg.data);
        assert!(
            rid < self.next_rid,
            "node {}: response from the future (rid {rid})",
            self.me
        );
        match self.outstanding.iter().position(|o| o.rid == rid) {
            Some(i) if self.outstanding[i].response.is_none() => {
                trace!(self, "collect rid={rid} resp={resp:?}");
                self.outstanding[i].response = Some(resp);
            }
            Some(_) => {
                // Duplicate answer to a slot already filled (a
                // retransmission crossed its first response).
                assert!(lossy, "node {}: duplicate response for rid {rid}", self.me);
                self.clock().borrow_mut().stats.stale_responses_dropped += 1;
            }
            None => {
                // Answer to an rpc we already collected.
                assert!(lossy, "node {}: unexpected response for rid {rid}", self.me);
                self.clock().borrow_mut().stats.stale_responses_dropped += 1;
            }
        }
    }

    /// Dispatch every queued request, earliest virtual arrival first.
    /// Handlers never call back into the collect loop (they respond via
    /// service windows), so draining between waits cannot recurse.
    pub(super) fn drain_serve_queue(&mut self) {
        while !self.serve_q.is_empty() {
            let mut pick = 0;
            for i in 1..self.serve_q.len() {
                if self.serve_q[i].arrival < self.serve_q[pick].arrival {
                    pick = i;
                }
            }
            let q = self.serve_q.remove(pick);
            self.serve(q.from, &q.data, q.arrival);
            pool::give(q.data);
        }
    }

    /// Retransmit every unanswered slot whose deadline has passed.
    fn retransmit_due(&mut self) {
        let now = self.clock().borrow().now();
        self.retransmit_where(|o| o.deadline <= now);
    }

    /// Retransmit every unanswered slot addressed to `to` (its response
    /// was observed lost — no point sitting out the rest of the timer).
    fn retransmit_to(&mut self, to: usize) {
        self.retransmit_where(|o| o.to == to);
    }

    /// Fire one retransmission for every unanswered slot matching `pred`.
    ///
    /// The give-up budget is clamped to observable peer progress: an
    /// expired timer only counts against `rto_retries` when the peer is
    /// *not* alive on the fabric. Against a live peer the timeout is
    /// requester/responder clock skew, not loss — a spinning consumer
    /// advances its virtual clock only ~600 ns per probe, so the
    /// requester's exponentially backed-off deadlines recede faster than
    /// the peer's clock and a naive budget exhausts against a healthy
    /// node. For the same reason the exponential backoff is capped at
    /// `rto0 << rto_retries`: unbounded doubling would let a single
    /// skew-induced timeout push the next deadline past the end of the
    /// run.
    fn retransmit_where(&mut self, pred: impl Fn(&OutstandingRpc) -> bool) {
        let cap = self.sub.params().udp.rto_retries;
        let rto_ceiling = self
            .sub
            .retransmit_timeout()
            .map(|rto0| rto0 * (1u64 << cap.min(20)));
        for i in 0..self.outstanding.len() {
            if self.outstanding[i].response.is_some() || !pred(&self.outstanding[i]) {
                continue;
            }
            let (rid, to) = (self.outstanding[i].rid, self.outstanding[i].to);
            self.outstanding[i].attempts += 1;
            let attempt = self.outstanding[i].attempts;
            if !self.sub.peer_alive(to) {
                self.outstanding[i].silent += 1;
                let silent = self.outstanding[i].silent;
                assert!(
                    silent <= cap,
                    "node {}: rid {rid} to {to}: gave up after {cap} silent retransmissions \
                     ({attempt} total)",
                    self.me
                );
            }
            self.clock().borrow_mut().stats.retransmits += 1;
            self.emit(TmkEvent::RetransmitFired { rid, attempt });
            let frame = std::mem::take(&mut self.outstanding[i].frame);
            self.sub.send_request(to, &frame);
            let now = self.clock().borrow().now();
            let slot = &mut self.outstanding[i];
            slot.frame = frame;
            slot.rto = slot.rto * 2;
            if let Some(ceiling) = rto_ceiling {
                slot.rto = slot.rto.min(ceiling);
            }
            slot.deadline = now + slot.rto;
        }
    }

    /// Service any requests that have already arrived (called at natural
    /// application boundaries; with interrupts the service window still
    /// starts at the request's arrival, preempting retroactively).
    pub fn poll_serve(&mut self) {
        while let Some(msg) = self.sub.poll_request() {
            if msg.lost {
                pool::give(msg.data);
                continue;
            }
            self.queue_request(msg);
        }
        self.drain_serve_queue();
    }

    /// Lossy-transport shutdown linger: keep answering retransmitted
    /// requests from the replay cache until every peer's NIC has left the
    /// fabric (a client whose final release was lost depends on it).
    pub(super) fn shutdown_linger(&mut self) {
        self.drain_serve_queue();
        loop {
            match self.sub.shutdown_poll() {
                crate::substrate::ShutdownPoll::Done => break,
                crate::substrate::ShutdownPoll::Quiet => {}
                crate::substrate::ShutdownPoll::Msg(msg) => self.linger_dispatch(msg),
            }
        }
    }

    /// Shutdown linger scoped to `watch` (a tree node's descendants):
    /// ends as soon as every watched peer's NIC has left the fabric,
    /// regardless of peers elsewhere in the tree — lingering on the whole
    /// cluster would deadlock parent against lingering ancestor.
    pub(super) fn shutdown_linger_watching(&mut self, watch: &[usize]) {
        self.drain_serve_queue();
        loop {
            match self.sub.shutdown_poll_watching(watch) {
                crate::substrate::ShutdownPoll::Done => break,
                crate::substrate::ShutdownPoll::Quiet => {}
                crate::substrate::ShutdownPoll::Msg(msg) => self.linger_dispatch(msg),
            }
        }
    }

    fn linger_dispatch(&mut self, msg: crate::substrate::IncomingMsg) {
        if !msg.lost && msg.chan == Chan::Request {
            self.serve(msg.from, &msg.data, msg.arrival);
        } else if !msg.lost && msg.chan == Chan::Response {
            self.clock().borrow_mut().stats.stale_responses_dropped += 1;
        }
        pool::give(msg.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn respond(to: usize, b: &[u8]) -> ReplayAction {
        ReplayAction::Respond {
            to,
            bytes: b.to_vec(),
        }
    }

    #[test]
    fn remember_then_lookup() {
        let mut c = ReplayCache::new();
        assert!(c.lookup(3, 7).is_none());
        c.remember(3, 7, ReplayAction::Pending);
        assert!(matches!(c.lookup(3, 7), Some(ReplayAction::Pending)));
        // Same rid from a different node is a different request.
        assert!(c.lookup(4, 7).is_none());
    }

    #[test]
    fn upgrade_in_place_pending_to_respond() {
        // A queued lock acquire is Pending until the grant goes out; the
        // upgrade must replace the entry, not shadow it with a second one.
        let mut c = ReplayCache::new();
        c.remember(2, 11, ReplayAction::Pending);
        c.remember(2, 11, respond(2, b"grant"));
        assert_eq!(c.len(), 1);
        match c.lookup(2, 11) {
            Some(ReplayAction::Respond { to, bytes }) => {
                assert_eq!(*to, 2);
                assert_eq!(bytes, b"grant");
            }
            other => panic!("expected Respond, got {other:?}"),
        }
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = ReplayCache::new();
        for rid in 0..REPLAY_CACHE_CAP as u32 {
            c.remember(1, rid, ReplayAction::Pending);
        }
        assert_eq!(c.len(), REPLAY_CACHE_CAP);
        assert!(c.lookup(1, 0).is_some());
        // One more evicts the oldest, and only the oldest.
        c.remember(1, REPLAY_CACHE_CAP as u32, ReplayAction::Pending);
        assert_eq!(c.len(), REPLAY_CACHE_CAP);
        assert!(c.lookup(1, 0).is_none());
        assert!(c.lookup(1, 1).is_some());
        assert!(c.lookup(1, REPLAY_CACHE_CAP as u32).is_some());
    }

    #[test]
    fn upgrade_does_not_evict() {
        // In-place upgrades at capacity must not push anything out.
        let mut c = ReplayCache::new();
        for rid in 0..REPLAY_CACHE_CAP as u32 {
            c.remember(1, rid, ReplayAction::Pending);
        }
        c.remember(1, 5, respond(1, b"late-grant"));
        assert_eq!(c.len(), REPLAY_CACHE_CAP);
        assert!(c.lookup(1, 0).is_some(), "oldest entry evicted by upgrade");
    }

    #[test]
    fn forwarded_grant_keyed_on_forward_identity() {
        // A forwarded acquire reaches the owner as (manager, fwd_rid); the
        // grant is recorded under that key so the *manager's* retransmitted
        // forward replays it — the original requester never retransmits to
        // the owner directly.
        let mut c = ReplayCache::new();
        let (manager, fwd_rid) = (0usize, 42u32);
        let requester = 2usize;
        c.remember(manager, fwd_rid, ReplayAction::Pending);
        c.remember(manager, fwd_rid, respond(requester, b"grant-bytes"));
        match c.lookup(manager, fwd_rid) {
            Some(ReplayAction::Respond { to, .. }) => assert_eq!(*to, requester),
            other => panic!("expected Respond to requester, got {other:?}"),
        }
        // The requester's own (requester, rid) key is untouched.
        assert!(c.lookup(requester, fwd_rid).is_none());
    }
}
