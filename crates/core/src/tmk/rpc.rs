//! Request/response plumbing: the bottom layer of the runtime.
//!
//! Owns rid allocation, the blocking `rpc` discipline (serve peers'
//! requests while waiting for our response — the TreadMarks SIGIO
//! discipline), DSM-level reliability on lossy transports (virtual-time
//! retransmission timer with exponential backoff, the bounded
//! `(from, rid)` [`ReplayCache`], stale-response discard), the `serve`
//! dispatcher that fans incoming requests out to the coherence and sync
//! layers, and the shutdown linger. This layer talks only to the
//! [`Substrate`]; it never inspects protocol payloads beyond the
//! request/response envelope.

use std::collections::VecDeque;

use tm_sim::Ns;

use super::{Tmk, TmkEvent};
use crate::protocol::{Request, Response};
use crate::substrate::{Chan, Substrate};
use crate::wire::{pool, WireWriter};

/// What to do when a duplicate of an already-seen request arrives
/// (lossy transports retransmit; handlers must stay idempotent).
#[derive(Debug, Clone)]
pub(super) enum ReplayAction {
    /// The original is still queued (lock wait, barrier wait): swallow
    /// duplicates; the eventual grant/release goes out through the
    /// normal path (which upgrades this entry to `Respond`).
    Pending,
    /// We already responded with these bytes: re-send them (the original
    /// response may have been the loss that triggered the retransmit).
    Respond { to: usize, bytes: Vec<u8> },
    /// We forwarded the request (lock manager → owner): re-forward the
    /// identical bytes — same forwarded rid, so dedup chains compose.
    Forward { to: usize, bytes: Vec<u8> },
}

/// Bounded responder-side replay cache entry, keyed on `(from, rid)`.
#[derive(Debug)]
struct ReplayEntry {
    from: usize,
    rid: u32,
    action: ReplayAction,
}

/// Replay-cache depth. With one outstanding request per peer plus
/// forwards, live duplicates are always much younger than this.
const REPLAY_CACHE_CAP: usize = 128;

/// Bounded responder-side duplicate suppression, keyed on `(from, rid)`.
/// FIFO eviction; `remember` upgrades in place so a queued request's
/// entry follows it from [`ReplayAction::Pending`] to the terminal
/// action taken when it is finally answered.
#[derive(Debug, Default)]
pub(super) struct ReplayCache {
    entries: VecDeque<ReplayEntry>,
}

impl ReplayCache {
    pub(super) fn new() -> Self {
        ReplayCache {
            entries: VecDeque::new(),
        }
    }

    /// The recorded action for `(from, rid)`, if the request was seen.
    pub(super) fn lookup(&self, from: usize, rid: u32) -> Option<&ReplayAction> {
        self.entries
            .iter()
            .find(|e| e.from == from && e.rid == rid)
            .map(|e| &e.action)
    }

    /// Record (or upgrade in place) the action taken for `(from, rid)`,
    /// evicting the oldest entry at capacity.
    pub(super) fn remember(&mut self, from: usize, rid: u32, action: ReplayAction) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.from == from && e.rid == rid)
        {
            e.action = action;
            return;
        }
        if self.entries.len() >= REPLAY_CACHE_CAP {
            self.entries.pop_front();
        }
        self.entries.push_back(ReplayEntry { from, rid, action });
    }

    #[cfg(test)]
    pub(super) fn len(&self) -> usize {
        self.entries.len()
    }
}

impl<S: Substrate> Tmk<S> {
    /// Allocate the next request id (monotonic per node).
    pub(super) fn rid(&mut self) -> u32 {
        let r = self.next_rid;
        self.next_rid += 1;
        r
    }

    /// Service one incoming request. `arrival` drives the interrupt
    /// preemption model.
    pub(super) fn serve(&mut self, from: usize, data: &[u8], arrival: Ns) {
        let Some((rid, req)) = Request::decode(data) else {
            // Undecodable frame (possible on lossy wires): discard, count.
            self.clock().borrow_mut().stats.malformed_dropped += 1;
            return;
        };
        trace!(self, "serve from={from} rid={rid} req={req:?}");
        if self.sub.retransmit_timeout().is_some() {
            if self.replay.lookup(from, rid).is_some() {
                // A retransmission of a request we already handled (or
                // still hold queued): replay the recorded action instead
                // of re-running the (state-mutating) handler.
                self.replay_duplicate(from, rid, arrival);
                return;
            }
            self.serving = Some((from, rid));
        }
        let cost = self.sub.params().dsm.handler_dispatch;
        match req {
            Request::Diff { page, lo, hi } => {
                self.ensure_pages(page as usize + 1);
                // Encode straight into a pooled frame: the diffs are
                // serialized from the page's retained list by reference,
                // never materialized as an owned Response.
                let mut w = WireWriter::pooled(256);
                let c = self.encode_diff_response(rid, page, lo, hi, &mut w);
                self.respond_wire(from, w, arrival, cost + c);
            }
            Request::Page { page } => {
                self.ensure_pages(page as usize + 1);
                let mut w = WireWriter::pooled(self.page_size + 32);
                let c = self.encode_full_page(rid, page, &mut w);
                self.respond_wire(from, w, arrival, cost + c);
            }
            Request::Acquire { lock, vc } => self.serve_acquire(from, rid, lock, vc, arrival, cost),
            Request::AcquireFwd {
                lock,
                requester,
                rid: orig_rid,
                vc,
            } => self.serve_acquire_fwd(from, rid, lock, requester, orig_rid, vc, arrival, cost),
            Request::BarrierArrive {
                barrier,
                vc,
                records,
            } => self.serve_barrier_arrive(from, rid, barrier, vc, records, arrival, cost),
            Request::BarrierTreeArrive {
                barrier,
                min_vc,
                vc,
                records,
            } => self.serve_tree_arrive(from, rid, barrier, min_vc, vc, records, arrival, cost),
        }
        self.emit(TmkEvent::RequestServed { from, rid });
        // Handlers that responded already cleared this via the remember
        // hooks; anything left would mis-attribute a later response.
        self.serving = None;
    }

    // ----- duplicate-request suppression ------------------------------------

    /// If the request being served hasn't recorded an action yet, park it
    /// in the replay cache as pending (response comes later — queued lock
    /// grant, barrier release). A retransmission arriving meanwhile is
    /// then recognized and suppressed instead of re-queued.
    pub(super) fn note_pending(&mut self) {
        if let Some((f, r)) = self.serving.take() {
            self.replay.remember(f, r, ReplayAction::Pending);
        }
    }

    /// A retransmitted request matched the replay cache: re-emit the
    /// recorded effect without re-running the handler. Pending entries
    /// (response still owed) are swallowed — the eventual grant/release
    /// answers the original rid.
    fn replay_duplicate(&mut self, from: usize, rid: u32, arrival: Ns) {
        self.clock().borrow_mut().stats.dup_requests_suppressed += 1;
        let cost = self.sub.params().dsm.handler_dispatch;
        let action = self.replay.lookup(from, rid).expect("caller checked").clone();
        match action {
            ReplayAction::Pending => {
                self.charge_service(arrival, cost);
            }
            ReplayAction::Respond { to, bytes } => {
                let total = cost + self.sub.response_cost(bytes.len());
                let finish = self.charge_service(arrival, total);
                self.sub.send_response_at(to, &bytes, finish);
            }
            ReplayAction::Forward { to, bytes } => {
                let total = cost + self.sub.response_cost(bytes.len());
                let finish = self.charge_service(arrival, total);
                self.sub.send_request_at(to, &bytes, finish);
            }
        }
    }

    // ----- response emission ------------------------------------------------

    /// Charge the service window for a request with no (immediate)
    /// response; returns the service completion time.
    pub(super) fn charge_service(&mut self, arrival: Ns, cost: Ns) -> Ns {
        let scheme = self.sub.scheme();
        self.clock()
            .borrow_mut()
            .service_window(arrival, &scheme, cost)
    }

    /// Charge a NIC-offloaded service window: the work happens in NIC
    /// firmware on the asynchronous port, so no host interrupt is raised
    /// and no handler-dispatch cost is paid — service begins at arrival
    /// (or after earlier NIC work), costed by `cost` alone.
    pub(super) fn charge_service_offloaded(&mut self, arrival: Ns, cost: Ns) -> Ns {
        let scheme = tm_sim::AsyncScheme::Interrupt { cost: Ns::ZERO };
        self.clock()
            .borrow_mut()
            .service_window(arrival, &scheme, cost)
    }

    /// Charge the service window and emit the response at its completion.
    pub(super) fn respond(&mut self, to: usize, rid: u32, resp: Response, arrival: Ns, cost: Ns) {
        let mut w = WireWriter::pooled(128);
        resp.encode_into(rid, &mut w);
        self.respond_wire(to, w, arrival, cost);
    }

    /// Emit an already-encoded response at service completion, returning
    /// the frame buffer to the pool after the substrate copies it out.
    pub(super) fn respond_wire(&mut self, to: usize, w: WireWriter, arrival: Ns, mut cost: Ns) {
        cost += self.sub.response_cost(w.len());
        let finish = self.charge_service(arrival, cost);
        self.sub.send_response_at(to, w.as_slice(), finish);
        if let Some((from, rid)) = self.serving.take() {
            let bytes = w.as_slice().to_vec();
            self.replay
                .remember(from, rid, ReplayAction::Respond { to, bytes });
        }
        w.recycle();
    }

    /// Forward an encoded request on behalf of the one being served (lock
    /// manager → owner), recording the forward for replay.
    pub(super) fn forward_wire(&mut self, to: usize, w: WireWriter, arrival: Ns, mut cost: Ns) {
        cost += self.sub.response_cost(w.len());
        let finish = self.charge_service(arrival, cost);
        self.sub.send_request_at(to, w.as_slice(), finish);
        if let Some((f, r)) = self.serving.take() {
            let bytes = w.as_slice().to_vec();
            self.replay
                .remember(f, r, ReplayAction::Forward { to, bytes });
        }
        w.recycle();
    }

    /// Record the out-of-band response sent for request `(via)` — a queued
    /// grant or barrier release that goes out long after its serve window.
    /// The bytes are only copied on lossy transports; reliable ones pay
    /// nothing here.
    pub(super) fn remember_response(&mut self, via: (usize, u32), to: usize, bytes: &[u8]) {
        if self.sub.retransmit_timeout().is_some() {
            let bytes = bytes.to_vec();
            self.replay
                .remember(via.0, via.1, ReplayAction::Respond { to, bytes });
        }
    }

    // ----- synchronous RPC --------------------------------------------------

    /// Send a request and block for its response, servicing peers'
    /// requests while waiting (the TreadMarks SIGIO discipline).
    pub(super) fn rpc(&mut self, to: usize, req: Request) -> Response {
        let rid = self.rid();
        trace!(self, "rpc to={to} rid={rid} req={req:?}");
        let mut w = WireWriter::pooled(64);
        req.encode_into(rid, &mut w);
        self.rpc_encoded(to, rid, w)
    }

    /// The rpc body proper, for callers that pre-chose the rid (acquire's
    /// manager-forwarding path). Consumes and recycles the frame.
    ///
    /// Reliable transports (`retransmit_timeout() == None`) use the plain
    /// send-once loop. Lossy ones get DSM-level reliability: a virtual-time
    /// retransmission timer with exponential backoff, resending under the
    /// *same* rid (the responder's replay cache makes duplicates
    /// idempotent), plus stale-response and tombstone handling.
    pub(super) fn rpc_encoded(&mut self, to: usize, rid: u32, w: WireWriter) -> Response {
        let Some(rto0) = self.sub.retransmit_timeout() else {
            self.sub.send_request(to, w.as_slice());
            w.recycle();
            self.clock().borrow_mut().begin_wait();
            loop {
                let msg = self.sub.next_incoming();
                match msg.chan {
                    Chan::Response => {
                        let (got_rid, resp) =
                            Response::decode(&msg.data).expect("malformed response");
                        assert_eq!(
                            got_rid, rid,
                            "node {}: response correlation mismatch",
                            self.me
                        );
                        pool::give(msg.data);
                        return resp;
                    }
                    Chan::Request => {
                        self.serve(msg.from, &msg.data, msg.arrival);
                        pool::give(msg.data);
                        self.clock().borrow_mut().begin_wait();
                    }
                }
            }
        };
        let cap = self.sub.params().udp.rto_retries;
        let mut rto = rto0;
        let mut attempts = 0u32;
        // `sent == false`: the transport knows the datagram was dropped on
        // the way out — skip the futile wait and retransmit at the deadline.
        let mut sent = self.sub.send_request(to, w.as_slice());
        self.clock().borrow_mut().begin_wait();
        let mut deadline = self.clock().borrow().now() + rto;
        macro_rules! retransmit {
            () => {{
                attempts += 1;
                assert!(
                    attempts <= cap,
                    "node {}: rid {rid} to {to}: gave up after {cap} retransmissions",
                    self.me
                );
                self.clock().borrow_mut().stats.retransmits += 1;
                self.emit(TmkEvent::RetransmitFired { rid, attempt: attempts });
                rto = rto * 2;
                sent = self.sub.send_request(to, w.as_slice());
                self.clock().borrow_mut().begin_wait();
                deadline = self.clock().borrow().now() + rto;
            }};
        }
        loop {
            if !sent {
                self.clock().borrow_mut().wait_until(deadline);
                retransmit!();
                continue;
            }
            match self.sub.next_incoming_until(deadline) {
                None => retransmit!(),
                Some(msg) if msg.lost => {
                    if msg.chan == Chan::Response {
                        // Our (likely) response died in flight: no point
                        // sitting out the rest of the timer.
                        retransmit!();
                    } else {
                        self.clock().borrow_mut().begin_wait();
                    }
                }
                Some(msg) => match msg.chan {
                    Chan::Response => {
                        let Some((got_rid, resp)) = Response::decode(&msg.data) else {
                            self.clock().borrow_mut().stats.malformed_dropped += 1;
                            pool::give(msg.data);
                            self.clock().borrow_mut().begin_wait();
                            continue;
                        };
                        if got_rid == rid {
                            pool::give(msg.data);
                            w.recycle();
                            return resp;
                        }
                        assert!(
                            got_rid < rid,
                            "node {}: response from the future (rid {got_rid} > {rid})",
                            self.me
                        );
                        // Duplicate answer to an rpc we already completed
                        // (a retransmission crossed its response).
                        self.clock().borrow_mut().stats.stale_responses_dropped += 1;
                        pool::give(msg.data);
                        self.clock().borrow_mut().begin_wait();
                    }
                    Chan::Request => {
                        self.serve(msg.from, &msg.data, msg.arrival);
                        pool::give(msg.data);
                        self.clock().borrow_mut().begin_wait();
                    }
                },
            }
        }
    }

    /// Service any requests that have already arrived (called at natural
    /// application boundaries; with interrupts the service window still
    /// starts at the request's arrival, preempting retroactively).
    pub fn poll_serve(&mut self) {
        while let Some(msg) = self.sub.poll_request() {
            self.serve(msg.from, &msg.data, msg.arrival);
            pool::give(msg.data);
        }
    }

    /// Lossy-transport shutdown linger: keep answering retransmitted
    /// requests from the replay cache until every peer's NIC has left the
    /// fabric (a client whose final release was lost depends on it).
    pub(super) fn shutdown_linger(&mut self) {
        loop {
            match self.sub.shutdown_poll() {
                crate::substrate::ShutdownPoll::Done => break,
                crate::substrate::ShutdownPoll::Quiet => {}
                crate::substrate::ShutdownPoll::Msg(msg) => self.linger_dispatch(msg),
            }
        }
    }

    /// Shutdown linger scoped to `watch` (a tree node's descendants):
    /// ends as soon as every watched peer's NIC has left the fabric,
    /// regardless of peers elsewhere in the tree — lingering on the whole
    /// cluster would deadlock parent against lingering ancestor.
    pub(super) fn shutdown_linger_watching(&mut self, watch: &[usize]) {
        loop {
            match self.sub.shutdown_poll_watching(watch) {
                crate::substrate::ShutdownPoll::Done => break,
                crate::substrate::ShutdownPoll::Quiet => {}
                crate::substrate::ShutdownPoll::Msg(msg) => self.linger_dispatch(msg),
            }
        }
    }

    fn linger_dispatch(&mut self, msg: crate::substrate::IncomingMsg) {
        if !msg.lost && msg.chan == Chan::Request {
            self.serve(msg.from, &msg.data, msg.arrival);
        } else if !msg.lost && msg.chan == Chan::Response {
            self.clock().borrow_mut().stats.stale_responses_dropped += 1;
        }
        pool::give(msg.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn respond(to: usize, b: &[u8]) -> ReplayAction {
        ReplayAction::Respond {
            to,
            bytes: b.to_vec(),
        }
    }

    #[test]
    fn remember_then_lookup() {
        let mut c = ReplayCache::new();
        assert!(c.lookup(3, 7).is_none());
        c.remember(3, 7, ReplayAction::Pending);
        assert!(matches!(c.lookup(3, 7), Some(ReplayAction::Pending)));
        // Same rid from a different node is a different request.
        assert!(c.lookup(4, 7).is_none());
    }

    #[test]
    fn upgrade_in_place_pending_to_respond() {
        // A queued lock acquire is Pending until the grant goes out; the
        // upgrade must replace the entry, not shadow it with a second one.
        let mut c = ReplayCache::new();
        c.remember(2, 11, ReplayAction::Pending);
        c.remember(2, 11, respond(2, b"grant"));
        assert_eq!(c.len(), 1);
        match c.lookup(2, 11) {
            Some(ReplayAction::Respond { to, bytes }) => {
                assert_eq!(*to, 2);
                assert_eq!(bytes, b"grant");
            }
            other => panic!("expected Respond, got {other:?}"),
        }
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = ReplayCache::new();
        for rid in 0..REPLAY_CACHE_CAP as u32 {
            c.remember(1, rid, ReplayAction::Pending);
        }
        assert_eq!(c.len(), REPLAY_CACHE_CAP);
        assert!(c.lookup(1, 0).is_some());
        // One more evicts the oldest, and only the oldest.
        c.remember(1, REPLAY_CACHE_CAP as u32, ReplayAction::Pending);
        assert_eq!(c.len(), REPLAY_CACHE_CAP);
        assert!(c.lookup(1, 0).is_none());
        assert!(c.lookup(1, 1).is_some());
        assert!(c.lookup(1, REPLAY_CACHE_CAP as u32).is_some());
    }

    #[test]
    fn upgrade_does_not_evict() {
        // In-place upgrades at capacity must not push anything out.
        let mut c = ReplayCache::new();
        for rid in 0..REPLAY_CACHE_CAP as u32 {
            c.remember(1, rid, ReplayAction::Pending);
        }
        c.remember(1, 5, respond(1, b"late-grant"));
        assert_eq!(c.len(), REPLAY_CACHE_CAP);
        assert!(c.lookup(1, 0).is_some(), "oldest entry evicted by upgrade");
    }

    #[test]
    fn forwarded_grant_keyed_on_forward_identity() {
        // A forwarded acquire reaches the owner as (manager, fwd_rid); the
        // grant is recorded under that key so the *manager's* retransmitted
        // forward replays it — the original requester never retransmits to
        // the owner directly.
        let mut c = ReplayCache::new();
        let (manager, fwd_rid) = (0usize, 42u32);
        let requester = 2usize;
        c.remember(manager, fwd_rid, ReplayAction::Pending);
        c.remember(manager, fwd_rid, respond(requester, b"grant-bytes"));
        match c.lookup(manager, fwd_rid) {
            Some(ReplayAction::Respond { to, .. }) => assert_eq!(*to, requester),
            other => panic!("expected Respond to requester, got {other:?}"),
        }
        // The requester's own (requester, rid) key is untouched.
        assert!(c.lookup(requester, fwd_rid).is_none());
    }
}
