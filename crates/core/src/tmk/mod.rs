//! The Tmk runtime: the TreadMarks API over a [`Substrate`].
//!
//! One `Tmk` lives in each node thread. The API mirrors TreadMarks':
//! `malloc`/`distribute`, `barrier`, lock `acquire`/`release`, plus the
//! byte/typed accessors that stand in for direct loads and stores (they
//! drive the page-fault state machine an mprotect build would).
//!
//! All protocol work is costed through the node's virtual clock; handler
//! work triggered by peers' asynchronous requests goes through
//! [`tm_sim::NodeClock::service_window`], which models interrupt
//! preemption — including retroactively, when the request arrived while
//! this node was computing.
//!
//! # Layering
//!
//! The runtime is an explicit layer stack, one module per layer, mirroring
//! the paper's Figure 1 (TreadMarks protocol over a thin substrate over
//! GM). Each layer calls only downward, through `pub(super)` seams:
//!
//! * `shmem` — the application-facing shared-memory API: regions,
//!   `read_bytes`/`write_bytes`, the typed accessors. Calls into
//!   coherence for fault transitions.
//! * `sync` — distributed locks (manager forwarding, token migration)
//!   and the centralized barrier. Calls into coherence for interval
//!   flush/apply and into rpc to move messages.
//! * `coherence` — lazy release consistency proper: the page table,
//!   twins, diff fetch/apply, interval records, write notices, epoch GC.
//!   Calls into rpc to fetch pages and diffs.
//! * `rpc` — request/response plumbing: rid allocation, the blocking
//!   `rpc` discipline (serve-while-waiting), retransmission timers, the
//!   `(from, rid)` replay cache, the `serve` dispatcher, shutdown linger.
//!   Talks only to the [`Substrate`].
//!
//! This module holds what the layers share: the [`Tmk`] struct itself,
//! its configuration, and the [`TmkEvent`] observability seam.

use tm_sim::{Ns, SharedClock, SimParams};

use crate::interval::IntervalLog;
use crate::page::{Page, PageId};
use crate::substrate::Substrate;
use crate::vc::VectorClock;

macro_rules! trace {
    ($self:expr, $($arg:tt)*) => {
        if std::env::var_os("TMK_TRACE").is_some() {
            eprintln!("[n{} t{}] {}", $self.me, $self.clock().borrow().now(), format!($($arg)*));
        }
    };
}

mod coherence;
mod rpc;
mod shmem;
mod sync;

use rpc::{OutstandingRpc, QueuedRequest, ReplayCache};
use shmem::RegionInfo;
use sync::{BarrierEpisode, LockState};

/// Handle to a shared allocation (returned by [`Tmk::malloc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedId(pub usize);

/// Barrier algorithm selection (the E7 scaling knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierAlgo {
    /// Every node sends its arrival to the single barrier manager, which
    /// serializes all merge + release work (the paper's implementation;
    /// O(n) cost at the manager).
    Centralized,
    /// Radix-`radix` combining tree rooted at the barrier manager: each
    /// interior node merges its children's arrivals and forwards one
    /// combined arrival upward; the root fans the release back down.
    /// O(log_k n) tree depth, at most `radix` serialized arrivals per
    /// node. Combining is charged at host handler cost (interrupt +
    /// dispatch), like any other request.
    Tree { radix: u16 },
    /// The same combining tree, but with merge and fan-out charged at
    /// NIC-firmware cost on the asynchronous port instead of
    /// host-interrupt + handler cost — the paper's §5 NIC-based barrier
    /// suggestion. See `MyrinetParams::nic_combine`.
    NicTree { radix: u16 },
}

/// How the coherence layer moves pending diffs at a page fault — the
/// overlapped-RPC-engine knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffFetch {
    /// One blocking rpc per last-writer, strictly in order — the
    /// TreadMarks specification baseline. A k-writer fault costs the sum
    /// of the k round trips.
    Serial,
    /// Issue every per-writer `Diff` request up front, then collect the
    /// responses; the fault costs ~max(RTT) instead of the sum.
    Parallel,
    /// Like `Parallel`, and additionally merge all pages owed by one
    /// writer into a single `MultiDiff` message — fewer messages, which
    /// is where FAST/GM's fixed per-message costs bite.
    Coalesced,
}

/// How the sync layer moves write notices and the fetches they imply —
/// the synchronization-pipelining knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPath {
    /// One blocking rpc per step, faults fetched lazily one page at a
    /// time inside the critical section — the TreadMarks specification
    /// baseline, message-for-message.
    Serial,
    /// Pipeline the synchronization paths through the overlapped RPC
    /// engine: a grant's write notices trigger one overlapped batch
    /// fetch of every page they invalidate (acquire+read cost ≈
    /// grant + max fetch instead of grant + Σ per-page round trips), and
    /// a barrier release with multiple downstream consumers distributes
    /// its notices via issued requests whose acks are collected out of
    /// order.
    Overlapped,
}

/// Runtime tunables.
#[derive(Debug, Clone)]
pub struct TmkConfig {
    /// Diffs retained per page before GC falls back to full-page serves.
    pub diff_keep: usize,
    /// Which node runs barriers (the tree root for tree algorithms).
    pub barrier_manager: u16,
    /// How barrier arrivals are combined and releases fanned out.
    pub barrier_algo: BarrierAlgo,
    /// How pending diffs are fetched at a page fault.
    pub diff_fetch: DiffFetch,
    /// How lock grants and write-notice distribution are pipelined.
    pub lock_path: LockPath,
    /// Stride-prefetcher depth: on a detected constant-stride fault
    /// sequence, speculatively fetch up to this many predicted pages
    /// ahead through the overlapped engine (0 disables). Prefetched data
    /// is staged and validated against the page's current write-notice
    /// coverage at apply time, so the knob never weakens LRC.
    pub prefetch_depth: usize,
}

impl Default for TmkConfig {
    fn default() -> Self {
        TmkConfig {
            diff_keep: 256,
            barrier_manager: 0,
            barrier_algo: BarrierAlgo::Centralized,
            diff_fetch: DiffFetch::Coalesced,
            lock_path: LockPath::Serial,
            prefetch_depth: 0,
        }
    }
}

/// Layer-boundary events, emitted at the same points the protocol
/// counters in [`tm_sim::stats::NodeStats`] tick. The hook is the seam an
/// observability layer (per-layer metrics, tracing) plugs into without
/// touching protocol code; emission is free when no hook is installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmkEvent {
    /// The rpc layer dispatched one incoming request to a handler.
    RequestServed { from: usize, rid: u32 },
    /// The coherence layer adopted a full page copy from a peer.
    PageFetched { page: PageId },
    /// The coherence layer applied `count` diffs to a page.
    DiffApplied { page: PageId, count: u64 },
    /// The sync layer handed a lock token to `to`.
    LockGranted { lock: u32, to: u16 },
    /// This node departed barrier `id`.
    BarrierCrossed { id: u32 },
    /// The rpc layer's retransmission timer fired (attempt number is
    /// 1-based).
    RetransmitFired { rid: u32, attempt: u32 },
    /// Tree barrier: this node forwarded one combined arrival (covering
    /// itself plus `children` direct subtrees) to its tree parent.
    BarrierArriveForwarded { barrier: u32, to: u16, children: u16 },
    /// Tree barrier: the root or an interior node fanned the release down
    /// to `children` tree children.
    BarrierReleaseFanned { barrier: u32, children: u16 },
    /// The rpc layer registered a new outstanding request; `depth` is the
    /// number of rids in flight *including* this one (the
    /// outstanding-rpc depth gauge reads its maximum).
    RpcIssued { rid: u32, depth: u32 },
    /// The coherence layer fanned `requests` concurrent diff fetches to
    /// `writers` distinct nodes in one round (parallel/coalesced engines
    /// only; a serial fetch never emits this).
    DiffFanout { writers: u16, requests: u16 },
    /// The sync layer overlapped `fetches` page fetches implied by a
    /// grant's write notices with the tail of lock acquire `lock`
    /// (`LockPath::Overlapped` only; feeds the lock-pipeline depth
    /// gauge).
    LockPipelined { lock: u32, fetches: usize },
    /// The stride prefetcher speculatively requested `page`'s pending
    /// diffs.
    PrefetchIssued { page: PageId },
    /// A page fault consumed staged prefetched data for `page`.
    PrefetchHit { page: PageId },
    /// Staged prefetched data for `page` was discarded unconsumed (sync-
    /// point drain or stale coverage).
    PrefetchWasted { page: PageId },
}

impl TmkEvent {
    /// Stable per-variant name, the key a metrics sink tallies under.
    pub fn kind(&self) -> &'static str {
        match self {
            TmkEvent::RequestServed { .. } => "request_served",
            TmkEvent::PageFetched { .. } => "page_fetched",
            TmkEvent::DiffApplied { .. } => "diff_applied",
            TmkEvent::LockGranted { .. } => "lock_granted",
            TmkEvent::BarrierCrossed { .. } => "barrier_crossed",
            TmkEvent::RetransmitFired { .. } => "retransmit_fired",
            TmkEvent::BarrierArriveForwarded { .. } => "barrier_arrive_forwarded",
            TmkEvent::BarrierReleaseFanned { .. } => "barrier_release_fanned",
            TmkEvent::RpcIssued { .. } => "rpc_issued",
            TmkEvent::DiffFanout { .. } => "diff_fanout",
            TmkEvent::LockPipelined { .. } => "lock_pipelined",
            TmkEvent::PrefetchIssued { .. } => "prefetch_issued",
            TmkEvent::PrefetchHit { .. } => "prefetch_hit",
            TmkEvent::PrefetchWasted { .. } => "prefetch_wasted",
        }
    }
}

/// Installed observer for [`TmkEvent`]s.
type EventHook = Box<dyn FnMut(&TmkEvent)>;

/// The per-node DSM runtime.
pub struct Tmk<S: Substrate> {
    // rpc layer --------------------------------------------------------
    sub: S,
    next_rid: u32,
    /// Responder-side duplicate suppression (lossy transports only; stays
    /// empty — and cost-free — on reliable ones).
    replay: ReplayCache,
    /// Key of the request currently being dispatched, for filing its
    /// replay-cache entry at the response site. `None` on reliable
    /// transports.
    serving: Option<(usize, u32)>,
    /// Issued-but-uncollected rpcs: the overlapped engine's pending-
    /// response table. Responses are matched against the whole set, so
    /// any number of rids can be in flight at once.
    outstanding: Vec<OutstandingRpc>,
    /// Requests received while collecting responses, deferred to the
    /// async serve queue and dispatched in virtual-arrival order instead
    /// of re-entrantly mid-collect.
    serve_q: Vec<QueuedRequest>,
    // coherence layer --------------------------------------------------
    vc: VectorClock,
    log: IntervalLog,
    pages: Vec<Page>,
    /// Pages twinned in the current (open) interval.
    dirty: Vec<PageId>,
    last_barrier_vc: VectorClock,
    /// Stride-prefetcher state: fault-sequence detector plus in-flight
    /// speculative volleys and staged (collected, not yet applied)
    /// responses. Inert when `cfg.prefetch_depth == 0`.
    pf: coherence::Prefetcher,
    // sync layer -------------------------------------------------------
    locks: Vec<LockState>,
    barrier: BarrierEpisode,
    // shmem layer ------------------------------------------------------
    /// Pages handed out by collective `malloc`s so far (the page table in
    /// `pages` may extend further: peers can race ahead of our own malloc
    /// and fault pages we haven't formally allocated yet — the layout is
    /// deterministic, so we materialize them on demand).
    allocated_pages: usize,
    regions: Vec<RegionInfo>,
    // cross-layer ------------------------------------------------------
    me: u16,
    n: usize,
    cfg: TmkConfig,
    page_size: usize,
    event_hook: Option<EventHook>,
}

impl<S: Substrate> Tmk<S> {
    pub fn new(sub: S, cfg: TmkConfig) -> Self {
        let n = sub.nprocs();
        let me = sub.my_id() as u16;
        let page_size = sub.params().dsm.page_size;
        Tmk {
            sub,
            me,
            n,
            vc: VectorClock::new(n),
            log: IntervalLog::new(n),
            pages: Vec::new(),
            allocated_pages: 0,
            regions: Vec::new(),
            dirty: Vec::new(),
            pf: coherence::Prefetcher::default(),
            locks: Vec::new(),
            barrier: BarrierEpisode::new(n),
            last_barrier_vc: VectorClock::new(n),
            next_rid: 1,
            cfg,
            page_size,
            replay: ReplayCache::new(),
            serving: None,
            outstanding: Vec::new(),
            serve_q: Vec::new(),
            event_hook: None,
        }
    }

    pub fn proc_id(&self) -> usize {
        self.me as usize
    }

    pub fn nprocs(&self) -> usize {
        self.n
    }

    pub fn clock(&self) -> &SharedClock {
        self.sub.clock()
    }

    pub fn params(&self) -> &std::sync::Arc<SimParams> {
        self.sub.params()
    }

    /// Charge `units` of application computation (interruptible).
    pub fn compute(&mut self, units: u64) {
        let cost = self.sub.params().work(units);
        self.clock().borrow_mut().compute(cost);
    }

    /// Charge an explicit computation duration (interruptible).
    pub fn compute_ns(&mut self, d: Ns) {
        self.clock().borrow_mut().compute(d);
    }

    /// Install an observer for layer-boundary [`TmkEvent`]s, replacing any
    /// previous one. The hook runs synchronously inside protocol code and
    /// must not call back into the runtime; it charges no virtual time.
    pub fn set_event_hook(&mut self, hook: impl FnMut(&TmkEvent) + 'static) {
        self.event_hook = Some(Box::new(hook));
    }

    /// Remove the installed event hook, if any.
    pub fn clear_event_hook(&mut self) {
        self.event_hook = None;
    }

    /// Emit one layer-boundary event to the installed hook (no-op — one
    /// branch — without one).
    fn emit(&mut self, ev: TmkEvent) {
        if let Some(h) = self.event_hook.as_mut() {
            h(&ev);
        }
    }

    /// Introspection: current vector time.
    pub fn vector_time(&self) -> &VectorClock {
        &self.vc
    }
}
