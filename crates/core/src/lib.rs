//! # tmk — the TreadMarks software DSM runtime
//!
//! A from-scratch implementation of the TreadMarks lazy release consistency
//! (LRC) protocol (Keleher et al. 1994; Amza et al. 1996), the system the
//! paper layers over GM. The runtime provides the classic Tmk API —
//! `malloc`/`distribute`, `barrier`, lock `acquire`/`release` — over any
//! transport implementing the [`Substrate`] trait; the paper's two
//! contenders are FAST/GM and UDP/GM (both in `tm-fast`).
//!
//! Protocol highlights, all implemented here:
//!
//! * **Vector timestamps & intervals** ([`vc`], [`interval`]): each node's
//!   execution is carved into intervals delimited by synchronization;
//!   write notices propagate lazily along the happens-before order.
//! * **Twins & diffs** ([`diff`]): the first write to a page in an interval
//!   copies it (twin); at interval end the twin/page comparison yields a
//!   run-length-encoded diff. Multiple concurrent writers to one page are
//!   supported (diffs are applied to both data and twin), which is what
//!   makes false sharing survivable.
//! * **Distributed locks** ([`tmk`]): statically assigned managers,
//!   migrating ownership, direct (manager-owned) and indirect (third-node)
//!   acquisition — the two cases of the paper's Lock microbenchmark.
//! * **Barriers**: the paper's centralized barrier (arrivals carry fresh
//!   intervals to the manager; the release broadcasts the union) plus a
//!   radix-k combining-tree barrier with an optional NIC-offloaded
//!   combining cost model (the §5 future-work suggestion) — see
//!   [`tmk::BarrierAlgo`].
//! * **Request/response protocol** ([`protocol`]): asynchronous requests
//!   and synchronous responses, exactly the split the paper's Figure 1
//!   draws — requests interrupt the peer, responses are awaited.
//!
//! Access detection: instead of mprotect/SIGSEGV (not available inside a
//! multi-node-in-one-process simulation), applications access shared
//! memory through [`Tmk::read_bytes`]/[`Tmk::write_bytes`] (and typed
//! helpers), which perform page-granular validity checks and drive exactly
//! the fault transitions the mprotect implementation would, charging the
//! modeled fault costs.

pub mod diff;
pub mod framing;
pub mod interval;
pub mod memsub;
pub mod metrics;
pub mod page;
pub mod protocol;
pub mod substrate;
pub mod tmk;
pub mod vc;
pub mod wire;

pub use metrics::{EventStat, LayerMetrics, MetricsHandle};
pub use substrate::{Chan, IncomingMsg, ShutdownPoll, Substrate, WaitOutcome};
pub use tmk::{BarrierAlgo, DiffFetch, LockPath, SharedId, Tmk, TmkConfig, TmkEvent};
pub use vc::VectorClock;
