//! The Tmk runtime: the TreadMarks API over a [`Substrate`].
//!
//! One `Tmk` lives in each node thread. The API mirrors TreadMarks':
//! `malloc`/`distribute`, `barrier`, lock `acquire`/`release`, plus the
//! byte/typed accessors that stand in for direct loads and stores (they
//! drive the page-fault state machine an mprotect build would).
//!
//! All protocol work is costed through the node's virtual clock; handler
//! work triggered by peers' asynchronous requests goes through
//! [`tm_sim::NodeClock::service_window`], which models interrupt
//! preemption — including retroactively, when the request arrived while
//! this node was computing.

use std::collections::VecDeque;

use tm_sim::{Ns, SharedClock, SimParams};

use crate::diff::Diff;
use crate::interval::{IntervalLog, IntervalRecord};
use crate::page::{Access, Page, PageId, Pending};
use crate::protocol::{Request, Response};
use crate::substrate::{Chan, Substrate};
use crate::vc::VectorClock;
use crate::wire::{pool, WireWriter};

/// Handle to a shared allocation (returned by [`Tmk::malloc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedId(pub usize);

/// Runtime tunables.
#[derive(Debug, Clone)]
pub struct TmkConfig {
    /// Diffs retained per page before GC falls back to full-page serves.
    pub diff_keep: usize,
    /// Which node runs barriers.
    pub barrier_manager: u16,
}

impl Default for TmkConfig {
    fn default() -> Self {
        TmkConfig {
            diff_keep: 256,
            barrier_manager: 0,
        }
    }
}

struct RegionInfo {
    start_page: usize,
    len: usize,
}

struct LockState {
    /// Manager's record of who holds (or will next hold) the token.
    owner_hint: u16,
    have_token: bool,
    busy: bool,
    /// Requests waiting for our release: (requester, rid, their vc,
    /// arrival key). The arrival key is the `(from, rid)` the request
    /// last reached us under — identical to `(requester, rid)` for a
    /// direct acquire, but the forwarding manager's `(manager, fwd_rid)`
    /// for a forwarded one. Replay-cache upgrades go through it so a
    /// retransmitted forward finds the grant we eventually sent.
    waiting: VecDeque<(u16, u32, VectorClock, (usize, u32))>,
}

struct BarrierEpisode {
    arrived: Vec<bool>,
    /// Client rid + vector time at arrival, per node.
    clients: Vec<Option<(u32, VectorClock)>>,
    count: usize,
    /// Barrier id of this episode — mismatched ids are a program error
    /// (different nodes waiting at different barriers) and panic loudly
    /// instead of deadlocking.
    id: Option<u32>,
    /// Records collected from arrivals, noticed at departure (the manager
    /// must not invalidate its own pages before it reaches the barrier).
    records: Vec<IntervalRecord>,
}

impl BarrierEpisode {
    fn new(n: usize) -> Self {
        BarrierEpisode {
            arrived: vec![false; n],
            clients: vec![None; n],
            count: 0,
            id: None,
            records: Vec::new(),
        }
    }
}

/// What to do when a duplicate of an already-seen request arrives
/// (lossy transports retransmit; handlers must stay idempotent).
#[derive(Debug, Clone)]
enum ReplayAction {
    /// The original is still queued (lock wait, barrier wait): swallow
    /// duplicates; the eventual grant/release goes out through the
    /// normal path (which upgrades this entry to `Respond`).
    Pending,
    /// We already responded with these bytes: re-send them (the original
    /// response may have been the loss that triggered the retransmit).
    Respond { to: usize, bytes: Vec<u8> },
    /// We forwarded the request (lock manager → owner): re-forward the
    /// identical bytes — same forwarded rid, so dedup chains compose.
    Forward { to: usize, bytes: Vec<u8> },
}

/// Bounded responder-side replay cache entry, keyed on `(from, rid)`.
#[derive(Debug)]
struct ReplayEntry {
    from: usize,
    rid: u32,
    action: ReplayAction,
}

/// Replay-cache depth. With one outstanding request per peer plus
/// forwards, live duplicates are always much younger than this.
const REPLAY_CACHE_CAP: usize = 128;

/// The per-node DSM runtime.
pub struct Tmk<S: Substrate> {
    sub: S,
    me: u16,
    n: usize,
    vc: VectorClock,
    log: IntervalLog,
    pages: Vec<Page>,
    /// Pages handed out by collective `malloc`s so far (the page table in
    /// `pages` may extend further: peers can race ahead of our own malloc
    /// and fault pages we haven't formally allocated yet — the layout is
    /// deterministic, so we materialize them on demand).
    allocated_pages: usize,
    regions: Vec<RegionInfo>,
    /// Pages twinned in the current (open) interval.
    dirty: Vec<PageId>,
    locks: Vec<LockState>,
    barrier: BarrierEpisode,
    last_barrier_vc: VectorClock,
    next_rid: u32,
    cfg: TmkConfig,
    page_size: usize,
    /// Responder-side duplicate suppression (lossy transports only; stays
    /// empty — and cost-free — on reliable ones).
    replay: VecDeque<ReplayEntry>,
    /// Key of the request currently being dispatched, for filing its
    /// replay-cache entry at the response site. `None` on reliable
    /// transports.
    serving: Option<(usize, u32)>,
}

macro_rules! trace {
    ($self:expr, $($arg:tt)*) => {
        if std::env::var_os("TMK_TRACE").is_some() {
            eprintln!("[n{} t{}] {}", $self.me, $self.clock().borrow().now(), format!($($arg)*));
        }
    };
}

impl<S: Substrate> Tmk<S> {
    pub fn new(sub: S, cfg: TmkConfig) -> Self {
        let n = sub.nprocs();
        let me = sub.my_id() as u16;
        let page_size = sub.params().dsm.page_size;
        Tmk {
            sub,
            me,
            n,
            vc: VectorClock::new(n),
            log: IntervalLog::new(n),
            pages: Vec::new(),
            allocated_pages: 0,
            regions: Vec::new(),
            dirty: Vec::new(),
            locks: Vec::new(),
            barrier: BarrierEpisode::new(n),
            last_barrier_vc: VectorClock::new(n),
            next_rid: 1,
            cfg,
            page_size,
            replay: VecDeque::new(),
            serving: None,
        }
    }

    pub fn proc_id(&self) -> usize {
        self.me as usize
    }

    pub fn nprocs(&self) -> usize {
        self.n
    }

    pub fn clock(&self) -> &SharedClock {
        self.sub.clock()
    }

    pub fn params(&self) -> &std::sync::Arc<SimParams> {
        self.sub.params()
    }

    /// Charge `units` of application computation (interruptible).
    pub fn compute(&mut self, units: u64) {
        let cost = self.sub.params().work(units);
        self.clock().borrow_mut().compute(cost);
    }

    /// Charge an explicit computation duration (interruptible).
    pub fn compute_ns(&mut self, d: Ns) {
        self.clock().borrow_mut().compute(d);
    }

    // ----- allocation ----------------------------------------------------

    /// Collective: every node must call with the same sizes in the same
    /// order (this is how TreadMarks programs use `Tmk_malloc` before
    /// `Tmk_distribute`). Page managers are assigned round-robin across
    /// the processors (as in TreadMarks); each page starts resident
    /// (zeroed) on its manager and unmapped elsewhere.
    pub fn malloc(&mut self, len: usize) -> SharedId {
        assert!(len > 0, "zero-length shared allocation");
        let npages = len.div_ceil(self.page_size);
        let start_page = self.allocated_pages;
        self.allocated_pages += npages;
        self.ensure_pages(start_page + npages);
        self.regions.push(RegionInfo { start_page, len });
        SharedId(self.regions.len() - 1)
    }

    /// Materialize page-table entries up to `upto` (exclusive).
    fn ensure_pages(&mut self, upto: usize) {
        while self.pages.len() < upto {
            let idx = self.pages.len();
            let manager = (idx % self.n) as u16;
            let page = if self.me == manager {
                Page::new_resident(self.n, manager, self.page_size)
            } else {
                Page::new(self.n, manager)
            };
            self.pages.push(page);
        }
    }

    /// API-fidelity no-op: in TreadMarks, `Tmk_distribute` ships the
    /// shared pointer to the other processes; our collective `malloc`
    /// already agrees on ids.
    pub fn distribute(&mut self, _id: SharedId) {}

    /// Bytes in a region.
    pub fn region_len(&self, id: SharedId) -> usize {
        self.regions[id.0].len
    }

    fn page_of(&self, id: SharedId, off: usize) -> PageId {
        let r = &self.regions[id.0];
        assert!(off < r.len, "offset {off} outside region of {} bytes", r.len);
        (r.start_page + off / self.page_size) as PageId
    }

    // ----- interval machinery ---------------------------------------------

    /// Close the current interval if it wrote anything: create diffs from
    /// twins, emit the interval record. Returns the modeled cost (caller
    /// charges it into the right accounting context).
    fn flush_interval(&mut self) -> Ns {
        if self.dirty.is_empty() {
            return Ns::ZERO;
        }
        let params = self.sub.params().clone();
        let seq = self.vc.tick(self.me as usize);
        let mut cost = Ns::ZERO;
        let mut pages_written = Vec::with_capacity(self.dirty.len());
        let dirty = std::mem::take(&mut self.dirty);
        for pid in dirty {
            let page = &mut self.pages[pid as usize];
            let twin = page.twin.take().expect("dirty page without twin");
            let d = if page.force_full_diff {
                page.force_full_diff = false;
                Diff::full(&page.data)
            } else {
                Diff::create(&twin, &page.data)
            };
            pool::give(twin); // twin buffers cycle through the pool
            cost += Ns::for_bytes(self.page_size, params.dsm.diff_scan_mb_s)
                + params.dsm.diff_overhead
                + params.dsm.mprotect;
            page.my_diffs.push((seq, d));
            page.trim_diffs(self.cfg.diff_keep);
            page.applied[self.me as usize] = seq;
            page.state = match page.state {
                Access::WriteInvalid => Access::Invalid,
                _ => Access::Read,
            };
            pages_written.push(pid);
            self.clock().borrow_mut().stats.diffs_created += 1;
        }
        let rec = IntervalRecord {
            node: self.me,
            seq,
            vc: self.vc.clone(),
            pages: pages_written,
        };
        trace!(self, "flush seq={} pages={:?}", seq, rec.pages);
        self.log.insert(rec);
        cost
    }

    /// Incorporate interval records learned from a grant or release:
    /// insert into the log and invalidate the named pages. Records move
    /// straight through — novelty is checked up front so nothing is
    /// cloned just to find out the log already had it.
    fn apply_records(&mut self, records: Vec<IntervalRecord>) -> Ns {
        let mut fresh: Vec<IntervalRecord> = Vec::with_capacity(records.len());
        for rec in records {
            trace!(self, "record n{} seq={} pages={:?}", rec.node, rec.seq, rec.pages);
            // Novelty check covers both the log and this batch: barrier
            // arrivals from different clients often relay the same record.
            if self.log.contains(rec.node, rec.seq)
                || fresh.iter().any(|f| f.node == rec.node && f.seq == rec.seq)
            {
                trace!(self, "record n{} seq={} already known", rec.node, rec.seq);
            } else {
                fresh.push(rec);
            }
        }
        let cost = self.notice_records(&fresh);
        for rec in fresh {
            self.log.insert(rec);
        }
        cost
    }

    /// Invalidate pages named by `records`' write notices.
    fn notice_records(&mut self, records: &[IntervalRecord]) -> Ns {
        let mprotect = self.sub.params().dsm.mprotect;
        let mut cost = Ns::ZERO;
        for rec in records {
            if rec.node == self.me {
                continue;
            }
            if let Some(&max_pid) = rec.pages.iter().max() {
                self.ensure_pages(max_pid as usize + 1);
            }
            for &pid in &rec.pages {
                let page = &mut self.pages[pid as usize];
                let before = page.state;
                page.add_notice(rec.node, rec.seq, rec.vc.clone());
                if page.state != before {
                    cost += mprotect;
                }
            }
        }
        cost
    }

    // ----- request service -------------------------------------------------

    fn rid(&mut self) -> u32 {
        let r = self.next_rid;
        self.next_rid += 1;
        r
    }

    /// Service one incoming request. `arrival` drives the interrupt
    /// preemption model.
    fn serve(&mut self, from: usize, data: &[u8], arrival: Ns) {
        let Some((rid, req)) = Request::decode(data) else {
            // Undecodable frame (possible on lossy wires): discard, count.
            self.clock().borrow_mut().stats.malformed_dropped += 1;
            return;
        };
        trace!(self, "serve from={from} rid={rid} req={req:?}");
        if self.sub.retransmit_timeout().is_some() {
            if let Some(i) = self
                .replay
                .iter()
                .position(|e| e.from == from && e.rid == rid)
            {
                // A retransmission of a request we already handled (or
                // still hold queued): replay the recorded action instead
                // of re-running the (state-mutating) handler.
                self.replay_duplicate(i, arrival);
                return;
            }
            self.serving = Some((from, rid));
        }
        let params = self.sub.params().clone();
        let mut cost = params.dsm.handler_dispatch;
        match req {
            Request::Diff { page, lo, hi } => {
                self.ensure_pages(page as usize + 1);
                // Encode straight into a pooled frame: the diffs are
                // serialized from the page's retained list by reference,
                // never materialized as an owned Response.
                let mut w = WireWriter::pooled(256);
                let c = self.encode_diff_response(rid, page, lo, hi, &mut w);
                cost += c;
                self.respond_wire(from, w, arrival, cost);
            }
            Request::Page { page } => {
                self.ensure_pages(page as usize + 1);
                let mut w = WireWriter::pooled(self.page_size + 32);
                let c = self.encode_full_page(rid, page, &mut w);
                cost += c;
                self.respond_wire(from, w, arrival, cost);
            }
            Request::Acquire { lock, vc } => {
                self.ensure_lock(lock);
                debug_assert_eq!(self.lock_manager(lock), self.me, "acquire sent to non-manager");
                let ls = &mut self.locks[lock as usize];
                if ls.owner_hint == self.me {
                    if ls.have_token && !ls.busy {
                        // Direct grant: manager holds a free token.
                        let (resp, c) = self.make_grant(lock, &vc);
                        cost += c;
                        let ls = &mut self.locks[lock as usize];
                        ls.have_token = false;
                        ls.owner_hint = from as u16;
                        self.respond(from, rid, resp, arrival, cost);
                    } else {
                        // We hold it busy (or the token is en route to us):
                        // grant at release.
                        ls.waiting.push_back((from as u16, rid, vc, (from, rid)));
                        ls.owner_hint = from as u16;
                        self.charge_service(arrival, cost);
                        self.note_pending();
                    }
                } else {
                    // Forward to the current owner; requester stays blocked.
                    let owner = ls.owner_hint as usize;
                    ls.owner_hint = from as u16;
                    let fwd = Request::AcquireFwd {
                        lock,
                        requester: from as u16,
                        rid,
                        vc,
                    };
                    let fwd_rid = self.rid();
                    let mut w = WireWriter::pooled(64);
                    fwd.encode_into(fwd_rid, &mut w);
                    cost += self.sub.response_cost(w.len());
                    let finish = self.charge_service(arrival, cost);
                    self.sub.send_request_at(owner, w.as_slice(), finish);
                    if let Some((f, r)) = self.serving.take() {
                        let bytes = w.as_slice().to_vec();
                        self.remember(f, r, ReplayAction::Forward { to: owner, bytes });
                    }
                    w.recycle();
                }
            }
            Request::AcquireFwd {
                lock,
                requester,
                rid: orig_rid,
                vc,
            } => {
                self.ensure_lock(lock);
                let ls = &mut self.locks[lock as usize];
                if ls.have_token && !ls.busy {
                    let (resp, c) = self.make_grant(lock, &vc);
                    cost += c;
                    self.locks[lock as usize].have_token = false;
                    self.respond(requester as usize, orig_rid, resp, arrival, cost);
                } else {
                    ls.waiting.push_back((requester, orig_rid, vc, (from, rid)));
                    self.charge_service(arrival, cost);
                    self.note_pending();
                }
            }
            Request::BarrierArrive {
                barrier,
                vc,
                records,
            } => {
                debug_assert_eq!(self.cfg.barrier_manager, self.me);
                match self.barrier.id {
                    None => self.barrier.id = Some(barrier),
                    Some(b) => assert_eq!(
                        b, barrier,
                        "barrier mismatch: node {from} arrived at {barrier}, episode is {b}"
                    ),
                }
                cost += Ns(200 * records.len() as u64);
                // Stash — the manager must not incorporate arrivals'
                // intervals (records OR vector time) before its own
                // departure: doing so would make its interim lock grants
                // claim coverage of write notices it never forwarded.
                for rec in records {
                    let stashed = self
                        .barrier
                        .records
                        .iter()
                        .any(|r| r.node == rec.node && r.seq == rec.seq);
                    if !stashed && !self.log.contains(rec.node, rec.seq) {
                        self.barrier.records.push(rec);
                    }
                }
                if !self.barrier.arrived[from] {
                    self.barrier.arrived[from] = true;
                    self.barrier.count += 1;
                }
                self.barrier.clients[from] = Some((rid, vc));
                self.charge_service(arrival, cost);
                self.note_pending();
            }
        }
        // Handlers that responded already cleared this via the remember
        // hooks; anything left would mis-attribute a later response.
        self.serving = None;
    }

    // ----- duplicate-request suppression ------------------------------------

    /// If the request being served hasn't recorded an action yet, park it
    /// in the replay cache as pending (response comes later — queued lock
    /// grant, barrier release). A retransmission arriving meanwhile is
    /// then recognized and suppressed instead of re-queued.
    fn note_pending(&mut self) {
        if let Some((f, r)) = self.serving.take() {
            self.remember(f, r, ReplayAction::Pending);
        }
    }

    /// Record (or upgrade) the action taken for request `(from, rid)` in
    /// the bounded replay cache.
    fn remember(&mut self, from: usize, rid: u32, action: ReplayAction) {
        if let Some(e) = self
            .replay
            .iter_mut()
            .find(|e| e.from == from && e.rid == rid)
        {
            e.action = action;
            return;
        }
        if self.replay.len() >= REPLAY_CACHE_CAP {
            self.replay.pop_front();
        }
        self.replay.push_back(ReplayEntry { from, rid, action });
    }

    /// A retransmitted request matched replay entry `idx`: re-emit the
    /// recorded effect without re-running the handler. Pending entries
    /// (response still owed) are swallowed — the eventual grant/release
    /// answers the original rid.
    fn replay_duplicate(&mut self, idx: usize, arrival: Ns) {
        self.clock().borrow_mut().stats.dup_requests_suppressed += 1;
        let cost = self.sub.params().dsm.handler_dispatch;
        let action = self.replay[idx].action.clone();
        match action {
            ReplayAction::Pending => {
                self.charge_service(arrival, cost);
            }
            ReplayAction::Respond { to, bytes } => {
                let total = cost + self.sub.response_cost(bytes.len());
                let finish = self.charge_service(arrival, total);
                self.sub.send_response_at(to, &bytes, finish);
            }
            ReplayAction::Forward { to, bytes } => {
                let total = cost + self.sub.response_cost(bytes.len());
                let finish = self.charge_service(arrival, total);
                self.sub.send_request_at(to, &bytes, finish);
            }
        }
    }

    /// Charge the service window for a request with no (immediate)
    /// response; returns the service completion time.
    fn charge_service(&mut self, arrival: Ns, cost: Ns) -> Ns {
        let scheme = self.sub.scheme();
        self.clock()
            .borrow_mut()
            .service_window(arrival, &scheme, cost)
    }

    /// Charge the service window and emit the response at its completion.
    fn respond(&mut self, to: usize, rid: u32, resp: Response, arrival: Ns, cost: Ns) {
        let mut w = WireWriter::pooled(128);
        resp.encode_into(rid, &mut w);
        self.respond_wire(to, w, arrival, cost);
    }

    /// Emit an already-encoded response at service completion, returning
    /// the frame buffer to the pool after the substrate copies it out.
    fn respond_wire(&mut self, to: usize, w: WireWriter, arrival: Ns, mut cost: Ns) {
        cost += self.sub.response_cost(w.len());
        let finish = self.charge_service(arrival, cost);
        self.sub.send_response_at(to, w.as_slice(), finish);
        if let Some((from, rid)) = self.serving.take() {
            let bytes = w.as_slice().to_vec();
            self.remember(from, rid, ReplayAction::Respond { to, bytes });
        }
        w.recycle();
    }

    /// Encode a `Diffs` response directly from the page's retained diff
    /// list (borrowed — no `Vec<(u32, Diff)>` clone). Byte-identical to
    /// `Response::Diffs { .. }.encode(rid)`.
    fn encode_diff_response(
        &self,
        rid: u32,
        pid: PageId,
        lo: u32,
        hi: u32,
        w: &mut WireWriter,
    ) -> Ns {
        let params = self.sub.params();
        let max = self.sub.max_msg();
        let page = &self.pages[pid as usize];
        match page.diffs_range(lo, hi) {
            Some(all) => {
                // Chunk to the substrate's message limit; the requester
                // re-requests the remainder. First pass picks the cut.
                let total = all.len();
                let mut take = 0usize;
                let mut sz = 16usize;
                let mut cost = Ns::ZERO;
                for (_, d) in all {
                    let dl = d.encoded_len() + 4;
                    if take > 0 && sz + dl > max {
                        break;
                    }
                    sz += dl;
                    cost += params.dsm.diff_overhead
                        + Ns::for_bytes(d.payload_bytes(), params.host.memcpy_mb_s);
                    take += 1;
                }
                // Everything fit: the whole range is settled; truncated:
                // settled up to the last included diff.
                let covered_hi = if take == total {
                    hi
                } else {
                    all[..take].last().map(|(s, _)| *s).unwrap_or(lo)
                };
                w.u32(rid).u8(1).u32(pid).u32(covered_hi).u16(take as u16);
                for (seq, d) in &all[..take] {
                    w.u32(*seq);
                    d.encode(w);
                }
                cost
            }
            // Requested diffs were GC'd: fall back to a full page.
            None => self.encode_full_page(rid, pid, w),
        }
    }

    /// Encode the stable copy of a page (the twin if the current interval
    /// is writing it) plus its applied vector, straight from the page's
    /// buffers. All-zero pages (freshly allocated memory on first touch)
    /// travel as a compact marker. Byte-identical to encoding
    /// `Response::FullPage`/`Response::ZeroPage`.
    fn encode_full_page(&self, rid: u32, pid: PageId, w: &mut WireWriter) -> Ns {
        let params = self.sub.params();
        let page = &self.pages[pid as usize];
        assert!(
            page.has_copy(),
            "node {} asked for page {pid} it never held",
            self.me
        );
        let stable = page.twin.as_deref().unwrap_or(&page.data);
        let scan = Ns::for_bytes(stable.len(), params.dsm.diff_scan_mb_s);
        if crate::diff::is_all_zero(stable) {
            w.u32(rid).u8(5).u32(pid);
            crate::protocol::encode_applied(&page.applied, w);
            return scan;
        }
        w.u32(rid).u8(2).u32(pid);
        crate::protocol::encode_applied(&page.applied, w);
        w.bytes(stable);
        scan + Ns::for_bytes(stable.len(), params.host.memcpy_mb_s)
    }

    fn make_grant(&mut self, lock: u32, rvc: &VectorClock) -> (Response, Ns) {
        let flush_cost = self.flush_interval();
        let records = self.log.newer_than(rvc);
        trace!(self, "grant lock={} rvc={:?} records={:?}", lock, rvc, records.iter().map(|r| (r.node, r.seq)).collect::<Vec<_>>());
        let cost = flush_cost + Ns(200 * records.len() as u64);
        (
            Response::Grant {
                lock,
                vc: self.vc.clone(),
                records,
            },
            cost,
        )
    }

    // ----- synchronous RPC --------------------------------------------------

    /// Send a request and block for its response, servicing peers'
    /// requests while waiting (the TreadMarks SIGIO discipline).
    fn rpc(&mut self, to: usize, req: Request) -> Response {
        let rid = self.rid();
        trace!(self, "rpc to={to} rid={rid} req={req:?}");
        let mut w = WireWriter::pooled(64);
        req.encode_into(rid, &mut w);
        self.rpc_encoded(to, rid, w)
    }

    /// The rpc body proper, for callers that pre-chose the rid (acquire's
    /// manager-forwarding path). Consumes and recycles the frame.
    ///
    /// Reliable transports (`retransmit_timeout() == None`) use the plain
    /// send-once loop. Lossy ones get DSM-level reliability: a virtual-time
    /// retransmission timer with exponential backoff, resending under the
    /// *same* rid (the responder's replay cache makes duplicates
    /// idempotent), plus stale-response and tombstone handling.
    fn rpc_encoded(&mut self, to: usize, rid: u32, w: WireWriter) -> Response {
        let Some(rto0) = self.sub.retransmit_timeout() else {
            self.sub.send_request(to, w.as_slice());
            w.recycle();
            self.clock().borrow_mut().begin_wait();
            loop {
                let msg = self.sub.next_incoming();
                match msg.chan {
                    Chan::Response => {
                        let (got_rid, resp) =
                            Response::decode(&msg.data).expect("malformed response");
                        assert_eq!(
                            got_rid, rid,
                            "node {}: response correlation mismatch",
                            self.me
                        );
                        pool::give(msg.data);
                        return resp;
                    }
                    Chan::Request => {
                        self.serve(msg.from, &msg.data, msg.arrival);
                        pool::give(msg.data);
                        self.clock().borrow_mut().begin_wait();
                    }
                }
            }
        };
        let cap = self.sub.params().udp.rto_retries;
        let mut rto = rto0;
        let mut attempts = 0u32;
        // `sent == false`: the transport knows the datagram was dropped on
        // the way out — skip the futile wait and retransmit at the deadline.
        let mut sent = self.sub.send_request(to, w.as_slice());
        self.clock().borrow_mut().begin_wait();
        let mut deadline = self.clock().borrow().now() + rto;
        macro_rules! retransmit {
            () => {{
                attempts += 1;
                assert!(
                    attempts <= cap,
                    "node {}: rid {rid} to {to}: gave up after {cap} retransmissions",
                    self.me
                );
                self.clock().borrow_mut().stats.retransmits += 1;
                rto = rto * 2;
                sent = self.sub.send_request(to, w.as_slice());
                self.clock().borrow_mut().begin_wait();
                deadline = self.clock().borrow().now() + rto;
            }};
        }
        loop {
            if !sent {
                self.clock().borrow_mut().wait_until(deadline);
                retransmit!();
                continue;
            }
            match self.sub.next_incoming_until(deadline) {
                None => retransmit!(),
                Some(msg) if msg.lost => {
                    if msg.chan == Chan::Response {
                        // Our (likely) response died in flight: no point
                        // sitting out the rest of the timer.
                        retransmit!();
                    } else {
                        self.clock().borrow_mut().begin_wait();
                    }
                }
                Some(msg) => match msg.chan {
                    Chan::Response => {
                        let Some((got_rid, resp)) = Response::decode(&msg.data) else {
                            self.clock().borrow_mut().stats.malformed_dropped += 1;
                            pool::give(msg.data);
                            self.clock().borrow_mut().begin_wait();
                            continue;
                        };
                        if got_rid == rid {
                            pool::give(msg.data);
                            w.recycle();
                            return resp;
                        }
                        assert!(
                            got_rid < rid,
                            "node {}: response from the future (rid {got_rid} > {rid})",
                            self.me
                        );
                        // Duplicate answer to an rpc we already completed
                        // (a retransmission crossed its response).
                        self.clock().borrow_mut().stats.stale_responses_dropped += 1;
                        pool::give(msg.data);
                        self.clock().borrow_mut().begin_wait();
                    }
                    Chan::Request => {
                        self.serve(msg.from, &msg.data, msg.arrival);
                        pool::give(msg.data);
                        self.clock().borrow_mut().begin_wait();
                    }
                },
            }
        }
    }

    /// Service any requests that have already arrived (called at natural
    /// application boundaries; with interrupts the service window still
    /// starts at the request's arrival, preempting retroactively).
    pub fn poll_serve(&mut self) {
        while let Some(msg) = self.sub.poll_request() {
            self.serve(msg.from, &msg.data, msg.arrival);
            pool::give(msg.data);
        }
    }

    // ----- faults -----------------------------------------------------------

    fn ensure_readable(&mut self, pid: PageId) {
        match self.pages[pid as usize].state {
            Access::Read | Access::Write => {}
            Access::Unmapped => {
                let fault = self.sub.params().dsm.page_fault;
                self.clock().borrow_mut().advance(fault);
                self.clock().borrow_mut().stats.page_faults += 1;
                self.fetch_page(pid);
                self.fetch_pending_diffs(pid);
            }
            Access::Invalid | Access::WriteInvalid => {
                let fault = self.sub.params().dsm.page_fault;
                self.clock().borrow_mut().advance(fault);
                self.clock().borrow_mut().stats.page_faults += 1;
                self.fetch_pending_diffs(pid);
            }
        }
    }

    fn ensure_writable(&mut self, pid: PageId) {
        self.ensure_readable(pid);
        let params = self.sub.params().clone();
        let page = &mut self.pages[pid as usize];
        if page.state == Access::Read {
            // Write fault: twin the page into a pooled buffer (twins are
            // created and retired every interval — prime churn).
            let mut twin = pool::take(page.data.len());
            twin.extend_from_slice(&page.data);
            page.twin = Some(twin);
            page.state = Access::Write;
            self.dirty.push(pid);
            let mut c = self.clock().borrow_mut();
            c.advance(
                params.dsm.page_fault
                    + params.dsm.mprotect
                    + params.dsm.twin_overhead
                    + Ns::for_bytes(self.page_size, params.host.memcpy_mb_s),
            );
            c.stats.page_faults += 1;
            c.stats.twins_created += 1;
        }
    }

    /// First touch: fetch the whole page from its manager.
    fn fetch_page(&mut self, pid: PageId) {
        let manager = self.pages[pid as usize].manager as usize;
        assert_ne!(manager, self.me as usize, "manager pages are resident");
        let resp = self.rpc(manager, Request::Page { page: pid });
        match resp {
            Response::FullPage { page, applied, data } => {
                assert_eq!(page, pid);
                self.adopt_full_page(pid, applied, data);
                self.clock().borrow_mut().stats.pages_fetched += 1;
            }
            Response::ZeroPage { page, applied } => {
                assert_eq!(page, pid);
                let zeros = vec![0u8; self.page_size];
                self.adopt_full_page(pid, applied, zeros);
                self.clock().borrow_mut().stats.pages_fetched += 1;
            }
            other => panic!("expected FullPage, got {other:?}"),
        }
    }

    /// Merge a received full page into local state, preserving our own
    /// uncommitted writes if any.
    ///
    /// The responder's copy can be *behind* us on some writers' axes (its
    /// `applied[v]` below ours): adopting it wholesale would regress those
    /// writers' words. We repair: our own newer flushed intervals are
    /// replayed from `my_diffs`, and deficits on other axes are re-queued
    /// as pending notices so the normal diff fetch re-applies them (their
    /// synthetic vector time makes them sort before anything causally
    /// newer; concurrent repairs touch disjoint words in race-free
    /// programs).
    fn adopt_full_page(&mut self, pid: PageId, applied: Vec<u32>, data: Vec<u8>) {
        let params = self.sub.params().clone();
        let mut cost = Ns::for_bytes(data.len(), params.host.memcpy_mb_s) + params.dsm.mprotect;
        let me = self.me as usize;
        let n = self.n;
        let page = &mut self.pages[pid as usize];
        if let Some(twin) = page.twin.take() {
            // We hold uncommitted writes: replay them on the new base.
            let own = Diff::create(&twin, &page.data);
            pool::give(twin);
            cost += Ns::for_bytes(self.page_size, params.dsm.diff_scan_mb_s);
            // One copy (data -> new twin) is inherent — page and twin are
            // distinct buffers — but it lands in a pooled one, and the
            // displaced page buffer goes back to the pool.
            let mut new_twin = pool::take(self.page_size);
            new_twin.extend_from_slice(&data[..self.page_size.min(data.len())]);
            pool::give(std::mem::replace(&mut page.data, data));
            page.twin = Some(new_twin);
            own.apply(&mut page.data);
        } else {
            pool::give(std::mem::replace(&mut page.data, data));
        }
        // Adopt the responder's view…
        let old_applied = std::mem::replace(&mut page.applied, applied);
        // …then repair our own axis from locally retained diffs (applied
        // by reference: my_diffs and data are disjoint fields).
        if old_applied[me] > page.applied[me] {
            let lo = page.applied[me];
            for (seq, d) in &page.my_diffs {
                if *seq > lo && *seq <= old_applied[me] {
                    d.apply(&mut page.data);
                    if let Some(t) = page.twin.as_mut() {
                        d.apply(t);
                    }
                    cost += params.dsm.diff_overhead;
                }
            }
            page.applied[me] = old_applied[me];
        }
        // Repair deficits on other axes by re-queuing pending notices
        // (fetched and applied by the ongoing fault).
        for (v, &old) in old_applied.iter().enumerate() {
            if v == me {
                continue;
            }
            if old > page.applied[v] {
                for seq in page.applied[v] + 1..=old {
                    let mut vcv = crate::vc::VectorClock::new(n);
                    vcv.set(v, seq);
                    page.add_notice(v as u16, seq, vcv);
                }
            }
        }
        let Page {
            pending, applied, ..
        } = page;
        pending.retain(|p| p.seq > applied[p.node as usize]);
        page.state = match (page.twin.is_some(), page.pending.is_empty()) {
            (true, true) => Access::Write,
            (true, false) => Access::WriteInvalid,
            (false, true) => Access::Read,
            (false, false) => Access::Invalid,
        };
        self.clock().borrow_mut().advance(cost);
    }

    /// Fetch and apply every pending diff for a page, in causal order.
    fn fetch_pending_diffs(&mut self, pid: PageId) {
        let params = self.sub.params().clone();
        // Collect (pending, diff) pairs writer by writer. New notices can
        // land mid-fetch (we service peers' requests while blocked), so
        // each round re-derives what is pending but not yet collected.
        let mut collected: Vec<(Pending, Diff)> = Vec::new();
        // Per-writer seq ceiling already settled by responses: pending
        // entries at or below it that produced no diff never wrote this
        // page (speculative repair ranges) and are dropped.
        let mut covered: Vec<(u16, u32)> = Vec::new();
        let covered_of = |covered: &[(u16, u32)], node: u16| {
            covered
                .iter()
                .find(|(n, _)| *n == node)
                .map(|(_, h)| *h)
                .unwrap_or(0)
        };
        loop {
            let mut need: Vec<(u16, u32, u32)> = Vec::new();
            for p in &self.pages[pid as usize].pending {
                if p.seq <= covered_of(&covered, p.node)
                    && !collected
                        .iter()
                        .any(|(q, _)| q.node == p.node && q.seq == p.seq)
                {
                    // Settled as nonexistent.
                    continue;
                }
                if collected
                    .iter()
                    .any(|(q, _)| q.node == p.node && q.seq == p.seq)
                {
                    continue;
                }
                match need.iter_mut().find(|(n, _, _)| *n == p.node) {
                    Some((_, lo, hi)) => {
                        *lo = (*lo).min(p.seq);
                        *hi = (*hi).max(p.seq);
                    }
                    None => need.push((p.node, p.seq, p.seq)),
                }
            }
            if need.is_empty() {
                break;
            }
            for (writer, lo, hi) in need {
                let resp = self.rpc(
                    writer as usize,
                    Request::Diff {
                        page: pid,
                        lo,
                        hi,
                    },
                );
                match resp {
                    Response::Diffs {
                        page,
                        covered_hi,
                        diffs,
                    } => {
                        assert_eq!(page, pid);
                        match covered.iter_mut().find(|(n, _)| *n == writer) {
                            Some((_, h)) => *h = (*h).max(covered_hi),
                            None => covered.push((writer, covered_hi)),
                        }
                        for (seq, d) in diffs {
                            let pend = self.pages[pid as usize]
                                .pending
                                .iter()
                                .find(|p| p.node == writer && p.seq == seq)
                                .cloned();
                            match pend {
                                Some(p) => collected.push((p, d)),
                                None => {
                                    // Returned but not (yet) noticed: the
                                    // covered ceiling will advance past it,
                                    // so it must be applied now. Its
                                    // synthetic vector time sorts it before
                                    // anything that causally follows it.
                                    let mut vcv = VectorClock::new(self.n);
                                    vcv.set(writer as usize, seq);
                                    collected.push((
                                        Pending {
                                            node: writer,
                                            seq,
                                            vc: vcv,
                                        },
                                        d,
                                    ));
                                }
                            }
                        }
                    }
                    Response::ZeroPage { page, applied } => {
                        assert_eq!(page, pid);
                        let zeros = vec![0u8; self.page_size];
                        self.adopt_full_page(pid, applied, zeros);
                        self.clock().borrow_mut().stats.pages_fetched += 1;
                        collected.retain(|(p, _)| {
                            self.pages[pid as usize]
                                .pending
                                .iter()
                                .any(|q| q.node == p.node && q.seq == p.seq)
                        });
                    }
                    Response::FullPage { page, applied, data } => {
                        assert_eq!(page, pid);
                        // GC fallback: adopt, then continue with whatever
                        // is still pending.
                        self.adopt_full_page(pid, applied, data);
                        self.clock().borrow_mut().stats.pages_fetched += 1;
                        collected.retain(|(p, _)| {
                            self.pages[pid as usize]
                                .pending
                                .iter()
                                .any(|q| q.node == p.node && q.seq == p.seq)
                        });
                    }
                    other => panic!("expected Diffs/FullPage, got {other:?}"),
                }
            }
        }
        // Causal sort: repeatedly take a minimal element (nothing else
        // happens-before it).
        let mut ordered: Vec<(Pending, Diff)> = Vec::with_capacity(collected.len());
        while !collected.is_empty() {
            let mut pick = 0;
            for i in 0..collected.len() {
                let candidate = &collected[i].0;
                let minimal = collected.iter().enumerate().all(|(j, (other, _))| {
                    j == i
                        || !(other.vc.dominated_by(&candidate.vc)
                            && other.vc != candidate.vc)
                });
                if minimal {
                    pick = i;
                    break;
                }
            }
            ordered.push(collected.remove(pick));
        }
        // Apply in order, to data and (if present) twin.
        let mut cost = Ns::ZERO;
        let mut applied_count = 0u64;
        let page = &mut self.pages[pid as usize];
        for (pend, d) in ordered {
            d.apply(&mut page.data);
            if let Some(twin) = page.twin.as_mut() {
                d.apply(twin);
            }
            cost += params.dsm.diff_overhead
                + Ns::for_bytes(d.payload_bytes(), params.host.memcpy_mb_s);
            page.applied_notice(pend.node, pend.seq);
            applied_count += 1;
        }
        self.clock().borrow_mut().stats.diffs_applied += applied_count;
        cost += params.dsm.mprotect;
        // Clear speculative pendings that turned out not to exist.
        let page = &mut self.pages[pid as usize];
        for (node, hi) in covered {
            page.applied_notice(node, hi);
        }
        debug_assert!(
            page.pending.is_empty(),
            "unresolved pendings: {:?}",
            page.pending
        );
        page.state = if page.twin.is_some() {
            Access::Write
        } else {
            Access::Read
        };
        self.clock().borrow_mut().advance(cost);
    }

    // ----- synchronization API ----------------------------------------------

    fn lock_manager(&self, lock: u32) -> u16 {
        (lock as usize % self.n) as u16
    }

    fn ensure_lock(&mut self, lock: u32) {
        while self.locks.len() <= lock as usize {
            let id = self.locks.len() as u32;
            let mgr = self.lock_manager(id);
            self.locks.push(LockState {
                owner_hint: mgr,
                have_token: self.me == mgr,
                busy: false,
                waiting: VecDeque::new(),
            });
        }
    }

    /// `Tmk_lock_acquire`.
    pub fn acquire(&mut self, lock: u32) {
        // Service anything pending first: a cached-token fast path must
        // not starve peers whose acquire was forwarded to us.
        self.poll_serve();
        self.ensure_lock(lock);
        let ls = &self.locks[lock as usize];
        if ls.have_token && !ls.busy {
            // Token cached locally: free re-acquire.
            self.locks[lock as usize].busy = true;
            self.clock().borrow_mut().advance(Ns(300));
            return;
        }
        assert!(!ls.busy, "node {} re-acquiring lock {lock} it holds", self.me);
        self.clock().borrow_mut().stats.remote_acquires += 1;
        let mgr = self.lock_manager(lock) as usize;
        let resp = if mgr == self.me as usize {
            // We are the manager but the token is elsewhere: forward
            // directly to the owner.
            let owner = self.locks[lock as usize].owner_hint as usize;
            debug_assert_ne!(owner, self.me as usize);
            self.locks[lock as usize].owner_hint = self.me;
            let rid = self.rid();
            let req = Request::AcquireFwd {
                lock,
                requester: self.me,
                rid,
                vc: self.vc.clone(),
            };
            // Run the rpc with the chosen rid so the grant correlates.
            let mut w = WireWriter::pooled(64);
            req.encode_into(rid, &mut w);
            self.rpc_encoded(owner, rid, w)
        } else {
            self.rpc(
                mgr,
                Request::Acquire {
                    lock,
                    vc: self.vc.clone(),
                },
            )
        };
        match resp {
            Response::Grant { lock: l, vc, records } => {
                assert_eq!(l, lock);
                let cost = self.apply_records(records);
                self.vc.join(&vc);
                self.clock().borrow_mut().advance(cost);
                let ls = &mut self.locks[lock as usize];
                ls.have_token = true;
                ls.busy = true;
            }
            other => panic!("expected Grant, got {other:?}"),
        }
    }

    /// `Tmk_lock_release`.
    pub fn release(&mut self, lock: u32) {
        self.poll_serve();
        self.ensure_lock(lock);
        assert!(
            self.locks[lock as usize].busy,
            "node {} releasing lock {lock} it doesn't hold",
            self.me
        );
        self.locks[lock as usize].busy = false;
        self.clock().borrow_mut().advance(Ns(300));
        self.grant_waiting(lock);
    }

    /// Hand the token to the next queued requester, if any.
    fn grant_waiting(&mut self, lock: u32) {
        let ls = &mut self.locks[lock as usize];
        if !ls.have_token || ls.busy {
            return;
        }
        let Some((requester, rid, rvc, via)) = ls.waiting.pop_front() else {
            return;
        };
        let (resp, cost) = self.make_grant(lock, &rvc);
        self.locks[lock as usize].have_token = false;
        let mut w = WireWriter::pooled(128);
        resp.encode_into(rid, &mut w);
        let total = cost + self.sub.response_cost(w.len());
        self.clock().borrow_mut().advance(total);
        let now = self.clock().borrow().now();
        self.sub.send_response_at(requester as usize, w.as_slice(), now);
        if self.sub.retransmit_timeout().is_some() {
            let bytes = w.as_slice().to_vec();
            self.remember(
                via.0,
                via.1,
                ReplayAction::Respond {
                    to: requester as usize,
                    bytes,
                },
            );
        }
        w.recycle();
    }

    /// `Tmk_barrier`.
    pub fn barrier(&mut self, id: u32) {
        trace!(self, "barrier {id} enter");
        let flush_cost = self.flush_interval();
        self.clock().borrow_mut().advance(flush_cost);
        self.clock().borrow_mut().stats.barriers += 1;
        let mgr = self.cfg.barrier_manager;
        if self.me == mgr {
            self.barrier_as_manager(id)
        } else {
            let records = self.log.newer_than(&self.last_barrier_vc);
            let resp = self.rpc(
                mgr as usize,
                Request::BarrierArrive {
                    barrier: id,
                    vc: self.vc.clone(),
                    records,
                },
            );
            match resp {
                Response::BarrierRelease { vc, records } => {
                    let cost = self.apply_records(records);
                    self.vc.join(&vc);
                    self.clock().borrow_mut().advance(cost);
                    self.epoch_gc(vc);
                }
                other => panic!("expected BarrierRelease, got {other:?}"),
            }
        }
    }

    fn barrier_as_manager(&mut self, id: u32) {
        // Local arrival.
        match self.barrier.id {
            None => self.barrier.id = Some(id),
            Some(b) => assert_eq!(b, id, "manager at barrier {id}, episode is {b}"),
        }
        if !self.barrier.arrived[self.me as usize] {
            self.barrier.arrived[self.me as usize] = true;
            self.barrier.count += 1;
        }
        self.clock().borrow_mut().begin_wait();
        while self.barrier.count < self.n {
            let msg = self.sub.next_incoming();
            if msg.lost {
                // A peer's arrival (or a stray duplicate) died in flight;
                // the sender's retransmission timer will re-deliver it.
                pool::give(msg.data);
                self.clock().borrow_mut().begin_wait();
                continue;
            }
            match msg.chan {
                Chan::Request => {
                    self.serve(msg.from, &msg.data, msg.arrival);
                    pool::give(msg.data);
                    self.clock().borrow_mut().begin_wait();
                }
                Chan::Response if self.sub.retransmit_timeout().is_some() => {
                    // A duplicate answer to an rpc we completed before the
                    // barrier (a retransmission crossed its response).
                    self.clock().borrow_mut().stats.stale_responses_dropped += 1;
                    pool::give(msg.data);
                    self.clock().borrow_mut().begin_wait();
                }
                Chan::Response => panic!("manager got a response inside barrier wait"),
            }
        }
        // Everyone is here: departure. Incorporate the arrivals' interval
        // records and vector times, invalidate, then release the clients.
        // The stashed records move into apply_records — no clone.
        let BarrierEpisode {
            records, clients, ..
        } = std::mem::replace(&mut self.barrier, BarrierEpisode::new(self.n));
        let apply_cost = self.apply_records(records);
        self.clock().borrow_mut().advance(apply_cost);
        for slot in clients.iter().flatten() {
            self.vc.join(&slot.1);
        }
        let merged = self.vc.clone();
        for (node, slot) in clients.into_iter().enumerate() {
            let Some((rid, cvc)) = slot else { continue };
            let records = self.log.newer_than(&cvc);
            let resp = Response::BarrierRelease {
                vc: merged.clone(),
                records,
            };
            let mut w = WireWriter::pooled(128);
            resp.encode_into(rid, &mut w);
            let cost = self.sub.response_cost(w.len()) + Ns(500);
            self.clock().borrow_mut().advance(cost);
            let now = self.clock().borrow().now();
            self.sub.send_response_at(node, w.as_slice(), now);
            if self.sub.retransmit_timeout().is_some() {
                // A lost release leaves the client retransmitting its
                // BarrierArrive; answer the duplicate from the cache.
                let bytes = w.as_slice().to_vec();
                self.remember(node, rid, ReplayAction::Respond { to: node, bytes });
            }
            w.recycle();
        }
        self.epoch_gc(merged);
    }

    /// Post-barrier GC: everyone has incorporated everything up to `vc`.
    fn epoch_gc(&mut self, vc: VectorClock) {
        self.last_barrier_vc = vc;
        self.log.trim(&self.last_barrier_vc);
    }

    /// Final synchronization before the node thread returns: a barrier, so
    /// no peer is left blocked on us.
    ///
    /// On a lossy transport the barrier manager additionally lingers: a
    /// client whose exit release was lost keeps retransmitting its
    /// `BarrierArrive`, and only the manager's replay cache can answer it.
    /// The linger ends when every peer's NIC has left the fabric.
    pub fn exit(&mut self) {
        self.barrier(u32::MAX);
        if self.sub.retransmit_timeout().is_some() && self.me == self.cfg.barrier_manager {
            loop {
                match self.sub.shutdown_poll() {
                    crate::substrate::ShutdownPoll::Done => break,
                    crate::substrate::ShutdownPoll::Quiet => {}
                    crate::substrate::ShutdownPoll::Msg(msg) => {
                        if !msg.lost && msg.chan == Chan::Request {
                            self.serve(msg.from, &msg.data, msg.arrival);
                        } else if !msg.lost && msg.chan == Chan::Response {
                            self.clock().borrow_mut().stats.stale_responses_dropped += 1;
                        }
                        pool::give(msg.data);
                    }
                }
            }
        }
    }

    // ----- data access --------------------------------------------------------

    /// Read `out.len()` bytes from `(region, off)`.
    pub fn read_bytes(&mut self, id: SharedId, off: usize, out: &mut [u8]) {
        if out.is_empty() {
            return;
        }
        let r = &self.regions[id.0];
        assert!(off + out.len() <= r.len, "read beyond region");
        let start_page = r.start_page;
        let mut done = 0;
        while done < out.len() {
            let abs = off + done;
            let pid = (start_page + abs / self.page_size) as PageId;
            self.ensure_readable(pid);
            let in_page = abs % self.page_size;
            let take = (self.page_size - in_page).min(out.len() - done);
            let page = &self.pages[pid as usize];
            out[done..done + take].copy_from_slice(&page.data[in_page..in_page + take]);
            done += take;
        }
    }

    /// Write `src` to `(region, off)`.
    pub fn write_bytes(&mut self, id: SharedId, off: usize, src: &[u8]) {
        if src.is_empty() {
            return;
        }
        let r = &self.regions[id.0];
        assert!(off + src.len() <= r.len, "write beyond region");
        let start_page = r.start_page;
        let mut done = 0;
        while done < src.len() {
            let abs = off + done;
            let pid = (start_page + abs / self.page_size) as PageId;
            let in_page = abs % self.page_size;
            let take = (self.page_size - in_page).min(src.len() - done);
            if in_page == 0 && take == self.page_size {
                // Whole-page overwrite: no need to fetch content we are
                // about to replace (first-touch writes of fresh arrays
                // would otherwise ship pages of zeroes across the wire).
                self.ensure_writable_overwrite(pid);
            } else {
                self.ensure_writable(pid);
            }
            let page = &mut self.pages[pid as usize];
            page.data[in_page..in_page + take].copy_from_slice(&src[done..done + take]);
            done += take;
        }
    }

    /// Write fault for a whole-page overwrite: skip fetching the old
    /// content. Pending notices are marked applied — their diffs would be
    /// overwritten verbatim (any word both we and a concurrent writer
    /// touch would be a data race in the program).
    fn ensure_writable_overwrite(&mut self, pid: PageId) {
        let state = self.pages[pid as usize].state;
        match state {
            Access::Write => return,
            Access::Read => {
                self.ensure_writable(pid);
                return;
            }
            Access::Unmapped | Access::Invalid | Access::WriteInvalid => {}
        }
        let params = self.sub.params().clone();
        let page = &mut self.pages[pid as usize];
        if !page.has_copy() {
            page.data = vec![0; self.page_size];
        }
        // Absorb pending notices without fetching their diffs.
        let pending = std::mem::take(&mut page.pending);
        for p in &pending {
            page.applied[p.node as usize] = page.applied[p.node as usize].max(p.seq);
        }
        let mut cost = params.dsm.page_fault + params.dsm.mprotect;
        if page.twin.is_none() {
            let mut twin = pool::take(page.data.len());
            twin.extend_from_slice(&page.data);
            page.twin = Some(twin);
            self.dirty.push(pid);
            cost += params.dsm.twin_overhead
                + Ns::for_bytes(self.page_size, params.host.memcpy_mb_s);
            let mut c = self.clock().borrow_mut();
            c.stats.twins_created += 1;
        }
        let page = &mut self.pages[pid as usize];
        page.force_full_diff = true;
        page.state = Access::Write;
        let mut c = self.clock().borrow_mut();
        c.advance(cost);
        c.stats.page_faults += 1;
    }

    // Typed helpers ------------------------------------------------------

    pub fn get_u32(&mut self, id: SharedId, idx: usize) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(id, idx * 4, &mut b);
        u32::from_le_bytes(b)
    }

    pub fn set_u32(&mut self, id: SharedId, idx: usize, v: u32) {
        self.write_bytes(id, idx * 4, &v.to_le_bytes());
    }

    pub fn get_i32(&mut self, id: SharedId, idx: usize) -> i32 {
        self.get_u32(id, idx) as i32
    }

    pub fn set_i32(&mut self, id: SharedId, idx: usize, v: i32) {
        self.set_u32(id, idx, v as u32);
    }

    pub fn get_f32(&mut self, id: SharedId, idx: usize) -> f32 {
        f32::from_bits(self.get_u32(id, idx))
    }

    pub fn set_f32(&mut self, id: SharedId, idx: usize, v: f32) {
        self.set_u32(id, idx, v.to_bits());
    }

    pub fn get_f64(&mut self, id: SharedId, idx: usize) -> f64 {
        let mut b = [0u8; 8];
        self.read_bytes(id, idx * 8, &mut b);
        f64::from_le_bytes(b)
    }

    pub fn set_f64(&mut self, id: SharedId, idx: usize, v: f64) {
        self.write_bytes(id, idx * 8, &v.to_le_bytes());
    }

    /// Bulk f32 read starting at element `idx`.
    pub fn read_f32s(&mut self, id: SharedId, idx: usize, out: &mut [f32]) {
        let mut bytes = vec![0u8; out.len() * 4];
        self.read_bytes(id, idx * 4, &mut bytes);
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            out[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }

    /// Bulk f32 write starting at element `idx`.
    pub fn write_f32s(&mut self, id: SharedId, idx: usize, src: &[f32]) {
        let mut bytes = Vec::with_capacity(src.len() * 4);
        for v in src {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(id, idx * 4, &bytes);
    }

    /// Bulk f64 read starting at element `idx`.
    pub fn read_f64s(&mut self, id: SharedId, idx: usize, out: &mut [f64]) {
        let mut bytes = vec![0u8; out.len() * 8];
        self.read_bytes(id, idx * 8, &mut bytes);
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            out[i] = f64::from_le_bytes(b);
        }
    }

    /// Bulk f64 write starting at element `idx`.
    pub fn write_f64s(&mut self, id: SharedId, idx: usize, src: &[f64]) {
        let mut bytes = Vec::with_capacity(src.len() * 8);
        for v in src {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(id, idx * 8, &bytes);
    }

    /// Introspection for tests: the page state of `(region, off)`.
    pub fn page_state(&self, id: SharedId, off: usize) -> Access {
        let pid = self.page_of(id, off);
        self.pages[pid as usize].state
    }

    /// Introspection: current vector time.
    pub fn vector_time(&self) -> &VectorClock {
        &self.vc
    }
}
