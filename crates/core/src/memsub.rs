//! An idealized in-memory substrate.
//!
//! Used two ways:
//! * protocol unit/property tests that want DSM semantics without the
//!   full transport stack underneath;
//! * the "infinitely fast network" ablation point — set `latency` to zero
//!   and the remaining execution time is pure protocol + compute.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use tm_sim::{AsyncScheme, Ns, SharedClock, SimParams};

use crate::substrate::{Chan, IncomingMsg, Substrate};

struct MemMsg {
    from: usize,
    chan: Chan,
    data: Vec<u8>,
    arrival: Ns,
}

/// Construction halves: move one [`MemEndpoint`] into each node thread and
/// wrap it with [`MemSubstrate::new`].
pub struct MemEndpoint {
    id: usize,
    rx: Receiver<MemMsg>,
    txs: Vec<Sender<MemMsg>>,
}

/// Build endpoints for an `n`-node in-memory cluster.
pub fn mem_cluster(n: usize) -> Vec<MemEndpoint> {
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded()).unzip();
    rxs.into_iter()
        .enumerate()
        .map(|(id, rx)| MemEndpoint {
            id,
            rx,
            txs: txs.clone(),
        })
        .collect()
}

/// The per-node substrate object.
pub struct MemSubstrate {
    ep: MemEndpoint,
    nprocs: usize,
    clock: SharedClock,
    params: Arc<SimParams>,
    /// One-way message latency (0 for the ideal-network ablation).
    latency: Ns,
    /// Host-side cost charged per send.
    send_cost: Ns,
    requests: VecDeque<IncomingMsg>,
    responses: VecDeque<IncomingMsg>,
}

impl MemSubstrate {
    pub fn new(
        ep: MemEndpoint,
        clock: SharedClock,
        params: Arc<SimParams>,
        latency: Ns,
        send_cost: Ns,
    ) -> Self {
        let nprocs = ep.txs.len();
        MemSubstrate {
            ep,
            nprocs,
            clock,
            params,
            latency,
            send_cost,
            requests: VecDeque::new(),
            responses: VecDeque::new(),
        }
    }

    fn stash(&mut self, m: MemMsg) {
        let msg = IncomingMsg {
            from: m.from,
            chan: m.chan,
            data: m.data,
            arrival: m.arrival,
            lost: false,
        };
        match msg.chan {
            Chan::Request => self.requests.push_back(msg),
            Chan::Response => self.responses.push_back(msg),
        }
    }

    fn drain(&mut self) {
        while let Ok(m) = self.ep.rx.try_recv() {
            self.stash(m);
        }
    }

    /// Earliest-arrival message across both queues.
    fn pop_earliest(&mut self) -> Option<IncomingMsg> {
        let rq = self.requests.front().map(|m| m.arrival);
        let rs = self.responses.front().map(|m| m.arrival);
        match (rq, rs) {
            (None, None) => None,
            (Some(_), None) => self.requests.pop_front(),
            (None, Some(_)) => self.responses.pop_front(),
            (Some(a), Some(b)) => {
                if a <= b {
                    self.requests.pop_front()
                } else {
                    self.responses.pop_front()
                }
            }
        }
    }
}

impl Substrate for MemSubstrate {
    fn my_id(&self) -> usize {
        self.ep.id
    }

    fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn clock(&self) -> &SharedClock {
        &self.clock
    }

    fn params(&self) -> &Arc<SimParams> {
        &self.params
    }

    fn scheme(&self) -> AsyncScheme {
        // Ideal: requests are noticed instantly and for free.
        AsyncScheme::Interrupt { cost: Ns::ZERO }
    }

    fn send_request(&mut self, to: usize, data: &[u8]) -> bool {
        self.clock.borrow_mut().advance(self.send_cost);
        let now = self.clock.borrow().now();
        {
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_sent += 1;
            c.stats.bytes_sent += data.len() as u64;
        }
        self.ep.txs[to]
            .send(MemMsg {
                from: self.ep.id,
                chan: Chan::Request,
                data: data.to_vec(),
                arrival: now + self.latency,
            })
            .expect("peer gone");
        true
    }

    fn send_request_at(&mut self, to: usize, data: &[u8], at: Ns) {
        {
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_sent += 1;
            c.stats.bytes_sent += data.len() as u64;
        }
        self.ep.txs[to]
            .send(MemMsg {
                from: self.ep.id,
                chan: Chan::Request,
                data: data.to_vec(),
                arrival: at + self.latency,
            })
            .expect("peer gone");
    }

    fn response_cost(&self, _len: usize) -> Ns {
        self.send_cost
    }

    fn send_response_at(&mut self, to: usize, data: &[u8], at: Ns) {
        {
            let mut c = self.clock.borrow_mut();
            c.stats.msgs_sent += 1;
            c.stats.bytes_sent += data.len() as u64;
        }
        self.ep.txs[to]
            .send(MemMsg {
                from: self.ep.id,
                chan: Chan::Response,
                data: data.to_vec(),
                arrival: at + self.latency,
            })
            .expect("peer gone");
    }

    fn poll_request(&mut self) -> Option<IncomingMsg> {
        self.drain();
        let now = self.clock.borrow().now();
        if self.requests.front().is_some_and(|m| m.arrival <= now) {
            self.requests.pop_front()
        } else {
            None
        }
    }

    fn poll_incoming(&mut self) -> Option<IncomingMsg> {
        self.drain();
        let now = self.clock.borrow().now();
        let arrived = |q: &VecDeque<IncomingMsg>| q.front().is_some_and(|m| m.arrival <= now);
        if arrived(&self.requests) || arrived(&self.responses) {
            self.pop_earliest()
        } else {
            None
        }
    }

    fn next_incoming(&mut self) -> IncomingMsg {
        loop {
            self.drain();
            if let Some(msg) = self.pop_earliest() {
                let mut c = self.clock.borrow_mut();
                c.wait_until(msg.arrival);
                c.stats.msgs_recv += 1;
                c.stats.bytes_recv += msg.data.len() as u64;
                return msg;
            }
            match self.ep.rx.recv() {
                Ok(m) => self.stash(m),
                Err(_) => panic!(
                    "node {}: blocked with all peers gone (deadlock or premature exit)",
                    self.ep.id
                ),
            }
        }
    }
}

/// Run a DSM program over the in-memory substrate: one thread per node,
/// each given a ready [`crate::Tmk`] runtime. Returns per-node outcomes in
/// node order.
pub fn run_mem_dsm<R, F>(
    n: usize,
    params: Arc<SimParams>,
    latency: Ns,
    cfg: crate::TmkConfig,
    body: F,
) -> Vec<tm_sim::runner::NodeOutcome<R>>
where
    R: Send + 'static,
    F: Fn(&mut crate::Tmk<MemSubstrate>) -> R + Send + Sync + 'static,
{
    use parking_lot::Mutex;
    let endpoints: Mutex<Vec<Option<MemEndpoint>>> =
        Mutex::new(mem_cluster(n).into_iter().map(Some).collect());
    let endpoints = Arc::new(endpoints);
    tm_sim::run_cluster(n, params, move |env| {
        let ep = endpoints.lock()[env.id].take().expect("endpoint taken twice");
        let sub = MemSubstrate::new(
            ep,
            env.clock.clone(),
            Arc::clone(&env.params),
            latency,
            Ns(500),
        );
        let mut tmk = crate::Tmk::new(sub, cfg.clone());
        let r = body(&mut tmk);
        tmk.exit();
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_sim::clock::shared_clock;

    fn pair() -> (MemSubstrate, MemSubstrate) {
        let params = Arc::new(SimParams::paper_testbed());
        let mut eps = mem_cluster(2);
        let b = MemSubstrate::new(
            eps.pop().unwrap(),
            shared_clock(),
            Arc::clone(&params),
            Ns::from_us(5),
            Ns(500),
        );
        let a = MemSubstrate::new(eps.pop().unwrap(), shared_clock(), params, Ns::from_us(5), Ns(500));
        (a, b)
    }

    #[test]
    fn request_roundtrip() {
        let (mut a, mut b) = pair();
        a.send_request(1, b"req");
        let msg = b.next_incoming();
        assert_eq!(msg.chan, Chan::Request);
        assert_eq!(msg.from, 0);
        assert_eq!(msg.data, b"req");
        assert_eq!(b.clock().borrow().now(), msg.arrival);
    }

    #[test]
    fn response_arrives_at_service_time_plus_latency() {
        let (mut a, mut b) = pair();
        b.send_response_at(0, b"resp", Ns::from_us(100));
        let msg = a.next_incoming();
        assert_eq!(msg.chan, Chan::Response);
        assert_eq!(msg.arrival, Ns::from_us(105));
    }

    #[test]
    fn poll_request_respects_virtual_time() {
        let (mut a, mut b) = pair();
        a.send_request(1, b"x");
        assert!(b.poll_request().is_none(), "not arrived in virtual time");
        b.clock().borrow_mut().advance(Ns::from_us(50));
        assert!(b.poll_request().is_some());
    }

    #[test]
    fn earliest_of_request_and_response_wins() {
        let (mut a, mut b) = pair();
        b.send_response_at(0, b"late", Ns::from_ms(1));
        // b's request leaves at ~500ns and lands at ~5.5us — earlier than
        // the 1.005ms response even though it was enqueued second.
        b.send_request(0, b"early");
        let first = a.next_incoming();
        assert_eq!(first.data, b"early");
        let second = a.next_incoming();
        assert_eq!(second.data, b"late");
    }
}
