//! Protocol messages: the request/response vocabulary of the DSM runtime.
//!
//! Requests travel on the asynchronous channel (they interrupt the peer);
//! responses on the synchronous one (the requester is blocked). Every
//! request carries a correlation id `rid` that the response echoes — lock
//! grants are produced by a *third* node when the manager forwards, so the
//! id is what ties the grant back to the acquire.

use crate::diff::Diff;
use crate::interval::{decode_records, encode_records, IntervalRecord};
use crate::page::PageId;
use crate::vc::VectorClock;
use crate::wire::{WireReader, WireWriter};

/// Asynchronous request bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Fetch the sender's diffs for `page` with `lo <= seq <= hi`.
    Diff { page: PageId, lo: u32, hi: u32 },
    /// Fetch a whole page from its manager (first touch).
    Page { page: PageId },
    /// Acquire `lock`; `vc` is the requester's vector time.
    Acquire { lock: u32, vc: VectorClock },
    /// Manager-forwarded acquire: grant directly to `requester`, echoing
    /// `rid`.
    AcquireFwd {
        lock: u32,
        requester: u16,
        rid: u32,
        vc: VectorClock,
    },
    /// Barrier arrival with fresh interval records.
    BarrierArrive {
        barrier: u32,
        vc: VectorClock,
        records: Vec<IntervalRecord>,
    },
    /// Combined barrier arrival from a whole subtree of the radix-k
    /// combining tree, sent by a node to its tree parent. `min_vc` is the
    /// pointwise *meet* of the subtree members' clocks (the coverage
    /// floor the release must fill), `vc` their pointwise *join*, and
    /// `records` the union of the members' fresh interval records.
    BarrierTreeArrive {
        barrier: u32,
        min_vc: VectorClock,
        vc: VectorClock,
        records: Vec<IntervalRecord>,
    },
    /// Coalesced diff fetch: one `(page, lo, hi)` range per page, all
    /// owed by the same writer. Merges what would otherwise be one
    /// `Diff` request per page into a single message — the per-node
    /// coalescing arm of the overlapped RPC engine.
    MultiDiff { pages: Vec<(PageId, u32, u32)> },
    /// Overlapped write-notice distribution (`LockPath::Overlapped`): a
    /// barrier release pushed as an issued *request* so the releaser can
    /// fan all consumers through the overlapped engine and collect the
    /// [`Response::NoticeAck`]s out of order (per-rid retransmission
    /// replaces the fire-and-forget replay-cache recovery path). The
    /// consumer completes its own blocked arrival rpc `reply_rid` with
    /// the equivalent release response. `tree` selects which release
    /// vocabulary that synthesized response uses.
    NoticeRelease {
        barrier: u32,
        tree: bool,
        reply_rid: u32,
        vc: VectorClock,
        records: Vec<IntervalRecord>,
    },
}

/// Synchronous response bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Diffs for one page, in ascending seq order. May be a partial range
    /// (chunked to the substrate's max message size) — the requester
    /// re-requests what's still pending. `covered_hi` is the top of the
    /// seq range this response settles: every diff of this page the
    /// writer has with `lo <= seq <= covered_hi` is included (seqs in
    /// range but absent simply never wrote the page).
    Diffs {
        page: PageId,
        covered_hi: u32,
        diffs: Vec<(u32, Diff)>,
    },
    /// A whole page: the responder's stable copy plus the per-writer seqs
    /// it incorporates. Also the fallback when requested diffs were
    /// garbage-collected.
    FullPage {
        page: PageId,
        applied: Vec<u32>,
        data: Vec<u8>,
    },
    /// Lock grant: releaser's vector time plus the interval records the
    /// requester is missing.
    Grant {
        lock: u32,
        vc: VectorClock,
        records: Vec<IntervalRecord>,
    },
    /// Barrier release: merged vector time plus missing records.
    BarrierRelease {
        vc: VectorClock,
        records: Vec<IntervalRecord>,
    },
    /// A whole page that is entirely zero — no payload needed. Common for
    /// first-touch fetches of freshly allocated memory.
    ZeroPage { page: PageId, applied: Vec<u32> },
    /// Tree-barrier release, fanned from a tree parent to a child:
    /// globally merged vector time plus every interval record newer than
    /// the child subtree's `min_vc` coverage floor.
    BarrierTreeRelease {
        barrier: u32,
        vc: VectorClock,
        records: Vec<IntervalRecord>,
    },
    /// Answer to a `MultiDiff`: one entry per page the responder managed
    /// to pack under its message-size budget. Pages omitted from the
    /// response are simply still owed — the requester's fetch loop
    /// re-requests them.
    MultiDiffs { pages: Vec<(PageId, PageDiffs)> },
    /// Acknowledgement of a [`Request::NoticeRelease`]: the consumer has
    /// filed the synthesized release into its blocked arrival rpc. Tiny
    /// on purpose — the payload already travelled in the request.
    NoticeAck { barrier: u32 },
}

/// One page's slice of a [`Response::MultiDiffs`]. Mirrors the
/// single-page response vocabulary: diffs when the range is retained,
/// full/zero page when GC already folded it away.
#[derive(Debug, Clone, PartialEq)]
pub enum PageDiffs {
    /// Same semantics as [`Response::Diffs`] for this page.
    Diffs {
        covered_hi: u32,
        diffs: Vec<(u32, Diff)>,
    },
    /// GC fallback: the responder's whole stable copy.
    Full { applied: Vec<u32>, data: Vec<u8> },
    /// GC fallback for an all-zero page.
    Zero { applied: Vec<u32> },
}

pub(crate) fn encode_applied(applied: &[u32], w: &mut WireWriter) {
    w.u16(applied.len() as u16);
    for &a in applied {
        w.u32(a);
    }
}

fn decode_applied(r: &mut WireReader) -> Option<Vec<u32>> {
    let n = r.u16()? as usize;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.u32()?);
    }
    Some(v)
}

impl Request {
    /// Encode with the correlation id envelope.
    pub fn encode(&self, rid: u32) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64);
        self.encode_into(rid, &mut w);
        w.finish()
    }

    /// Encode into an existing (typically pooled) writer — the
    /// allocation-free path the runtime's send loops use.
    pub fn encode_into(&self, rid: u32, w: &mut WireWriter) {
        w.u32(rid);
        match self {
            Request::Diff { page, lo, hi } => {
                w.u8(1).u32(*page).u32(*lo).u32(*hi);
            }
            Request::Page { page } => {
                w.u8(2).u32(*page);
            }
            Request::Acquire { lock, vc } => {
                w.u8(3).u32(*lock);
                vc.encode(w);
            }
            Request::AcquireFwd {
                lock,
                requester,
                rid: orig,
                vc,
            } => {
                w.u8(4).u32(*lock).u16(*requester).u32(*orig);
                vc.encode(w);
            }
            Request::BarrierArrive {
                barrier,
                vc,
                records,
            } => {
                w.u8(5).u32(*barrier);
                vc.encode(w);
                encode_records(records, w);
            }
            Request::BarrierTreeArrive {
                barrier,
                min_vc,
                vc,
                records,
            } => {
                w.u8(6).u32(*barrier);
                min_vc.encode(w);
                vc.encode(w);
                encode_records(records, w);
            }
            Request::MultiDiff { pages } => {
                w.u8(7).u16(pages.len() as u16);
                for (page, lo, hi) in pages {
                    w.u32(*page).u32(*lo).u32(*hi);
                }
            }
            Request::NoticeRelease {
                barrier,
                tree,
                reply_rid,
                vc,
                records,
            } => {
                w.u8(8).u32(*barrier).u8(*tree as u8).u32(*reply_rid);
                vc.encode(w);
                encode_records(records, w);
            }
        }
    }

    /// Decode; returns `(rid, request)`.
    pub fn decode(buf: &[u8]) -> Option<(u32, Request)> {
        let mut r = WireReader::new(buf);
        let rid = r.u32()?;
        let req = match r.u8()? {
            1 => Request::Diff {
                page: r.u32()?,
                lo: r.u32()?,
                hi: r.u32()?,
            },
            2 => Request::Page { page: r.u32()? },
            3 => Request::Acquire {
                lock: r.u32()?,
                vc: VectorClock::decode(&mut r)?,
            },
            4 => Request::AcquireFwd {
                lock: r.u32()?,
                requester: r.u16()?,
                rid: r.u32()?,
                vc: VectorClock::decode(&mut r)?,
            },
            5 => Request::BarrierArrive {
                barrier: r.u32()?,
                vc: VectorClock::decode(&mut r)?,
                records: decode_records(&mut r)?,
            },
            6 => Request::BarrierTreeArrive {
                barrier: r.u32()?,
                min_vc: VectorClock::decode(&mut r)?,
                vc: VectorClock::decode(&mut r)?,
                records: decode_records(&mut r)?,
            },
            7 => {
                let n = r.u16()? as usize;
                let mut pages = Vec::with_capacity(n);
                for _ in 0..n {
                    pages.push((r.u32()?, r.u32()?, r.u32()?));
                }
                Request::MultiDiff { pages }
            }
            8 => Request::NoticeRelease {
                barrier: r.u32()?,
                tree: r.u8()? != 0,
                reply_rid: r.u32()?,
                vc: VectorClock::decode(&mut r)?,
                records: decode_records(&mut r)?,
            },
            _ => return None,
        };
        Some((rid, req))
    }
}

impl PageDiffs {
    /// Encode one page entry (without the page id, which the caller
    /// writes). The sub-tags reuse the single-page response tags so the
    /// two vocabularies can't drift apart silently.
    pub fn encode_into(&self, w: &mut WireWriter) {
        match self {
            PageDiffs::Diffs { covered_hi, diffs } => {
                w.u8(1).u32(*covered_hi).u16(diffs.len() as u16);
                for (seq, d) in diffs {
                    w.u32(*seq);
                    d.encode(w);
                }
            }
            PageDiffs::Full { applied, data } => {
                w.u8(2);
                encode_applied(applied, w);
                w.bytes(data);
            }
            PageDiffs::Zero { applied } => {
                w.u8(5);
                encode_applied(applied, w);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Option<PageDiffs> {
        Some(match r.u8()? {
            1 => {
                let covered_hi = r.u32()?;
                let n = r.u16()? as usize;
                let mut diffs = Vec::with_capacity(n);
                for _ in 0..n {
                    let seq = r.u32()?;
                    diffs.push((seq, Diff::decode(r)?));
                }
                PageDiffs::Diffs { covered_hi, diffs }
            }
            2 => PageDiffs::Full {
                applied: decode_applied(r)?,
                data: r.bytes()?.to_vec(),
            },
            5 => PageDiffs::Zero {
                applied: decode_applied(r)?,
            },
            _ => return None,
        })
    }
}

impl Response {
    pub fn encode(&self, rid: u32) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(128);
        self.encode_into(rid, &mut w);
        w.finish()
    }

    /// Encode into an existing (typically pooled) writer.
    pub fn encode_into(&self, rid: u32, w: &mut WireWriter) {
        w.u32(rid);
        match self {
            Response::Diffs {
                page,
                covered_hi,
                diffs,
            } => {
                w.u8(1).u32(*page).u32(*covered_hi).u16(diffs.len() as u16);
                for (seq, d) in diffs {
                    w.u32(*seq);
                    d.encode(w);
                }
            }
            Response::FullPage {
                page,
                applied,
                data,
            } => {
                w.u8(2).u32(*page);
                encode_applied(applied, w);
                w.bytes(data);
            }
            Response::Grant { lock, vc, records } => {
                w.u8(3).u32(*lock);
                vc.encode(w);
                encode_records(records, w);
            }
            Response::BarrierRelease { vc, records } => {
                w.u8(4);
                vc.encode(w);
                encode_records(records, w);
            }
            Response::ZeroPage { page, applied } => {
                w.u8(5).u32(*page);
                encode_applied(applied, w);
            }
            Response::BarrierTreeRelease {
                barrier,
                vc,
                records,
            } => {
                w.u8(6).u32(*barrier);
                vc.encode(w);
                encode_records(records, w);
            }
            Response::MultiDiffs { pages } => {
                w.u8(7).u16(pages.len() as u16);
                for (page, pd) in pages {
                    w.u32(*page);
                    pd.encode_into(w);
                }
            }
            Response::NoticeAck { barrier } => {
                w.u8(8).u32(*barrier);
            }
        }
    }

    pub fn decode(buf: &[u8]) -> Option<(u32, Response)> {
        let mut r = WireReader::new(buf);
        let rid = r.u32()?;
        let resp = match r.u8()? {
            1 => {
                let page = r.u32()?;
                let covered_hi = r.u32()?;
                let n = r.u16()? as usize;
                let mut diffs = Vec::with_capacity(n);
                for _ in 0..n {
                    let seq = r.u32()?;
                    diffs.push((seq, Diff::decode(&mut r)?));
                }
                Response::Diffs {
                    page,
                    covered_hi,
                    diffs,
                }
            }
            2 => Response::FullPage {
                page: r.u32()?,
                applied: decode_applied(&mut r)?,
                data: r.bytes()?.to_vec(),
            },
            3 => Response::Grant {
                lock: r.u32()?,
                vc: VectorClock::decode(&mut r)?,
                records: decode_records(&mut r)?,
            },
            4 => Response::BarrierRelease {
                vc: VectorClock::decode(&mut r)?,
                records: decode_records(&mut r)?,
            },
            5 => Response::ZeroPage {
                page: r.u32()?,
                applied: decode_applied(&mut r)?,
            },
            6 => Response::BarrierTreeRelease {
                barrier: r.u32()?,
                vc: VectorClock::decode(&mut r)?,
                records: decode_records(&mut r)?,
            },
            7 => {
                let n = r.u16()? as usize;
                let mut pages = Vec::with_capacity(n);
                for _ in 0..n {
                    let page = r.u32()?;
                    pages.push((page, PageDiffs::decode(&mut r)?));
                }
                Response::MultiDiffs { pages }
            }
            8 => Response::NoticeAck { barrier: r.u32()? },
            _ => return None,
        };
        Some((rid, resp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vc(vals: &[u32]) -> VectorClock {
        let mut v = VectorClock::new(vals.len());
        for (i, &x) in vals.iter().enumerate() {
            v.set(i, x);
        }
        v
    }

    fn rec(node: u16, seq: u32, vcv: &[u32], pages: &[u32]) -> IntervalRecord {
        IntervalRecord {
            node,
            seq,
            vc: vc(vcv),
            pages: pages.to_vec(),
        }
    }

    #[test]
    fn request_roundtrips() {
        let cases = vec![
            Request::Diff {
                page: 42,
                lo: 1,
                hi: 7,
            },
            Request::Page { page: 9 },
            Request::Acquire {
                lock: 3,
                vc: vc(&[1, 2, 3]),
            },
            Request::AcquireFwd {
                lock: 3,
                requester: 2,
                rid: 77,
                vc: vc(&[0, 5]),
            },
            Request::BarrierArrive {
                barrier: 1,
                vc: vc(&[4, 4]),
                records: vec![rec(0, 4, &[4, 0], &[1, 2])],
            },
            Request::BarrierTreeArrive {
                barrier: 2,
                min_vc: vc(&[1, 0, 2]),
                vc: vc(&[4, 3, 5]),
                records: vec![rec(1, 3, &[0, 3, 1], &[7]), rec(2, 5, &[1, 0, 5], &[])],
            },
        ];
        for (i, req) in cases.into_iter().enumerate() {
            let buf = req.encode(i as u32);
            let (rid, back) = Request::decode(&buf).expect("decode");
            assert_eq!(rid, i as u32);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_roundtrips() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[5] = 9;
        let d = Diff::create(&twin, &cur);
        let cases = vec![
            Response::Diffs {
                page: 1,
                covered_hi: 4,
                diffs: vec![(3, d.clone()), (4, Diff::empty())],
            },
            Response::FullPage {
                page: 2,
                applied: vec![1, 0, 7],
                data: vec![9u8; 128],
            },
            Response::Grant {
                lock: 5,
                vc: vc(&[2, 2]),
                records: vec![rec(1, 2, &[0, 2], &[8])],
            },
            Response::BarrierRelease {
                vc: vc(&[3, 3, 3]),
                records: vec![],
            },
            Response::BarrierTreeRelease {
                barrier: 9,
                vc: vc(&[6, 6]),
                records: vec![rec(0, 6, &[6, 2], &[1])],
            },
        ];
        for (i, resp) in cases.into_iter().enumerate() {
            let buf = resp.encode(100 + i as u32);
            let (rid, back) = Response::decode(&buf).expect("decode");
            assert_eq!(rid, 100 + i as u32);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn zero_page_roundtrips() {
        let resp = Response::ZeroPage {
            page: 42,
            applied: vec![3, 0, 9, 1],
        };
        let buf = resp.encode(7);
        assert!(buf.len() < 32, "zero page must be compact");
        assert_eq!(Response::decode(&buf), Some((7, resp)));
    }

    #[test]
    fn covered_hi_travels_with_diffs() {
        let resp = Response::Diffs {
            page: 3,
            covered_hi: 99,
            diffs: vec![],
        };
        let buf = resp.encode(1);
        match Response::decode(&buf) {
            Some((1, Response::Diffs { covered_hi, diffs, .. })) => {
                assert_eq!(covered_hi, 99);
                assert!(diffs.is_empty());
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn multi_diff_roundtrips() {
        let req = Request::MultiDiff {
            pages: vec![(3, 1, 4), (9, 2, 2), (12, 1, 9)],
        };
        let buf = req.encode(55);
        assert_eq!(Request::decode(&buf), Some((55, req)));

        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[10] = 3;
        let d = Diff::create(&twin, &cur);
        let resp = Response::MultiDiffs {
            pages: vec![
                (
                    3,
                    PageDiffs::Diffs {
                        covered_hi: 4,
                        diffs: vec![(2, d), (4, Diff::empty())],
                    },
                ),
                (
                    9,
                    PageDiffs::Full {
                        applied: vec![1, 2],
                        data: vec![7u8; 96],
                    },
                ),
                (12, PageDiffs::Zero { applied: vec![0, 9] }),
            ],
        };
        let buf = resp.encode(56);
        assert_eq!(Response::decode(&buf), Some((56, resp)));
    }

    #[test]
    fn empty_multi_diffs_roundtrips() {
        // A responder that fit nothing under budget still answers.
        let resp = Response::MultiDiffs { pages: vec![] };
        let buf = resp.encode(8);
        assert_eq!(Response::decode(&buf), Some((8, resp)));
    }

    #[test]
    fn notice_release_roundtrips() {
        let req = Request::NoticeRelease {
            barrier: 4,
            tree: true,
            reply_rid: 310,
            vc: vc(&[7, 2, 9]),
            records: vec![rec(2, 9, &[1, 0, 9], &[3, 5])],
        };
        let buf = req.encode(61);
        assert_eq!(Request::decode(&buf), Some((61, req)));

        let flat = Request::NoticeRelease {
            barrier: 0,
            tree: false,
            reply_rid: 12,
            vc: vc(&[1, 1]),
            records: vec![],
        };
        let buf = flat.encode(62);
        assert_eq!(Request::decode(&buf), Some((62, flat)));

        let ack = Response::NoticeAck { barrier: 4 };
        let buf = ack.encode(61);
        assert!(buf.len() < 16, "ack must be compact");
        assert_eq!(Response::decode(&buf), Some((61, ack)));
    }

    #[test]
    fn garbage_decodes_to_none() {
        assert!(Request::decode(&[1, 2, 3]).is_none());
        assert!(Response::decode(&[0, 0, 0, 0, 99]).is_none());
    }

    proptest! {
        #[test]
        fn diff_request_roundtrip_any(page: u32, lo: u32, hi: u32, rid: u32) {
            let req = Request::Diff { page, lo, hi };
            let buf = req.encode(rid);
            prop_assert_eq!(Request::decode(&buf), Some((rid, req)));
        }
    }
}
