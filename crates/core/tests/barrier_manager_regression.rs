//! Regression: the barrier manager must not incorporate arrivals'
//! interval records (or vector times) before its own departure. It used
//! to insert them into its log on arrival; a subsequent lock grant then
//! deduplicated against the log and skipped the page invalidation,
//! losing lock-protected updates. This schedule (found by the proptest
//! in tests/stress_and_faults.rs) reproduced the lost update.

use std::sync::Arc;
use tm_sim::{Ns, SimParams};
use tmk::memsub::run_mem_dsm;
use tmk::TmkConfig;

#[test]
fn barrier_manager_defers_incorporation() {
    let ops: Vec<(u8,u8)> = vec![(28, 134), (17, 66), (201, 165), (89, 115), (73, 55), (87, 126), (137, 132), (44, 45), (29, 158), (175, 83), (146, 103), (240, 232), (189, 70), (81, 103), (210, 230), (67, 168), (79, 124), (6, 131), (146, 24), (201, 43), (150, 5), (125, 177), (201, 198), (206, 23), (24, 73), (164, 248), (201, 193), (156, 125), (14, 207), (204, 151)];
    for round in 0..5 {
        let expected = {
            let mut v = vec![0u32; 8];
            for &(_, slot) in &ops { v[slot as usize % 8] += 1; }
            v
        };
        let ops2 = Arc::new(ops.clone());
        let want = expected.clone();
        let out = run_mem_dsm(3, Arc::new(SimParams::paper_testbed()), Ns::from_us(5), TmkConfig::default(), move |tmk| {
            let r = tmk.malloc(4096);
            tmk.barrier(0);
            let me = tmk.proc_id();
            for &(who, slot) in ops2.iter() {
                if who as usize % 3 == me {
                    let s = slot as usize % 8;
                    tmk.acquire(s as u32 + 1);
                    let v = tmk.get_u32(r, s);
                    tmk.set_u32(r, s, v + 1);
                    tmk.release(s as u32 + 1);
                }
            }
            tmk.barrier(1);
            let mut got = Vec::new();
            for s in 0..8 { got.push(tmk.get_u32(r, s)); }
            got
        });
        for o in &out {
            assert_eq!(o.result, want, "round {round} node {}", o.id);
        }
    }
}
