//! End-to-end DSM protocol tests over the in-memory substrate: real
//! multi-threaded clusters exercising lazy release consistency, locks,
//! barriers, twins/diffs, false sharing and GC fallback — independent of
//! any transport model.

use std::sync::Arc;

use tm_sim::{Ns, SimParams};
use tmk::memsub::{run_mem_dsm, MemSubstrate};
use tmk::{Tmk, TmkConfig};

fn run<R, F>(n: usize, body: F) -> Vec<tm_sim::runner::NodeOutcome<R>>
where
    R: Send + 'static,
    F: Fn(&mut Tmk<MemSubstrate>) -> R + Send + Sync + 'static,
{
    run_mem_dsm(
        n,
        Arc::new(SimParams::paper_testbed()),
        Ns::from_us(5),
        TmkConfig::default(),
        body,
    )
}

#[test]
fn barrier_publishes_writes() {
    let out = run(4, |tmk| {
        let region = tmk.malloc(4096 * 4);
        if tmk.proc_id() == 0 {
            for i in 0..64 {
                tmk.set_u32(region, i, 1000 + i as u32);
            }
        }
        tmk.barrier(1);
        let mut got = Vec::new();
        for i in 0..64 {
            got.push(tmk.get_u32(region, i));
        }
        got
    });
    for o in &out {
        let want: Vec<u32> = (0..64).map(|i| 1000 + i).collect();
        assert_eq!(o.result, want, "node {} read wrong data", o.id);
    }
}

#[test]
fn every_node_writes_its_stripe() {
    let n = 4;
    let out = run(n, move |tmk| {
        let region = tmk.malloc(4096 * n);
        let me = tmk.proc_id();
        // Each node owns one page-sized stripe.
        for i in 0..1024 {
            tmk.set_u32(region, me * 1024 + i, (me * 10000 + i) as u32);
        }
        tmk.barrier(1);
        // Everyone checks everyone's stripe.
        let mut sum = 0u64;
        for p in 0..n {
            for i in 0..1024 {
                let v = tmk.get_u32(region, p * 1024 + i);
                assert_eq!(v as usize, p * 10000 + i);
                sum += v as u64;
            }
        }
        sum
    });
    let first = out[0].result;
    assert!(out.iter().all(|o| o.result == first));
}

#[test]
fn lock_protected_counter_is_atomic() {
    let n = 4;
    let rounds = 25;
    let out = run(n, move |tmk| {
        let region = tmk.malloc(4096);
        tmk.barrier(1);
        for _ in 0..rounds {
            tmk.acquire(0);
            let v = tmk.get_u32(region, 0);
            tmk.set_u32(region, 0, v + 1);
            tmk.release(0);
        }
        tmk.barrier(2);
        tmk.get_u32(region, 0)
    });
    for o in &out {
        assert_eq!(o.result, (n * rounds) as u32);
    }
}

#[test]
fn direct_and_indirect_acquire_paths() {
    // Lock 0's manager is node 0. Node 1 acquires (manager-owned: direct),
    // then node 2 acquires (owner is node 1: indirect via manager).
    let out = run(3, |tmk| {
        let region = tmk.malloc(4096);
        tmk.barrier(1);
        match tmk.proc_id() {
            1 => {
                tmk.acquire(0);
                tmk.set_u32(region, 0, 11);
                tmk.release(0);
                tmk.barrier(2);
            }
            2 => {
                tmk.barrier(2);
                tmk.acquire(0);
                let v = tmk.get_u32(region, 0);
                tmk.set_u32(region, 0, v + 100);
                tmk.release(0);
            }
            _ => {
                tmk.barrier(2);
            }
        }
        tmk.barrier(3);
        tmk.get_u32(region, 0)
    });
    for o in &out {
        assert_eq!(o.result, 111);
    }
}

#[test]
fn false_sharing_two_writers_one_page() {
    // Nodes 0 and 1 write disjoint halves of the same page concurrently;
    // the multi-writer twin/diff protocol must merge both.
    let out = run(2, |tmk| {
        let region = tmk.malloc(4096);
        tmk.barrier(1);
        let me = tmk.proc_id();
        for i in 0..512 {
            tmk.set_u32(region, me * 512 + i, (me * 1000 + i) as u32);
        }
        tmk.barrier(2);
        let mut ok = true;
        for p in 0..2 {
            for i in 0..512 {
                ok &= tmk.get_u32(region, p * 512 + i) == (p * 1000 + i) as u32;
            }
        }
        ok
    });
    assert!(out.iter().all(|o| o.result));
}

#[test]
fn migratory_data_applies_diffs_causally() {
    // Node 0 writes x=1 under the lock; node 1 then overwrites x=2 under
    // the lock; node 2 acquires last and must see 2 (requires causal diff
    // ordering, not node-id order).
    let out = run(3, |tmk| {
        let region = tmk.malloc(4096);
        tmk.barrier(1);
        let mut seen = u32::MAX;
        match tmk.proc_id() {
            0 => {
                tmk.acquire(7);
                tmk.set_u32(region, 0, 1);
                tmk.release(7);
                tmk.barrier(2);
                tmk.barrier(3);
            }
            1 => {
                tmk.barrier(2);
                tmk.acquire(7);
                let v = tmk.get_u32(region, 0);
                assert_eq!(v, 1);
                tmk.set_u32(region, 0, 2);
                tmk.release(7);
                tmk.barrier(3);
            }
            _ => {
                tmk.barrier(2);
                tmk.barrier(3);
                tmk.acquire(7);
                seen = tmk.get_u32(region, 0);
                tmk.release(7);
            }
        }
        seen
    });
    // Node 2 acquired last and must observe the latest value.
    assert_eq!(out[2].result, 2);
}

#[test]
fn repeated_iterations_converge() {
    // A mini-Jacobi: ping-pong updates across barriers, verifying values
    // flow every iteration.
    let iters = 8;
    let out = run(2, move |tmk| {
        // Double-buffered (race-free): read epoch k from `cur`, write
        // epoch k+1 into `next`, swap at the barrier.
        let a = tmk.malloc(4096 * 2);
        let b = tmk.malloc(4096 * 2);
        tmk.barrier(0);
        let me = tmk.proc_id();
        let (mut cur, mut next) = (a, b);
        for it in 0..iters {
            let other = tmk.get_u32(cur, (1 - me) * 1024);
            tmk.set_u32(next, me * 1024, other + 1);
            tmk.barrier(100 + it);
            std::mem::swap(&mut cur, &mut next);
        }
        let x = tmk.get_u32(cur, 0);
        let y = tmk.get_u32(cur, 1024);
        (x, y)
    });
    // After k race-free rounds of x = y+1 / y = x+1 from 0/0, both hold k.
    for o in &out {
        assert_eq!(o.result, (iters, iters));
    }
}

#[test]
fn gc_fallback_serves_full_pages() {
    // diff_keep = 1 forces the full-page fallback when a node lags more
    // than one interval behind.
    let cfg = TmkConfig {
        diff_keep: 1,
        ..Default::default()
    };
    let out = run_mem_dsm(
        2,
        Arc::new(SimParams::paper_testbed()),
        Ns::from_us(5),
        cfg,
        |tmk| {
            let region = tmk.malloc(4096);
            tmk.barrier(0);
            if tmk.proc_id() == 0 {
                // Many lock-delimited intervals writing the same page; the
                // old diffs get trimmed.
                for k in 0..10u32 {
                    tmk.acquire(1);
                    tmk.set_u32(region, 3, k * 7);
                    tmk.release(1);
                }
            }
            tmk.barrier(1);
            tmk.get_u32(region, 3)
        },
    );
    for o in &out {
        assert_eq!(o.result, 63);
    }
}

#[test]
fn large_region_spanning_many_pages() {
    let out = run(2, |tmk| {
        let bytes = 4096 * 40;
        let region = tmk.malloc(bytes);
        if tmk.proc_id() == 0 {
            let data: Vec<f32> = (0..bytes / 4).map(|i| i as f32 * 0.5).collect();
            tmk.write_f32s(region, 0, &data);
        }
        tmk.barrier(1);
        let mut buf = vec![0f32; bytes / 4];
        tmk.read_f32s(region, 0, &mut buf);
        buf.iter().enumerate().all(|(i, &v)| v == i as f32 * 0.5)
    });
    assert!(out.iter().all(|o| o.result));
}

#[test]
fn time_advances_and_is_consistent() {
    let out = run(4, |tmk| {
        let region = tmk.malloc(4096);
        tmk.barrier(1);
        if tmk.proc_id() == 0 {
            tmk.set_u32(region, 0, 1);
        }
        tmk.compute(10_000);
        tmk.barrier(2);
        tmk.get_u32(region, 0)
    });
    for o in &out {
        assert_eq!(o.result, 1);
        // 10k work units at 10ns each = 100us minimum.
        assert!(o.finish >= Ns::from_us(100), "node {} finished at {}", o.id, o.finish);
        assert!(o.stats.barriers >= 3);
    }
}

#[test]
fn stats_track_protocol_activity() {
    let out = run(2, |tmk| {
        let region = tmk.malloc(4096);
        tmk.barrier(1);
        if tmk.proc_id() == 0 {
            tmk.set_u32(region, 0, 5);
        }
        tmk.barrier(2);
        tmk.get_u32(region, 0)
    });
    let writer = &out[0].stats;
    let reader = &out[1].stats;
    assert!(writer.twins_created >= 1);
    assert!(writer.diffs_created >= 1);
    // Node 1 first-touches the page (fetch) and sees node 0's notice.
    assert!(reader.page_faults >= 1);
    assert!(reader.pages_fetched + reader.diffs_applied >= 1);
}
