//! Work partitioning helpers.

/// Contiguous band `[start, end)` of `total` items for node `me` of `n`:
/// the first `total % n` nodes get one extra item.
pub fn band(total: usize, n: usize, me: usize) -> (usize, usize) {
    assert!(me < n, "node {me} out of {n}");
    let base = total / n;
    let extra = total % n;
    let start = me * base + me.min(extra);
    let len = base + usize::from(me < extra);
    (start, (start + len).min(total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_exactly_once() {
        for total in [0usize, 1, 7, 16, 100, 1023] {
            for n in 1..=9 {
                let mut covered = 0;
                let mut prev_end = 0;
                for me in 0..n {
                    let (s, e) = band(total, n, me);
                    assert_eq!(s, prev_end, "bands must be contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, total);
                assert_eq!(prev_end, total);
            }
        }
    }

    #[test]
    fn balanced_within_one() {
        for total in [10usize, 97, 1024] {
            for n in [2usize, 3, 7, 16] {
                let sizes: Vec<usize> = (0..n).map(|m| {
                    let (s, e) = band(total, n, m);
                    e - s
                }).collect();
                let mx = *sizes.iter().max().unwrap();
                let mn = *sizes.iter().min().unwrap();
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bad_node_panics() {
        band(10, 2, 5);
    }
}
