//! Branch-and-bound traveling salesman over a shared work queue.
//!
//! The lock-dominated application of the suite: a queue of path prefixes
//! and the global best bound both live in shared memory behind locks, so
//! progress is governed by lock handoff latency — the microbenchmark gap
//! the paper's Figure 3 shows for locks translates directly into Figure
//! 4's TSP runtimes.
//!
//! Distances are integers (deterministic pseudo-random city coordinates),
//! so the optimal tour length is exact and identical to the sequential
//! branch-and-bound's.

use tmk::{SharedId, Substrate, Tmk};

/// Locks.
const QUEUE_LOCK: u32 = 1;
const BEST_LOCK: u32 = 2;

/// Prefixes shorter than this are expanded and requeued; at this depth a
/// node solves the subtree exhaustively.
const EXPAND_DEPTH: usize = 3;

/// Work units charged per city visited during exhaustive search.
const UNITS_PER_NODE: u64 = 12;

/// Problem configuration.
#[derive(Debug, Clone)]
pub struct TspConfig {
    pub cities: usize,
    /// Seed for the deterministic coordinate generator.
    pub seed: u64,
}

impl TspConfig {
    pub fn new(cities: usize) -> Self {
        TspConfig { cities, seed: 20030422 }
    }

    /// The symmetric integer distance matrix.
    pub fn distances(&self) -> Vec<Vec<u32>> {
        // xorshift64* coordinates in a 1000×1000 grid.
        let mut s = self.seed | 1;
        let mut next = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let pts: Vec<(i64, i64)> = (0..self.cities)
            .map(|_| ((next() % 1000) as i64, (next() % 1000) as i64))
            .collect();
        (0..self.cities)
            .map(|i| {
                (0..self.cities)
                    .map(|j| {
                        let dx = (pts[i].0 - pts[j].0) as f64;
                        let dy = (pts[i].1 - pts[j].1) as f64;
                        (dx * dx + dy * dy).sqrt().round() as u32
                    })
                    .collect()
            })
            .collect()
    }
}

/// Exhaustive DFS from a prefix with bound pruning. Returns work done
/// (nodes visited) and updates `best` in place.
fn dfs(
    dist: &[Vec<u32>],
    path: &mut Vec<u8>,
    visited: &mut [bool],
    len: u32,
    best: &mut u32,
    nodes: &mut u64,
) {
    let n = dist.len();
    *nodes += 1;
    if len >= *best {
        return;
    }
    if path.len() == n {
        let total = len + dist[*path.last().unwrap() as usize][path[0] as usize];
        if total < *best {
            *best = total;
        }
        return;
    }
    let last = *path.last().unwrap() as usize;
    for c in 0..n {
        if !visited[c] {
            let step = dist[last][c];
            if len + step < *best {
                visited[c] = true;
                path.push(c as u8);
                dfs(dist, path, visited, len + step, best, nodes);
                path.pop();
                visited[c] = false;
            }
        }
    }
}

/// Sequential reference: the exact optimal tour length.
pub fn tsp_seq(cfg: &TspConfig) -> u32 {
    let dist = cfg.distances();
    let mut best = u32::MAX;
    let mut path = vec![0u8];
    let mut visited = vec![false; cfg.cities];
    visited[0] = true;
    let mut nodes = 0;
    dfs(&dist, &mut path, &mut visited, 0, &mut best, &mut nodes);
    best
}

/// Shared-queue layout (all u32 slots in one region):
///   [0] head  [1] tail
/// Entries start at slot 8; each entry is `1 + MAX_PATH` u32s:
///   [len, city0, city1, …].
const MAX_PATH: usize = 24;
const ENTRY_SLOTS: usize = 1 + MAX_PATH;
const QUEUE_BASE: usize = 8;
const QUEUE_CAP: usize = 4096;

struct Queue {
    region: SharedId,
}

impl Queue {
    fn push<S: Substrate>(&self, tmk: &mut Tmk<S>, path: &[u8]) {
        let tail = tmk.get_u32(self.region, 1) as usize;
        assert!(tail < QUEUE_CAP, "work queue overflow");
        let base = QUEUE_BASE + tail * ENTRY_SLOTS;
        tmk.set_u32(self.region, base, path.len() as u32);
        for (k, &c) in path.iter().enumerate() {
            tmk.set_u32(self.region, base + 1 + k, c as u32);
        }
        tmk.set_u32(self.region, 1, tail as u32 + 1);
    }

    fn pop<S: Substrate>(&self, tmk: &mut Tmk<S>) -> Option<Vec<u8>> {
        let head = tmk.get_u32(self.region, 0) as usize;
        let tail = tmk.get_u32(self.region, 1) as usize;
        if head == tail {
            return None;
        }
        let base = QUEUE_BASE + head * ENTRY_SLOTS;
        let len = tmk.get_u32(self.region, base) as usize;
        let mut path = Vec::with_capacity(len);
        for k in 0..len {
            path.push(tmk.get_u32(self.region, base + 1 + k) as u8);
        }
        tmk.set_u32(self.region, 0, head as u32 + 1);
        Some(path)
    }
}

/// Parallel branch and bound. Returns the optimal tour length (identical
/// on every node, equal to [`tsp_seq`]).
pub fn tsp_parallel<S: Substrate>(tmk: &mut Tmk<S>, cfg: &TspConfig) -> u32 {
    let dist = cfg.distances();
    let n = cfg.cities;
    assert!(n <= MAX_PATH);
    let queue_region = tmk.malloc((QUEUE_BASE + QUEUE_CAP * ENTRY_SLOTS) * 4);
    let best_region = tmk.malloc(4096);
    let q = Queue { region: queue_region };

    if tmk.proc_id() == 0 {
        tmk.set_u32(best_region, 0, u32::MAX);
        // Seed the queue with every prefix of EXPAND_DEPTH cities —
        // breadth-first expansion from the root, as in the TreadMarks
        // distribution's TSP. Workers then race to pop prefixes.
        let depth = EXPAND_DEPTH.min(n);
        let mut frontier: Vec<Vec<u8>> = vec![vec![0]];
        while frontier[0].len() < depth {
            let mut next = Vec::new();
            for path in &frontier {
                for c in 0..n as u8 {
                    if !path.contains(&c) {
                        let mut child = path.clone();
                        child.push(c);
                        next.push(child);
                    }
                }
            }
            frontier = next;
        }
        tmk.compute(frontier.len() as u64 * 4);
        tmk.acquire(QUEUE_LOCK);
        for path in &frontier {
            q.push(tmk, path);
        }
        tmk.release(QUEUE_LOCK);
    }
    tmk.barrier(0);

    // Workers: pop prefixes until the queue drains. The queue only ever
    // shrinks after seeding, so an empty pop is a final answer — no
    // spin-wait, no termination counter.
    loop {
        tmk.acquire(QUEUE_LOCK);
        let work = q.pop(tmk);
        tmk.release(QUEUE_LOCK);
        let Some(path) = work else { break };

        let path_len: u32 = path
            .windows(2)
            .map(|w| dist[w[0] as usize][w[1] as usize])
            .sum();
        // Snapshot the global bound.
        tmk.acquire(BEST_LOCK);
        let best = tmk.get_u32(best_region, 0);
        tmk.release(BEST_LOCK);
        if path_len >= best {
            continue; // pruned whole subtree
        }

        // Solve the subtree exhaustively with local pruning.
        let mut visited = vec![false; n];
        for &c in &path {
            visited[c as usize] = true;
        }
        let mut p = path.clone();
        let mut local_best = best;
        let mut nodes = 0u64;
        dfs(&dist, &mut p, &mut visited, path_len, &mut local_best, &mut nodes);
        tmk.compute(nodes * UNITS_PER_NODE);
        if local_best < best {
            tmk.acquire(BEST_LOCK);
            let cur = tmk.get_u32(best_region, 0);
            if local_best < cur {
                tmk.set_u32(best_region, 0, local_best);
            }
            tmk.release(BEST_LOCK);
        }
    }

    tmk.barrier(1);
    tmk.acquire(BEST_LOCK);
    let answer = tmk.get_u32(best_region, 0);
    tmk.release(BEST_LOCK);
    tmk.barrier(2);
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_sim::{Ns, SimParams};
    use tmk::memsub::run_mem_dsm;
    use tmk::TmkConfig;

    #[test]
    fn distances_are_symmetric_and_stable() {
        let cfg = TspConfig::new(8);
        let d1 = cfg.distances();
        let d2 = cfg.distances();
        assert_eq!(d1, d2);
        for (i, row) in d1.iter().enumerate() {
            assert_eq!(row[i], 0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, d1[j][i]);
            }
        }
    }

    #[test]
    fn seq_finds_known_small_optimum() {
        // 4 cities: brute-force check.
        let cfg = TspConfig::new(4);
        let d = cfg.distances();
        let mut best = u32::MAX;
        let idx = [1usize, 2, 3];
        let perms = [
            [1, 2, 3],
            [1, 3, 2],
            [2, 1, 3],
            [2, 3, 1],
            [3, 1, 2],
            [3, 2, 1],
        ];
        let _ = idx;
        for p in perms {
            let tour = d[0][p[0]] + d[p[0]][p[1]] + d[p[1]][p[2]] + d[p[2]][0];
            best = best.min(tour);
        }
        assert_eq!(tsp_seq(&cfg), best);
    }

    #[test]
    fn parallel_matches_sequential_optimum() {
        for n in [1usize, 2, 4] {
            let cfg = TspConfig::new(9);
            let want = tsp_seq(&cfg);
            let out = run_mem_dsm(
                n,
                Arc::new(SimParams::paper_testbed()),
                Ns::from_us(5),
                TmkConfig::default(),
                move |tmk| tsp_parallel(tmk, &cfg),
            );
            for o in &out {
                assert_eq!(o.result, want, "n={n}");
            }
        }
    }
}
