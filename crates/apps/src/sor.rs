//! Red-black successive over-relaxation.
//!
//! Two half-sweeps per iteration (red points, then black points), a
//! barrier after each, and — following the paper's observation that its
//! SOR "uses locks for synchronization more than any other application" —
//! a lock-guarded global residual accumulated by every node every
//! iteration. Band boundaries share pages when rows are narrower than a
//! page, exercising the multi-writer (false sharing) protocol.

use tmk::{Substrate, Tmk};

use crate::partition::band;

/// Work units per updated point (5-point stencil + over-relaxation).
const UNITS_PER_POINT: u64 = 6;
/// The lock guarding the global residual.
const RESIDUAL_LOCK: u32 = 0;

/// Problem configuration: an `rows × cols` grid.
#[derive(Debug, Clone)]
pub struct SorConfig {
    pub rows: usize,
    pub cols: usize,
    pub iterations: usize,
    /// Over-relaxation factor.
    pub omega: f32,
}

impl SorConfig {
    pub fn new(rows: usize, cols: usize, iterations: usize) -> Self {
        SorConfig {
            rows,
            cols,
            iterations,
            omega: 1.5,
        }
    }
}

fn initial(i: usize, j: usize) -> f32 {
    (((i * 7 + j * 13) % 31) as f32 - 15.0) / 4.0
}

/// Update one color's points in a row; returns the absolute residual
/// contribution. `color` is (i + j) % 2.
#[allow(clippy::too_many_arguments)]
fn sweep_row(
    i: usize,
    color: usize,
    omega: f32,
    up: &[f32],
    row: &mut [f32],
    down: &[f32],
) -> f64 {
    let cols = row.len();
    let mut res = 0f64;
    let start = 1 + (i + 1 + color) % 2;
    let mut j = start;
    while j < cols - 1 {
        let old = row[j];
        let gs = 0.25 * (up[j] + down[j] + row[j - 1] + row[j + 1]);
        let new = old + omega * (gs - old);
        row[j] = new;
        res += (new - old).abs() as f64;
        j += 2;
    }
    res
}

/// Sequential reference. Returns (checksum, final residual).
pub fn sor_seq(cfg: &SorConfig) -> (f64, f64) {
    let (r, c) = (cfg.rows, cfg.cols);
    let mut g = vec![0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            g[i * c + j] = initial(i, j);
        }
    }
    let mut last_res = 0f64;
    for _ in 0..cfg.iterations {
        last_res = 0.0;
        for color in 0..2usize {
            for i in 1..r - 1 {
                let up: Vec<f32> = g[(i - 1) * c..i * c].to_vec();
                let down: Vec<f32> = g[(i + 1) * c..(i + 2) * c].to_vec();
                let row = &mut g[i * c..(i + 1) * c];
                last_res += sweep_row(i, color, cfg.omega, &up, row, &down);
            }
        }
    }
    let sum = (0..r)
        .map(|i| g[i * c..(i + 1) * c].iter().map(|&v| v as f64).sum::<f64>())
        .sum();
    (sum, last_res)
}

/// Parallel SOR. Returns (checksum, final residual) — identical on all
/// nodes, bitwise equal to the sequential version for the checksum.
pub fn sor_parallel<S: Substrate>(tmk: &mut Tmk<S>, cfg: &SorConfig) -> (f64, f64) {
    let (r, c) = (cfg.rows, cfg.cols);
    let grid = tmk.malloc(r * c * 4);
    let shared_res = tmk.malloc(4096);
    let result = tmk.malloc(4096);
    let me = tmk.proc_id();
    let n = tmk.nprocs();
    let (lo, hi) = band(r, n, me);

    if me == 0 {
        let mut row = vec![0f32; c];
        for i in 0..r {
            for (j, v) in row.iter_mut().enumerate() {
                *v = initial(i, j);
            }
            tmk.write_f32s(grid, i * c, &row);
        }
    }
    tmk.barrier(0);

    let mut up = vec![0f32; c];
    let mut row = vec![0f32; c];
    let mut down = vec![0f32; c];
    let mut bid = 1u32;
    let mut final_res = 0f64;
    for it in 0..cfg.iterations {
        // Reset the shared residual at the top of each iteration.
        if me == 0 {
            tmk.set_f64(shared_res, 0, 0.0);
        }
        tmk.barrier(bid);
        bid += 1;
        let mut local_res = 0f64;
        for color in 0..2usize {
            for i in lo.max(1)..hi.min(r - 1) {
                tmk.read_f32s(grid, (i - 1) * c, &mut up);
                tmk.read_f32s(grid, i * c, &mut row);
                tmk.read_f32s(grid, (i + 1) * c, &mut down);
                local_res += sweep_row(i, color, cfg.omega, &up, &mut row, &down);
                tmk.write_f32s(grid, i * c, &row);
            }
            tmk.compute(((hi - lo) * c / 2) as u64 * UNITS_PER_POINT);
            tmk.barrier(bid);
            bid += 1;
        }
        // Lock-guarded global residual: SOR's lock-heavy synchronization.
        tmk.acquire(RESIDUAL_LOCK);
        let acc = tmk.get_f64(shared_res, 0);
        tmk.set_f64(shared_res, 0, acc + local_res);
        tmk.release(RESIDUAL_LOCK);
        tmk.barrier(bid);
        bid += 1;
        if it == cfg.iterations - 1 {
            final_res = tmk.get_f64(shared_res, 0);
        }
    }

    // Distributed checksum (see jacobi.rs).
    let partials = tmk.malloc(r * 8);
    for i in lo..hi {
        tmk.read_f32s(grid, i * c, &mut row);
        let p: f64 = row.iter().map(|&v| v as f64).sum();
        tmk.set_f64(partials, i, p);
    }
    tmk.barrier(u32::MAX - 2);
    if me == 0 {
        let mut sum = 0f64;
        for i in 0..r {
            sum += tmk.get_f64(partials, i);
        }
        tmk.set_f64(result, 0, sum);
    }
    tmk.barrier(u32::MAX - 1);
    (tmk.get_f64(result, 0), final_res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_sim::{Ns, SimParams};
    use tmk::memsub::run_mem_dsm;
    use tmk::TmkConfig;

    #[test]
    fn seq_reduces_residual() {
        let cfg = SorConfig::new(24, 24, 2);
        let (_, r2) = sor_seq(&cfg);
        let cfg10 = SorConfig::new(24, 24, 20);
        let (_, r20) = sor_seq(&cfg10);
        assert!(r20 < r2, "SOR should converge: {r20} !< {r2}");
    }

    #[test]
    fn parallel_matches_sequential() {
        for n in [1usize, 2, 4] {
            let cfg = SorConfig::new(24, 16, 3);
            let (want_sum, want_res) = sor_seq(&cfg);
            let out = run_mem_dsm(
                n,
                Arc::new(SimParams::paper_testbed()),
                Ns::from_us(5),
                TmkConfig::default(),
                move |tmk| sor_parallel(tmk, &cfg),
            );
            for o in &out {
                assert_eq!(o.result.0, want_sum, "checksum n={n} node {}", o.id);
                let err = (o.result.1 - want_res).abs();
                assert!(
                    err < 1e-9 * want_res.abs().max(1.0),
                    "residual n={n}: {} vs {want_res}",
                    o.result.1
                );
            }
        }
    }

    #[test]
    fn narrow_rows_force_false_sharing() {
        // 64 columns = 256-byte rows: 16 rows per page; every band
        // boundary falls mid-page.
        let cfg = SorConfig::new(32, 64, 2);
        let (want_sum, _) = sor_seq(&cfg);
        let out = run_mem_dsm(
            4,
            Arc::new(SimParams::paper_testbed()),
            Ns::from_us(5),
            TmkConfig::default(),
            move |tmk| sor_parallel(tmk, &cfg),
        );
        for o in &out {
            assert_eq!(o.result.0, want_sum);
        }
    }
}
