//! Jacobi: iterative 5-point relaxation on a square grid.
//!
//! Barrier-only synchronization and the highest computation-to-
//! communication ratio of the suite — which is why the paper's Figure 4
//! shows Jacobi with the *smallest* FAST/GM-over-UDP/GM gain (~2×):
//! there simply isn't much communication to accelerate.
//!
//! Double-buffered (read epoch k, write epoch k+1), so one barrier per
//! iteration is race-free. Boundary rows/columns are fixed.

use tmk::{Substrate, Tmk};

use crate::partition::band;

/// Work units charged per grid point per iteration (≈ 4 flops + loads on
/// a 700 MHz P-III at 10 ns/unit ⇒ 50 ns/point).
const UNITS_PER_POINT: u64 = 5;

/// Problem configuration.
#[derive(Debug, Clone)]
pub struct JacobiConfig {
    /// Grid edge (the paper's "Z×Z grid of real numbers").
    pub size: usize,
    pub iterations: usize,
}

impl JacobiConfig {
    pub fn new(size: usize, iterations: usize) -> Self {
        JacobiConfig { size, iterations }
    }
}

/// Deterministic initial condition.
fn initial(i: usize, j: usize) -> f32 {
    ((i * 31 + j * 17) % 101) as f32 / 7.0
}

/// One row's relaxation: `new[j] = 0.25 (up[j] + down[j] + row[j−1] +
/// row[j+1])` over the interior.
fn relax_row(up: &[f32], row: &[f32], down: &[f32], out: &mut [f32]) {
    let z = row.len();
    out[0] = row[0];
    out[z - 1] = row[z - 1];
    for j in 1..z - 1 {
        out[j] = 0.25 * (up[j] + down[j] + row[j - 1] + row[j + 1]);
    }
}

/// Sequential reference. Returns the final-grid checksum.
pub fn jacobi_seq(cfg: &JacobiConfig) -> f64 {
    let z = cfg.size;
    let mut cur = vec![0f32; z * z];
    let mut next = vec![0f32; z * z];
    for i in 0..z {
        for j in 0..z {
            cur[i * z + j] = initial(i, j);
        }
    }
    for _ in 0..cfg.iterations {
        // Fixed boundary rows.
        next[..z].copy_from_slice(&cur[..z]);
        next[(z - 1) * z..].copy_from_slice(&cur[(z - 1) * z..]);
        for i in 1..z - 1 {
            let (up, rest) = cur.split_at((i) * z);
            let up = &up[(i - 1) * z..];
            let row = &rest[..z];
            let down = &rest[z..2 * z];
            // Borrow juggling: copy out to keep it simple and identical
            // in evaluation order to the parallel version.
            let up = up.to_vec();
            let row = row.to_vec();
            let down = down.to_vec();
            let mut out = vec![0f32; z];
            relax_row(&up, &row, &down, &mut out);
            next[i * z..(i + 1) * z].copy_from_slice(&out);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    // Row-grouped summation (matches the parallel reduction's order).
    (0..z)
        .map(|i| cur[i * z..(i + 1) * z].iter().map(|&v| v as f64).sum::<f64>())
        .sum()
}

/// Parallel Jacobi over the DSM. All nodes call this; returns the final
/// checksum (computed by node 0 and published through shared memory, so
/// every node returns the same value).
pub fn jacobi_parallel<S: Substrate>(tmk: &mut Tmk<S>, cfg: &JacobiConfig) -> f64 {
    let z = cfg.size;
    let bytes = z * z * 4;
    let a = tmk.malloc(bytes);
    let b = tmk.malloc(bytes);
    let result = tmk.malloc(4096);
    tmk.distribute(a);
    tmk.distribute(b);

    let me = tmk.proc_id();
    let n = tmk.nprocs();
    let (lo, hi) = band(z, n, me);

    // Node 0 initializes.
    if me == 0 {
        let mut row = vec![0f32; z];
        for i in 0..z {
            for (j, v) in row.iter_mut().enumerate() {
                *v = initial(i, j);
            }
            tmk.write_f32s(a, i * z, &row);
        }
    }
    tmk.barrier(0);

    let (mut cur, mut next) = (a, b);
    let mut up = vec![0f32; z];
    let mut row = vec![0f32; z];
    let mut down = vec![0f32; z];
    let mut out = vec![0f32; z];
    for it in 0..cfg.iterations {
        // Fixed global boundary rows are owned by whoever holds them.
        for i in lo..hi {
            if i == 0 || i == z - 1 {
                tmk.read_f32s(cur, i * z, &mut row);
                tmk.write_f32s(next, i * z, &row);
                continue;
            }
            tmk.read_f32s(cur, (i - 1) * z, &mut up);
            tmk.read_f32s(cur, i * z, &mut row);
            tmk.read_f32s(cur, (i + 1) * z, &mut down);
            relax_row(&up, &row, &down, &mut out);
            tmk.write_f32s(next, i * z, &out);
        }
        tmk.compute(((hi - lo) * z) as u64 * UNITS_PER_POINT);
        tmk.barrier(1 + it as u32);
        std::mem::swap(&mut cur, &mut next);
    }

    // Distributed checksum: each node reduces its own rows (local reads)
    // into a shared row-partial array; node 0 folds the partials in row
    // order — bitwise identical to the sequential row-grouped sum, and
    // the gather costs one page of traffic instead of the whole grid.
    let partials = tmk.malloc(z * 8);
    for i in lo..hi {
        tmk.read_f32s(cur, i * z, &mut row);
        let p: f64 = row.iter().map(|&v| v as f64).sum();
        tmk.set_f64(partials, i, p);
    }
    tmk.barrier(u32::MAX - 2);
    if me == 0 {
        let mut sum = 0f64;
        for i in 0..z {
            sum += tmk.get_f64(partials, i);
        }
        tmk.set_f64(result, 0, sum);
    }
    tmk.barrier(u32::MAX - 1);
    tmk.get_f64(result, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_sim::{Ns, SimParams};
    use tmk::memsub::run_mem_dsm;
    use tmk::TmkConfig;

    #[test]
    fn seq_is_deterministic_and_smooths() {
        let c1 = jacobi_seq(&JacobiConfig::new(16, 4));
        let c2 = jacobi_seq(&JacobiConfig::new(16, 4));
        assert_eq!(c1, c2);
        // More iterations changes the field.
        let c3 = jacobi_seq(&JacobiConfig::new(16, 8));
        assert_ne!(c1, c3);
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        for n in [1usize, 2, 3, 4] {
            let cfg = JacobiConfig::new(32, 5);
            let want = jacobi_seq(&cfg);
            let out = run_mem_dsm(
                n,
                Arc::new(SimParams::paper_testbed()),
                Ns::from_us(5),
                TmkConfig::default(),
                move |tmk| jacobi_parallel(tmk, &cfg),
            );
            for o in &out {
                assert_eq!(o.result, want, "n={n} node {}", o.id);
            }
        }
    }

    #[test]
    fn zero_iterations_is_initial_sum() {
        let cfg = JacobiConfig::new(8, 0);
        let want: f64 = (0..8)
            .flat_map(|i| (0..8).map(move |j| initial(i, j) as f64))
            .sum();
        assert_eq!(jacobi_seq(&cfg), want);
    }
}
