//! 3-D complex FFT with a distributed transpose.
//!
//! The communication-heaviest application of the suite (the paper: 3D-FFT
//! "exchanges a large volume of messages per unit time" and has the
//! largest average message size) — and accordingly the biggest FAST/GM
//! win in Figure 4 (6.3× at 16 nodes, with UDP/GM *slowing down* from 8
//! to 16 nodes).
//!
//! Slab decomposition: radix-2 Cooley-Tukey along x and y inside each
//! node's z-slab (local), a z↔x transpose through shared memory (remote
//! reads of every other node's slab), then the final axis locally.

use tmk::{Substrate, Tmk};

use crate::partition::band;

/// Work units per butterfly.
const UNITS_PER_BUTTERFLY: u64 = 8;

/// Problem configuration: a `size³` complex grid (`size` a power of two).
#[derive(Debug, Clone)]
pub struct FftConfig {
    pub size: usize,
}

impl FftConfig {
    pub fn new(size: usize) -> Self {
        assert!(size.is_power_of_two(), "FFT size must be a power of two");
        FftConfig { size }
    }
}

/// Deterministic initial field.
fn initial(x: usize, y: usize, z: usize, n: usize) -> (f64, f64) {
    let s = (x * 73 + y * 179 + z * 283) % (n * n);
    let re = (s as f64) / (n as f64) - (n as f64) / 2.0;
    let im = ((s * 7 + 3) % 17) as f64 / 17.0;
    (re, im)
}

/// In-place radix-2 decimation-in-time FFT over interleaved (re, im)
/// pairs. `data.len() == 2 * n`, `n` a power of two.
pub fn fft1d(data: &mut [f64]) {
    let n = data.len() / 2;
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            data.swap(2 * i, 2 * j);
            data.swap(2 * i + 1, 2 * j + 1);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let a = i + k;
                let b = i + k + len / 2;
                let (br, bi) = (data[2 * b], data[2 * b + 1]);
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                let (ar, ai) = (data[2 * a], data[2 * a + 1]);
                data[2 * a] = ar + tr;
                data[2 * a + 1] = ai + ti;
                data[2 * b] = ar - tr;
                data[2 * b + 1] = ai - ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Naive DFT for validation of [`fft1d`].
pub fn dft1d(data: &[f64]) -> Vec<f64> {
    let n = data.len() / 2;
    let mut out = vec![0f64; 2 * n];
    for k in 0..n {
        let (mut sr, mut si) = (0f64, 0f64);
        for t in 0..n {
            let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            let (c, s) = (ang.cos(), ang.sin());
            sr += data[2 * t] * c - data[2 * t + 1] * s;
            si += data[2 * t] * s + data[2 * t + 1] * c;
        }
        out[2 * k] = sr;
        out[2 * k + 1] = si;
    }
    out
}

/// Index of complex element (x, y, z) in the interleaved slab layout
/// `[z][y][x]`, in f64 slots.
fn slot(x: usize, y: usize, z: usize, n: usize) -> usize {
    2 * ((z * n + y) * n + x)
}

/// Sequential reference: full 3-D FFT, returning the transposed-layout
/// checksum that the parallel version produces.
pub fn fft_seq(cfg: &FftConfig) -> f64 {
    let n = cfg.size;
    let mut a = vec![0f64; 2 * n * n * n];
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let (re, im) = initial(x, y, z, n);
                a[slot(x, y, z, n)] = re;
                a[slot(x, y, z, n) + 1] = im;
            }
        }
    }
    // FFT along x.
    let mut row = vec![0f64; 2 * n];
    for z in 0..n {
        for y in 0..n {
            row.copy_from_slice(&a[slot(0, y, z, n)..slot(0, y, z, n) + 2 * n]);
            fft1d(&mut row);
            a[slot(0, y, z, n)..slot(0, y, z, n) + 2 * n].copy_from_slice(&row);
        }
    }
    // FFT along y.
    for z in 0..n {
        for x in 0..n {
            for y in 0..n {
                row[2 * y] = a[slot(x, y, z, n)];
                row[2 * y + 1] = a[slot(x, y, z, n) + 1];
            }
            fft1d(&mut row);
            for y in 0..n {
                a[slot(x, y, z, n)] = row[2 * y];
                a[slot(x, y, z, n) + 1] = row[2 * y + 1];
            }
        }
    }
    // Transpose z<->x, then FFT along the (now contiguous) z axis.
    let mut b = vec![0f64; 2 * n * n * n];
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                b[slot(z, y, x, n)] = a[slot(x, y, z, n)];
                b[slot(z, y, x, n) + 1] = a[slot(x, y, z, n) + 1];
            }
        }
    }
    for x in 0..n {
        for y in 0..n {
            row.copy_from_slice(&b[slot(0, y, x, n)..slot(0, y, x, n) + 2 * n]);
            fft1d(&mut row);
            b[slot(0, y, x, n)..slot(0, y, x, n) + 2 * n].copy_from_slice(&row);
        }
    }
    // Plane-grouped weighted checksum (matches the parallel reduction).
    (0..n)
        .map(|zp| {
            let base = 2 * zp * n * n;
            b[base..base + 2 * n * n]
                .iter()
                .enumerate()
                .map(|(i, &v)| v * (((base + i) % 97) as f64 + 1.0))
                .sum::<f64>()
        })
        .sum()
}

/// Parallel 3-D FFT. Returns the same weighted checksum as [`fft_seq`],
/// identical on every node.
pub fn fft_parallel<S: Substrate>(tmk: &mut Tmk<S>, cfg: &FftConfig) -> f64 {
    let n = cfg.size;
    let slab_bytes = 2 * n * n * n * 8;
    let a = tmk.malloc(slab_bytes);
    let b = tmk.malloc(slab_bytes);
    let result = tmk.malloc(4096);
    let me = tmk.proc_id();
    let np = tmk.nprocs();
    let (zlo, zhi) = band(n, np, me);

    // Initialize own slab (every node writes its own z-band: distributed
    // initialization, unlike Jacobi/SOR, matching the paper's FFT which
    // is bandwidth-bound, not startup-bound).
    let mut plane = vec![0f64; 2 * n * n];
    for z in zlo..zhi {
        for y in 0..n {
            for x in 0..n {
                let (re, im) = initial(x, y, z, n);
                plane[2 * (y * n + x)] = re;
                plane[2 * (y * n + x) + 1] = im;
            }
        }
        tmk.write_f64s(a, slot(0, 0, z, n), &plane);
    }
    tmk.barrier(0);

    // Phase 1: FFT along x and y inside own z planes (local math, remote
    // only if the page layout crosses bands — it doesn't: planes are
    // 2·n²·8 bytes, page-aligned for n ≥ 16).
    let mut row = vec![0f64; 2 * n];
    let mut butterflies = 0u64;
    for z in zlo..zhi {
        tmk.read_f64s(a, slot(0, 0, z, n), &mut plane);
        for y in 0..n {
            let off = 2 * y * n;
            row.copy_from_slice(&plane[off..off + 2 * n]);
            fft1d(&mut row);
            plane[off..off + 2 * n].copy_from_slice(&row);
        }
        for x in 0..n {
            for y in 0..n {
                row[2 * y] = plane[2 * (y * n + x)];
                row[2 * y + 1] = plane[2 * (y * n + x) + 1];
            }
            fft1d(&mut row);
            for y in 0..n {
                plane[2 * (y * n + x)] = row[2 * y];
                plane[2 * (y * n + x) + 1] = row[2 * y + 1];
            }
        }
        tmk.write_f64s(a, slot(0, 0, z, n), &plane);
        butterflies += (2 * n * n * n.ilog2() as usize / 2) as u64;
    }
    tmk.compute(butterflies * UNITS_PER_BUTTERFLY);
    tmk.barrier(1);

    // Phase 2: scatter transpose z<->x. Each node writes its *own* A
    // slab into the z-slices of B: every B page ends up with word-
    // disjoint contributions from every node — the multi-writer
    // twin/diff protocol at full stretch, and the all-to-all that makes
    // FFT the most bandwidth-hungry application here.
    let (xlo, xhi) = band(n, np, me);
    let zlen = zhi - zlo;
    let mut slab = vec![0f64; 2 * n * n * zlen];
    for (zi, z) in (zlo..zhi).enumerate() {
        tmk.read_f64s(a, slot(0, 0, z, n), &mut plane);
        slab[2 * n * n * zi..2 * n * n * (zi + 1)].copy_from_slice(&plane);
    }
    let mut seg = vec![0f64; 2 * zlen];
    for y in 0..n {
        for x in 0..n {
            for zi in 0..zlen {
                seg[2 * zi] = slab[2 * ((zi * n + y) * n + x)];
                seg[2 * zi + 1] = slab[2 * ((zi * n + y) * n + x) + 1];
            }
            // B[z' = x][y][x' = z]: our z-band is contiguous along x'.
            tmk.write_f64s(b, slot(zlo, y, x, n), &seg);
        }
    }
    tmk.compute((n * n * zlen) as u64 * 2);
    tmk.barrier(2);

    // Phase 3: FFT along the transposed axis, local in B.
    let mut butterflies = 0u64;
    for xb in xlo..xhi {
        for y in 0..n {
            tmk.read_f64s(b, slot(0, y, xb, n), &mut row);
            fft1d(&mut row);
            tmk.write_f64s(b, slot(0, y, xb, n), &row);
        }
        butterflies += (n * n.ilog2() as usize / 2 * n) as u64;
    }
    tmk.compute(butterflies * UNITS_PER_BUTTERFLY);
    tmk.barrier(3);

    // Distributed checksum: each node reduces the planes of its own
    // x-band (local after phase 3) to per-plane partials; node 0 folds
    // them in plane order — bitwise identical to fft_seq.
    let partials = tmk.malloc(n * 8);
    let mut buf = vec![0f64; 2 * n * n];
    for zb in xlo..xhi {
        tmk.read_f64s(b, slot(0, 0, zb, n), &mut buf);
        let base = 2 * zb * n * n;
        let mut p = 0f64;
        for (i, &v) in buf.iter().enumerate() {
            p += v * (((base + i) % 97) as f64 + 1.0);
        }
        tmk.set_f64(partials, zb, p);
    }
    tmk.barrier(u32::MAX - 2);
    if me == 0 {
        let mut sum = 0f64;
        for zb in 0..n {
            sum += tmk.get_f64(partials, zb);
        }
        tmk.set_f64(result, 0, sum);
    }
    tmk.barrier(u32::MAX - 1);
    tmk.get_f64(result, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_sim::{Ns, SimParams};
    use tmk::memsub::run_mem_dsm;
    use tmk::TmkConfig;

    #[test]
    fn fft1d_matches_naive_dft() {
        let data: Vec<f64> = (0..32).map(|i| ((i * 37 % 11) as f64) - 5.0).collect();
        let want = dft1d(&data);
        let mut got = data.clone();
        fft1d(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn fft1d_parseval_energy_conserved() {
        let data: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let n = data.len() / 2;
        let time_energy: f64 = data.chunks(2).map(|c| c[0] * c[0] + c[1] * c[1]).sum();
        let mut freq = data.clone();
        fft1d(&mut freq);
        let freq_energy: f64 =
            freq.chunks(2).map(|c| c[0] * c[0] + c[1] * c[1]).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.abs());
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        for np in [1usize, 2, 4] {
            let cfg = FftConfig::new(8);
            let want = fft_seq(&cfg);
            let out = run_mem_dsm(
                np,
                Arc::new(SimParams::paper_testbed()),
                Ns::from_us(5),
                TmkConfig::default(),
                move |tmk| fft_parallel(tmk, &cfg),
            );
            for o in &out {
                assert_eq!(o.result, want, "np={np}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        FftConfig::new(12);
    }
}
