//! # tm-apps — the TreadMarks application suite
//!
//! The four applications of the paper's §3.3, reimplemented against our
//! Tmk API with the same synchronization characters the paper describes:
//!
//! * [`jacobi`] — barrier-only iterative relaxation, the highest
//!   computation-to-communication ratio of the four;
//! * [`sor`] — red-black successive over-relaxation, with a lock-guarded
//!   global residual every sweep (locks used for global synchronization,
//!   as the paper notes for its SOR);
//! * [`tsp`] — branch-and-bound traveling salesman over a lock-protected
//!   shared work queue and best-tour bound (lock-dominated, migratory
//!   data);
//! * [`fft`] — 3-D complex FFT with a distributed transpose (barrier
//!   synchronization, the largest messages and highest data rate).
//!
//! Every application computes a *real* answer and ships a sequential
//! reference implementation; parallel runs are validated bit-for-bit
//! (Jacobi/SOR/FFT) or value-exact (TSP's optimal tour length) in the
//! test suite. Computation is charged to the virtual clock through
//! per-point work constants calibrated for the paper's 700 MHz P-III.

pub mod fft;
pub mod jacobi;
pub mod partition;
pub mod sor;
pub mod tsp;

pub use fft::{fft_parallel, fft_seq, FftConfig};
pub use jacobi::{jacobi_parallel, jacobi_seq, JacobiConfig};
pub use partition::band;
pub use sor::{sor_parallel, sor_seq, SorConfig};
pub use tsp::{tsp_parallel, tsp_seq, TspConfig};
