//! UDP/GM: TreadMarks' stock sockets binding, as a [`Substrate`].
//!
//! Two UDP sockets per node mirror the original implementation's two
//! ports: one asynchronous (O_ASYNC — arrivals raise SIGIO) for requests,
//! one synchronous for responses. Every operation crosses the kernel;
//! compare with `FastSubstrate`, where the same operations stay in user
//! space.

use std::sync::Arc;

use tm_sim::{AsyncScheme, Ns, SharedClock, SimParams};
use tm_udp::{RecvOutcome, UdpStack};
use tmk::framing::{self, FragHeader, Reassembler};
use tmk::wire::pool;
use tmk::{Chan, IncomingMsg, ShutdownPoll, Substrate, WaitOutcome};

/// Socket number for asynchronous requests (SIGIO).
pub const REQ_SOCK: u16 = 1;
/// Socket number for synchronous responses.
pub const REP_SOCK: u16 = 2;

/// Largest UDP datagram payload we send (IP reassembly limit, minus
/// headroom for the frame header).
const DGRAM_LIMIT: usize = 60 * 1024;

const FRAME_DATA: u8 = 0;
const FRAME_FRAG: u8 = 1;

/// Wall-clock backstop for virtual-deadline waits: if no peer thread makes
/// progress for this long, something real (not simulated) is wrong.
const HANG_GUARD: std::time::Duration = std::time::Duration::from_secs(1);

/// Shorter wall guard for the shutdown linger, where "nothing arrives"
/// is the expected steady state (peers exit without a goodbye).
const LINGER_GUARD: std::time::Duration = std::time::Duration::from_millis(25);

/// The per-node UDP/GM endpoint.
pub struct UdpSubstrate {
    udp: UdpStack,
    next_xid: u32,
    /// Shared fragment reassembly, demuxed per socket.
    partials: Reassembler<u16>,
}

impl UdpSubstrate {
    pub fn new(nic: tm_myrinet::NicHandle, clock: SharedClock, params: Arc<SimParams>) -> Self {
        let mut udp = UdpStack::new(nic, clock, params);
        udp.bind(REQ_SOCK, true);
        udp.bind(REP_SOCK, false);
        UdpSubstrate {
            udp,
            next_xid: 1,
            partials: Reassembler::new(),
        }
    }

    pub fn stack(&self) -> &UdpStack {
        &self.udp
    }

    /// Gather `parts` into a pooled buffer and push the datagram — no
    /// per-send frame allocation. Returns `false` if the stack knows the
    /// datagram was dropped by fault injection.
    fn send_dgram(&mut self, to: usize, sock: u16, parts: &[&[u8]], at: Option<Ns>) -> bool {
        let mut buf = pool::take(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            buf.extend_from_slice(p);
        }
        let delivered = match at {
            None => self.udp.sendto(to, sock, sock, &buf),
            Some(t) => self.udp.sendto_at(to, sock, sock, &buf, t),
        };
        pool::give(buf);
        delivered
    }

    /// Send one message, fragmenting above the IP reassembly limit. The
    /// fragment header is built on the stack and gathered together with a
    /// chunk of the caller's payload. Returns `false` if any fragment was
    /// known-dropped on the way out (the whole message is then doomed —
    /// reassembly can never complete).
    fn send_msg(&mut self, to: usize, sock: u16, data: &[u8], at: Option<Ns>) -> bool {
        if data.len() < DGRAM_LIMIT {
            return self.send_dgram(to, sock, &[&[FRAME_DATA], data], at);
        }
        let plan = framing::plan(data.len(), DGRAM_LIMIT);
        let xid = self.next_xid;
        self.next_xid += 1;
        let mut all = true;
        for (i, range) in plan.ranges().enumerate() {
            let head = FragHeader {
                xid,
                idx: i as u16,
                total: plan.total as u16,
            }
            .head(FRAME_FRAG);
            all &= self.send_dgram(to, sock, &[&head, &data[range]], at.map(|t| t + Ns(i as u64)));
        }
        all
    }

    /// Count and drop a frame that can't be interpreted (truncated header,
    /// inconsistent fragment geometry, unknown kind — all possible once
    /// fault injection corrupts bytes).
    fn malformed(&mut self) -> Option<IncomingMsg> {
        self.udp.clock().borrow_mut().stats.malformed_dropped += 1;
        None
    }

    /// Handle one datagram; `Some` when a full message is available.
    /// Loss tombstones surface as `IncomingMsg { lost: true }` so blocked
    /// requesters observe the loss at its deterministic virtual time.
    fn handle(&mut self, sock: u16, d: tm_udp::Datagram) -> Option<IncomingMsg> {
        let chan = if sock == REQ_SOCK {
            Chan::Request
        } else {
            Chan::Response
        };
        if d.lost {
            return Some(IncomingMsg {
                from: d.src,
                chan,
                data: Vec::new(),
                arrival: d.ready,
                lost: true,
            });
        }
        if d.data.is_empty() {
            return self.malformed();
        }
        match d.data[0] {
            FRAME_DATA => {
                let mut payload = pool::take(d.data.len() - 1);
                payload.extend_from_slice(&d.data[1..]);
                Some(IncomingMsg {
                    from: d.src,
                    chan,
                    data: payload,
                    arrival: d.ready,
                    lost: false,
                })
            }
            FRAME_FRAG => {
                let Some((h, frag)) = FragHeader::parse(&d.data[1..]) else {
                    return self.malformed();
                };
                let mut payload = pool::take(frag.len());
                payload.extend_from_slice(frag);
                match self.partials.insert(d.src, sock, h, payload, d.ready) {
                    framing::Insert::Pending => None,
                    framing::Insert::Malformed => self.malformed(),
                    framing::Insert::Complete(frame) => Some(IncomingMsg {
                        from: frame.src,
                        chan,
                        arrival: frame.arrival,
                        data: frame.assemble(0),
                        lost: false,
                    }),
                }
            }
            _ => self.malformed(),
        }
    }

    /// One shutdown-linger quantum: wait up to an rto (virtual) / the
    /// linger guard (wall clock) for late traffic, handing back whatever
    /// arrives. Shared by the cluster-wide and subtree-scoped lingers.
    fn linger_quantum(&mut self) -> ShutdownPoll {
        let deadline = self.udp.clock().borrow().now() + self.udp.params().udp.rto;
        match self
            .udp
            .recv_any_timeout(&[REQ_SOCK, REP_SOCK], deadline, LINGER_GUARD)
        {
            Some((sock, d)) => match self.handle(sock, d) {
                Some(msg) => ShutdownPoll::Msg(msg),
                None => ShutdownPoll::Quiet,
            },
            None => ShutdownPoll::Quiet,
        }
    }

    /// Lockstep shutdown linger: block until a late datagram is served or
    /// every watched peer's NIC deregistration lands as a scheduler
    /// `Done` event. No wall-clock `peers_alive` poll and no rto quantum
    /// count — both the served-message set and the lingering node's final
    /// virtual clock are deterministic.
    fn linger_done_watch(&mut self, watch: &[usize]) -> ShutdownPoll {
        match self.udp.recv_any_or_dead(&[REQ_SOCK, REP_SOCK], watch) {
            Some((sock, d)) => match self.handle(sock, d) {
                Some(msg) => ShutdownPoll::Msg(msg),
                None => ShutdownPoll::Quiet,
            },
            None => ShutdownPoll::Done,
        }
    }

    /// All peers of this node (the cluster-wide linger's watch set).
    fn all_peers(&self) -> Vec<usize> {
        let me = self.udp.node();
        (0..self.udp.nprocs()).filter(|&i| i != me).collect()
    }

    /// Whether this cluster runs under the conservative lockstep
    /// scheduler (selects the deterministic linger path).
    fn lockstep(&self) -> bool {
        self.udp.params().sched == tm_sim::SchedMode::Lockstep
    }
}

impl Substrate for UdpSubstrate {
    fn my_id(&self) -> usize {
        self.udp.node()
    }

    fn nprocs(&self) -> usize {
        self.udp.nprocs()
    }

    fn clock(&self) -> &SharedClock {
        self.udp.clock()
    }

    fn params(&self) -> &Arc<SimParams> {
        self.udp.params()
    }

    fn scheme(&self) -> AsyncScheme {
        AsyncScheme::Sigio {
            cost: self.udp.params().host.sigio,
        }
    }

    fn sched_lookahead(&self) -> Ns {
        self.udp.lookahead()
    }

    fn send_request(&mut self, to: usize, data: &[u8]) -> bool {
        self.send_msg(to, REQ_SOCK, data, None)
    }

    fn send_request_at(&mut self, to: usize, data: &[u8], at: Ns) {
        self.send_msg(to, REQ_SOCK, data, Some(at));
    }

    fn response_cost(&self, len: usize) -> Ns {
        self.udp.tx_cost(len + 1)
    }

    fn send_response_at(&mut self, to: usize, data: &[u8], at: Ns) {
        self.send_msg(to, REP_SOCK, data, Some(at));
    }

    fn poll_request(&mut self) -> Option<IncomingMsg> {
        while let Some(d) = self.udp.try_recvfrom(REQ_SOCK) {
            if let Some(msg) = self.handle(REQ_SOCK, d) {
                return Some(msg);
            }
        }
        None
    }

    fn poll_incoming(&mut self) -> Option<IncomingMsg> {
        // Drain responses first (their socket never interrupts); the
        // engine re-sorts requests by arrival anyway, and responses file
        // into rid slots where pop order is immaterial.
        for sock in [REP_SOCK, REQ_SOCK] {
            while let Some(d) = self.udp.try_recvfrom(sock) {
                if let Some(msg) = self.handle(sock, d) {
                    return Some(msg);
                }
            }
        }
        None
    }

    fn next_incoming(&mut self) -> IncomingMsg {
        loop {
            let (sock, d) = self.udp.recv_any(&[REQ_SOCK, REP_SOCK]);
            if let Some(msg) = self.handle(sock, d) {
                return msg;
            }
        }
    }

    fn next_incoming_until(&mut self, deadline: Ns) -> Option<IncomingMsg> {
        loop {
            let (sock, d) = self
                .udp
                .recv_any_timeout(&[REQ_SOCK, REP_SOCK], deadline, HANG_GUARD)?;
            if let Some(msg) = self.handle(sock, d) {
                return Some(msg);
            }
        }
    }

    fn next_incoming_until_watching(&mut self, deadline: Ns, watch: &[usize]) -> WaitOutcome {
        loop {
            match self.udp.recv_any_timeout_watching(
                &[REQ_SOCK, REP_SOCK],
                watch,
                deadline,
                HANG_GUARD,
            ) {
                RecvOutcome::Datagram((sock, d)) => {
                    if let Some(msg) = self.handle(sock, d) {
                        return WaitOutcome::Msg(msg);
                    }
                }
                RecvOutcome::Timeout => return WaitOutcome::Deadline,
                RecvOutcome::PeersDone => return WaitOutcome::PeersDone,
            }
        }
    }

    fn retransmit_timeout(&self) -> Option<Ns> {
        let p = self.udp.params();
        let lossy = p.faults.lossy()
            || p.faults.duplicate_probability > 0.0
            || p.faults.reorder_probability > 0.0
            || p.faults.recvbuf_datagrams > 0
            || p.udp.drop_probability > 0.0;
        lossy.then(|| p.udp.rto)
    }

    fn peer_alive(&self, node: usize) -> bool {
        self.udp.peers_alive_in(&[node])
    }

    fn shutdown_poll(&mut self) -> ShutdownPoll {
        if self.lockstep() {
            let watch = self.all_peers();
            return self.linger_done_watch(&watch);
        }
        if !self.udp.peers_alive() {
            return ShutdownPoll::Done;
        }
        self.linger_quantum()
    }

    fn shutdown_poll_watching(&mut self, watch: &[usize]) -> ShutdownPoll {
        if self.lockstep() {
            return self.linger_done_watch(watch);
        }
        if !self.udp.peers_alive_in(watch) {
            return ShutdownPoll::Done;
        }
        self.linger_quantum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_myrinet::Fabric;
    use tm_sim::clock::shared_clock;

    fn pair() -> (UdpSubstrate, UdpSubstrate) {
        let params = Arc::new(SimParams::paper_testbed());
        let (_f, mut nics) = Fabric::new(2, Arc::clone(&params));
        let b = UdpSubstrate::new(nics.pop().unwrap(), shared_clock(), Arc::clone(&params));
        let a = UdpSubstrate::new(nics.pop().unwrap(), shared_clock(), params);
        (a, b)
    }

    #[test]
    fn request_response_roundtrip() {
        let (mut a, mut b) = pair();
        a.send_request(1, b"req");
        let msg = b.next_incoming();
        assert_eq!(msg.chan, Chan::Request);
        assert_eq!(msg.data, b"req");
        b.send_response_at(0, b"rep", msg.arrival + Ns::from_us(5));
        let rep = a.next_incoming();
        assert_eq!(rep.chan, Chan::Response);
        assert_eq!(rep.data, b"rep");
    }

    #[test]
    fn udp_latency_far_above_fast() {
        let (mut a, mut b) = pair();
        a.send_request(1, &[1u8]);
        let _ = b.next_incoming();
        // User-visible delivery time: kernel consume costs are charged by
        // next_incoming, so read the receiver's clock.
        let us = b.clock().borrow().now().as_us();
        assert!(
            us > 18.0,
            "UDP one-way latency {us:.1}us should dwarf GM's ~9us"
        );
    }

    #[test]
    fn sigio_scheme() {
        let (a, _) = pair();
        assert!(matches!(a.scheme(), AsyncScheme::Sigio { .. }));
    }
}
