//! Cluster runners: spawn an n-node DSM cluster over a chosen transport.
//!
//! These are the entry points the examples, integration tests and the
//! experiment harness all use: one closure, run on every node, with a
//! ready [`Tmk`] runtime bound to FAST/GM or UDP/GM.

use std::sync::Arc;

use parking_lot::Mutex;
use tm_gm::gm_cluster;
use tm_myrinet::{Fabric, NicHandle};
use tm_sim::runner::NodeOutcome;
use tm_sim::{run_cluster, SimParams};
use tmk::{Tmk, TmkConfig};

use crate::substrate::{FastConfig, FastSubstrate};
use crate::udp::UdpSubstrate;

/// Which communication subsystem to bind TreadMarks to — the paper's two
/// contenders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// FAST/GM: the paper's substrate.
    Fast,
    /// UDP/GM: sockets over GM (the baseline).
    Udp,
}

impl Transport {
    pub fn label(self) -> &'static str {
        match self {
            Transport::Fast => "FAST/GM",
            Transport::Udp => "UDP/GM",
        }
    }
}

/// Run `body` on an `n`-node FAST/GM cluster.
pub fn run_fast_dsm<R, F>(
    n: usize,
    params: Arc<SimParams>,
    fast_cfg: FastConfig,
    tmk_cfg: TmkConfig,
    body: F,
) -> Vec<NodeOutcome<R>>
where
    R: Send + 'static,
    F: Fn(&mut Tmk<FastSubstrate>) -> R + Send + Sync + 'static,
{
    let (_fabric, board, nics) = gm_cluster(n, Arc::clone(&params));
    let nics: Arc<Mutex<Vec<Option<NicHandle>>>> =
        Arc::new(Mutex::new(nics.into_iter().map(Some).collect()));
    run_cluster(n, params, move |env| {
        let nic = nics.lock()[env.id].take().expect("nic taken twice");
        let sub = FastSubstrate::new(
            nic,
            env.clock.clone(),
            Arc::clone(&env.params),
            Arc::clone(&board),
            fast_cfg.clone(),
        );
        let mut tmk = Tmk::new(sub, tmk_cfg.clone());
        let r = body(&mut tmk);
        tmk.exit();
        r
    })
}

/// Run `body` on an `n`-node UDP/GM cluster.
pub fn run_udp_dsm<R, F>(
    n: usize,
    params: Arc<SimParams>,
    tmk_cfg: TmkConfig,
    body: F,
) -> Vec<NodeOutcome<R>>
where
    R: Send + 'static,
    F: Fn(&mut Tmk<UdpSubstrate>) -> R + Send + Sync + 'static,
{
    let (_fabric, nics) = Fabric::new(n, Arc::clone(&params));
    let nics: Arc<Mutex<Vec<Option<NicHandle>>>> =
        Arc::new(Mutex::new(nics.into_iter().map(Some).collect()));
    run_cluster(n, params, move |env| {
        let nic = nics.lock()[env.id].take().expect("nic taken twice");
        let sub = UdpSubstrate::new(nic, env.clock.clone(), Arc::clone(&env.params));
        let mut tmk = Tmk::new(sub, tmk_cfg.clone());
        let r = body(&mut tmk);
        tmk.exit();
        r
    })
}

/// Transport-erased runner for harness code that sweeps both subsystems.
/// The body must be writable against the `Substrate`-generic `Tmk`; in
/// practice benches define `fn body<S: Substrate>(tmk: &mut Tmk<S>)` and
/// pass it twice.
pub fn run_dsm<R, FF, FU>(
    transport: Transport,
    n: usize,
    params: Arc<SimParams>,
    tmk_cfg: TmkConfig,
    fast_body: FF,
    udp_body: FU,
) -> Vec<NodeOutcome<R>>
where
    R: Send + 'static,
    FF: Fn(&mut Tmk<FastSubstrate>) -> R + Send + Sync + 'static,
    FU: Fn(&mut Tmk<UdpSubstrate>) -> R + Send + Sync + 'static,
{
    match transport {
        Transport::Fast => {
            let cfg = FastConfig::paper(&params);
            run_fast_dsm(n, params, cfg, tmk_cfg, fast_body)
        }
        Transport::Udp => run_udp_dsm(n, params, tmk_cfg, udp_body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_cluster_runs_hello() {
        let params = Arc::new(SimParams::paper_testbed());
        let cfg = FastConfig::paper(&params);
        let out = run_fast_dsm(4, params, cfg, TmkConfig::default(), |tmk| {
            let r = tmk.malloc(4096);
            if tmk.proc_id() == 0 {
                tmk.set_u32(r, 0, 99);
            }
            tmk.barrier(1);
            tmk.get_u32(r, 0)
        });
        assert!(out.iter().all(|o| o.result == 99));
    }

    #[test]
    fn udp_cluster_runs_hello() {
        let params = Arc::new(SimParams::paper_testbed());
        let out = run_udp_dsm(4, params, TmkConfig::default(), |tmk| {
            let r = tmk.malloc(4096);
            if tmk.proc_id() == 0 {
                tmk.set_u32(r, 0, 77);
            }
            tmk.barrier(1);
            tmk.get_u32(r, 0)
        });
        assert!(out.iter().all(|o| o.result == 77));
    }

    fn work_body<S: tmk::Substrate>(tmk: &mut Tmk<S>) -> u32 {
        let r = tmk.malloc(4096 * 8);
        tmk.barrier(0);
        for it in 0..5u32 {
            if tmk.proc_id() == 0 {
                for i in 0..512 {
                    tmk.set_u32(r, i, it * 1000 + i as u32);
                }
            }
            tmk.barrier(100 + 2 * it);
            let v = tmk.get_u32(r, 511);
            assert_eq!(v, it * 1000 + 511);
            // Second barrier: readers finish before the next epoch's
            // writes begin (race-free, as TreadMarks programs must be).
            tmk.barrier(101 + 2 * it);
        }
        1
    }

    #[test]
    fn fast_work_only() {
        let params = Arc::new(SimParams::paper_testbed());
        let cfg = FastConfig::paper(&params);
        let out = run_fast_dsm(4, params, cfg, TmkConfig::default(), work_body);
        assert!(out.iter().all(|o| o.result == 1));
    }

    #[test]
    fn udp_work_only() {
        let params = Arc::new(SimParams::paper_testbed());
        let out = run_udp_dsm(4, params, TmkConfig::default(), work_body);
        assert!(out.iter().all(|o| o.result == 1));
    }

    #[test]
    fn fast_beats_udp_on_the_same_workload() {
        let params = Arc::new(SimParams::paper_testbed());
        let cfg = FastConfig::paper(&params);
        let fast = run_fast_dsm(4, Arc::clone(&params), cfg, TmkConfig::default(), work_body);
        let udp = run_udp_dsm(4, Arc::clone(&params), TmkConfig::default(), work_body);
        let tf = tm_sim::runner::cluster_time(&fast);
        let tu = tm_sim::runner::cluster_time(&udp);
        assert!(
            tu > tf,
            "UDP/GM ({tu}) should be slower than FAST/GM ({tf})"
        );
    }
}
