//! The FAST/GM substrate proper.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tm_gm::{gm_size, DmaPool, GmEvent, GmNode, MAX_SIZE_CLASS};
use tm_sim::faults::checksum32;
use tm_sim::{AsyncScheme, Ns, SharedClock, SimParams};
use tmk::framing::{self, FragHeader, Reassembler};
use tmk::wire::pool;
use tmk::{Chan, IncomingMsg, Substrate};

/// GM port carrying asynchronous requests (interrupt-enabled: the
/// modified-firmware scheme).
pub const REQ_PORT: u8 = 1;
/// GM port carrying synchronous responses (polled).
pub const REP_PORT: u8 = 2;

/// Wire frame kinds (one prefix byte on every GM message).
const FRAME_DATA: u8 = 0;
/// Host cost of building/parsing the FAST frame header and demultiplexing
/// the connectionless GM id to a connection (§2.2.1) — the small tax that
/// puts FAST/GM at 9.4 µs where raw GM sits at 8.99 µs.
const DEMUX: Ns = Ns(150);
const FRAME_RDV_ANNOUNCE: u8 = 1;
const FRAME_RDV_PULL: u8 = 2;
const FRAME_RDV_COMPLETE: u8 = 3;
/// A fragment of a larger frame: [4][xid u32][idx u16][total u16][bytes].
const FRAME_FRAG: u8 = 4;

/// Fault-stream salt for the FAST substrate's corruption injector (keeps
/// its draws decorrelated from the UDP stack's on the same node).
const FAULT_SALT_FAST: u64 = 0xfa57;
/// Give up after this many token-starvation polls for a single frame —
/// past it the run is wedged, not congested.
const TOKEN_STALL_CAP: u32 = 4096;

/// Substrate configuration.
#[derive(Debug, Clone)]
pub struct FastConfig {
    /// How asynchronous requests reach the host (§2.2.4). The paper's
    /// adopted choice is the NIC interrupt.
    pub scheme: AsyncScheme,
    /// `o`: outstanding small requests allowed per peer (§2.2.2).
    pub outstanding_per_peer: usize,
    /// Eliminate the large preposted size classes (≥ `rdv_min_size`) and
    /// carry big messages with a pin-and-RDMA rendezvous instead
    /// (§2.2.2's memory-saving alternative).
    pub rendezvous: bool,
    /// First size class handled by rendezvous when enabled.
    pub rdv_min_size: u8,
    /// Physical memory this node may pin.
    pub pin_limit: usize,
}

impl FastConfig {
    /// The configuration the paper adopted, for a cluster of `params`'
    /// testbed type.
    pub fn paper(params: &SimParams) -> Self {
        FastConfig {
            scheme: params.interrupt_scheme(),
            outstanding_per_peer: 4,
            rendezvous: false,
            rdv_min_size: 14,
            pin_limit: 256 << 20,
        }
    }
}

/// A large outbound payload awaiting the requester's pull.
struct HeldTransfer {
    xfer: u32,
    dst: usize,
    data: Vec<u8>,
}

/// A large inbound transfer we are pulling.
struct PullInProgress {
    xfer: u32,
    from: usize,
    region: u32,
    len: usize,
}

/// The per-node FAST/GM endpoint.
pub struct FastSubstrate {
    gm: GmNode,
    pool: DmaPool,
    cfg: FastConfig,
    next_xfer: u32,
    held: Vec<HeldTransfer>,
    pulls: Vec<PullInProgress>,
    /// Shared fragment reassembly, demuxed per GM port.
    partials: Reassembler<u8>,
    /// Registered bytes devoted to preposted receive buffers (E5).
    pub prepost_bytes: usize,
    /// Seeded corruption injector; `Some` only when the fault plan asks
    /// for payload corruption (so zero-fault runs draw nothing).
    corrupt_rng: Option<SmallRng>,
}

impl FastSubstrate {
    /// Open the two ports, register the send pool and prepost the receive
    /// buffers per the §2.2.2 strategy.
    pub fn new(
        nic: tm_myrinet::NicHandle,
        clock: SharedClock,
        params: Arc<SimParams>,
        board: Arc<tm_gm::FailureBoard>,
        cfg: FastConfig,
    ) -> Self {
        let mut gm = GmNode::new(nic, clock, params, board, cfg.pin_limit);
        let interrupts = matches!(cfg.scheme, AsyncScheme::Interrupt { .. });
        gm.open_port(REQ_PORT, interrupts).expect("open REQ port");
        gm.open_port(REP_PORT, false).expect("open REP port");
        let pool = DmaPool::new(&mut gm.book, 16, 32 * 1024).expect("register send pool");

        let n = gm.nprocs();
        let o = cfg.outstanding_per_peer.max(1);
        let top = if cfg.rendezvous {
            cfg.rdv_min_size - 1
        } else {
            MAX_SIZE_CLASS
        };
        let mut prepost_bytes = 0usize;
        // Asynchronous side: small request classes get o·(n−1) buffers;
        // the larger classes (barrier arrivals) one per peer. The paper
        // counts from size 4 (8-byte requests); our wire framing can emit
        // messages down to 2 bytes, so classes 1–3 are provisioned too —
        // they add 14 bytes per peer, invisible in the §2.2.2 arithmetic.
        for size in 1..=top {
            let count = if size <= 10 { o * (n - 1) } else { n - 1 };
            for _ in 0..count {
                gm.provide_receive_buffer(REQ_PORT, size).expect("prepost");
            }
            prepost_bytes += count << size;
        }
        // Synchronous side: a single outstanding request means one buffer
        // per size class suffices.
        for size in 1..=top {
            gm.provide_receive_buffer(REP_PORT, size).expect("prepost");
            prepost_bytes += 1 << size;
        }
        // The prepost slabs live in registered memory.
        gm.book
            .register(prepost_bytes)
            .expect("register prepost slabs");
        let corrupt_rng = if gm.params().faults.corrupt_probability > 0.0 {
            let seed = gm.params().faults.stream_seed(gm.node(), FAULT_SALT_FAST);
            Some(SmallRng::seed_from_u64(seed))
        } else {
            None
        };
        FastSubstrate {
            gm,
            pool,
            cfg,
            next_xfer: 1,
            held: Vec::new(),
            pulls: Vec::new(),
            partials: Reassembler::new(),
            prepost_bytes,
            corrupt_rng,
        }
    }

    /// Registered bytes pinned by this node (pool + preposts + rendezvous
    /// regions).
    pub fn pinned_bytes(&self) -> usize {
        self.gm.book.pinned_bytes()
    }

    pub fn gm(&self) -> &GmNode {
        &self.gm
    }

    /// How many sends allocated fresh registered-buffer storage (should be
    /// flat in steady state — the pool-hit-rate counter).
    pub fn send_pool_fresh_takes(&self) -> usize {
        self.pool.fresh_takes()
    }

    /// Largest single GM frame the prepost strategy can always receive.
    fn frame_limit(&self) -> usize {
        let top = if self.cfg.rendezvous {
            self.cfg.rdv_min_size - 1
        } else {
            MAX_SIZE_CLASS
        };
        tm_gm::gm_max_length(top)
    }

    /// Push a `[kind] ++ body` frame through GM, gathering the parts
    /// straight into a registered send buffer (no intermediate frame
    /// allocation) and reclaiming the buffer after completion. `charge`
    /// pays DEMUX + the fast-path copy cost (the immediate-send path);
    /// scheduled sends pass their pre-accounted departure time instead.
    fn push_frame(&mut self, to: usize, port: u8, parts: &[&[u8]], charge: bool, at: Option<Ns>) {
        let mut len: usize = parts.iter().map(|p| p.len()).sum();
        if charge {
            self.gm.clock().borrow_mut().advance(DEMUX);
            let cost = Ns::for_bytes(len, self.gm.params().host.fast_copy_mb_s);
            self.gm.clock().borrow_mut().advance(cost);
        }
        // Fault path: append a checksum trailer so injected corruption is
        // detected at the receiver instead of mis-decoded; then maybe flip
        // a byte. Gated on the plan so clean runs gather zero-copy.
        let buf = if self.gm.params().faults.checksum_frames() {
            let mut img = Vec::with_capacity(len + 4);
            for p in parts {
                img.extend_from_slice(p);
            }
            let crc = checksum32(&img).to_le_bytes();
            img.extend_from_slice(&crc);
            if let Some(rng) = self.corrupt_rng.as_mut() {
                let p = self.gm.params().faults.corrupt_probability;
                if rng.random::<f64>() < p {
                    let i = (rng.random::<u64>() as usize) % img.len();
                    img[i] ^= 0x20;
                    self.gm.clock().borrow_mut().stats.dgrams_corrupted += 1;
                }
            }
            len = img.len();
            self.pool.take_parts(&[&img]).expect("send pool exhausted")
        } else {
            self.pool.take_parts(parts).expect("send pool exhausted")
        };
        let mut at = at;
        // Token starvation (injected or burst backpressure): poll for
        // completion callbacks at the GM callback stride, bounded so a
        // wedged port fails loudly instead of spinning forever. The
        // stride matches the pre-fault constant so clean-run timing is
        // unchanged.
        let stall = Ns::from_us(3);
        let mut stalls = 0u32;
        loop {
            let res = match at {
                None => self.gm.send(port, to, port, &buf, len),
                Some(t) => self.gm.send_at(port, to, port, &buf, len, t),
            };
            match res {
                Ok(_) => break,
                Err(tm_gm::GmError::NoSendTokens) => {
                    stalls += 1;
                    assert!(
                        stalls <= TOKEN_STALL_CAP,
                        "node {}: no send tokens after {TOKEN_STALL_CAP} polls",
                        self.gm.node()
                    );
                    self.gm.clock().borrow_mut().stats.token_stalls += 1;
                    match at.as_mut() {
                        None => self.gm.clock().borrow_mut().advance(stall),
                        Some(t) => *t += stall,
                    }
                }
                Err(e) => panic!("GM send failed: {e:?}"),
            }
        }
        self.pool.recycle_buf(buf);
    }

    /// Send `[kind] ++ body`, fragmenting when it exceeds the largest
    /// preposted class. Fragment payloads are gathered scatter-gather from
    /// the logical frame — the frame itself is never materialized.
    fn send_kind(&mut self, to: usize, port: u8, kind: u8, body: &[u8], at: Option<Ns>) {
        let flen = body.len() + 1;
        if flen <= self.frame_limit() {
            self.push_frame(to, port, &[&[kind], body], at.is_none(), at);
            return;
        }
        let chunk = self.frame_limit() - 10; // frag header + slack
        let plan = framing::plan(flen, chunk);
        assert!(plan.total <= u16::MAX as usize);
        let xid = self.next_xfer;
        self.next_xfer += 1;
        let mut t = at;
        for (i, range) in plan.ranges().enumerate() {
            // Fragment i carries bytes [lo, hi) of the `[kind] ++ body`
            // stream — identical chunk boundaries to slicing a built frame.
            let (lo, hi) = (range.start, range.end);
            let head = FragHeader {
                xid,
                idx: i as u16,
                total: plan.total as u16,
            }
            .head(FRAME_FRAG);
            if lo == 0 {
                self.push_frame(to, port, &[&head, &[kind], &body[..hi - 1]], t.is_none(), t);
            } else {
                self.push_frame(to, port, &[&head, &body[lo - 1..hi - 1]], t.is_none(), t);
            }
            // Successive fragments leave back-to-back; the spacing is
            // the copy cost the handler already accounted per byte.
            if let Some(t) = t.as_mut() {
                *t += Ns(1);
            }
        }
    }

    /// Whether an outbound message must use the rendezvous path.
    fn needs_rendezvous(&self, len: usize) -> bool {
        self.cfg.rendezvous && gm_size(len + 1) >= self.cfg.rdv_min_size
    }

    /// Count and drop a frame that can't be interpreted (truncated header
    /// or unknown kind — possible once fault injection flips bytes).
    fn malformed(&mut self) -> Option<IncomingMsg> {
        self.gm.clock().borrow_mut().stats.malformed_dropped += 1;
        None
    }

    /// Handle one GM receive event; `Some` if it surfaces to the DSM
    /// runtime, `None` if it was substrate-internal (rendezvous control).
    fn handle_event(&mut self, port: u8, ev: GmEvent) -> Option<IncomingMsg> {
        let GmEvent::Recv {
            src,
            data,
            arrival,
            size,
            ..
        } = ev
        else {
            panic!("unexpected GM event");
        };
        // Replenish the buffer class we just consumed, and pay the
        // connection demux.
        self.gm.clock().borrow_mut().advance(DEMUX);
        self.gm
            .provide_receive_buffer(port, size)
            .expect("replenish");
        let chan = if port == REQ_PORT {
            Chan::Request
        } else {
            Chan::Response
        };
        // Under a corruption plan every frame carries a checksum trailer:
        // verify and strip it, counting (not mis-decoding) flipped frames.
        let mut data = data;
        if self.gm.params().faults.checksum_frames() {
            if data.len() < 5 {
                return self.malformed();
            }
            let body_len = data.len() - 4;
            let want = u32::from_le_bytes(data[body_len..].try_into().expect("4-byte trailer"));
            if checksum32(&data[..body_len]) != want {
                self.gm.clock().borrow_mut().stats.crc_rejected += 1;
                return None;
            }
            data = bytes::Bytes::copy_from_slice(&data[..body_len]);
        }
        if data.is_empty() {
            return self.malformed();
        }
        let kind = data[0];
        let body = &data[1..];
        match kind {
            FRAME_DATA => {
                let mut payload = pool::take(body.len());
                payload.extend_from_slice(body);
                Some(IncomingMsg {
                    from: src,
                    chan,
                    data: payload,
                    arrival,
                    lost: false,
                })
            }
            FRAME_RDV_ANNOUNCE => {
                // Large response announced: pin a landing region and ask
                // the responder to RDMA it over.
                if body.len() < 8 {
                    return self.malformed();
                }
                let xfer = u32::from_le_bytes(body[0..4].try_into().expect("checked len"));
                let len = u32::from_le_bytes(body[4..8].try_into().expect("checked len")) as usize;
                let region = self.gm.book.register(len).expect("pin rendezvous region");
                self.pulls.push(PullInProgress {
                    xfer,
                    from: src,
                    region,
                    len,
                });
                let mut pull = [0u8; 8];
                pull[0..4].copy_from_slice(&xfer.to_le_bytes());
                pull[4..8].copy_from_slice(&region.to_le_bytes());
                self.send_kind(src, REQ_PORT, FRAME_RDV_PULL, &pull, None);
                None
            }
            FRAME_RDV_PULL => {
                // The requester pinned its region: RDMA the held payload
                // and complete. This is substrate-internal service work.
                if body.len() < 8 {
                    return self.malformed();
                }
                let xfer = u32::from_le_bytes(body[0..4].try_into().expect("checked len"));
                let region = u32::from_le_bytes(body[4..8].try_into().expect("checked len"));
                let idx = self
                    .held
                    .iter()
                    .position(|h| h.xfer == xfer)
                    .expect("pull for unknown transfer");
                let held = self.held.remove(idx);
                debug_assert_eq!(held.dst, src);
                let scheme = self.cfg.scheme;
                let cost = Ns::for_bytes(held.data.len(), self.gm.params().host.fast_copy_mb_s)
                    + self.gm.params().gm.send_overhead * 2;
                let finish = self
                    .gm
                    .clock()
                    .borrow_mut()
                    .service_window(arrival, &scheme, cost);
                let buf = self.pool.take(&held.data).expect("send pool exhausted");
                self.gm
                    .directed_send(REP_PORT, src, region, 0, &buf, held.data.len())
                    .expect("directed send");
                self.pool.recycle_buf(buf);
                let mut cbody = [0u8; 8];
                cbody[0..4].copy_from_slice(&xfer.to_le_bytes());
                cbody[4..8].copy_from_slice(&(held.data.len() as u32).to_le_bytes());
                pool::give(held.data);
                self.send_kind(src, REP_PORT, FRAME_RDV_COMPLETE, &cbody, Some(finish));
                None
            }
            FRAME_RDV_COMPLETE => {
                // Payload has landed in our pinned region: surface it as
                // the response it is.
                if body.len() < 4 {
                    return self.malformed();
                }
                let xfer = u32::from_le_bytes(body[0..4].try_into().expect("checked len"));
                let idx = self
                    .pulls
                    .iter()
                    .position(|p| p.xfer == xfer)
                    .expect("completion for unknown pull");
                let pull = self.pulls.remove(idx);
                let mut data = pool::take(pull.len);
                data.extend_from_slice(&self.gm.region_bytes(pull.region).expect("region")[..pull.len]);
                // Copy out + unpin.
                let cost = Ns::for_bytes(pull.len, self.gm.params().host.memcpy_mb_s);
                self.gm.clock().borrow_mut().advance(cost);
                self.gm.book.deregister(pull.region);
                Some(IncomingMsg {
                    from: pull.from,
                    chan: Chan::Response,
                    data,
                    arrival,
                    lost: false,
                })
            }
            FRAME_FRAG => {
                let Some((h, frag)) = FragHeader::parse(body) else {
                    return self.malformed();
                };
                let mut payload = pool::take(frag.len());
                payload.extend_from_slice(frag);
                match self.partials.insert(src, port, h, payload, arrival) {
                    framing::Insert::Pending => None,
                    framing::Insert::Malformed => self.malformed(),
                    framing::Insert::Complete(frame) => {
                        // Single-copy reassembly straight into the surfaced
                        // message: chunk 0's kind byte is checked and
                        // skipped here, so the runtime payload is never
                        // re-copied. Only DATA frames are ever fragmented
                        // (rendezvous control frames are tiny).
                        assert_eq!(frame.first_byte(), FRAME_DATA, "only data frames fragment");
                        let chan = if frame.tag == REQ_PORT {
                            Chan::Request
                        } else {
                            Chan::Response
                        };
                        Some(IncomingMsg {
                            from: frame.src,
                            chan,
                            arrival: frame.arrival,
                            data: frame.assemble(1),
                            lost: false,
                        })
                    }
                }
            }
            _ => self.malformed(),
        }
    }
}

impl Substrate for FastSubstrate {
    fn my_id(&self) -> usize {
        self.gm.node()
    }

    fn nprocs(&self) -> usize {
        self.gm.nprocs()
    }

    fn clock(&self) -> &SharedClock {
        self.gm.clock()
    }

    fn params(&self) -> &Arc<SimParams> {
        self.gm.params()
    }

    fn scheme(&self) -> AsyncScheme {
        self.cfg.scheme
    }

    fn sched_lookahead(&self) -> Ns {
        self.gm.lookahead()
    }

    fn send_request(&mut self, to: usize, data: &[u8]) -> bool {
        self.send_kind(to, REQ_PORT, FRAME_DATA, data, None);
        true // GM delivery is reliable
    }

    fn send_request_at(&mut self, to: usize, data: &[u8], at: Ns) {
        self.send_kind(to, REQ_PORT, FRAME_DATA, data, Some(at));
    }

    fn response_cost(&self, len: usize) -> Ns {
        DEMUX
            + Ns::for_bytes(len, self.gm.params().host.fast_copy_mb_s)
            + self.gm.params().gm.send_overhead
    }

    fn send_response_at(&mut self, to: usize, data: &[u8], at: Ns) {
        if self.needs_rendezvous(data.len() + 1) {
            let xfer = self.next_xfer;
            self.next_xfer += 1;
            let mut held = pool::take(data.len());
            held.extend_from_slice(data);
            self.held.push(HeldTransfer {
                xfer,
                dst: to,
                data: held,
            });
            let mut body = [0u8; 8];
            body[0..4].copy_from_slice(&xfer.to_le_bytes());
            body[4..8].copy_from_slice(&(data.len() as u32).to_le_bytes());
            self.send_kind(to, REP_PORT, FRAME_RDV_ANNOUNCE, &body, Some(at));
        } else {
            self.send_kind(to, REP_PORT, FRAME_DATA, data, Some(at));
        }
    }

    fn poll_request(&mut self) -> Option<IncomingMsg> {
        loop {
            match self.gm.receive(REQ_PORT).expect("REQ port") {
                Some(ev) => {
                    if let Some(msg) = self.handle_event(REQ_PORT, ev) {
                        return Some(msg);
                    }
                    // Internal frame consumed; keep polling.
                }
                None => return None,
            }
        }
    }

    fn poll_incoming(&mut self) -> Option<IncomingMsg> {
        for port in [REP_PORT, REQ_PORT] {
            // Internal frames are consumed silently; keep polling.
            while let Some(ev) = self.gm.receive(port).expect("poll port") {
                if let Some(msg) = self.handle_event(port, ev) {
                    return Some(msg);
                }
            }
        }
        None
    }

    fn next_incoming(&mut self) -> IncomingMsg {
        loop {
            let (port, ev) = self.gm.blocking_receive(&[REQ_PORT, REP_PORT]);
            if let Some(msg) = self.handle_event(port, ev) {
                return msg;
            }
        }
    }

    fn max_msg(&self) -> usize {
        // Oversized frames fragment transparently; keep the runtime's
        // chunking at the TreadMarks limit so diff responses stay
        // single-frame.
        self.params().dsm.max_msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_gm::gm_cluster;
    use tm_sim::clock::shared_clock;

    fn pair(rendezvous: bool) -> (FastSubstrate, FastSubstrate) {
        let params = Arc::new(SimParams::paper_testbed());
        let (_f, board, mut nics) = gm_cluster(2, Arc::clone(&params));
        let mut cfg = FastConfig::paper(&params);
        cfg.rendezvous = rendezvous;
        let b = FastSubstrate::new(
            nics.pop().unwrap(),
            shared_clock(),
            Arc::clone(&params),
            Arc::clone(&board),
            cfg.clone(),
        );
        let a = FastSubstrate::new(nics.pop().unwrap(), shared_clock(), params, board, cfg);
        (a, b)
    }

    #[test]
    fn request_response_roundtrip() {
        let (mut a, mut b) = pair(false);
        a.send_request(1, b"hello-req");
        let msg = b.next_incoming();
        assert_eq!(msg.chan, Chan::Request);
        assert_eq!(msg.data, b"hello-req");
        let at = msg.arrival + Ns::from_us(3);
        b.send_response_at(0, b"hello-rep", at);
        let rep = a.next_incoming();
        assert_eq!(rep.chan, Chan::Response);
        assert_eq!(rep.data, b"hello-rep");
        assert!(rep.arrival > at);
    }

    #[test]
    fn latency_is_near_calibration() {
        // One-way request latency should be ~9.4us (paper FAST/GM figure),
        // measured from just before the send (startup pins memory, which
        // costs real time too — but is not message latency).
        let (mut a, mut b) = pair(false);
        let t0 = a.clock().borrow().now();
        a.send_request(1, &[7u8; 1]);
        let msg = b.next_incoming();
        // Receiver-side user-visible delivery: arrival + the poll hit.
        let us = (msg.arrival - t0).as_us() + b.params().gm.recv_poll_hit.as_us();
        assert!(
            (8.0..11.0).contains(&us),
            "FAST one-way small-message latency {us:.2}us"
        );
    }

    #[test]
    fn large_response_without_rendezvous_uses_big_buffer() {
        let (mut a, mut b) = pair(false);
        let big = vec![0xCDu8; 20_000];
        a.send_request(1, b"want-big");
        let req = b.next_incoming();
        b.send_response_at(0, &big, req.arrival + Ns::from_us(10));
        let rep = a.next_incoming();
        assert_eq!(rep.data.len(), 20_000);
        assert!(rep.data.iter().all(|&x| x == 0xCD));
    }

    #[test]
    fn rendezvous_transfers_large_response() {
        // Full two-node run: node 1 answers node 0's request with a 20KB
        // payload; under rendezvous it travels announce → pull → RDMA →
        // complete, transparently to the caller.
        let params = Arc::new(SimParams::paper_testbed());
        let (_f, board, nics) = tm_gm::gm_cluster(2, Arc::clone(&params));
        let nics = std::sync::Mutex::new(
            nics.into_iter().map(Some).collect::<Vec<_>>(),
        );
        let nics = Arc::new(nics);
        let out = tm_sim::run_cluster(2, Arc::clone(&params), move |env| {
            let nic = nics.lock().unwrap()[env.id].take().unwrap();
            let mut cfg = FastConfig::paper(&env.params);
            cfg.rendezvous = true;
            let mut sub = FastSubstrate::new(
                nic,
                env.clock.clone(),
                Arc::clone(&env.params),
                Arc::clone(&board),
                cfg,
            );
            let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
            if env.id == 0 {
                sub.send_request(1, b"want-big");
                let rep = sub.next_incoming();
                assert_eq!(rep.chan, Chan::Response);
                assert_eq!(rep.data, big);
                sub.send_request(1, b"done");
                true
            } else {
                let req = sub.next_incoming();
                assert_eq!(req.data, b"want-big");
                sub.send_response_at(0, &big, req.arrival + Ns::from_us(10));
                // Keep serving (the pull is substrate-internal) until the
                // peer confirms receipt.
                loop {
                    let msg = sub.next_incoming();
                    if msg.chan == Chan::Request && msg.data == b"done" {
                        break true;
                    }
                }
            }
        });
        assert!(out.iter().all(|o| o.result));
    }

    #[test]
    fn rendezvous_preposts_less_memory() {
        let (a_full, _) = pair(false);
        let (a_rdv, _) = pair(true);
        assert!(
            a_rdv.prepost_bytes < a_full.prepost_bytes,
            "rendezvous {} vs full {}",
            a_rdv.prepost_bytes,
            a_full.prepost_bytes
        );
    }

    #[test]
    fn steady_state_small_sends_allocate_nothing() {
        // Acceptance: once the pools are warm, a small request/response
        // round trip touches no fresh heap storage — every send gathers
        // into a recycled registered buffer and every receive surfaces in
        // a recycled wire buffer.
        let (mut a, mut b) = pair(false);
        // Warm-up: populate both DMA free lists and the wire pool.
        for _ in 0..4 {
            a.send_request(1, b"warm-up-msg");
            let req = b.next_incoming();
            b.send_response_at(0, b"warm-up-rep", req.arrival + Ns::from_us(2));
            let rep = a.next_incoming();
            pool::give(req.data);
            pool::give(rep.data);
        }
        let fresh_a = a.send_pool_fresh_takes();
        let fresh_b = b.send_pool_fresh_takes();
        pool::reset_stats();
        for _ in 0..64 {
            a.send_request(1, b"steady-state");
            let req = b.next_incoming();
            b.send_response_at(0, b"steady-reply", req.arrival + Ns::from_us(2));
            let rep = a.next_incoming();
            pool::give(req.data);
            pool::give(rep.data);
        }
        assert_eq!(
            a.send_pool_fresh_takes(),
            fresh_a,
            "sender allocated fresh DMA storage in steady state"
        );
        assert_eq!(
            b.send_pool_fresh_takes(),
            fresh_b,
            "responder allocated fresh DMA storage in steady state"
        );
        let stats = pool::stats();
        assert_eq!(stats.misses, 0, "receive surfacing missed the wire pool");
        assert!(stats.hits >= 128, "expected pooled receives, got {stats:?}");
    }

    #[test]
    fn poll_request_sees_only_arrived() {
        let (mut a, mut b) = pair(false);
        a.send_request(1, b"later");
        assert!(b.poll_request().is_none(), "virtual time not reached");
        b.clock().borrow_mut().advance(Ns::from_us(100));
        let msg = b.poll_request().expect("arrived by now");
        assert_eq!(msg.data, b"later");
    }

    #[test]
    fn two_ports_only() {
        // The whole point of connection multiplexing: the substrate uses
        // ports 1 and 2 regardless of cluster size.
        let params = Arc::new(SimParams::paper_testbed());
        let (_f, board, nics) = gm_cluster(8, Arc::clone(&params));
        for nic in nics {
            let s = FastSubstrate::new(
                nic,
                shared_clock(),
                Arc::clone(&params),
                Arc::clone(&board),
                FastConfig::paper(&params),
            );
            assert!(s.gm().port_interrupts(REQ_PORT));
            assert!(!s.gm().port_interrupts(REP_PORT));
        }
    }
}
