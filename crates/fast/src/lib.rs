//! # tm-fast — FAST/GM, the paper's communication substrate
//!
//! The thin layer between TreadMarks and GM (§2.2 of the paper),
//! implementing the four components of its Figure 2:
//!
//! 1. **Connection management** ([`substrate`]): all peers are multiplexed
//!    over exactly **two GM ports** — one asynchronous port for requests
//!    (NIC raises a host interrupt: the modified-firmware scheme the paper
//!    adopted) and one synchronous port for responses (polled by the
//!    blocked requester). Connection descriptors degenerate to GM node
//!    ids; scalability no longer depends on GM's seven usable ports.
//! 2. **Pre-posting of receive buffers** (§2.2.2): `o·(n−1)` small
//!    (size-4) buffers for requests, `(n−1)` buffers of each size 5…15
//!    for asynchronous barrier traffic, and one buffer per size 4…15 for
//!    the single outstanding synchronous response — about
//!    `64KB·(n−1) + 64KB` of registered memory, exactly the paper's
//!    arithmetic (reproduced by experiment E5).
//! 3. **Buffer management** (§2.2.3): outgoing messages are copied into a
//!    pool of registered send buffers (paying the copy, saving the
//!    repinning); incoming requests are processed in place.
//! 4. **Asynchronous messages** (§2.2.4): NIC interrupt on the request
//!    port; the polling-thread and timer alternatives remain available as
//!    [`tm_sim::AsyncScheme`] options for the ablation (E6).
//!
//! The crate also provides [`udp::UdpSubstrate`] — TreadMarks' stock
//! sockets/UDP binding over the same fabric — so benchmarks can swap
//! UDP/GM for FAST/GM with one type parameter, and cluster-runner helpers
//! ([`cluster`]) used by the examples, tests and benches.

pub mod cluster;
pub mod substrate;
pub mod udp;

pub use cluster::{run_dsm, run_fast_dsm, run_udp_dsm, Transport};
pub use substrate::{FastConfig, FastSubstrate};
pub use udp::UdpSubstrate;
