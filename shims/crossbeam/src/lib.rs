//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel`'s unbounded MPSC surface is used by this
//! workspace; std's mpsc has identical send/recv/try_recv/recv_timeout
//! signatures, so the shim is a thin re-export.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// `crossbeam::channel::unbounded`: an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        let tx2 = tx.clone();
        tx2.send(8).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.recv(), Ok(8));
        assert!(rx.try_recv().is_err());
    }
}
