//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset used by this workspace's benches: `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a simple calibrated wall-clock loop printing
//! mean ns/iter — no statistics, plots, or regression baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much of the measurement loop a batch setup amortizes over
/// (accepted for API compatibility; the shim always times per-batch).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Target time for one measurement, once calibrated.
const MEASURE_TARGET: Duration = Duration::from_millis(200);

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            group: name.to_string(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Sample count is accepted for compatibility; the shim's loop is
    /// time-targeted rather than sample-count based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.group);
        run_one(&full, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Calibration: grow the iteration count until one run takes long
    // enough to time reliably.
    loop {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || b.iters >= (1 << 24) {
            break;
        }
        let grow = (MEASURE_TARGET.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 1024);
        b.iters = (b.iters * grow as u64).min(1 << 24);
    }
    // Measurement.
    b.elapsed = Duration::ZERO;
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("bench: {name:<40} {ns:>12.1} ns/iter ({} iters)", b.iters);
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// `criterion_group!(name, target_a, target_b, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group_a, group_b, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
