//! Offline stand-in for the `rand` 0.9 crate.
//!
//! Implements the slice of the API the workspace uses: `SmallRng`
//! (seeded, deterministic), `SeedableRng::seed_from_u64`, and
//! `Rng::{random, random_range}`. The generator is xorshift64* — not
//! cryptographic, but statistically fine for a drop-probability model.

/// Core generator: the `RngCore` subset.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types a generator can produce via `Rng::random`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1): 53 mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// The user-facing sampling trait.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform in `[range.start, range.end)`.
    fn random_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding trait (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Splitmix the seed so that small/sequential seeds diverge.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            SmallRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniform_ish() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        let mut c = SmallRng::seed_from_u64(7);
        let mut inside = 0;
        for _ in 0..1000 {
            let f: f64 = c.random();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                inside += 1;
            }
        }
        assert!((300..700).contains(&inside), "badly skewed: {inside}");
    }
}
