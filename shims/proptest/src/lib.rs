//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io, so this crate implements
//! the exact macro/strategy surface the workspace's property tests use:
//!
//! - `proptest! { #[test] fn f(x in strategy, y: u8) { .. } }`
//!   (with optional `#![proptest_config(ProptestConfig::with_cases(n))]`)
//! - `any::<T>()` for the primitive types
//! - range strategies (`0usize..512`), tuple strategies, `Just`
//! - `proptest::collection::vec(strategy, len | lo..hi)`
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (deterministic across runs), and failures panic
//! immediately with the offending inputs instead of shrinking. That is a
//! weaker debugging experience but identical pass/fail semantics.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only (mirrors proptest's default refusal to
            // emit NaN unless asked).
            (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test's name, so
    /// every run explores the same cases (reproducible CI).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// In this shim a failed property panics directly (no shrinking), so the
/// prop_assert family maps to the std assert family.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The `proptest!` block: expands each contained `fn` into a `#[test]`
/// that runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $crate::__proptest_bind!(rng, ($($params)*), $body);
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, (), $body:block) => { $body };
    ($rng:ident, ($name:ident in $strat:expr, $($rest:tt)*), $body:block) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, ($($rest)*), $body);
    }};
    ($rng:ident, ($name:ident in $strat:expr), $body:block) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $body
    }};
    ($rng:ident, ($name:ident : $ty:ty, $($rest:tt)*), $body:block) => {{
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng, ($($rest)*), $body);
    }};
    ($rng:ident, ($name:ident : $ty:ty), $body:block) => {{
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
        $body
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Doc comments and mixed binder styles all parse.
        #[test]
        fn binder_styles(a in 0u8..10, b: u16, v in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(a < 10);
            prop_assert!(v.len() < 8);
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_form(x in 3usize..4) {
            prop_assert_eq!(x, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::from_name("t");
        let mut r2 = crate::test_runner::TestRng::from_name("t");
        let s = 0u32..1000;
        for _ in 0..64 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
