//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny API slice it actually uses: `Mutex` and
//! `RwLock` with panic-free (`lock()` returns the guard directly,
//! ignoring poison) semantics matching parking_lot's signatures.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// `parking_lot::Mutex`: like `std::sync::Mutex` but `lock()` yields the
/// guard directly and a panicked holder does not poison the lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `parking_lot::RwLock` with the same poison-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
