//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` here is an `Arc<[u8]>` — cheaply cloneable, immutable, and
//! `Deref<Target = [u8]>`, which is the whole surface the simulated
//! fabric and GM layers use (packets are cloned when fanned out and
//! sliced on receive).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            inner: Arc::from(&[][..]),
        }
    }

    /// Wrap a static slice. (The real crate borrows; copying once here is
    /// fine for the simulation's tiny static frames.)
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            inner: Arc::from(s),
        }
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            inner: Arc::from(v),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.inner[..] == other.inner[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.inner[..] == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b[1..].to_vec(), vec![2, 3]);
        assert_eq!(Bytes::new().len(), 0);
        assert_eq!(&Bytes::from_static(b"hi")[..], b"hi");
        assert_eq!(&Bytes::copy_from_slice(b"yo")[..], b"yo");
    }
}
