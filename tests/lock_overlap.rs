//! Pipelined-synchronization correctness: the overlapped lock path and
//! the stride prefetcher change *when* diffs move, never *what* a fault
//! applies. Whatever the schedule — clean, lossy, duplicated, reordered
//! — shared memory must stay byte-identical to the serial spec baseline,
//! and the prefetcher's waste must stay bounded.
//!
//! The lock workload is the TSP-like storm: the holder writes a block of
//! pages under the lock, the reader acquires and reads it back, with the
//! lock handoff as the only ordering (so the grant carries the write
//! notices the pipeline overlaps). The prefetch workload is the SOR-like
//! ascending sweep that keeps the stride detector hot.

use std::sync::Arc;

use proptest::prelude::*;
use tm_fast::run_udp_dsm;
use tm_sim::{FaultPlan, Ns, SchedMode, SimParams};
use tmk::{LockPath, MetricsHandle, Substrate, Tmk, TmkConfig};

const PAGES: usize = 8;
const ROUNDS: u32 = 4;

/// Paper testbed pinned to the conservative lockstep scheduler. The
/// storm's handoff spin advances the reader's clock ~600ns per probe;
/// under freerun a lossy schedule lets the writer's retransmission
/// deadlines (which double) recede faster than the spinning reader's
/// clock can crawl toward their virtual arrival stamps, so the requester
/// exhausts its retry budget against a peer that is alive and polling.
/// Lockstep keeps the clocks within one window of each other, which both
/// kills that divergence and makes every schedule byte-reproducible.
fn with_plan(f: FaultPlan) -> Arc<SimParams> {
    let mut p = SimParams::paper_testbed();
    p.sched = SchedMode::Lockstep;
    p.faults = f;
    Arc::new(p)
}

/// Lock-handoff storm; every node returns its full memory snapshot.
fn storm<S: Substrate>(tmk: &mut Tmk<S>) -> Vec<u8> {
    let r = tmk.malloc(PAGES * 4096);
    let me = tmk.proc_id();
    for p in 0..PAGES {
        let _ = tmk.get_u32(r, p * 1024);
    }
    tmk.barrier(0);
    for round in 0..ROUNDS {
        let want = round + 1;
        if me == 0 {
            tmk.acquire(0);
            // Payload first, turn marker (page 0) last: a reader that
            // observes the marker holds notices for the whole interval.
            for p in 1..PAGES {
                tmk.set_u32(r, p * 1024 + 4, (want << 8) | p as u32);
            }
            tmk.set_u32(r, 4, want);
            tmk.release(0);
        } else {
            loop {
                tmk.acquire(0);
                if tmk.get_u32(r, 4) == want {
                    break;
                }
                tmk.release(0);
            }
            for p in 1..PAGES {
                assert_eq!(tmk.get_u32(r, p * 1024 + 4), (want << 8) | p as u32);
            }
            tmk.release(0);
        }
        tmk.barrier(1 + round);
    }
    let mut snap = vec![0u8; PAGES * 4096];
    tmk.read_bytes(r, 0, &mut snap);
    tmk.barrier(1 + ROUNDS);
    snap
}

/// Run the storm under `(lock_path, prefetch_depth)` and `plan`; assert
/// both nodes converge on one snapshot and return it.
fn run_storm(lock_path: LockPath, depth: usize, plan: FaultPlan) -> Vec<u8> {
    let cfg = TmkConfig {
        lock_path,
        prefetch_depth: depth,
        ..TmkConfig::default()
    };
    let out = run_udp_dsm(2, with_plan(plan), cfg, storm);
    for o in &out {
        assert_eq!(
            o.result, out[0].result,
            "node {} snapshot diverges under {lock_path:?}/depth {depth}",
            o.id
        );
    }
    out[0].result.clone()
}

#[test]
fn pipelined_paths_match_serial_on_clean_network() {
    let serial = run_storm(LockPath::Serial, 0, FaultPlan::default());
    assert_eq!(
        run_storm(LockPath::Overlapped, 0, FaultPlan::default()),
        serial
    );
    assert_eq!(
        run_storm(LockPath::Overlapped, 4, FaultPlan::default()),
        serial
    );
    // The content itself: the last round's interval on every page
    // (u32 index `p * 1024 + 4` is byte offset `p * 4096 + 16`).
    for p in 1..PAGES {
        let at = p * 4096 + 16;
        let v = u32::from_le_bytes(serial[at..at + 4].try_into().unwrap());
        assert_eq!(v, (ROUNDS << 8) | p as u32, "page {p}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Seeded drop/duplicate/reorder schedules against the pipelined
    /// lock path (with and without the prefetcher): grants, notice
    /// sends, and speculative volleys arrive late, twice, or never
    /// (retransmitted), and memory must still match the clean serial
    /// reference byte for byte.
    #[test]
    fn pipelined_sync_survives_random_fault_schedules(
        seed in any::<u64>(),
        drop_pm in 0u32..120,      // 0..12% loss
        dup_pm in 0u32..150,       // 0..15% duplication
        reorder_pm in 0u32..200,   // 0..20% reordering
        depth in 0usize..3,
    ) {
        let clean = run_storm(LockPath::Serial, 0, FaultPlan::default());
        let plan = FaultPlan {
            seed,
            drop_probability: f64::from(drop_pm) / 1000.0,
            duplicate_probability: f64::from(dup_pm) / 1000.0,
            reorder_probability: f64::from(reorder_pm) / 1000.0,
            reorder_delay: Ns::from_us(250),
            ..FaultPlan::default()
        };
        prop_assert_eq!(run_storm(LockPath::Overlapped, depth * 4, plan), clean);
    }
}

/// Ascending sweep; the reader returns its snapshot plus the prefetch
/// tally `(issued, hits, wasted)`.
fn sweep<S: Substrate>(tmk: &mut Tmk<S>) -> (Vec<u8>, u64, u64, u64) {
    let r = tmk.malloc(PAGES * 4096);
    let me = tmk.proc_id();
    for p in 0..PAGES {
        let _ = tmk.get_u32(r, p * 1024);
    }
    tmk.barrier(0);
    if me == 0 {
        for p in 0..PAGES {
            tmk.set_u32(r, p * 1024, p as u32 + 1);
        }
    }
    tmk.barrier(1);
    let mut tally = (0u64, 0u64, 0u64);
    if me == 1 {
        let h = MetricsHandle::install(tmk);
        for p in 0..PAGES {
            assert_eq!(tmk.get_u32(r, p * 1024), p as u32 + 1);
        }
        let m = h.snapshot();
        let count = |k: &str| m.get(k).map_or(0, |e| e.count);
        tally = (
            count("prefetch_issued"),
            count("prefetch_hit"),
            count("prefetch_wasted"),
        );
        tmk.clear_event_hook();
    }
    let mut snap = vec![0u8; PAGES * 4096];
    tmk.read_bytes(r, 0, &mut snap);
    tmk.barrier(2);
    (snap, tally.0, tally.1, tally.2)
}

/// The prefetcher under 10% loss, pinned: the conservative lockstep
/// scheduler makes the faulty run byte-reproducible, so the exact
/// volley/hit/waste counts are part of the contract. Speculation must
/// still land (hits > 0) and its waste stays bounded by what it issued.
#[test]
fn prefetch_signature_pinned_under_loss() {
    let mut p = SimParams::paper_testbed();
    p.sched = SchedMode::Lockstep;
    p.faults = FaultPlan {
        seed: 0x7e11_57a7,
        drop_probability: 0.10,
        ..FaultPlan::default()
    };
    let cfg = TmkConfig {
        prefetch_depth: 4,
        ..TmkConfig::default()
    };
    let out = run_udp_dsm(2, Arc::new(p), cfg, sweep);
    let (ref snap, issued, hits, wasted) = out[1].result;
    assert_eq!(&out[0].result.0, snap, "snapshots diverge under loss");
    for (p, chunk) in snap.chunks(4096).enumerate() {
        let v = u32::from_le_bytes(chunk[..4].try_into().unwrap());
        assert_eq!(v, p as u32 + 1, "page {p}");
    }
    assert!(hits > 0, "prefetcher must land hits under loss");
    assert!(
        hits + wasted <= issued,
        "every issued page resolves to at most one hit or waste \
         (issued={issued} hits={hits} wasted={wasted})"
    );
    // The pinned signature: re-run to learn the new triple if a protocol
    // change legitimately shifts it, then update here.
    assert_eq!(
        (issued, hits, wasted),
        (5, 5, 0),
        "prefetch signature drifted under the pinned lossy schedule"
    );
}
