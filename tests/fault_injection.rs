//! End-to-end fault-injection tests: the DSM must survive a seeded,
//! deterministic schedule of datagram drops, duplicates, reorders,
//! corruption, GM token starvation and receive-buffer overflow — with
//! byte-identical shared memory and exact, reproducible fault counters.
//!
//! The workload is the ISSUE's canonical round: 4 nodes run barriers, a
//! lock-guarded shared counter, striped page writes and full-memory
//! reads (page fetches + diffs). Any reliability bug has a visible
//! signature here: a double-granted lock loses counter increments, a
//! replayed diff corrupts page bytes, a lost message without
//! retransmission deadlocks the run.

use std::sync::Arc;

use tm_fast::{run_fast_dsm, run_udp_dsm, FastConfig};
use tm_sim::{FaultPlan, NodeStats, Ns, SimParams};
use tmk::{DiffFetch, Substrate, Tmk, TmkConfig};

const NODES: usize = 4;
const PAGES: usize = 6;
/// Lock-guarded increments per node; the counter must end at exactly
/// `NODES * INCRS` or mutual exclusion was violated.
const INCRS: u32 = 8;

fn with_plan(f: FaultPlan) -> Arc<SimParams> {
    let mut p = SimParams::paper_testbed();
    p.faults = f;
    Arc::new(p)
}

/// Barrier + lock + page-fetch round. Returns (full memory snapshot,
/// final counter value) so callers can compare runs byte for byte.
fn workload<S: Substrate>(tmk: &mut Tmk<S>) -> (Vec<u8>, u32) {
    let r = tmk.malloc(PAGES * 4096);
    tmk.barrier(0);
    let me = tmk.proc_id();
    for _ in 0..INCRS {
        tmk.acquire(0);
        let v = tmk.get_u32(r, 0);
        tmk.set_u32(r, 0, v + 1);
        tmk.release(0);
    }
    tmk.barrier(1);
    // Striped writes: node `me` owns page `me + 1` (page 0 holds the
    // counter), so every reader below needs a remote fetch per stripe.
    for w in 0..1024usize {
        tmk.set_u32(r, (me + 1) * 1024 + w, ((me as u32) << 16) | w as u32);
    }
    tmk.barrier(2);
    let mut snap = vec![0u8; PAGES * 4096];
    tmk.read_bytes(r, 0, &mut snap);
    tmk.barrier(3);
    (snap, tmk.get_u32(r, 0))
}

/// Run the UDP workload under `plan`; assert correctness invariants and
/// return (reference snapshot, aggregated stats).
fn run_udp_under(plan: FaultPlan) -> (Vec<u8>, NodeStats) {
    let out = run_udp_dsm(NODES, with_plan(plan), TmkConfig::default(), workload);
    let mut agg = NodeStats::default();
    for o in &out {
        agg.merge(&o.stats);
        assert_eq!(o.result.1, NODES as u32 * INCRS, "node {} counter", o.id);
        assert_eq!(
            o.result.0, out[0].result.0,
            "node {} snapshot diverges from node 0",
            o.id
        );
    }
    (out[0].result.0.clone(), agg)
}

#[test]
fn lossless_run_has_zero_fault_counters() {
    // Zero-fault invariance: with the plan disabled no reliability
    // machinery may fire — not one retransmission, tombstone, checksum
    // or replay-cache hit.
    let (_, s) = run_udp_under(FaultPlan::default());
    assert!(!s.any_faults(), "fault counters on a clean run: {s:?}");
}

#[test]
fn ten_percent_loss_completes_with_identical_memory() {
    let (clean, _) = run_udp_under(FaultPlan::default());
    let (snap, s) = run_udp_under(FaultPlan {
        drop_probability: 0.10,
        ..FaultPlan::default()
    });
    assert_eq!(snap, clean, "shared memory corrupted by loss recovery");
    assert!(s.dgrams_dropped > 0, "plan injected no drops: {s:?}");
    assert!(s.retransmits > 0, "drops recovered without retransmits? {s:?}");
}

#[test]
fn one_percent_loss_completes_with_identical_memory() {
    let (clean, _) = run_udp_under(FaultPlan::default());
    let (snap, s) = run_udp_under(FaultPlan {
        drop_probability: 0.01,
        ..FaultPlan::default()
    });
    assert_eq!(snap, clean);
    assert!(s.dgrams_dropped > 0, "1% over this workload still drops: {s:?}");
    assert!(s.retransmits >= s.dgrams_dropped, "every drop needs a resend");
}

/// A fully serialized 2-node round: every message is ordered by a data
/// or barrier dependency, so each node's send sequence is its program
/// order and the seeded drop schedule lands on the same datagrams every
/// run. (The 4-node workload above is *correct* under loss but its
/// concurrent requesters race in wall-clock time, so global counter
/// totals vary run to run — see DESIGN.md, "Failure model".)
fn serialized_workload<S: Substrate>(tmk: &mut Tmk<S>) -> u32 {
    let r = tmk.malloc(2 * 4096);
    tmk.barrier(0);
    let me = tmk.proc_id();
    for it in 0..6u32 {
        if me == it as usize % 2 {
            tmk.acquire(0);
            let v = tmk.get_u32(r, 0);
            tmk.set_u32(r, 0, v + 1);
            tmk.release(0);
        }
        tmk.barrier(1 + it);
    }
    tmk.get_u32(r, 0)
}

#[test]
fn retransmission_counts_are_deterministic() {
    // Same seed, same workload → the identical fault schedule, down to
    // exact counter values. This is the tentpole's reproducibility
    // guarantee: a failure seen once can be replayed forever.
    let run = || {
        let plan = FaultPlan {
            drop_probability: 0.10,
            ..FaultPlan::default()
        };
        let out = run_udp_dsm(2, with_plan(plan), TmkConfig::default(), serialized_workload);
        let mut agg = NodeStats::default();
        for o in &out {
            agg.merge(&o.stats);
            assert_eq!(o.result, 6);
        }
        agg
    };
    let a = run();
    let b = run();
    assert_eq!(a.dgrams_dropped, b.dgrams_dropped);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.dup_requests_suppressed, b.dup_requests_suppressed);
    assert_eq!(a.stale_responses_dropped, b.stale_responses_dropped);
    // The seeded schedule's exact signature for this workload. If a code
    // change legitimately alters message order (new protocol traffic,
    // different rto), re-pin these numbers — the point is that they
    // never drift without a code change. (Last re-pinned for the
    // overlapped RPC engine, whose serve-queue draining shifts response
    // send order slightly.)
    assert_eq!(a.dgrams_dropped, 5);
    assert_eq!(a.retransmits, 5);
    assert_eq!(a.dup_requests_suppressed, 2);
    assert_eq!(a.stale_responses_dropped, 0);
}

#[test]
fn replayed_requests_are_idempotent() {
    // Duplicate delivery replays Acquire/Diff/BarrierArrive requests at
    // the responder. A double-granted acquire would let two nodes run
    // the critical section concurrently (counter < 32); a re-served diff
    // or page request must not disturb page state (snapshot equality).
    let (clean, _) = run_udp_under(FaultPlan::default());
    let (snap, s) = run_udp_under(FaultPlan {
        duplicate_probability: 0.25,
        drop_probability: 0.05,
        ..FaultPlan::default()
    });
    assert_eq!(snap, clean, "replayed request mutated page state");
    assert!(s.dgrams_duplicated > 0, "plan injected no duplicates: {s:?}");
    assert!(
        s.dup_requests_suppressed + s.stale_responses_dropped > 0,
        "no duplicate was ever absorbed: {s:?}"
    );
}

#[test]
fn reordering_is_survived() {
    let (clean, _) = run_udp_under(FaultPlan::default());
    let (snap, s) = run_udp_under(FaultPlan {
        reorder_probability: 0.20,
        reorder_delay: Ns::from_us(300),
        ..FaultPlan::default()
    });
    assert_eq!(snap, clean);
    assert!(s.dgrams_reordered > 0, "plan reordered nothing: {s:?}");
}

#[test]
fn corruption_is_detected_and_survived() {
    // Flipped bytes must be caught by the wire checksum (never decoded
    // into protocol state) and then recovered like any other loss.
    let (clean, _) = run_udp_under(FaultPlan::default());
    let (snap, s) = run_udp_under(FaultPlan {
        corrupt_probability: 0.05,
        ..FaultPlan::default()
    });
    assert_eq!(snap, clean, "corrupted frame leaked into page state");
    assert!(s.dgrams_corrupted > 0, "plan corrupted nothing: {s:?}");
    assert_eq!(
        s.crc_rejected, s.dgrams_corrupted,
        "every injected flip must be caught by the checksum: {s:?}"
    );
    assert!(s.retransmits > 0, "CRC rejects must drive retransmission");
}

#[test]
fn recvbuf_overflow_pressure_is_survived() {
    // A shallow socket buffer drops bursts silently (no tombstone), so
    // recovery rides purely on the virtual-time retransmission timer.
    let (clean, _) = run_udp_under(FaultPlan::default());
    let (snap, _) = run_udp_under(FaultPlan {
        recvbuf_datagrams: 4,
        drop_probability: 0.02,
        ..FaultPlan::default()
    });
    assert_eq!(snap, clean);
}

#[test]
fn everything_at_once() {
    // The full gauntlet: drop + duplicate + reorder + corrupt on one run.
    let (clean, _) = run_udp_under(FaultPlan::default());
    let (snap, s) = run_udp_under(FaultPlan {
        drop_probability: 0.05,
        duplicate_probability: 0.05,
        reorder_probability: 0.05,
        corrupt_probability: 0.02,
        ..FaultPlan::default()
    });
    assert_eq!(snap, clean);
    assert!(s.dgrams_dropped > 0 && s.dgrams_duplicated > 0 && s.dgrams_reordered > 0);
}

/// Three-writer diff storm so every page fault keeps three RPCs in
/// flight; every node snapshots the whole region at the end.
fn multi_writer_storm<S: Substrate>(tmk: &mut Tmk<S>) -> Vec<u8> {
    let r = tmk.malloc(PAGES * 4096);
    let me = tmk.proc_id();
    for p in 0..PAGES {
        let _ = tmk.get_u32(r, p * 1024);
    }
    tmk.barrier(0);
    if me < 3 {
        for p in 0..PAGES {
            tmk.set_u32(r, p * 1024 + me * 16, ((me as u32) << 8) | p as u32);
        }
    }
    tmk.barrier(1);
    let mut snap = vec![0u8; PAGES * 4096];
    tmk.read_bytes(r, 0, &mut snap);
    tmk.barrier(2);
    snap
}

fn run_storm_under(engine: DiffFetch, plan: FaultPlan) -> (Vec<u8>, NodeStats) {
    let cfg = TmkConfig {
        diff_fetch: engine,
        ..TmkConfig::default()
    };
    let out = run_udp_dsm(NODES, with_plan(plan), cfg, multi_writer_storm);
    let mut agg = NodeStats::default();
    for o in &out {
        agg.merge(&o.stats);
        assert_eq!(
            o.result, out[0].result,
            "node {} snapshot diverges under {engine:?}",
            o.id
        );
    }
    (out[0].result.clone(), agg)
}

#[test]
fn parallel_diff_fetch_survives_ten_percent_loss() {
    // The overlapped engine's per-rid retransmission timers, out-of-order
    // collection and full-outstanding-set stale discard all under fire at
    // once: three rids in flight per fault, 10% of datagrams vanish.
    // Memory must match a clean serial run byte for byte.
    let (clean, _) = run_storm_under(DiffFetch::Serial, FaultPlan::default());
    for engine in [DiffFetch::Parallel, DiffFetch::Coalesced] {
        let (snap, s) = run_storm_under(
            engine,
            FaultPlan {
                drop_probability: 0.10,
                ..FaultPlan::default()
            },
        );
        assert_eq!(snap, clean, "{engine:?} memory corrupted by loss recovery");
        assert!(s.dgrams_dropped > 0, "plan injected no drops: {s:?}");
        assert!(s.retransmits > 0, "drops recovered without retransmits? {s:?}");
    }
}

#[test]
fn fast_survives_token_starvation() {
    // GM-side fault: the send-token pool runs dry for 20us out of every
    // 200us of virtual time. FAST must back off and poll, never panic,
    // and the DSM outcome must be unchanged.
    let plan = FaultPlan {
        token_starvation_period: Ns::from_us(200),
        token_starvation_duration: Ns::from_us(20),
        ..FaultPlan::default()
    };
    let params = with_plan(plan);
    let cfg = FastConfig::paper(&params);
    let out = run_fast_dsm(NODES, params, cfg, TmkConfig::default(), workload);
    let mut agg = NodeStats::default();
    for o in &out {
        agg.merge(&o.stats);
        assert_eq!(o.result.1, NODES as u32 * INCRS);
        assert_eq!(o.result.0, out[0].result.0);
    }
    assert!(agg.token_stalls > 0, "starvation windows never bit: {agg:?}");
}
