//! Workspace-level calibration tests: the cost model must keep producing
//! the §3.1 latency/bandwidth anchor points the rest of the evaluation
//! stands on.

use std::sync::Arc;

use parking_lot::Mutex;
use tm_fast::{FastConfig, FastSubstrate};
use tm_gm::{gm_cluster, gm_size, DmaPool};
use tm_sim::{run_cluster, Ns, SimParams};
use tm_udp::UdpStack;
use tmk::Substrate;

/// Raw GM one-way small-message latency ≈ 8.99 µs.
#[test]
fn gm_latency_matches_paper() {
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, board, nics) = gm_cluster(2, Arc::clone(&params));
    let nics = Arc::new(Mutex::new(nics.into_iter().map(Some).collect::<Vec<_>>()));
    let out = run_cluster(2, Arc::clone(&params), move |env| {
        let nic = nics.lock()[env.id].take().unwrap();
        let mut gm = tm_gm::GmNode::new(
            nic,
            env.clock.clone(),
            Arc::clone(&env.params),
            Arc::clone(&board),
            64 << 20,
        );
        gm.open_port(2, false).unwrap();
        let mut pool = DmaPool::new(&mut gm.book, 8, 64).unwrap();
        for _ in 0..40 {
            gm.provide_receive_buffer(2, gm_size(1)).unwrap();
        }
        let buf = pool.take(&[0u8]).unwrap();
        pool.recycle();
        let peer = 1 - env.id;
        if env.id == 0 {
            let t0 = env.clock.borrow().now();
            for _ in 0..32 {
                gm.send(2, peer, 2, &buf, 1).unwrap();
                let _ = gm.blocking_receive(&[2]);
            }
            ((env.clock.borrow().now() - t0).as_us()) / 64.0
        } else {
            for _ in 0..32 {
                let _ = gm.blocking_receive(&[2]);
                gm.send(2, peer, 2, &buf, 1).unwrap();
            }
            0.0
        }
    });
    let lat = out[0].result;
    assert!(
        (8.0..10.0).contains(&lat),
        "raw GM one-way latency {lat:.2}us, paper 8.99us"
    );
}

/// FAST/GM latency sits just above raw GM (paper: 9.4 vs 8.99 µs), and
/// UDP/GM is several times higher.
#[test]
fn substrate_latency_ordering() {
    // FAST
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, board, nics) = gm_cluster(2, Arc::clone(&params));
    let nics = Arc::new(Mutex::new(nics.into_iter().map(Some).collect::<Vec<_>>()));
    let fast = run_cluster(2, Arc::clone(&params), move |env| {
        let nic = nics.lock()[env.id].take().unwrap();
        let mut sub = FastSubstrate::new(
            nic,
            env.clock.clone(),
            Arc::clone(&env.params),
            Arc::clone(&board),
            FastConfig::paper(&env.params),
        );
        if env.id == 0 {
            let t0 = env.clock.borrow().now();
            sub.send_request(1, &[1u8]);
            let m = sub.next_incoming();
            let _ = m;
            (env.clock.borrow().now() - t0).as_us() / 2.0
        } else {
            let _ = sub.next_incoming();
            let at = sub.clock().borrow().now() + sub.response_cost(1);
            sub.send_response_at(0, &[1u8], at);
            0.0
        }
    });
    let fast_lat = fast[0].result;

    // UDP
    let params = Arc::new(SimParams::paper_testbed());
    let (_f, nics) = tm_myrinet::Fabric::new(2, Arc::clone(&params));
    let nics = Arc::new(Mutex::new(nics.into_iter().map(Some).collect::<Vec<_>>()));
    let udp = run_cluster(2, Arc::clone(&params), move |env| {
        let nic = nics.lock()[env.id].take().unwrap();
        let mut u = UdpStack::new(nic, env.clock.clone(), Arc::clone(&env.params));
        u.bind(3, false);
        if env.id == 0 {
            let t0 = env.clock.borrow().now();
            u.sendto(1, 3, 3, &[1u8]);
            let _ = u.recvfrom(3);
            (env.clock.borrow().now() - t0).as_us() / 2.0
        } else {
            let _ = u.recvfrom(3);
            u.sendto(0, 3, 3, &[1u8]);
            0.0
        }
    });
    let udp_lat = udp[0].result;

    assert!(
        (8.5..11.5).contains(&fast_lat),
        "FAST/GM latency {fast_lat:.2}us, paper 9.4us"
    );
    assert!(
        udp_lat > 2.0 * fast_lat,
        "UDP/GM ({udp_lat:.1}us) should be several times FAST/GM ({fast_lat:.1}us)"
    );
    assert!(
        udp_lat < 60.0,
        "UDP/GM latency {udp_lat:.1}us out of the plausible sockets-GM range"
    );
}

/// The §2.2.2 memory arithmetic: eager preposting needs roughly
/// 64KB·(n−1)+64KB; the rendezvous variant roughly a third of that.
#[test]
fn prepost_memory_matches_paper_formula() {
    for n in [4usize, 16, 256] {
        let params = Arc::new(SimParams::paper_testbed());
        let (_f, board, mut nics) = gm_cluster(n, Arc::clone(&params));
        let nic = nics.remove(0);
        let mut cfg = FastConfig::paper(&params);
        let eager = FastSubstrate::new(
            nic,
            tm_sim::clock::shared_clock(),
            Arc::clone(&params),
            Arc::clone(&board),
            cfg.clone(),
        )
        .prepost_bytes;
        let formula = 64 * 1024 * (n - 1) + 64 * 1024;
        let ratio = eager as f64 / formula as f64;
        assert!(
            (0.8..1.4).contains(&ratio),
            "n={n}: prepost {eager}B vs formula {formula}B (ratio {ratio:.2})"
        );
        cfg.rendezvous = true;
        let nic = nics.remove(0);
        let rdv = FastSubstrate::new(
            nic,
            tm_sim::clock::shared_clock(),
            Arc::clone(&params),
            board,
            cfg,
        )
        .prepost_bytes;
        assert!(
            (rdv as f64) < 0.45 * eager as f64,
            "n={n}: rendezvous {rdv}B should be well under eager {eager}B"
        );
    }
}

/// Timer-based async handling adds ~half a period of latency; the
/// interrupt stays bounded. (The §2.2.4 conclusion in miniature.)
#[test]
fn interrupt_beats_timer_scheme() {
    use tm_sim::AsyncScheme;
    let intr = AsyncScheme::Interrupt { cost: Ns::from_us(7) };
    let timer = AsyncScheme::Timer {
        period: Ns::from_ms(1),
        dispatch: Ns::from_us(2),
    };
    let arrival = Ns::from_us(123);
    assert!(intr.earliest_service(arrival) < Ns::from_us(131));
    assert!(timer.earliest_service(arrival) >= Ns::from_ms(1));
}
