//! Overlapped-RPC engine correctness: with several requests in flight
//! per fault, responses may come back out of order, duplicated, or not
//! at all (forcing per-rid retransmission). Whatever the schedule, the
//! overlapped engines must produce shared memory byte-identical to the
//! one-outstanding-RPC serial engine on a clean network.
//!
//! The workload keeps >= 3 rids outstanding: three writers update
//! disjoint words of every page, so the fourth node's page faults fan
//! out to three peers at once (and each writer's own re-read keeps two
//! outstanding).

use std::sync::Arc;

use proptest::prelude::*;
use tm_fast::run_udp_dsm;
use tm_sim::{FaultPlan, Ns, SimParams};
use tmk::{DiffFetch, Substrate, Tmk, TmkConfig};

const NODES: usize = 4;
const WRITERS: usize = 3;
const PAGES: usize = 8;

fn with_plan(f: FaultPlan) -> Arc<SimParams> {
    let mut p = SimParams::paper_testbed();
    p.faults = f;
    Arc::new(p)
}

/// Multi-writer diff storm; every node returns its full memory snapshot.
fn storm<S: Substrate>(tmk: &mut Tmk<S>) -> Vec<u8> {
    let r = tmk.malloc(PAGES * 4096);
    let me = tmk.proc_id();
    // Warm every copy so the measured round is pure diff traffic.
    for p in 0..PAGES {
        let _ = tmk.get_u32(r, p * 1024);
    }
    tmk.barrier(0);
    if me < WRITERS {
        for p in 0..PAGES {
            tmk.set_u32(r, p * 1024 + me * 16, ((me as u32) << 8) | p as u32);
        }
    }
    tmk.barrier(1);
    let mut snap = vec![0u8; PAGES * 4096];
    tmk.read_bytes(r, 0, &mut snap);
    tmk.barrier(2);
    snap
}

/// Run the storm under `engine` and `plan`; assert all nodes converge on
/// one snapshot and return it.
fn run_storm(engine: DiffFetch, plan: FaultPlan) -> Vec<u8> {
    let cfg = TmkConfig {
        diff_fetch: engine,
        ..TmkConfig::default()
    };
    let out = run_udp_dsm(NODES, with_plan(plan), cfg, storm);
    for o in &out {
        assert_eq!(
            o.result, out[0].result,
            "node {} snapshot diverges under {engine:?}",
            o.id
        );
    }
    out[0].result.clone()
}

#[test]
fn overlapped_engines_match_serial_on_clean_network() {
    let serial = run_storm(DiffFetch::Serial, FaultPlan::default());
    assert_eq!(run_storm(DiffFetch::Parallel, FaultPlan::default()), serial);
    assert_eq!(run_storm(DiffFetch::Coalesced, FaultPlan::default()), serial);
    // The content itself: every writer's word on every page.
    for p in 0..PAGES {
        for w in 0..WRITERS {
            let at = p * 4096 + w * 64;
            let v = u32::from_le_bytes(serial[at..at + 4].try_into().unwrap());
            assert_eq!(v, ((w as u32) << 8) | p as u32, "page {p} writer {w}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Seeded drop/duplicate/reorder schedules against both overlapped
    /// engines: responses for >= 3 outstanding rids arrive late, twice,
    /// or never (retransmitted), and memory must still match the clean
    /// serial reference byte for byte.
    #[test]
    fn overlap_survives_random_fault_schedules(
        seed in any::<u64>(),
        drop_pm in 0u32..120,      // 0..12% loss
        dup_pm in 0u32..150,       // 0..15% duplication
        reorder_pm in 0u32..200,   // 0..20% reordering
        coalesce in any::<bool>(),
    ) {
        let clean = run_storm(DiffFetch::Serial, FaultPlan::default());
        let plan = FaultPlan {
            seed,
            drop_probability: f64::from(drop_pm) / 1000.0,
            duplicate_probability: f64::from(dup_pm) / 1000.0,
            reorder_probability: f64::from(reorder_pm) / 1000.0,
            reorder_delay: Ns::from_us(250),
            ..FaultPlan::default()
        };
        let engine = if coalesce { DiffFetch::Coalesced } else { DiffFetch::Parallel };
        prop_assert_eq!(run_storm(engine, plan), clean);
    }
}
