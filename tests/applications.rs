//! Cross-crate integration: the full application suite over the real
//! transports (not the idealized in-memory substrate), validated against
//! the sequential references — the complete stack from Tmk API down to
//! the simulated wire.

use std::sync::Arc;

use tm_apps::{
    fft_parallel, fft_seq, jacobi_parallel, jacobi_seq, sor_parallel, sor_seq, tsp_parallel,
    tsp_seq, FftConfig, JacobiConfig, SorConfig, TspConfig,
};
use tm_fast::{run_fast_dsm, run_udp_dsm, FastConfig};
use tm_sim::runner::cluster_time;
use tm_sim::SimParams;
use tmk::TmkConfig;

fn params() -> Arc<SimParams> {
    Arc::new(SimParams::paper_testbed())
}

#[test]
fn jacobi_over_fast_gm() {
    let cfg = JacobiConfig::new(64, 4);
    let want = jacobi_seq(&cfg);
    for n in [2usize, 4, 7] {
        let c = cfg.clone();
        let out = run_fast_dsm(
            n,
            params(),
            FastConfig::paper(&params()),
            TmkConfig::default(),
            move |tmk| jacobi_parallel(tmk, &c),
        );
        assert!(out.iter().all(|o| o.result == want), "n={n}");
    }
}

#[test]
fn jacobi_over_udp_gm() {
    let cfg = JacobiConfig::new(64, 4);
    let want = jacobi_seq(&cfg);
    let c = cfg.clone();
    let out = run_udp_dsm(4, params(), TmkConfig::default(), move |tmk| {
        jacobi_parallel(tmk, &c)
    });
    assert!(out.iter().all(|o| o.result == want));
}

#[test]
fn sor_over_both_transports() {
    let cfg = SorConfig::new(48, 32, 3);
    let (want, _) = sor_seq(&cfg);
    let c = cfg.clone();
    let fast = run_fast_dsm(
        4,
        params(),
        FastConfig::paper(&params()),
        TmkConfig::default(),
        move |tmk| sor_parallel(tmk, &c).0,
    );
    let c = cfg.clone();
    let udp = run_udp_dsm(4, params(), TmkConfig::default(), move |tmk| {
        sor_parallel(tmk, &c).0
    });
    assert!(fast.iter().all(|o| o.result == want));
    assert!(udp.iter().all(|o| o.result == want));
}

#[test]
fn tsp_over_fast_gm_many_nodes() {
    let cfg = TspConfig::new(9);
    let want = tsp_seq(&cfg);
    for n in [3usize, 8] {
        let c = cfg.clone();
        let out = run_fast_dsm(
            n,
            params(),
            FastConfig::paper(&params()),
            TmkConfig::default(),
            move |tmk| tsp_parallel(tmk, &c),
        );
        assert!(out.iter().all(|o| o.result == want), "n={n}");
    }
}

#[test]
fn tsp_over_udp_gm() {
    let cfg = TspConfig::new(8);
    let want = tsp_seq(&cfg);
    let c = cfg.clone();
    let out = run_udp_dsm(3, params(), TmkConfig::default(), move |tmk| {
        tsp_parallel(tmk, &c)
    });
    assert!(out.iter().all(|o| o.result == want));
}

#[test]
fn fft_over_fast_gm() {
    let cfg = FftConfig::new(8);
    let want = fft_seq(&cfg);
    for n in [2usize, 4] {
        let c = cfg.clone();
        let out = run_fast_dsm(
            n,
            params(),
            FastConfig::paper(&params()),
            TmkConfig::default(),
            move |tmk| fft_parallel(tmk, &c),
        );
        assert!(out.iter().all(|o| o.result == want), "n={n}");
    }
}

#[test]
fn fft_over_udp_gm() {
    let cfg = FftConfig::new(8);
    let want = fft_seq(&cfg);
    let c = cfg.clone();
    let out = run_udp_dsm(4, params(), TmkConfig::default(), move |tmk| {
        fft_parallel(tmk, &c)
    });
    assert!(out.iter().all(|o| o.result == want));
}

/// The headline claim, end to end: the same application binary gets
/// faster when the substrate is swapped from UDP/GM to FAST/GM.
#[test]
fn fast_gm_beats_udp_gm_on_every_app() {
    // Jacobi.
    let jc = JacobiConfig::new(96, 4);
    let c = jc.clone();
    let f = run_fast_dsm(
        4,
        params(),
        FastConfig::paper(&params()),
        TmkConfig::default(),
        move |tmk| jacobi_parallel(tmk, &c),
    );
    let c = jc.clone();
    let u = run_udp_dsm(4, params(), TmkConfig::default(), move |tmk| {
        jacobi_parallel(tmk, &c)
    });
    assert!(
        cluster_time(&u) > cluster_time(&f),
        "jacobi: UDP {} vs FAST {}",
        cluster_time(&u),
        cluster_time(&f)
    );

    // FFT (communication-heavy: the gap should be clear).
    let fc = FftConfig::new(16);
    let c = fc.clone();
    let f = run_fast_dsm(
        4,
        params(),
        FastConfig::paper(&params()),
        TmkConfig::default(),
        move |tmk| fft_parallel(tmk, &c),
    );
    let c = fc.clone();
    let u = run_udp_dsm(4, params(), TmkConfig::default(), move |tmk| {
        fft_parallel(tmk, &c)
    });
    let (tf, tu) = (cluster_time(&f), cluster_time(&u));
    assert!(
        tu.0 as f64 > 1.15 * tf.0 as f64,
        "fft: UDP {tu} should clearly beat FAST {tf}"
    );
}

/// The rendezvous configuration (E5's memory saver) still runs the DSM
/// correctly — large diffs/pages take the pin-and-RDMA path.
#[test]
fn rendezvous_configuration_runs_apps() {
    let cfg = JacobiConfig::new(64, 3);
    let want = jacobi_seq(&cfg);
    let mut fc = FastConfig::paper(&params());
    fc.rendezvous = true;
    let c = cfg.clone();
    let out = run_fast_dsm(4, params(), fc, TmkConfig::default(), move |tmk| {
        jacobi_parallel(tmk, &c)
    });
    assert!(out.iter().all(|o| o.result == want));
}

/// Protocol stats are visible and plausible at cluster level.
#[test]
fn cluster_stats_are_consistent() {
    let cfg = JacobiConfig::new(64, 3);
    let c = cfg.clone();
    let out = run_fast_dsm(
        4,
        params(),
        FastConfig::paper(&params()),
        TmkConfig::default(),
        move |tmk| jacobi_parallel(tmk, &c),
    );
    let agg = tm_sim::runner::cluster_stats(&out);
    assert_eq!(
        agg.msgs_sent, agg.msgs_recv,
        "every sent message must be consumed"
    );
    assert!(agg.twins_created >= agg.diffs_created);
    assert!(agg.barriers >= 4 * 4, "4 nodes x (init + iters + exit)");
}
