//! Combining-tree barrier correctness.
//!
//! Two properties, both direct consequences of LRC:
//!
//! 1. **Visibility** — after a barrier, every node observes every other
//!    node's pre-barrier writes, whatever the combining topology. Swept
//!    over radix {2, 4, 8, n-ary} and the centralized baseline on 4, 8
//!    and 16 nodes, the final shared-memory image must be byte-identical
//!    across *all* configurations: the barrier algorithm is a pure
//!    performance knob, never a semantic one.
//! 2. **Loss recovery** — tree arrivals and releases are ordinary
//!    requests/responses, so they must retransmit through the same
//!    reliability layer (rto + replay cache) as everything else. A 10%
//!    drop plan over UDP must complete with memory identical to a clean
//!    run.

use std::sync::Arc;

use tm_fast::run_udp_dsm;
use tm_sim::{FaultPlan, NodeStats, Ns, SimParams};
use tmk::memsub::run_mem_dsm;
use tmk::{BarrierAlgo, Substrate, Tmk, TmkConfig};

const ROUNDS: u32 = 3;

fn cfg(algo: BarrierAlgo) -> TmkConfig {
    TmkConfig {
        barrier_algo: algo,
        ..TmkConfig::default()
    }
}

/// Each node writes a distinctive word into its own page each round;
/// after every barrier it checks all peers' current-round writes, and at
/// the end returns the full memory image.
fn visibility_workload<S: Substrate>(tmk: &mut Tmk<S>) -> Vec<u8> {
    let n = tmk.nprocs();
    let me = tmk.proc_id();
    let r = tmk.malloc(n * 4096);
    tmk.barrier(0);
    for round in 1..=ROUNDS {
        // Pre-barrier: my writes for this round, in my page.
        for w in 0..8usize {
            tmk.set_u32(r, me * 1024 + w, (me as u32) << 24 | round << 16 | w as u32);
        }
        tmk.barrier(round);
        // Post-barrier: every peer's writes for this round must be
        // visible, no matter where each of us sat in the tree.
        for peer in 0..n {
            for w in 0..8usize {
                let got = tmk.get_u32(r, peer * 1024 + w);
                let want = (peer as u32) << 24 | round << 16 | w as u32;
                assert_eq!(
                    got, want,
                    "node {me} missed node {peer}'s round-{round} write {w}"
                );
            }
        }
        tmk.barrier(ROUNDS + round);
    }
    let mut snap = vec![0u8; n * 4096];
    tmk.read_bytes(r, 0, &mut snap);
    tmk.barrier(2 * ROUNDS + 1);
    snap
}

/// Run the visibility workload on the in-memory substrate and return the
/// (consensus) memory image.
fn mem_image(n: usize, algo: BarrierAlgo) -> Vec<u8> {
    let params = Arc::new(SimParams::paper_testbed());
    let out = run_mem_dsm(n, params, Ns(1_000), cfg(algo), visibility_workload);
    for o in &out {
        assert_eq!(
            o.result, out[0].result,
            "{algo:?}/{n}: node {} image diverges from node 0",
            o.id
        );
    }
    out[0].result.clone()
}

#[test]
fn barrier_visibility_is_radix_independent() {
    for n in [4usize, 8, 16] {
        let algos = [
            BarrierAlgo::Centralized,
            BarrierAlgo::Tree { radix: 2 },
            BarrierAlgo::Tree { radix: 4 },
            BarrierAlgo::Tree { radix: 8 },
            // n-ary: the whole cluster as the root's children — the tree
            // degenerates to the centralized shape but takes the tree
            // code path (combined arrivals, tree releases).
            BarrierAlgo::Tree {
                radix: (n - 1) as u16,
            },
            BarrierAlgo::NicTree { radix: 4 },
        ];
        let reference = mem_image(n, algos[0]);
        for algo in &algos[1..] {
            let image = mem_image(n, *algo);
            assert_eq!(
                image, reference,
                "{algo:?} on {n} nodes changed the memory image"
            );
        }
    }
}

#[test]
fn tree_barrier_survives_ten_percent_loss() {
    let run = |plan: FaultPlan| -> (Vec<u8>, NodeStats) {
        let mut p = SimParams::paper_testbed();
        p.faults = plan;
        let out = run_udp_dsm(
            8,
            Arc::new(p),
            cfg(BarrierAlgo::Tree { radix: 2 }),
            visibility_workload,
        );
        let mut agg = NodeStats::default();
        for o in &out {
            agg.merge(&o.stats);
            assert_eq!(o.result, out[0].result, "node {} image diverges", o.id);
        }
        (out[0].result.clone(), agg)
    };
    let (clean, s) = run(FaultPlan::default());
    assert!(!s.any_faults(), "clean run fired reliability machinery: {s:?}");
    let (lossy, s) = run(FaultPlan {
        drop_probability: 0.10,
        ..FaultPlan::default()
    });
    assert!(s.dgrams_dropped > 0, "plan injected no drops: {s:?}");
    assert!(
        s.retransmits > 0,
        "tree arrivals/releases recovered without retransmits? {s:?}"
    );
    assert_eq!(lossy, clean, "loss recovery corrupted shared memory");
}
