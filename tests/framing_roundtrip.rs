//! Framing-path round-trip tests: a message of any size must survive
//! `send` → (fragmentation) → reassembly → surfacing *byte-identical* on
//! both substrates. Deterministic sweeps pin every GM size-class boundary
//! and the rendezvous threshold; proptest fills in random sizes.

use std::sync::Arc;

use proptest::prelude::*;
use tm_fast::{FastConfig, FastSubstrate, UdpSubstrate};
use tm_gm::{gm_cluster, gm_max_length, MAX_SIZE_CLASS};
use tm_myrinet::Fabric;
use tm_sim::clock::shared_clock;
use tm_sim::{Ns, SimParams};
use tmk::{Chan, Substrate};

fn params() -> Arc<SimParams> {
    Arc::new(SimParams::paper_testbed())
}

fn fast_pair(rendezvous: bool) -> (FastSubstrate, FastSubstrate) {
    let params = params();
    let (_f, board, mut nics) = gm_cluster(2, Arc::clone(&params));
    let mut cfg = FastConfig::paper(&params);
    cfg.rendezvous = rendezvous;
    let b = FastSubstrate::new(
        nics.pop().unwrap(),
        shared_clock(),
        Arc::clone(&params),
        Arc::clone(&board),
        cfg.clone(),
    );
    let a = FastSubstrate::new(nics.pop().unwrap(), shared_clock(), params, board, cfg);
    (a, b)
}

fn udp_pair() -> (UdpSubstrate, UdpSubstrate) {
    let params = params();
    let (_f, mut nics) = Fabric::new(2, Arc::clone(&params));
    let b = UdpSubstrate::new(nics.pop().unwrap(), shared_clock(), Arc::clone(&params));
    let a = UdpSubstrate::new(nics.pop().unwrap(), shared_clock(), params);
    (a, b)
}

/// Deterministic non-constant payload so off-by-one splices show up.
fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(131) + 7) as u8).collect()
}

fn roundtrip<S: Substrate>(a: &mut S, b: &mut S, len: usize) {
    let data = payload(len);
    a.send_request(1, &data);
    let req = b.next_incoming();
    assert_eq!(req.chan, Chan::Request);
    assert_eq!(req.data, data, "request of {len} bytes mangled");
    b.send_response_at(0, &data, req.arrival + Ns::from_us(5));
    let rep = a.next_incoming();
    assert_eq!(rep.chan, Chan::Response);
    assert_eq!(rep.data, data, "response of {len} bytes mangled");
}

/// Payload lengths whose one-byte-framed messages straddle every GM size
/// class, plus the fragmentation threshold above the largest class.
fn class_boundary_lengths() -> Vec<usize> {
    let mut lens = vec![0usize, 1];
    for s in 1..=MAX_SIZE_CLASS {
        let m = gm_max_length(s);
        lens.extend([m.saturating_sub(2), m - 1, m]);
    }
    let limit = gm_max_length(MAX_SIZE_CLASS);
    lens.extend([limit + 1, 2 * limit, 3 * limit + 17]);
    lens.sort_unstable();
    lens.dedup();
    lens
}

#[test]
fn fast_roundtrips_every_size_class_boundary() {
    let (mut a, mut b) = fast_pair(false);
    for len in class_boundary_lengths() {
        roundtrip(&mut a, &mut b, len);
    }
}

#[test]
fn udp_roundtrips_across_the_datagram_limit() {
    const DGRAM_LIMIT: usize = 60 * 1024;
    let (mut a, mut b) = udp_pair();
    for len in [
        0,
        1,
        63,
        64,
        DGRAM_LIMIT - 2,
        DGRAM_LIMIT - 1,
        DGRAM_LIMIT,
        DGRAM_LIMIT + 1,
        2 * DGRAM_LIMIT + 333,
    ] {
        roundtrip(&mut a, &mut b, len);
    }
}

/// Responses straddling the rendezvous threshold travel announce → pull →
/// RDMA → complete; below it they use a preposted buffer. Either way the
/// requester must see identical bytes. Needs both nodes live (the pull is
/// serviced by the responder), hence the threaded cluster.
#[test]
fn fast_rendezvous_threshold_roundtrips() {
    let params = params();
    let (_f, board, nics) = gm_cluster(2, Arc::clone(&params));
    let nics = Arc::new(std::sync::Mutex::new(
        nics.into_iter().map(Some).collect::<Vec<_>>(),
    ));
    // gm_size(len + 2) crosses rdv_min_size=14 at len = 8191.
    let lens = [8189usize, 8190, 8191, 8192, 20_000];
    let out = tm_sim::run_cluster(2, Arc::clone(&params), move |env| {
        let nic = nics.lock().unwrap()[env.id].take().unwrap();
        let mut cfg = FastConfig::paper(&env.params);
        cfg.rendezvous = true;
        let mut sub = FastSubstrate::new(
            nic,
            env.clock.clone(),
            Arc::clone(&env.params),
            Arc::clone(&board),
            cfg,
        );
        if env.id == 0 {
            for &len in &lens {
                sub.send_request(1, &len.to_le_bytes());
                let rep = sub.next_incoming();
                assert_eq!(rep.chan, Chan::Response);
                assert_eq!(rep.data, payload(len), "rendezvous echo of {len} bytes");
            }
            sub.send_request(1, b"done");
            true
        } else {
            loop {
                let req = sub.next_incoming();
                if req.data == b"done" {
                    break true;
                }
                let len = usize::from_le_bytes(req.data[..8].try_into().unwrap());
                sub.send_response_at(0, &payload(len), req.arrival + Ns::from_us(10));
            }
        }
    });
    assert!(out.iter().all(|o| o.result));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fast_random_lengths_roundtrip(len in 0usize..100_000) {
        let (mut a, mut b) = fast_pair(false);
        roundtrip(&mut a, &mut b, len);
    }

    #[test]
    fn udp_random_lengths_roundtrip(len in 0usize..200_000) {
        let (mut a, mut b) = udp_pair();
        roundtrip(&mut a, &mut b, len);
    }
}
