//! Stress and failure-path integration tests: big fragmented messages,
//! lock storms, GM's buffer-exhaustion failure mode, UDP loss, pinned
//! memory budgets, and randomized (proptest) lock/data schedules.

use std::sync::Arc;

use proptest::prelude::*;
use tm_fast::{run_fast_dsm, run_udp_dsm, FastConfig};
use tm_gm::{gm_cluster, gm_size, DmaPool, GmError, GmNode};
use tm_sim::clock::shared_clock;
use tm_sim::{Ns, SimParams};
use tmk::memsub::run_mem_dsm;
use tmk::TmkConfig;

fn params() -> Arc<SimParams> {
    Arc::new(SimParams::paper_testbed())
}

/// A single write interval touching hundreds of pages: the barrier
/// release's interval records must survive the 32 KB GM message limit
/// (run-length page encoding + substrate fragmentation).
#[test]
fn huge_write_notice_sets_cross_the_wire() {
    let pages = 1200usize;
    let out = run_fast_dsm(
        4,
        params(),
        FastConfig::paper(&params()),
        TmkConfig::default(),
        move |tmk| {
            let r = tmk.malloc(pages * 4096);
            tmk.barrier(0);
            // Every node writes a word on every page (multi-writer on all
            // of them) — worst-case notice volume.
            let me = tmk.proc_id();
            for p in 0..pages {
                tmk.set_u32(r, p * 1024 + me, (me + 1) as u32);
            }
            tmk.barrier(1);
            // Spot-check a few pages for all four writers.
            let mut ok = true;
            for p in [0usize, 577, pages - 1] {
                for w in 0..4 {
                    ok &= tmk.get_u32(r, p * 1024 + w) == (w + 1) as u32;
                }
            }
            ok
        },
    );
    assert!(out.iter().all(|o| o.result));
}

/// The same storm over the kernel path exercises UDP fragmentation.
#[test]
fn huge_write_notice_sets_over_udp() {
    let pages = 900usize;
    let out = run_udp_dsm(3, params(), TmkConfig::default(), move |tmk| {
        let r = tmk.malloc(pages * 4096);
        tmk.barrier(0);
        let me = tmk.proc_id();
        for p in 0..pages {
            tmk.set_u32(r, p * 1024 + me, (me + 7) as u32);
        }
        tmk.barrier(1);
        tmk.get_u32(r, 1024 + 1) // page 1, writer 1
    });
    assert!(out.iter().all(|o| o.result == 8));
}

/// Lock convoy: every node hammers the same lock; mutual exclusion and
/// fairness (eventual completion) hold, and the counter is exact.
#[test]
fn lock_convoy_is_exact() {
    let n = 8;
    let rounds = 30;
    let out = run_fast_dsm(
        n,
        params(),
        FastConfig::paper(&params()),
        TmkConfig::default(),
        move |tmk| {
            let r = tmk.malloc(4096);
            tmk.barrier(0);
            for _ in 0..rounds {
                tmk.acquire(3);
                let v = tmk.get_u32(r, 0);
                tmk.set_u32(r, 0, v + 1);
                tmk.release(3);
            }
            tmk.barrier(1);
            tmk.get_u32(r, 0)
        },
    );
    assert!(out.iter().all(|o| o.result == (n * rounds) as u32));
}

/// Raw GM failure path: flooding a receiver that never preposts enough
/// buffers disables the sending port; re-enabling recovers it. (The DSM
/// substrates provision so this never fires — this pins the model.)
#[test]
fn gm_buffer_exhaustion_disables_and_recovers() {
    let p = params();
    let (_f, board, mut nics) = gm_cluster(2, Arc::clone(&p));
    let n1 = nics.pop().unwrap();
    let n0 = nics.pop().unwrap();
    let mut a = GmNode::new(n0, shared_clock(), Arc::clone(&p), Arc::clone(&board), 64 << 20);
    let mut b = GmNode::new(n1, shared_clock(), p, board, 64 << 20);
    a.open_port(2, false).unwrap();
    b.open_port(2, false).unwrap();
    let mut pool = DmaPool::new(&mut a.book, 4, 64).unwrap();
    let buf = pool.take(&[9u8; 16]).unwrap();
    pool.recycle();
    // One buffer for two messages: the second waits, then times out.
    b.provide_receive_buffer(2, gm_size(16)).unwrap();
    a.send(2, 1, 2, &buf, 16).unwrap();
    a.send(2, 1, 2, &buf, 16).unwrap();
    // Receiver consumes one...
    b.clock().borrow_mut().advance(Ns::from_us(100));
    assert!(b.receive(2).unwrap().is_some());
    // ...and lets the other rot past the resend window.
    b.clock().borrow_mut().advance(Ns::from_secs(4));
    assert!(b.receive(2).unwrap().is_none());
    assert!(a.port_disabled(2));
    a.reenable_port(2).unwrap();
    b.provide_receive_buffer(2, gm_size(16)).unwrap();
    assert!(a.send(2, 1, 2, &buf, 16).is_ok());
}

/// UDP loss: with the loss model on, datagrams vanish after the sender
/// pays its costs (socket-level check; DSM timing runs keep loss at 0,
/// as documented in DESIGN.md).
#[test]
fn udp_loss_model_loses() {
    let mut p = SimParams::paper_testbed();
    p.udp.drop_probability = 0.5;
    let p = Arc::new(p);
    let (_f, mut nics) = tm_myrinet::Fabric::new(2, Arc::clone(&p));
    let mut b = tm_udp::UdpStack::new(nics.pop().unwrap(), shared_clock(), Arc::clone(&p));
    let mut a = tm_udp::UdpStack::new(nics.pop().unwrap(), shared_clock(), p);
    a.bind(1, false);
    b.bind(1, false);
    for _ in 0..64 {
        a.sendto(1, 1, 1, b"maybe");
    }
    assert!(a.drops > 5, "expected some losses, got {}", a.drops);
    assert!(a.drops < 60, "expected some arrivals, got {} drops", a.drops);
}

/// Pinned-memory budget: registration fails loudly when the physical
/// budget is exhausted (the failure §2.2.2's sizing avoids).
#[test]
fn pin_budget_is_enforced_end_to_end() {
    let p = params();
    let (_f, board, mut nics) = gm_cluster(2, Arc::clone(&p));
    let nic = nics.remove(0);
    let mut gm = GmNode::new(nic, shared_clock(), p, board, 1 << 20); // 1 MB
    assert!(gm.book.register(512 << 10).is_ok());
    assert!(gm.book.register(768 << 10).is_err());
}

/// GM send with no tokens errors rather than blocking silently.
#[test]
fn gm_no_send_tokens_is_reported() {
    let p = params();
    let (_f, board, mut nics) = gm_cluster(2, Arc::clone(&p));
    let n1 = nics.pop().unwrap();
    let n0 = nics.pop().unwrap();
    let mut a = GmNode::new(n0, shared_clock(), Arc::clone(&p), Arc::clone(&board), 64 << 20);
    let _b = GmNode::new(n1, shared_clock(), p, board, 64 << 20);
    a.open_port(2, false).unwrap();
    let mut pool = DmaPool::new(&mut a.book, 4, 64).unwrap();
    let buf = pool.take(&[1u8]).unwrap();
    pool.recycle();
    // send_at with a fixed timestamp never reaps tokens (they return at
    // inject time, which equals `at`), so the 17th send must fail.
    let mut failures = 0;
    for _ in 0..32 {
        if matches!(a.send_at(2, 1, 2, &buf, 1, Ns(0)), Err(GmError::NoSendTokens)) {
            failures += 1;
        }
    }
    assert!(failures > 0);
}

fn run_schedule(ops: Vec<(u8, u8)>) -> bool {
    // ops: (node affinity, slot) — each op increments slot under a lock.
    let expected: Vec<u32> = {
        let mut v = vec![0u32; 8];
        for &(_, slot) in &ops {
            v[slot as usize % 8] += 1;
        }
        v
    };
    let ops = Arc::new(ops);
    let expected2 = expected.clone();
    let out = run_mem_dsm(
        3,
        params(),
        Ns::from_us(5),
        TmkConfig::default(),
        move |tmk| {
            let r = tmk.malloc(4096);
            tmk.barrier(0);
            let me = tmk.proc_id();
            for &(who, slot) in ops.iter() {
                if who as usize % 3 == me {
                    let s = slot as usize % 8;
                    tmk.acquire(s as u32 + 1);
                    let v = tmk.get_u32(r, s);
                    tmk.set_u32(r, s, v + 1);
                    tmk.release(s as u32 + 1);
                }
            }
            tmk.barrier(1);
            let mut got = Vec::new();
            for s in 0..8 {
                got.push(tmk.get_u32(r, s));
            }
            got
        },
    );
    out.iter().all(|o| o.result == expected2)
}

/// Default 12 cases keeps the suite fast; `PROPTEST_CASES` overrides for
/// deeper sweeps (the hard-coded `with_cases` would otherwise shadow it).
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Randomized lock/data schedules across 3 nodes and 8 locks keep
    /// per-slot counters exact — mutual exclusion plus LRC visibility
    /// under arbitrary interleavings.
    #[test]
    fn random_lock_schedules_are_linearizable(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40)
    ) {
        prop_assert!(run_schedule(ops));
    }
}
