//! Lockstep-scheduler reproducibility tests.
//!
//! Under `SchedMode::Lockstep` the fabric serializes transmits through the
//! conservative virtual-time scheduler (`tm_sim::sched`), so a run's
//! observable outcome — shared memory, per-node stats, per-node virtual
//! clocks — must not depend on wall-clock thread interleaving at all. We
//! prove it the hard way: the same workload runs twice with *different*
//! seeded wall-clock perturbation (each node sleeps pseudo-random real-time
//! amounts between DSM operations), and the two runs must agree byte for
//! byte. A third battery cross-checks the two regimes: over randomized
//! drop/duplicate/reorder fault schedules, FreeRun and Lockstep must
//! converge to identical shared memory (scheduling may reorder recovery,
//! never corrupt it).

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use tm_fast::{run_fast_dsm, run_udp_dsm, FastConfig};
use tm_sim::{FaultPlan, Ns, SimParams, TokenMode};
use tmk::{Substrate, Tmk, TmkConfig};

const NODES: usize = 4;
const PAGES: usize = 4;
const INCRS: u32 = 6;

fn lockstep_params() -> Arc<SimParams> {
    Arc::new(SimParams::lockstep_testbed())
}

/// Deterministic per-(seed, node, step) wall-clock jitter: an xorshift over
/// the mixed key picks a sleep in [0, 200)us. The *virtual* outcome of a
/// lockstep run must be independent of every one of these sleeps.
fn jitter(seed: u64, node: usize, step: u64) {
    let mut x = seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ step.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::thread::sleep(Duration::from_micros(x % 200));
}

/// Contended barrier + lock + multi-writer round, with wall-clock jitter
/// injected between operations. Returns the node's full memory snapshot —
/// the byte-identity payload.
fn perturbed_workload<S: Substrate>(tmk: &mut Tmk<S>, seed: u64) -> Vec<u8> {
    let r = tmk.malloc(PAGES * 4096);
    let me = tmk.proc_id();
    jitter(seed, me, 0);
    tmk.barrier(0);
    for it in 0..INCRS {
        jitter(seed, me, 1 + it as u64);
        tmk.acquire(0);
        let v = tmk.get_u32(r, 0);
        tmk.set_u32(r, 0, v + 1);
        tmk.release(0);
    }
    tmk.barrier(1);
    // Multi-writer pages: everyone writes its own stripe of every page.
    // Stripes start at word 16 so the lock-guarded counter in word 0
    // survives to the final snapshot.
    for p in 0..PAGES {
        jitter(seed, me, 100 + p as u64);
        for w in 0..8usize {
            tmk.set_u32(r, p * 1024 + 16 + me * 8 + w, ((me as u32) << 16) | w as u32);
        }
    }
    tmk.barrier(2);
    let mut snap = vec![0u8; PAGES * 4096];
    tmk.read_bytes(r, 0, &mut snap);
    tmk.barrier(3);
    snap
}

/// One run's complete observable signature: per node, the final virtual
/// clock, every stat counter (Debug format covers all fields, so a new
/// counter is automatically included) and the memory snapshot.
fn fingerprint(out: &[tm_sim::runner::NodeOutcome<Vec<u8>>]) -> Vec<(u64, String, Vec<u8>)> {
    out.iter()
        .map(|o| (o.finish.0, format!("{:?}", o.stats), o.result.clone()))
        .collect()
}

#[test]
fn fast_lockstep_double_run_is_byte_identical() {
    let run = |seed: u64| {
        let p = lockstep_params();
        let cfg = FastConfig::paper(&p);
        let out = run_fast_dsm(NODES, p, cfg, TmkConfig::default(), move |tmk| {
            perturbed_workload(tmk, seed)
        });
        fingerprint(&out)
    };
    // Different jitter seeds → different wall-clock interleavings. The
    // virtual outcome must not notice.
    let a = run(0x5eed_0001);
    let b = run(0x5eed_0002);
    assert_eq!(a, b, "FAST/GM lockstep run diverged across jitter seeds");
    assert_eq!(
        a[0].2[..4],
        (NODES as u32 * INCRS).to_le_bytes(),
        "lock-guarded counter wrong"
    );
}

#[test]
fn udp_lockstep_double_run_is_byte_identical() {
    let run = |seed: u64| {
        let out = run_udp_dsm(NODES, lockstep_params(), TmkConfig::default(), move |tmk| {
            perturbed_workload(tmk, seed)
        });
        fingerprint(&out)
    };
    let a = run(0xabcd_0001);
    let b = run(0xabcd_0002);
    assert_eq!(a, b, "UDP/GM lockstep run diverged across jitter seeds");
}

#[test]
fn udp_lockstep_pins_faulty_run_signatures() {
    // The 4-node concurrent workload whose fault counters were documented
    // as wall-clock-dependent under FreeRun (see tests/fault_injection.rs,
    // "A fully serialized 2-node round"): under Lockstep the *concurrent*
    // version must reproduce exactly. One caveat survives: the barrier
    // manager's shutdown linger polls peers_alive, a wall-clock-ordered
    // liveness read, so node 0's post-measurement quantum count (finish,
    // idle_time, and linger-served duplicate counters) may still vary —
    // see DESIGN.md, "Lockstep scheduler". Everything up to the final
    // barrier is pinned.
    let run = |seed: u64| {
        let mut p = SimParams::lockstep_testbed();
        p.faults = FaultPlan {
            drop_probability: 0.08,
            duplicate_probability: 0.05,
            ..FaultPlan::default()
        };
        let out = run_udp_dsm(NODES, Arc::new(p), TmkConfig::default(), move |tmk| {
            perturbed_workload(tmk, seed)
        });
        let snaps: Vec<Vec<u8>> = out.iter().map(|o| o.result.clone()).collect();
        // Nodes 1.. never linger (centralized manager is node 0): their
        // whole outcome is pinned, virtual clock included.
        let peers: Vec<(u64, String)> = out[1..]
            .iter()
            .map(|o| (o.finish.0, format!("{:?}", o.stats)))
            .collect();
        // Node 0: pin the counters that close before the exit barrier.
        let s0 = &out[0].stats;
        let mgr = (
            s0.compute_time,
            s0.page_faults,
            s0.pages_fetched,
            s0.diffs_created,
            s0.diffs_applied,
            s0.twins_created,
            s0.remote_acquires,
            s0.barriers,
            s0.retransmits,
        );
        (snaps, peers, mgr)
    };
    let (snaps_a, peers_a, mgr_a) = run(0xfa17_0001);
    let (snaps_b, peers_b, mgr_b) = run(0xfa17_0002);
    assert_eq!(snaps_a, snaps_b, "lossy lockstep runs saw different memory");
    assert!(
        snaps_a.iter().all(|s| *s == snaps_a[0]),
        "nodes disagree on final memory"
    );
    assert_eq!(peers_a, peers_b, "peer stats diverged under lockstep");
    assert_eq!(mgr_a, mgr_b, "manager pre-exit stats diverged under lockstep");
    assert!(
        peers_a.iter().any(|(_, s)| s.contains("retransmits: ")),
        "stats format changed under test"
    );
}

/// Shared-memory outcome of the workload under a given scheduler mode and
/// fault plan (no jitter — this battery varies the *fault schedule*).
fn memory_under(sched_lockstep: bool, faults: FaultPlan) -> Vec<u8> {
    let mut p = if sched_lockstep {
        SimParams::lockstep_testbed()
    } else {
        SimParams::paper_testbed()
    };
    p.faults = faults;
    let out = run_udp_dsm(3, Arc::new(p), TmkConfig::default(), |tmk| {
        perturbed_workload(tmk, 0)
    });
    for o in &out {
        assert_eq!(o.result, out[0].result, "node {} snapshot diverges", o.id);
    }
    out[0].result.clone()
}

/// Full lockstep fingerprint of the workload under a given token mode and
/// fault plan. The fingerprint covers every node's final virtual clock,
/// all stat counters, and the memory snapshot — any per-inbox delivery
/// reordering shifts virtual arrival times and therefore clocks and
/// counters, so fingerprint equality pins the per-inbox delivery order,
/// not just the converged memory.
fn fingerprint_under_tokens(tokens: TokenMode, faults: FaultPlan) -> Vec<(u64, String, Vec<u8>)> {
    let mut p = SimParams::lockstep_testbed();
    p.tokens = tokens;
    p.faults = faults;
    let out = run_udp_dsm(3, Arc::new(p), TmkConfig::default(), |tmk| {
        perturbed_workload(tmk, 0)
    });
    fingerprint(&out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scheduling regime equivalence: over randomized drop/duplicate/
    /// reorder schedules, FreeRun and Lockstep recover to the *same*
    /// shared memory. The scheduler may only change when things happen,
    /// never what the DSM computes.
    #[test]
    fn freerun_and_lockstep_agree_on_memory(
        seed in 1u64..1_000_000,
        drop_pm in 0u32..80,      // ‰ (per-mille) → ≤ 8% loss
        dup_pm in 0u32..60,
        reorder_pm in 0u32..60,
    ) {
        let plan = FaultPlan {
            seed,
            drop_probability: drop_pm as f64 / 1000.0,
            duplicate_probability: dup_pm as f64 / 1000.0,
            reorder_probability: reorder_pm as f64 / 1000.0,
            reorder_delay: Ns::from_us(250),
            ..FaultPlan::default()
        };
        let free = memory_under(false, plan.clone());
        let lock = memory_under(true, plan);
        prop_assert_eq!(free, lock, "schedulers disagree on final memory");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Token-mode equivalence: per-receiver reservation tokens may only
    /// add wall-clock concurrency, never change the virtual schedule.
    /// Over randomized drop/duplicate/reorder fault schedules, the
    /// single-token and per-receiver lockstep runs must produce identical
    /// full fingerprints — memory, per-node virtual clocks, and every
    /// stat counter — which pins the per-inbox delivery order byte for
    /// byte (see [`fingerprint_under_tokens`]).
    #[test]
    fn single_and_per_receiver_tokens_agree_on_everything(
        seed in 1u64..1_000_000,
        drop_pm in 0u32..80,
        dup_pm in 0u32..60,
        reorder_pm in 0u32..60,
    ) {
        let plan = FaultPlan {
            seed,
            drop_probability: drop_pm as f64 / 1000.0,
            duplicate_probability: dup_pm as f64 / 1000.0,
            reorder_probability: reorder_pm as f64 / 1000.0,
            reorder_delay: Ns::from_us(250),
            ..FaultPlan::default()
        };
        let single = fingerprint_under_tokens(TokenMode::Single, plan.clone());
        let per_rx = fingerprint_under_tokens(TokenMode::PerReceiver, plan);
        prop_assert_eq!(single, per_rx, "token modes produced different schedules");
    }
}

/// 128-node smoke: a ring of one-shot sends to pairwise-distinct
/// receivers must actually overlap under per-receiver tokens. No grant
/// can fire while any node has yet to announce its transmit (its floor
/// still bounds every candidate), so by the time the scheduler dispatches,
/// all 128 Pending transmits are visible at once; with disjoint rx links
/// and far-future sender floors they are granted in one batch — the
/// concurrency gauge must therefore observe at least two simultaneous
/// in-flight grants (the single-token scheduler pins it at exactly 1).
#[test]
fn per_receiver_tokens_overlap_disjoint_receivers_at_128_nodes() {
    use bytes::Bytes;
    const N: usize = 128;
    let params = Arc::new(SimParams::lockstep_testbed());
    let (fabric, nics) = tm_myrinet::Fabric::new(N, params);
    let mut threads = Vec::new();
    for (i, mut nic) in nics.into_iter().enumerate() {
        threads.push(std::thread::spawn(move || {
            let dst = (i + 1) % N;
            // One send ever: the post-transmit floor is effectively
            // infinite, so no grant need wait on this node again.
            nic.inject_floored(
                dst,
                0,
                0,
                Bytes::from(vec![i as u8; 4096]),
                Ns::from_us(1000 + i as u64),
                None,
                Ns::from_secs(3600),
            );
            let pkt = nic.recv_blocking();
            assert_eq!(pkt.src, (i + N - 1) % N, "ring delivery broke");
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let grants = fabric
        .sched()
        .expect("lockstep params must install the scheduler")
        .max_concurrent_grants();
    assert!(
        grants >= 2,
        "disjoint receivers never overlapped: max concurrent grants = {grants}"
    );
}
